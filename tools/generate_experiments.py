#!/usr/bin/env python3
"""Regenerate every experiment at report length and dump the summaries.

Used to produce the measured numbers recorded in EXPERIMENTS.md:

    python tools/generate_experiments.py > /tmp/experiments_out.txt
"""

import time

from repro.experiments import (
    fig1_motivation,
    fig3_bandwidth,
    fig4_dynamic,
    fig5_memcached,
    sporadic_rtas,
    table1_periodic,
    table2_config,
    table4_dedicated,
    table6_overhead,
)
from repro.simcore.time import sec


def section(title):
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}", flush=True)


def main() -> None:
    started = time.time()

    section("Figure 1 — motivation (30 s)")
    for result in fig1_motivation.run_fig1(duration_ns=sec(30)).values():
        print(result.summary())

    section("Table 1 groups — periodic (20 s per group per framework)")
    print(table1_periodic.run_table1(duration_ns=sec(20)).summary())

    section("Table 2 — NH-Dec VM configurations")
    print(table2_config.run_table2().summary())

    section("Figure 3 — bandwidth requirements")
    print(fig3_bandwidth.run_fig3().summary())

    section("Sporadic RTAs — 100 requests per RTA, all groups")
    print(sporadic_rtas.run_sporadic(requests_per_rta=100).summary())

    section("Figure 4 — dynamic streaming (180 s)")
    print(fig4_dynamic.run_fig4(duration_ns=sec(180)).summary())

    section("Table 4 — dedicated-CPU memcached tails (60 s)")
    print(table4_dedicated.run_table4(duration_ns=sec(60)).summary())

    section("Figure 5a — memcached vs 19 non-RTA VMs (60 s)")
    print(fig5_memcached.run_fig5a(duration_ns=sec(60)).summary())

    section("Figure 5b — 5 memcached + 10 video VMs (30 s)")
    print(fig5_memcached.run_fig5b(duration_ns=sec(30)).summary())

    section("Tables 5-6 — scalability and overhead (10 s)")
    print(table6_overhead.run_table6(duration_ns=sec(10)).summary())

    print(f"\ntotal wall time: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
