#!/usr/bin/env python
"""Performance-regression gate for the engine/scheduler hot path.

Runs the tier-1 test suite, the engine-throughput microbenchmark
(fails when events/sec regresses more than ``--tolerance``, default
10%, against the committed ``BENCH_engine.json``), the parallel-runner
overhead gate (fails when a two-job run of a fast experiment subset is
slower than the serial run beyond ``--parallel-tolerance`` — the
"jobs 2 is never slower than serial" contract), and the full-registry
gate (fails when a parallel full-registry run through ``repro.runner``
takes more than ``--registry-tolerance``, default 15%, longer than the
committed ``BENCH_registry.json``, or when any single work unit costs
more than ``--max-unit-s``, default 18 s — the shard-granularity
contract that keeps the parallel critical path bounded by one shard):

    python tools/check_perf.py
    python tools/check_perf.py --skip-tests          # benchmarks only
    python tools/check_perf.py --skip-registry       # engine + parallel gates
    python tools/check_perf.py --tolerance 0.2       # looser engine gate
    python tools/check_perf.py --repeat 3            # damp wall noise

The engine record doubles as the telemetry-overhead gate: the benchmark
subscribes nothing to the telemetry bus, so its throughput must also
stay within ``--telemetry-tolerance`` (default 5%) of the baseline,
bounding the cost of the instrumentation's zero-subscriber fast path.
``--spans-tolerance`` (default 5%) gates the span/blame/profiler layer
the same way: with no SpanBuilder attached and no profiler installed,
the producers and hooks added for causal tracing must cost nothing.

``--control-tolerance`` (default 5%) gates the control plane's
zero-policy promise: a renegotiation-heavy experiment subset runs twice
per round in the same session — once with ``REPRO_DIRECT_ACTUATION=1``
(the pre-refactor direct-call shape, ``machine.control`` detached) and
once through the actuation port with no observers — and the median
ported/direct wall ratio over interleaved pairs must stay within the
tolerance.  In-session A/B is what makes 5% measurable: committed
baselines drift with machine load, paired passes don't.

``--recorder-tolerance`` (default 5%) gates the flight recorder's
detached path the same way: the engine benchmark runs with a
``TraceRecorder`` attached to the bus and detached again before the
timed section, so throughput measures the post-detach fast path.

Every fully-passing run (unless ``--no-history``) appends one JSON line
to ``BENCH_history.jsonl`` — stamp, git sha, engine events/sec,
registry wall and slowest unit — the durable benchmark trajectory that
complements the latest-state ``BENCH_*.json`` baselines.

The engine benchmark compares best-of-``--repeat`` fresh runs so a
loaded machine does not trip the gate spuriously; raise ``--repeat``
(or the tolerances) on noisy hardware.  Exit status: 0 on pass, 1 on
test failure, 2 on a throughput or registry wall-time regression, 3
when a committed baseline is missing (run the matching benchmark once
to create it).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
BASELINE = os.path.join(REPO_ROOT, "BENCH_engine.json")
REGISTRY_BASELINE = os.path.join(REPO_ROOT, "BENCH_registry.json")

sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)


def run_tier1_tests() -> bool:
    """Run the repository's tier-1 suite (pytest -x -q)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=REPO_ROOT,
        env=env,
    )
    return proc.returncode == 0


def check_throughput(
    tolerance: float,
    repeat: int,
    telemetry_tolerance: float = 0.0,
    spans_tolerance: float = 0.0,
    history: dict = None,
) -> int:
    """Engine gate, plus the telemetry- and spans-overhead gates.

    The benchmark never subscribes anything to the telemetry bus, so a
    fresh run measures exactly the zero-subscriber fast path: every
    hot-path emission site reduces to one cached boolean test.  With
    *telemetry_tolerance* > 0 the same best-of-*repeat* record must also
    stay within that (tighter) fraction of the committed baseline,
    bounding what the instrumentation costs when nobody is listening.
    *spans_tolerance* gates the span/blame/profiler additions the same
    way: no SpanBuilder is attached and no profiler installed, so the
    job-release producers and the profiler hook must stay free on the
    disabled path.
    """
    if not os.path.exists(BASELINE):
        print(f"check_perf: no committed baseline at {BASELINE}")
        print("check_perf: run benchmarks/bench_engine_throughput.py to create one")
        return 3
    with open(BASELINE) as fh:
        baseline = json.load(fh)

    from benchmarks.bench_engine_throughput import run_benchmark

    best = None
    for _ in range(max(1, repeat)):
        record = run_benchmark()
        if best is None or record["events_per_sec"] > best["events_per_sec"]:
            best = record

    reference = baseline["events_per_sec"]
    fresh = best["events_per_sec"]
    if history is not None:
        history["events_per_sec"] = fresh
    floor = reference * (1.0 - tolerance)
    verdict = "ok" if fresh >= floor else "REGRESSION"
    print(
        f"check_perf: {fresh:.1f} events/sec vs baseline {reference:.1f} "
        f"(floor {floor:.1f}, tolerance {tolerance:.0%}): {verdict}"
    )
    failed = fresh < floor
    if telemetry_tolerance > 0:
        telemetry_floor = reference * (1.0 - telemetry_tolerance)
        telemetry_verdict = "ok" if fresh >= telemetry_floor else "REGRESSION"
        print(
            f"check_perf: zero-subscriber telemetry gate: {fresh:.1f} vs "
            f"floor {telemetry_floor:.1f} "
            f"(tolerance {telemetry_tolerance:.0%}): {telemetry_verdict}"
        )
        failed = failed or fresh < telemetry_floor
    if spans_tolerance > 0:
        spans_floor = reference * (1.0 - spans_tolerance)
        spans_verdict = "ok" if fresh >= spans_floor else "REGRESSION"
        print(
            f"check_perf: spans-disabled overhead gate: {fresh:.1f} vs "
            f"floor {spans_floor:.1f} "
            f"(tolerance {spans_tolerance:.0%}): {spans_verdict}"
        )
        failed = failed or fresh < spans_floor
    if best.get("events") != baseline.get("events"):
        # Not fatal by itself, but a changed event count means behaviour
        # moved, so the events/sec comparison is no longer like-for-like.
        print(
            f"check_perf: note: event count changed "
            f"({baseline.get('events')} -> {best.get('events')}); "
            "re-record BENCH_engine.json if the change is intended"
        )
    return 2 if failed else 0


def check_recorder_overhead(tolerance: float, repeat: int) -> int:
    """Recorder-detached gate: a detached flight recorder costs nothing.

    The flight recorder subscribes to every telemetry kind while
    attached; once detached the bus must fall back to its cached
    zero-subscriber fast path.  This gate runs the engine benchmark
    with a :class:`~repro.telemetry.record.TraceRecorder` attached and
    immediately detached before the timed run — so the hot path starts
    from the post-detach bus state — and the best-of-*repeat*
    throughput must stay within *tolerance* of the committed baseline,
    the same floor discipline as the telemetry/spans gates.
    """
    if not os.path.exists(BASELINE):
        print(f"check_perf: no committed baseline at {BASELINE}")
        return 3
    with open(BASELINE) as fh:
        baseline = json.load(fh)

    from benchmarks.bench_engine_throughput import run_benchmark
    from repro.telemetry.record import TraceRecorder

    def attach_detach(system) -> None:
        recorder = TraceRecorder()
        recorder.attach(system.machine.bus)
        recorder.detach()
        recorder.close()

    best = None
    for _ in range(max(1, repeat)):
        record = run_benchmark(setup=attach_detach)
        if best is None or record["events_per_sec"] > best["events_per_sec"]:
            best = record
    reference = baseline["events_per_sec"]
    fresh = best["events_per_sec"]
    floor = reference * (1.0 - tolerance)
    verdict = "ok" if fresh >= floor else "REGRESSION"
    print(
        f"check_perf: recorder-detached gate: {fresh:.1f} events/sec vs "
        f"floor {floor:.1f} (tolerance {tolerance:.0%}): {verdict}"
    )
    return 0 if fresh >= floor else 2


#: Fast, fully sharded experiments for the parallel-overhead gate
#: (~5 s serial): enough units to exercise the pool without the cost of
#: the full registry.
PARALLEL_GATE_IDS = ("table1", "sporadic", "robustness_pcpu_fail")


def check_parallel_overhead(tolerance: float) -> int:
    """Two-job run of a fast subset must not lose to the serial run.

    The executor collapses the pool to the in-process path when the
    host cannot actually run two workers (one CPU), and submits units
    longest-first otherwise, so ``--jobs 2`` must never cost more than
    serial beyond measurement noise.  *tolerance* absorbs that noise —
    both runs execute identical deterministic work, but wall clocks on
    shared machines wobble.
    """
    import time as _time

    from repro.runner import run_experiments

    ids = list(PARALLEL_GATE_IDS)
    print(f"check_perf: parallel-overhead gate over {', '.join(ids)} ...")
    started = _time.perf_counter()
    run_experiments(ids, jobs=1)
    serial = _time.perf_counter() - started
    started = _time.perf_counter()
    run_experiments(ids, jobs=2)
    parallel = _time.perf_counter() - started
    ceiling = serial * (1.0 + tolerance)
    verdict = "ok" if parallel <= ceiling else "REGRESSION"
    print(
        f"check_perf: jobs=2 {parallel:.2f}s vs serial {serial:.2f}s "
        f"(ceiling {ceiling:.2f}s, tolerance {tolerance:.0%}): {verdict}"
    )
    return 0 if parallel <= ceiling else 2


#: Renegotiation-heavy, policy-free experiments for the port A/B gate:
#: sporadic mode changes, periodic group renegotiation, hypercall faults.
CONTROL_GATE_SUBSET = ("sporadic", "table1", "robustness_hypercall")


def check_control_overhead(tolerance: float, repeat: int = 3) -> int:
    """No-controller gate: the actuation port must cost ≤ *tolerance*.

    Every bandwidth mutation now flows through the actuation port; with
    no policy observing, ``submit()`` is one dict lookup plus the very
    mechanism call the call site used to make directly.  This gate runs
    a renegotiation-heavy experiment subset (smoke variants of
    ``CONTROL_GATE_SUBSET``) twice per round — once with
    ``REPRO_DIRECT_ACTUATION=1``, which leaves ``machine.control``
    detached so every call site takes its pre-refactor direct-call
    shape, and once through the port with no observers.  Comparing the
    two shapes *in the same session*, interleaved back to back, is what
    makes a 5% verdict meaningful on shared hardware: a committed
    baseline drifts with machine load, but pair-local noise lands on
    both shapes alike.  The gated statistic is the median of the
    per-pair ported/direct wall ratios over *repeat* pairs.
    """
    import os as _os
    import statistics
    import time as _time

    from repro.experiments import registry

    def one_pass() -> float:
        started = _time.perf_counter()
        for experiment_id in CONTROL_GATE_SUBSET:
            registry.run_smoke(experiment_id)
        return _time.perf_counter() - started

    def direct_pass() -> float:
        _os.environ["REPRO_DIRECT_ACTUATION"] = "1"
        try:
            return one_pass()
        finally:
            del _os.environ["REPRO_DIRECT_ACTUATION"]

    direct_pass()  # warm-up: steady-state cost is what the gate is about
    one_pass()
    pairs = [(direct_pass(), one_pass()) for _ in range(max(3, repeat))]
    ratio = statistics.median(p / d for d, p in pairs)
    direct = min(d for d, _ in pairs)
    verdict = "ok" if ratio <= 1.0 + tolerance else "REGRESSION"
    print(
        f"check_perf: no-controller actuation gate: ported/direct median "
        f"ratio {ratio:.3f} over {len(pairs)} pairs of "
        f"{'+'.join(CONTROL_GATE_SUBSET)} smoke runs "
        f"(direct best {direct:.2f}s, tolerance {tolerance:.0%}): {verdict}"
    )
    return 0 if ratio <= 1.0 + tolerance else 2


def check_registry_wall(
    tolerance: float,
    jobs: int = 0,
    max_unit_s: float = 18.0,
    history: dict = None,
) -> int:
    """Full-registry gate: parallel wall time vs ``BENCH_registry.json``.

    The fresh run uses the baseline's job count (override with *jobs*)
    and a disabled cache, so the comparison is like-for-like.  The same
    run also feeds the slowest-unit gate: no single work unit may take
    longer than *max_unit_s* (0 disables), the shard-granularity
    contract that keeps the parallel critical path — and hence the
    warm-edit turnaround — bounded by one shard, not one experiment.

    A second wall comparison at the same *tolerance* sums the per-unit
    times over the units present in both the baseline and the fresh
    run, which keeps the verdict meaningful when the registry grows new
    experiments after the baseline was recorded (the absolute parallel
    wall would then compare different workloads).
    """
    if not os.path.exists(REGISTRY_BASELINE):
        print(f"check_perf: no committed baseline at {REGISTRY_BASELINE}")
        print("check_perf: run benchmarks/bench_registry.py to create one")
        return 3
    with open(REGISTRY_BASELINE) as fh:
        baseline = json.load(fh)

    from benchmarks.bench_registry import time_run

    jobs = jobs or int(baseline.get("jobs", 1))
    print(f"check_perf: full-registry parallel run ({jobs} jobs) ...")
    fresh = time_run(jobs)
    reference = baseline["parallel_wall_s"]
    ceiling = reference * (1.0 + tolerance)
    verdict = "ok" if fresh["wall_s"] <= ceiling else "REGRESSION"
    print(
        f"check_perf: registry wall {fresh['wall_s']:.1f}s vs baseline "
        f"{reference:.1f}s "
        f"(ceiling {ceiling:.1f}s, tolerance {tolerance:.0%}): {verdict}"
    )
    failed = fresh["wall_s"] > ceiling
    if history is not None:
        history["registry_wall_s"] = round(fresh["wall_s"], 2)
        if fresh.get("per_unit_s"):
            unit_id, unit_s = max(
                fresh["per_unit_s"].items(), key=lambda item: item[1]
            )
            history["slowest_unit"] = {"id": unit_id, "wall_s": round(unit_s, 2)}
    base_units = baseline.get("per_unit_serial_s") or {}
    fresh_units = fresh.get("per_unit_s") or {}
    shared = set(base_units) & set(fresh_units)
    if shared:
        base_sum = sum(base_units[unit] for unit in shared)
        fresh_sum = sum(fresh_units[unit] for unit in shared)
        comparable_ceiling = base_sum * (1.0 + tolerance)
        shared_verdict = "ok" if fresh_sum <= comparable_ceiling else "REGRESSION"
        print(
            f"check_perf: comparable wall {fresh_sum:.1f}s vs baseline "
            f"{base_sum:.1f}s over {len(shared)} shared units "
            f"(ceiling {comparable_ceiling:.1f}s, "
            f"tolerance {tolerance:.0%}): {shared_verdict}"
        )
        failed = failed or fresh_sum > comparable_ceiling
    if max_unit_s > 0 and fresh.get("per_unit_s"):
        slowest_id, slowest = max(
            fresh["per_unit_s"].items(), key=lambda item: item[1]
        )
        unit_verdict = "ok" if slowest <= max_unit_s else "REGRESSION"
        print(
            f"check_perf: slowest unit {slowest_id} {slowest:.1f}s vs "
            f"ceiling {max_unit_s:.1f}s: {unit_verdict}"
        )
        failed = failed or slowest > max_unit_s
    return 2 if failed else 0


HISTORY = os.path.join(REPO_ROOT, "BENCH_history.jsonl")


def append_history(history: dict) -> None:
    """Append an accepted run to the benchmark history ledger.

    ``BENCH_engine.json``/``BENCH_registry.json`` only hold the latest
    accepted state; the history file keeps the full trajectory — one
    JSON line per fully-passing ``check_perf`` run with the stamp, git
    sha, engine throughput and registry wall — so regressions can be
    dated after the fact.
    """
    import time as _time

    from repro.runner.ledger import git_sha

    entry = dict(
        {
            "stamp": _time.strftime("%Y%m%d-%H%M%S", _time.gmtime()),
            "git_sha": git_sha(REPO_ROOT),
        },
        **history,
    )
    with open(HISTORY, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"check_perf: appended accepted run to {HISTORY}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional events/sec regression (default 0.10)",
    )
    parser.add_argument(
        "--parallel-tolerance", type=float, default=0.25,
        help="allowed jobs=2 overhead vs serial on the fast subset "
        "(default 0.25 — a noise margin; the contract is 'never "
        "meaningfully slower', not 'faster')",
    )
    parser.add_argument(
        "--skip-parallel", action="store_true",
        help="skip the parallel-runner overhead gate",
    )
    parser.add_argument(
        "--registry-tolerance", type=float, default=0.15,
        help="allowed fractional registry wall-time regression (default 0.15)",
    )
    parser.add_argument(
        "--telemetry-tolerance", type=float, default=0.05,
        help="allowed zero-subscriber telemetry overhead on engine "
        "throughput (default 0.05; 0 disables the gate)",
    )
    parser.add_argument(
        "--spans-tolerance", type=float, default=0.05,
        help="allowed spans-disabled overhead on engine throughput — "
        "no SpanBuilder attached, no profiler installed "
        "(default 0.05; 0 disables the gate)",
    )
    parser.add_argument(
        "--recorder-tolerance", type=float, default=0.05,
        help="allowed recorder-detached overhead on engine throughput — "
        "a flight recorder attached to the bus and detached again "
        "before the timed run (default 0.05; 0 disables the gate)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to BENCH_history.jsonl",
    )
    parser.add_argument(
        "--control-tolerance", type=float, default=0.05,
        help="allowed no-controller overhead of the actuation-port path "
        "vs the direct-call shape (REPRO_DIRECT_ACTUATION=1) on a "
        "renegotiation-heavy experiment subset, compared in-session "
        "(default 0.05; 0 disables the gate)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="benchmark runs; the best one is compared (default 3)",
    )
    parser.add_argument(
        "--skip-tests", action="store_true",
        help="skip the tier-1 suite and only run the benchmark gates",
    )
    parser.add_argument(
        "--skip-registry", action="store_true",
        help="skip the full-registry wall-time gate",
    )
    parser.add_argument(
        "--registry-jobs", type=int, default=0,
        help="worker count for the registry gate (default: the baseline's)",
    )
    parser.add_argument(
        "--max-unit-s", type=float, default=18.0,
        help="slowest-unit ceiling for the registry gate in seconds "
        "(default 18.0; 0 disables) — no single work unit may cost "
        "more, keeping the parallel critical path shard-bounded",
    )
    args = parser.parse_args(argv)

    history: dict = {}
    if not args.skip_tests:
        print("check_perf: running tier-1 test suite ...")
        if not run_tier1_tests():
            print("check_perf: tier-1 tests failed")
            return 1
    status = check_throughput(
        args.tolerance,
        args.repeat,
        telemetry_tolerance=args.telemetry_tolerance,
        spans_tolerance=args.spans_tolerance,
        history=history,
    )
    if status:
        return status
    if args.recorder_tolerance > 0:
        status = check_recorder_overhead(args.recorder_tolerance, args.repeat)
        if status:
            return status
    if not args.skip_parallel:
        status = check_parallel_overhead(args.parallel_tolerance)
        if status:
            return status
    if args.control_tolerance > 0:
        status = check_control_overhead(args.control_tolerance, args.repeat)
        if status:
            return status
    if not args.skip_registry:
        status = check_registry_wall(
            args.registry_tolerance,
            args.registry_jobs,
            args.max_unit_s,
            history=history,
        )
        if status:
            return status
    if not args.no_history:
        append_history(history)
    return 0


if __name__ == "__main__":
    sys.exit(main())
