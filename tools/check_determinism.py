#!/usr/bin/env python
"""Determinism harness over the experiment registry.

Runs every experiment in :mod:`repro.experiments.registry`, serialises
each result's ``rows()`` to canonical JSON and hashes it.  Recording a
baseline before an optimisation and checking against it afterwards
proves the change preserved byte-identical metrics:

    python tools/check_determinism.py --record baseline_metrics.json
    ... hack on the scheduler hot path ...
    python tools/check_determinism.py --check baseline_metrics.json

Exit status is non-zero when any experiment's hash differs from the
recorded baseline (or, with ``--check``, when an experiment appeared or
disappeared).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import registry  # noqa: E402


def _canonical(value):
    """Make *value* JSON-serialisable without losing precision.

    Floats are rendered through ``repr`` (shortest round-trip form), so
    two runs hash identically iff every metric is bit-identical.
    """
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def experiment_digest(experiment_id: str) -> dict:
    """Run one experiment and return its row count and metrics hash."""
    started = time.perf_counter()
    result = registry.run(experiment_id)
    elapsed = time.perf_counter() - started
    rows = _canonical(result.rows())
    blob = json.dumps(rows, sort_keys=True, separators=(",", ":")).encode()
    return {
        "rows": len(result.rows()),
        "sha256": hashlib.sha256(blob).hexdigest(),
        "wall_s": round(elapsed, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", metavar="PATH", help="write baseline hashes to PATH")
    mode.add_argument("--check", metavar="PATH", help="compare against baseline at PATH")
    parser.add_argument(
        "--only",
        metavar="IDS",
        help="comma-separated experiment ids (default: all)",
    )
    args = parser.parse_args(argv)

    ids = args.only.split(",") if args.only else registry.all_ids()
    digests = {}
    for experiment_id in ids:
        print(f"[determinism] running {experiment_id} ...", flush=True)
        digests[experiment_id] = experiment_digest(experiment_id)
        print(
            f"[determinism]   {experiment_id}: {digests[experiment_id]['sha256'][:16]} "
            f"({digests[experiment_id]['wall_s']}s)",
            flush=True,
        )

    if args.record:
        with open(args.record, "w") as fh:
            json.dump(digests, fh, indent=2, sort_keys=True)
        print(f"[determinism] baseline written to {args.record}")
        return 0

    with open(args.check) as fh:
        baseline = json.load(fh)
    failures = []
    for experiment_id in ids:
        if experiment_id not in baseline:
            failures.append(f"{experiment_id}: not in baseline")
            continue
        want = baseline[experiment_id]["sha256"]
        got = digests[experiment_id]["sha256"]
        if want != got:
            failures.append(f"{experiment_id}: hash {got[:16]} != baseline {want[:16]}")
    if failures:
        print("[determinism] FAIL")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"[determinism] OK — {len(ids)} experiments byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
