#!/usr/bin/env python
"""Determinism harness over the experiment registry.

Runs every experiment in :mod:`repro.experiments.registry`, serialises
each result's ``rows()`` to canonical JSON and hashes it.  Recording a
baseline before an optimisation and checking against it afterwards
proves the change preserved byte-identical metrics:

    python tools/check_determinism.py --record baseline_metrics.json
    ... hack on the scheduler hot path ...
    python tools/check_determinism.py --check baseline_metrics.json

With ``--parallel N`` the same experiments are additionally executed
through the parallel work-unit runner (``repro.runner``, N worker
processes, cache disabled) and each experiment's merged ``rows()`` hash
must equal the serial hash — the serial-vs-parallel equivalence gate:

    python tools/check_determinism.py --parallel 4
    python tools/check_determinism.py --check baseline.json --parallel 4

With ``--streams N`` the telemetry probe (``repro.telemetry.probe``)
runs its sharded plan twice — serially and across N workers — and each
system's *merged streaming-aggregate snapshot* must hash identically:
the gate that sharded telemetry streams merge byte-identically to a
single stream.  ``--streams`` stands alone; it does not rerun the
experiment registry:

    python tools/check_determinism.py --streams 4

With ``--blame N`` the span/blame sweep (``repro.telemetry.blame_plan``)
runs a fixed two-family robustness sharding twice — serially and across
N workers — and the merged blame report plus every per-cell snapshot
must hash identically: the gate that miss attribution is independent of
how the work units were scheduled.  Like ``--streams`` it stands alone:

    python tools/check_determinism.py --blame 4

With ``--trace N`` the flight-recorder sweep (``repro.telemetry
.trace_plan``) records a fixed two-family robustness sharding three
times — serially, across N workers, and serially again under the
reference heap event queue — and the merged trace's *canonical hash*
(a digest of every telemetry event the runs emitted, not just the end
metrics) must be identical in all three: the gate that the simulated
event stream itself is byte-stable under work-unit re-scheduling and
the queue-implementation swap.  Like ``--streams`` it stands alone:

    python tools/check_determinism.py --trace 4

With ``--cluster N`` every ``cluster_*`` experiment (the multi-host
family, sharded per observed host) runs serially and again through the
parallel work-unit runner with N worker processes, and each
experiment's merged ``rows()`` hash must equal the serial hash — the
gate that per-host cluster shards reassemble byte-identically however
the hosts were distributed over workers.  Like ``--streams`` it stands
alone; it does not rerun the rest of the registry:

    python tools/check_determinism.py --cluster 4

With ``--feedback N`` every ``feedback_*``/``tenant_*`` experiment (the
adaptive-control family, sharded per policy cell) runs serially and
again through the parallel work-unit runner with N worker processes,
and each experiment's merged ``rows()`` hash must equal the serial hash
— the gate that the policy head-to-head cells reassemble byte-
identically however they were distributed over workers, and that a
feedback-controller run is reproducible under its fixed seed.  Like
``--cluster`` it stands alone:

    python tools/check_determinism.py --feedback 4

With ``--cache`` the selected experiments run twice through the runner
against a fresh temporary cache directory — a cold run that writes
every work unit, then a warm rerun that must execute *nothing* (every
unit a cache hit, zero misses) while its merged ``rows()`` still hash
identically to the cold run's: the gate that the dependency-aware
incremental cache returns the same bytes it stored.  It composes with
``--parallel`` (the warm pair then runs with that worker count, and
the cold hashes are also checked against the serial digests):

    python tools/check_determinism.py --cache
    python tools/check_determinism.py --parallel 4 --cache

With ``--queue`` every selected experiment runs twice serially — once
under the calendar event queue (the default implementation) and once
under the reference binary heap (``REPRO_EVENT_QUEUE=heap``) — and the
two metrics hashes must match per experiment: the gate that the queue
swap changed *nothing* about simulated behaviour:

    python tools/check_determinism.py --queue
    python tools/check_determinism.py --queue --only "table1,fig5b"

Exit status is non-zero when any experiment's hash differs from the
recorded baseline (or, with ``--check``, when an experiment appeared or
disappeared), or when the parallel runner's merged output diverges from
the serial path, or when the two queue implementations disagree.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import registry  # noqa: E402


def _canonical(value):
    """Make *value* JSON-serialisable without losing precision.

    Floats are rendered through ``repr`` (shortest round-trip form), so
    two runs hash identically iff every metric is bit-identical.
    """
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def rows_hash(rows) -> str:
    """Canonical JSON hash of an experiment's rows."""
    blob = json.dumps(
        _canonical(rows), sort_keys=True, separators=(",", ":")
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def experiment_digest(experiment_id: str, seed=None) -> dict:
    """Run one experiment and return its row count and metrics hash.

    With *seed* set, seed-taking experiments (the robustness family) run
    through the work-unit plans in-process (``jobs=1``) so the override
    reaches them; the plans are the same ones the parallel rerun uses.
    """
    started = time.perf_counter()
    if seed is not None:
        from repro.runner import run_experiments

        report = run_experiments([experiment_id], jobs=1, seed=seed)
        rows = report.reports[0].rows
    else:
        rows = registry.run(experiment_id).rows()
    elapsed = time.perf_counter() - started
    return {
        "rows": len(rows),
        "sha256": rows_hash(rows),
        "wall_s": round(elapsed, 2),
    }


def check_parallel(ids, serial_digests, jobs: int, seed=None) -> list:
    """Serial-vs-parallel gate: rerun through the work-unit runner.

    The runner executes each experiment's work units across *jobs*
    processes with the cache disabled and merges in canonical order; the
    merged rows must hash identically to the serial ``registry.run``
    path, otherwise the shard decomposition (or the engine's determinism)
    has broken.
    """
    from repro.runner import run_experiments

    print(f"[determinism] parallel rerun with {jobs} job(s) ...", flush=True)
    report = run_experiments(ids, jobs=jobs, seed=seed)
    failures = []
    for experiment_report in report.reports:
        experiment_id = experiment_report.experiment_id
        got = rows_hash(experiment_report.rows)
        want = serial_digests[experiment_id]["sha256"]
        verdict = "ok" if got == want else "DIVERGED"
        print(
            f"[determinism]   {experiment_id}: parallel {got[:16]} "
            f"vs serial {want[:16]}: {verdict}",
            flush=True,
        )
        if got != want:
            failures.append(
                f"{experiment_id}: parallel hash {got[:16]} != serial {want[:16]}"
            )
    print(f"[determinism] parallel rerun took {report.wall_s:.1f}s", flush=True)
    return failures


def check_streams(jobs: int) -> list:
    """Streamed-aggregates gate: sharded snapshots merge byte-identically.

    Runs the telemetry probe plan in-process and again across *jobs*
    worker processes; for every probed system the merged
    :class:`~repro.telemetry.aggregate.StandardTelemetry` snapshot must
    hash identically (exact tail mode makes the merge lossless, so any
    divergence means the aggregate merge — or the engine — lost
    determinism).
    """
    from repro.runner.executor import execute_plan
    from repro.telemetry.probe import probe_plan

    print(f"[determinism] telemetry-stream rerun with {jobs} job(s) ...", flush=True)
    plan = probe_plan()
    serial = execute_plan(plan, jobs=1)
    parallel = execute_plan(plan, jobs=max(1, jobs))
    failures = []
    for system in sorted(serial.merged):
        want = rows_hash(serial.merged[system])
        got = rows_hash(parallel.merged.get(system))
        verdict = "ok" if got == want else "DIVERGED"
        print(
            f"[determinism]   streams/{system}: parallel {got[:16]} "
            f"vs serial {want[:16]}: {verdict}",
            flush=True,
        )
        if got != want:
            failures.append(
                f"streams/{system}: parallel snapshot {got[:16]} "
                f"!= serial {want[:16]}"
            )
    return failures


def check_blame(jobs: int, seed=None) -> list:
    """Blame-report gate: sharded miss attribution merges byte-identically.

    Runs a fixed blame sweep (two fault families, every scheduler, 1
    simulated second, fixed seed) in-process and again across *jobs*
    worker processes; the merged :class:`~repro.telemetry.blame.BlameReport`
    snapshot and each cell's own snapshot must hash identically.
    """
    from repro.runner.executor import execute_plan
    from repro.simcore.time import sec
    from repro.telemetry.blame_plan import blame_plan

    print(f"[determinism] blame-sweep rerun with {jobs} job(s) ...", flush=True)
    plan = blame_plan(
        faults=("pcpu_fail", "hypercall"),
        duration_ns=sec(1),
        seed=seed if seed is not None else 11,
    )
    serial = execute_plan(plan, jobs=1)
    parallel = execute_plan(plan, jobs=max(1, jobs))
    failures = []
    want = rows_hash(serial.merged.snapshot())
    got = rows_hash(parallel.merged.snapshot())
    verdict = "ok" if got == want else "DIVERGED"
    print(
        f"[determinism]   blame/merged: parallel {got[:16]} "
        f"vs serial {want[:16]}: {verdict}",
        flush=True,
    )
    if got != want:
        failures.append(
            f"blame/merged: parallel report {got[:16]} != serial {want[:16]}"
        )
    for serial_part, parallel_part in zip(serial.parts, parallel.parts):
        cell = f"{serial_part['fault']}/{serial_part['scheduler']}"
        want = rows_hash(serial_part)
        got = rows_hash(parallel_part)
        if got != want:
            print(
                f"[determinism]   blame/{cell}: parallel {got[:16]} "
                f"vs serial {want[:16]}: DIVERGED",
                flush=True,
            )
            failures.append(
                f"blame/{cell}: parallel shard {got[:16]} != serial {want[:16]}"
            )
    return failures


def check_trace(jobs: int, seed=None) -> list:
    """Flight-recorder gate: canonical trace hashes survive resharding.

    Records a fixed robustness trace sweep (two fault families, every
    scheduler, 1 simulated second) in-process, again across *jobs*
    worker processes, and a third time serially under the reference
    heap event queue (``REPRO_EVENT_QUEUE=heap``).  The merged trace —
    every telemetry event of every cell, framed in canonical unit
    order — must hash identically in all three executions: the event
    *stream*, not just the derived metrics, is byte-stable.
    """
    from repro.runner.executor import execute_plan
    from repro.simcore.time import sec
    from repro.telemetry.trace_plan import trace_plan

    print(f"[determinism] trace-sweep rerun with {jobs} job(s) ...", flush=True)
    plan = trace_plan(
        faults=("pcpu_fail", "vm_churn"),
        duration_ns=sec(1),
        seed=seed if seed is not None else 11,
    )
    serial = execute_plan(plan, jobs=1)
    parallel = execute_plan(plan, jobs=max(1, jobs))
    failures = []
    verdict = "ok" if parallel.merged_hash == serial.merged_hash else "DIVERGED"
    print(
        f"[determinism]   trace/merged: parallel {parallel.merged_hash[:16]} "
        f"vs serial {serial.merged_hash[:16]}: {verdict}",
        flush=True,
    )
    if parallel.merged_hash != serial.merged_hash:
        failures.append(
            f"trace/merged: parallel hash {parallel.merged_hash[:16]} "
            f"!= serial {serial.merged_hash[:16]}"
        )
        for serial_part, parallel_part in zip(serial.parts, parallel.parts):
            if serial_part["hash"] != parallel_part["hash"]:
                cell = f"{serial_part['fault']}/{serial_part['scheduler']}"
                failures.append(
                    f"trace/{cell}: parallel shard {parallel_part['hash'][:16]} "
                    f"!= serial {serial_part['hash'][:16]}"
                )
    print("[determinism] trace-sweep heap-queue rerun ...", flush=True)
    previous = os.environ.get("REPRO_EVENT_QUEUE")
    os.environ["REPRO_EVENT_QUEUE"] = "heap"
    try:
        heap = execute_plan(plan, jobs=1)
    finally:
        if previous is None:
            os.environ.pop("REPRO_EVENT_QUEUE", None)
        else:
            os.environ["REPRO_EVENT_QUEUE"] = previous
    verdict = "ok" if heap.merged_hash == serial.merged_hash else "DIVERGED"
    print(
        f"[determinism]   trace/merged: heap {heap.merged_hash[:16]} "
        f"vs calendar {serial.merged_hash[:16]}: {verdict}",
        flush=True,
    )
    if heap.merged_hash != serial.merged_hash:
        failures.append(
            f"trace/merged: heap-queue hash {heap.merged_hash[:16]} "
            f"!= calendar {serial.merged_hash[:16]}"
        )
    return failures


def check_cluster(jobs: int, seed=None) -> list:
    """Cluster gate: per-host shards merge byte-identically.

    Every ``cluster_*`` experiment re-runs the same deterministic
    multi-host simulation once per observed host, so the parallel
    runner may scatter the hosts of one cluster across workers.  The
    merged rows must hash identically to the serial ``registry.run``
    path regardless of that distribution.
    """
    cluster_ids = [i for i in registry.all_ids() if i.startswith("cluster_")]
    digests = {}
    for experiment_id in cluster_ids:
        print(f"[determinism] running {experiment_id} ...", flush=True)
        digests[experiment_id] = experiment_digest(experiment_id, seed=seed)
        print(
            f"[determinism]   {experiment_id}: "
            f"{digests[experiment_id]['sha256'][:16]} "
            f"({digests[experiment_id]['wall_s']}s)",
            flush=True,
        )
    return check_parallel(cluster_ids, digests, jobs, seed=seed)


def check_feedback(jobs: int, seed=None) -> list:
    """Control-plane gate: per-policy cells merge byte-identically.

    Every ``feedback_*``/``tenant_*`` experiment runs each policy cell
    as its own work unit, so the parallel runner may scatter the cells
    of one head-to-head across workers.  The merged rows must hash
    identically to the serial ``registry.run`` path regardless of that
    distribution — which also pins down that runs with a feedback
    controller or credit ledger attached are reproducible under the
    family's fixed seed.
    """
    feedback_ids = [
        i
        for i in registry.all_ids()
        if i.startswith("feedback_") or i.startswith("tenant_")
    ]
    digests = {}
    for experiment_id in feedback_ids:
        print(f"[determinism] running {experiment_id} ...", flush=True)
        digests[experiment_id] = experiment_digest(experiment_id, seed=seed)
        print(
            f"[determinism]   {experiment_id}: "
            f"{digests[experiment_id]['sha256'][:16]} "
            f"({digests[experiment_id]['wall_s']}s)",
            flush=True,
        )
    return check_parallel(feedback_ids, digests, jobs, seed=seed)


def check_cache(ids, serial_digests, jobs: int = 1, seed=None) -> list:
    """Warm-cache gate: a cached rerun is byte-identical and actually hits.

    The cold run populates a fresh temporary cache; the warm rerun must
    resolve every unit from it (zero misses, at least one hit) and merge
    rows hashing identically to the cold run's.  When this invocation
    also computed serial digests (``--record``/``--check``/``--parallel``),
    the cold hashes must match those too — proving the cached path feeds
    the exact serial bytes back.
    """
    import tempfile

    from repro.runner import ResultCache, run_experiments

    print(f"[determinism] cache gate: cold+warm run ({jobs} job(s)) ...", flush=True)
    with tempfile.TemporaryDirectory(prefix="repro-cache-gate-") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        cold = run_experiments(
            ids, jobs=jobs, cache=ResultCache(cache_dir), seed=seed
        )
        warm = run_experiments(
            ids, jobs=jobs, cache=ResultCache(cache_dir), seed=seed
        )
    failures = []
    total_units = warm.cache_hits + warm.cache_misses
    if warm.cache_hits <= 0 or warm.cache_misses != 0:
        failures.append(
            f"cache: warm rerun hit only {warm.cache_hits}/{total_units} "
            f"units ({warm.cache_misses} misses; expected all hits)"
        )
    print(
        f"[determinism]   warm rerun: {warm.cache_hits}/{total_units} hits, "
        f"{warm.cache_misses} misses "
        f"(cold {cold.wall_s:.1f}s -> warm {warm.wall_s:.1f}s)",
        flush=True,
    )
    for cold_report, warm_report in zip(cold.reports, warm.reports):
        experiment_id = cold_report.experiment_id
        want = rows_hash(cold_report.rows)
        got = rows_hash(warm_report.rows)
        serial = serial_digests.get(experiment_id, {}).get("sha256")
        diverged = got != want or (serial is not None and want != serial)
        verdict = "DIVERGED" if diverged else "ok"
        print(
            f"[determinism]   {experiment_id}: warm {got[:16]} "
            f"vs cold {want[:16]}: {verdict}",
            flush=True,
        )
        if got != want:
            failures.append(
                f"{experiment_id}: warm-cache hash {got[:16]} != cold {want[:16]}"
            )
        elif serial is not None and want != serial:
            failures.append(
                f"{experiment_id}: cached hash {want[:16]} != serial {serial[:16]}"
            )
    return failures


def check_queue(ids, serial_digests, seed=None) -> list:
    """Queue-implementation gate: calendar vs reference heap.

    The serial digests were produced under the session's default queue
    (the calendar queue unless ``REPRO_EVENT_QUEUE`` overrides it); this
    rerun forces the reference binary heap and every experiment's
    metrics hash must be unchanged.  The engine reads the override per
    construction, so setting the environment variable in-process covers
    every system the experiments build.
    """
    print("[determinism] heap-queue rerun ...", flush=True)
    previous = os.environ.get("REPRO_EVENT_QUEUE")
    os.environ["REPRO_EVENT_QUEUE"] = "heap"
    failures = []
    try:
        for experiment_id in ids:
            digest = experiment_digest(experiment_id, seed=seed)
            got = digest["sha256"]
            want = serial_digests[experiment_id]["sha256"]
            verdict = "ok" if got == want else "DIVERGED"
            print(
                f"[determinism]   {experiment_id}: heap {got[:16]} "
                f"vs calendar {want[:16]}: {verdict} ({digest['wall_s']}s)",
                flush=True,
            )
            if got != want:
                failures.append(
                    f"{experiment_id}: heap-queue hash {got[:16]} "
                    f"!= calendar {want[:16]}"
                )
    finally:
        if previous is None:
            os.environ.pop("REPRO_EVENT_QUEUE", None)
        else:
            os.environ["REPRO_EVENT_QUEUE"] = previous
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=False)
    mode.add_argument("--record", metavar="PATH", help="write baseline hashes to PATH")
    mode.add_argument("--check", metavar="PATH", help="compare against baseline at PATH")
    parser.add_argument(
        "--only",
        metavar="IDS",
        help="comma-separated experiment ids or globs like 'robustness_*' "
        "(default: all)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        metavar="JOBS",
        help="also run the parallel work-unit runner with JOBS processes "
        "and fail unless its merged output hashes equal the serial run's",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help="RNG-seed override for seed-taking experiments (robustness "
        "family); applied to both the serial and the parallel pass",
    )
    parser.add_argument(
        "--streams",
        type=int,
        metavar="JOBS",
        help="run the telemetry probe serially and with JOBS processes "
        "and fail unless the merged streaming-aggregate snapshots hash "
        "identically (does not rerun the experiment registry)",
    )
    parser.add_argument(
        "--blame",
        type=int,
        metavar="JOBS",
        help="run the span/blame sweep serially and with JOBS processes "
        "and fail unless the merged blame reports hash identically "
        "(does not rerun the experiment registry)",
    )
    parser.add_argument(
        "--trace",
        type=int,
        metavar="JOBS",
        help="record the flight-recorder trace sweep serially, with JOBS "
        "processes and under the reference heap queue, and fail unless "
        "the merged canonical trace hashes are identical (does not "
        "rerun the experiment registry)",
    )
    parser.add_argument(
        "--cluster",
        type=int,
        metavar="JOBS",
        help="run every cluster_* experiment serially and through the "
        "parallel runner with JOBS processes and fail unless the merged "
        "per-host shards hash identically (does not rerun the rest of "
        "the registry)",
    )
    parser.add_argument(
        "--feedback",
        type=int,
        metavar="JOBS",
        help="run every feedback_*/tenant_* experiment serially and "
        "through the parallel runner with JOBS processes and fail unless "
        "the merged per-policy cells hash identically (does not rerun "
        "the rest of the registry)",
    )
    parser.add_argument(
        "--queue",
        action="store_true",
        help="rerun every selected experiment under the reference heap "
        "event queue (REPRO_EVENT_QUEUE=heap) and fail unless its "
        "metrics hash equals the calendar-queue run's",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="run the selected experiments cold then warm against a "
        "fresh temporary cache and fail unless the warm rerun hits "
        "every unit and hashes identically to the cold run",
    )
    args = parser.parse_args(argv)
    if not (
        args.record
        or args.check
        or args.parallel
        or args.streams
        or args.blame
        or args.trace
        or args.cluster
        or args.feedback
        or args.queue
        or args.cache
    ):
        parser.error(
            "one of --record, --check, --parallel, --streams, --blame, "
            "--trace, --cluster, --feedback, --queue or --cache is required"
        )

    if (
        args.parallel
        or args.streams
        or args.blame
        or args.trace
        or args.cluster
        or args.feedback
    ):
        # The cross-process gates must actually cross processes, even on
        # hosts where the executor would collapse the pool to one CPU.
        os.environ["REPRO_RUNNER_FORCE_POOL"] = "1"

    run_registry = bool(args.record or args.check or args.parallel or args.queue)
    if args.only:
        ids = registry.expand_ids(
            [i.strip() for i in args.only.split(",") if i.strip()]
        )
    else:
        ids = registry.all_ids()
    digests = {}
    if run_registry:
        for experiment_id in ids:
            print(f"[determinism] running {experiment_id} ...", flush=True)
            digests[experiment_id] = experiment_digest(experiment_id, seed=args.seed)
            print(
                f"[determinism]   {experiment_id}: "
                f"{digests[experiment_id]['sha256'][:16]} "
                f"({digests[experiment_id]['wall_s']}s)",
                flush=True,
            )

    failures = []
    if args.queue:
        failures.extend(check_queue(ids, digests, seed=args.seed))
    if args.parallel:
        failures.extend(check_parallel(ids, digests, args.parallel, seed=args.seed))
    if args.cache:
        failures.extend(
            check_cache(ids, digests, jobs=args.parallel or 1, seed=args.seed)
        )
    if args.streams:
        failures.extend(check_streams(args.streams))
    if args.blame:
        failures.extend(check_blame(args.blame, seed=args.seed))
    if args.trace:
        failures.extend(check_trace(args.trace, seed=args.seed))
    if args.cluster:
        failures.extend(check_cluster(args.cluster, seed=args.seed))
    if args.feedback:
        failures.extend(check_feedback(args.feedback, seed=args.seed))

    if args.record:
        with open(args.record, "w") as fh:
            json.dump(digests, fh, indent=2, sort_keys=True)
        print(f"[determinism] baseline written to {args.record}")
    elif args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        for experiment_id in ids:
            if experiment_id not in baseline:
                failures.append(f"{experiment_id}: not in baseline")
                continue
            want = baseline[experiment_id]["sha256"]
            got = digests[experiment_id]["sha256"]
            if want != got:
                failures.append(
                    f"{experiment_id}: hash {got[:16]} != baseline {want[:16]}"
                )

    if failures:
        print("[determinism] FAIL")
        for line in failures:
            print(f"  {line}")
        return 1
    checks = []
    if args.check:
        checks.append("baseline")
    if args.queue:
        checks.append("queue-equivalence")
    if args.parallel:
        checks.append("serial-vs-parallel")
    if args.cache:
        checks.append("warm-cache")
    if args.streams:
        checks.append("streamed-aggregates")
    if args.blame:
        checks.append("blame-reports")
    if args.trace:
        checks.append("trace-hashes")
    if args.cluster:
        checks.append("cluster-shards")
    if args.feedback:
        checks.append("feedback-cells")
    suffix = f" ({' + '.join(checks)})" if checks else ""
    standalone = []
    if args.streams:
        standalone.append("telemetry streams")
    if args.blame:
        standalone.append("blame sweep")
    if args.trace:
        standalone.append("trace sweep")
    if args.cluster:
        standalone.append("cluster shards")
    if args.feedback:
        standalone.append("feedback cells")
    if run_registry or args.cache:
        subject = f"{len(ids)} experiments"
    else:
        subject = " + ".join(standalone)
    print(f"[determinism] OK — {subject} byte-identical{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
