"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` on this offline box falls back
to the legacy `setup.py develop` path, which needs this file; all real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
