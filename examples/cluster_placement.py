#!/usr/bin/env python3
"""Multi-host placement with migration-aware rebalancing (paper §6).

Plans RT-VM placement across a small cluster of RTVirt hosts, grows a
VM's bandwidth online (the cross-host analogue of INC_BW), and consults
the live-migration cost model before rebalancing — a time-sensitive VM
is only moved if the predicted stop-and-copy downtime fits its deadline
slack.  Finally it *verifies* one host's planned assignment by actually
simulating it.

Run:  python examples/cluster_placement.py
"""

from fractions import Fraction

from repro import RTVirtSystem, msec, sec, sched_setattr
from repro.placement import (
    ClusterPlanner,
    HostDescriptor,
    MigrationParams,
    VMDemand,
    estimate_migration,
    migration_safe_for,
    plan_rebalancing,
)
from repro.workloads import PeriodicDriver

GB = 1024**3


def main() -> None:
    hosts = [HostDescriptor(f"host{i}", pcpu_count=4) for i in range(3)]
    planner = ClusterPlanner(hosts, policy="first_fit")

    demands = [
        VMDemand("db", Fraction(3, 2)),
        VMDemand("web1", Fraction(1, 2)),
        VMDemand("web2", Fraction(1, 2)),
        VMDemand("video", Fraction(2)),
        VMDemand("batch", Fraction(1)),
        VMDemand("cache", Fraction(1, 4)),
    ]
    placement = planner.place_all(demands)
    print("initial placement (first-fit):")
    for vm, host in sorted(placement.items()):
        print(f"  {vm:8s} -> {host}")
    print(f"utilization: { {h: round(u, 2) for h, u in planner.utilization().items()} }")

    host, migrated = planner.grow("cache", Fraction(3, 2))
    print(f"\n'cache' grows to 1.5 CPUs -> {host.name}"
          f" ({'migrated' if migrated else 'in place'})")

    params = MigrationParams(
        memory_bytes=8 * GB,
        dirty_rate_bytes_per_s=200 * 1024 * 1024,
        link_bytes_per_s=GB,
    )
    estimate = estimate_migration(params)
    print(
        f"\nlive-migration model: {estimate.total_duration_ns / 1e9:.1f}s total, "
        f"{estimate.downtime_ns / 1e6:.1f}ms downtime over {estimate.rounds} rounds"
    )
    for name, (s_ms, p_ms) in {"video (17/20ms)": (17, 20), "batch (50/200ms)": (50, 200)}.items():
        safe = migration_safe_for(estimate, msec(s_ms), msec(p_ms))
        print(f"  migrating {name}: {'SAFE' if safe else 'UNSAFE — would miss deadlines'}")

    moved = plan_rebalancing(planner, params, target_imbalance=0.3)
    print(f"\nrebalancing proposal: migrate {moved or 'nothing'}")
    print(f"utilization now: { {h: round(u, 2) for h, u in planner.utilization().items()} }")

    # Verify one host's plan by simulation: every VM placed on host0
    # gets a matching periodic RTA; DP-WRAP must meet all deadlines.
    target = planner.host("host0")
    print(f"\nsimulating {target.name} ({float(target.load):.2f} CPUs planned):")
    system = RTVirtSystem(pcpu_count=target.pcpu_count)
    for vm_demand in target.placed:
        vm = system.create_vm(vm_demand.name, vcpu_count=4, max_vcpus=8)
        remaining = vm_demand.bandwidth
        i = 0
        while remaining > 0:
            share = min(remaining, Fraction(9, 10))
            task = sched_setattr(
                vm,
                f"{vm_demand.name}.t{i}",
                runtime_ns=round(msec(20) * share),
                period_ns=msec(20),
            )
            PeriodicDriver(system.engine, vm, task).start()
            remaining -= share
            i += 1
    system.run(sec(5))
    system.finalize()
    report = system.miss_report()
    print(
        f"  {report.total_met} deadlines met, {report.total_missed} missed "
        f"({float(system.total_rt_bandwidth):.2f} CPUs admitted)"
    )


if __name__ == "__main__":
    main()
