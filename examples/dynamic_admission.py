#!/usr/bin/env python3
"""The cross-layer admission lifecycle, step by step.

Walks the full RTA lifecycle the paper describes in §3.2 — register
(INC_BW), request more bandwidth (INC_BW), move between VCPUs
(INC_DEC_BW), shrink (DEC_BW), unregister — and shows the hypercall log,
per-VCPU parameters and the host's admitted bandwidth after every step.
Also demonstrates an admission rejection and online CPU hotplug.

Run:  python examples/dynamic_admission.py
"""

from repro import RTVirtSystem, msec, sec, sched_adjust, sched_setattr, sched_unregister
from repro.simcore.errors import AdmissionError
from repro.workloads import PeriodicDriver


def show(system, vm, step):
    print(f"\n== {step}")
    print(f"   host: {float(system.total_rt_bandwidth):.3f} / "
          f"{system.admission.capacity} CPUs admitted")
    for vcpu in vm.vcpus:
        tasks = ", ".join(t.name for t in vcpu.rt_tasks()) or "-"
        print(
            f"   {vcpu.name}: budget {vcpu.budget_ns / 1e6:.2f} ms / "
            f"period {vcpu.period_ns / 1e6:.2f} ms  [{tasks}]"
        )
    if vm.port.log:
        flag, granted = vm.port.log[-1]
        print(f"   last hypercall: {flag.value} -> {'granted' if granted else 'REJECTED'}")


def main() -> None:
    system = RTVirtSystem(pcpu_count=2)
    vm = system.create_vm("app-vm", vcpu_count=1, max_vcpus=3)

    video = sched_setattr(vm, "video", runtime_ns=msec(6), period_ns=msec(10))
    PeriodicDriver(system.engine, vm, video).start()
    show(system, vm, "register 'video' (6ms / 10ms)  — INC_BW")

    audio = sched_setattr(vm, "audio", runtime_ns=msec(2), period_ns=msec(10))
    PeriodicDriver(system.engine, vm, audio).start()
    show(system, vm, "register 'audio' (2ms / 10ms) — packs on the same VCPU")

    system.run(sec(1))
    sched_adjust(vm, audio, msec(5), msec(10))
    show(system, vm, "audio needs 5ms / 10ms — INC_DEC_BW moves it (hotplug)")

    system.run(sec(1))
    sched_adjust(vm, audio, msec(1), msec(10))
    show(system, vm, "audio shrinks to 1ms / 10ms — DEC_BW")

    # Admission control: a request beyond the host's capacity is refused
    # atomically, leaving everything untouched.
    greedy_vm = system.create_vm("greedy")
    try:
        sched_setattr(greedy_vm, "greedy", runtime_ns=msec(95), period_ns=msec(100))
        sched_setattr(greedy_vm, "greedy2", runtime_ns=msec(95), period_ns=msec(100))
    except AdmissionError as err:
        print(f"\n== admission rejection: {err}")
    show(system, vm, "after the rejected request (nothing changed)")

    system.run(sec(1))
    sched_unregister(vm, audio)
    show(system, vm, "unregister 'audio' — DEC_BW releases its bandwidth")

    system.finalize()
    report = system.miss_report()
    print(
        f"\nthroughout: {report.total_met} deadlines met, "
        f"{report.total_missed} missed"
    )


if __name__ == "__main__":
    main()
