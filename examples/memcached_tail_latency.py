#!/usr/bin/env python3
"""Tail latency for a virtualized memcached under CPU contention.

The Figure 5a scenario: one memcached VM (100 queries/s, 500 µs p99.9
SLO) shares two physical CPUs with 19 CPU-bound non-RTA VMs.  The same
workload runs under three schedulers:

- Xen's Credit scheduler (weights + BOOST),
- RT-Xen's gEDF deferrable server with its CSA-computed interface,
- RTVirt's cross-layer DP-WRAP with a (58 µs / 500 µs) reservation.

Run:  python examples/memcached_tail_latency.py [duration_seconds]
"""

import sys

from repro import sec
from repro.baselines import (
    CREDIT_GLOBAL_TIMESLICE_NS,
    CREDIT_RATELIMIT_NS,
    MEMCACHED_CREDIT_SHARE,
    MEMCACHED_RTVIRT_PARAMS,
    MEMCACHED_RTXEN_A,
    CreditSystem,
    RTXenSystem,
    credit_weight_for_share,
)
from repro.core.system import RTVirtSystem
from repro.experiments.table4_dedicated import CREDIT_WAKE_OVERHEAD_NS
from repro.simcore.rng import RandomStreams
from repro.workloads import MemcachedService, add_background_vms

SLO_USEC = 500.0


def run_credit(duration_ns, seed):
    streams = RandomStreams(seed)
    system = CreditSystem(
        pcpu_count=2,
        timeslice_ns=CREDIT_GLOBAL_TIMESLICE_NS,
        ratelimit_ns=CREDIT_RATELIMIT_NS,
        wake_overhead_ns=CREDIT_WAKE_OVERHEAD_NS,
    )
    vm = system.create_vm(
        "mc", weight=credit_weight_for_share(MEMCACHED_CREDIT_SHARE, peers=19)
    )
    svc = MemcachedService(system.engine, vm, streams.stream("mc")).start()
    add_background_vms(system, 19)
    system.run(duration_ns)
    system.finalize()
    return "Credit (26% weight)", svc.latency, MEMCACHED_CREDIT_SHARE


def run_rtxen(duration_ns, seed):
    streams = RandomStreams(seed)
    system = RTXenSystem(pcpu_count=2)
    iface = MEMCACHED_RTXEN_A
    vm = system.create_vm("mc", interfaces=[(iface.budget, iface.period)])
    svc = MemcachedService(system.engine, vm, streams.stream("mc"), register=False)
    system.register_rta(vm, svc.task)
    svc.start()
    add_background_vms(system, 19)
    system.run(duration_ns)
    system.finalize()
    return "RT-Xen A (66µs/283µs)", svc.latency, float(iface.bandwidth)


def run_rtvirt(duration_ns, seed):
    streams = RandomStreams(seed)
    system = RTVirtSystem(pcpu_count=2, slack_ns=0)
    vm = system.create_vm("mc", slack_ns=0)
    budget, period = MEMCACHED_RTVIRT_PARAMS
    svc = MemcachedService(
        system.engine, vm, streams.stream("mc"), period_ns=period, slice_ns=budget
    ).start()
    add_background_vms(system, 19)
    system.run(duration_ns)
    system.finalize()
    return "RTVirt (58µs/500µs)", svc.latency, budget / period


def main() -> None:
    duration_s = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    duration = sec(duration_s)
    print(f"memcached vs 19 CPU-bound VMs on 2 PCPUs, {duration_s}s simulated")
    print(f"SLO: p99.9 <= {SLO_USEC:.0f} µs  (NIC-to-NIC)\n")
    print(f"{'scheduler':24s} {'reserved':>9s} {'mean':>9s} {'p99':>9s} "
          f"{'p99.9':>9s}  verdict")
    for runner in (run_credit, run_rtxen, run_rtvirt):
        name, latency, reserved = runner(duration, seed=17)
        tail = latency.tail_usec()
        verdict = "MEETS SLO" if tail[99.9] <= SLO_USEC else "fails SLO"
        print(
            f"{name:24s} {reserved:8.1%} {latency.mean_usec():8.1f}µ "
            f"{tail[99.0]:8.1f}µ {tail[99.9]:8.1f}µ  {verdict}"
        )
    print(
        "\nRTVirt meets the SLO with half the CPU reservation of RT-Xen A "
        "(the paper's 50.2% saving); Credit keeps a low average but blows "
        "the tail when tick-sampled accounting suspends its BOOST."
    )


if __name__ == "__main__":
    main()
