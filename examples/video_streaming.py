#!/usr/bin/env python3
"""Dynamic video-streaming servers with online admission (Figure 4).

Four VMs, four VCPUs each, host VLC-like transcoding threads whose
frame rates (and therefore CPU reservations, Table 3) change as
streaming sessions come and go.  RTVirt admits every session online
through the sched_rtvirt() hypercall and re-partitions the processors,
so the allocation tracks the demand instead of peak-provisioning.

Run:  python examples/video_streaming.py [duration_seconds]
"""

import sys

from repro import sec
from repro.experiments.fig4_dynamic import run_fig4
from repro.simcore.time import SEC


def render_allocation(series, width=60):
    """ASCII sparkline of a VM's CPU allocation over time."""
    blocks = " ▁▂▃▄▅▆▇█"
    values = [v for _, v in series]
    if not values:
        return ""
    peak = max(max(values), 1e-9)
    step = max(1, len(values) // width)
    cells = []
    for i in range(0, len(values), step):
        chunk = values[i : i + step]
        level = sum(chunk) / len(chunk) / peak
        cells.append(blocks[min(len(blocks) - 1, int(level * (len(blocks) - 1)))])
    return "".join(cells)


def main() -> None:
    duration_s = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    print(f"dynamic streaming churn on 15 PCPUs, {duration_s}s simulated ...")
    result = run_fig4(duration_ns=sec(duration_s))

    print()
    print(result.summary())
    print("\nPer-VM CPU allocation over time (Figure 4a):")
    for vm, series in sorted(result.allocation_series.items()):
        print(f"  {vm:12s} |{render_allocation(series)}|")
    print("\nSessions (Figure 4b-e):")
    for row in result.rows()[:12]:
        print(
            f"  {row['session']:34s} {row['fps']:2d}fps "
            f"[{row['start_s']:6.1f}s..{row['end_s']:6.1f}s] "
            f"misses {row['missed']}/{row['released']}"
        )
    if len(result.rows()) > 12:
        print(f"  ... and {len(result.rows()) - 12} more")


if __name__ == "__main__":
    main()
