#!/usr/bin/env python3
"""Scalability: 100 concurrent RTAs on one host (Tables 5-6).

Runs the paper's two §4.5 configurations — 10 VMs x 10 RTAs (guest pEDF
packs them onto 20 VCPUs) and 100 single-RTA VMs (100 VCPUs) — and
reports the host scheduler's overhead: time in schedule(), time in
context switches/migrations, and the total as a percentage of CPU time.
Also reproduces RT-Xen's analytical capacity limits on the same host.

Run:  python examples/scalability.py [duration_seconds]
"""

import sys

from repro import sec
from repro.experiments.table6_overhead import run_table6


def main() -> None:
    duration_s = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print(f"100 RTAs on 15 PCPUs, {duration_s}s simulated per scenario ...\n")
    result = run_table6(duration_ns=sec(duration_s))
    print(result.summary())
    print(
        "\nRTVirt schedules all 100 RTAs in both shapes with <1% overhead; "
        "CSA's pessimism stops RT-Xen from even admitting the full set."
    )


if __name__ == "__main__":
    main()
