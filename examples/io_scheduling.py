#!/usr/bin/env python3
"""Cross-layer I/O scheduling (the paper's §7 future work, realized).

A latency-critical VM issues small reads with 10 ms deadlines while a
bulk-writer VM hammers the shared device in bursts.  Three device
schedulers compete:

- FIFO (no QoS) — the probe waits behind whole bursts;
- per-VM fair share (SFQ-style) — proportional but deadline-blind;
- cross-layer EDF — the guest publishes request deadlines and holds an
  I/O bandwidth reservation, mirroring RTVirt's CPU design.

Run:  python examples/io_scheduling.py
"""

from repro.io import (
    BlockDevice,
    CrossLayerEDFIOScheduler,
    FairShareIOScheduler,
    FifoIOScheduler,
)
from repro.simcore.engine import Engine
from repro.simcore.time import msec

KB, MB = 1024, 1024 * 1024
DEADLINE_MS = 10


def run(scheduler, label):
    engine = Engine()
    device = BlockDevice(engine, bytes_per_second=200 * MB, scheduler=scheduler)
    latencies = []

    def bulk():
        if engine.now < msec(1900):
            for _ in range(4):
                device.submit("bulk", 1 * MB)
            engine.after(msec(24), bulk)

    def probe():
        if engine.now < msec(1900):
            device.submit(
                "latency",
                64 * KB,
                deadline=engine.now + msec(DEADLINE_MS),
                on_complete=lambda r: latencies.append(r.latency_ns / 1e6),
            )
            engine.after(msec(20), probe)

    engine.at(0, bulk)
    engine.at(0, probe)
    engine.run_until(msec(2000))
    misses = device.miss_count("latency")
    print(
        f"{label:18s} max latency {max(latencies):6.2f} ms, "
        f"mean {sum(latencies) / len(latencies):5.2f} ms, "
        f"deadline misses {misses}/{len(latencies)}"
    )


def main() -> None:
    print(
        f"64 KiB reads with {DEADLINE_MS} ms deadlines vs bursty 4 MiB "
        "writes on a shared 200 MB/s device:\n"
    )
    run(FifoIOScheduler(), "FIFO")
    fair = FairShareIOScheduler()
    fair.set_weight("latency", 100)
    fair.set_weight("bulk", 100)
    run(fair, "fair share")
    xl = CrossLayerEDFIOScheduler(period_ns=msec(100))
    xl.reserve("latency", 4 * MB)
    run(xl, "cross-layer EDF")
    print(
        "\nOnly the cross-layer scheduler — reservations plus guest-published "
        "deadlines, the same recipe RTVirt applies to CPUs — keeps every "
        "deadline despite the bulk bursts."
    )


if __name__ == "__main__":
    main()
