#!/usr/bin/env python3
"""Quickstart: schedule two real-time applications in a VM under RTVirt.

Recreates the paper's motivating scenario (§2) in a dozen lines: three
VMs share one physical CPU at 100% total utilization, and the two RTAs
inside VM1 still meet every deadline because the guest pEDF scheduler
and the host DP-WRAP scheduler coordinate through the cross-layer
interface.

Run:  python examples/quickstart.py
"""

from repro import RTVirtSystem, ZERO_COSTS, msec, sec, sched_setattr
from repro.workloads import PeriodicDriver


def main() -> None:
    # One physical CPU; zero overhead costs so the math is exact.
    system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)

    # VM1 hosts two RTAs: (1 ms every 15 ms) and (4 ms every 15 ms).
    vm1 = system.create_vm("vm1")
    rta1 = sched_setattr(vm1, "rta1", runtime_ns=msec(1), period_ns=msec(15))
    rta2 = sched_setattr(vm1, "rta2", runtime_ns=msec(4), period_ns=msec(15))
    PeriodicDriver(system.engine, vm1, rta1).start()
    PeriodicDriver(system.engine, vm1, rta2, phase_ns=msec(5)).start()

    # VM2 and VM3 fill the rest of the CPU: total utilization is 100%.
    for name, (s, p) in {"vm2": (5, 10), "vm3": (5, 30)}.items():
        vm = system.create_vm(name)
        task = sched_setattr(vm, f"{name}.rta", runtime_ns=msec(s), period_ns=msec(p))
        PeriodicDriver(system.engine, vm, task).start()

    print(f"admitted RT bandwidth: {float(system.total_rt_bandwidth):.3f} CPUs")
    system.run(sec(10))
    system.finalize()

    report = system.miss_report()
    print(f"jobs released: {report.total_released}")
    print(f"deadlines met: {report.total_met}")
    print(f"deadlines missed: {report.total_missed}")
    for name, stats in sorted(report.per_task.items()):
        print(f"  {name:10s} met {stats.met:4d} / missed {stats.missed}")
    assert report.total_missed == 0, "DP-WRAP is optimal: no misses at 100% load"
    print("OK — every deadline met at 100% CPU utilization.")


if __name__ == "__main__":
    main()
