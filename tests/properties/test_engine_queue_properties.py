"""Property tests for event-queue accounting and the incremental
host-EDF eligible structure.

Two invariants pinned here guard the hot-path rework:

- the engine's pending count never underflows, no matter how cancels,
  fires, and stale-handle cancels interleave; and
- the lazily-maintained deadline heap in :class:`EDFHostScheduler`
  always selects exactly the servers a from-scratch filter+sort of the
  full server table would select.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rtxen import RTXenSystem
from repro.guest.task import Task
from repro.simcore.engine import Engine
from repro.simcore.events import EventQueue
from repro.simcore.time import MSEC, msec
from repro.workloads.periodic import PeriodicDriver

# An op is (kind, index): push at a time, cancel the index-th created
# event (possibly already fired — a stale handle), or fire the next one.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 1000)),
        st.tuples(st.just("cancel"), st.integers(0, 40)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=80,
)


@given(_ops)
def test_queue_live_count_never_negative(ops):
    """len(queue) stays exact under any cancel/fire interleaving."""
    q = EventQueue()
    created = []
    expected_live = 0
    for kind, arg in ops:
        if kind == "push":
            created.append(q.push(arg, lambda: None))
            expected_live += 1
        elif kind == "cancel" and arg < len(created):
            event = created[arg]
            if event.active:
                expected_live -= 1
            q.cancel(event)
        elif kind == "pop" and expected_live:
            q.pop()
            expected_live -= 1
        assert len(q) == expected_live >= 0


@given(_ops)
def test_engine_pending_never_negative(ops):
    """engine.pending mirrors the queue under stale-handle cancels."""
    engine = Engine()
    created = []
    for kind, arg in ops:
        if kind == "push":
            created.append(engine.at(arg + engine.now, lambda: None))
        elif kind == "cancel" and arg < len(created):
            engine.cancel(created[arg])
            engine.cancel(created[arg])  # double-cancel must be free
        elif kind == "pop" and engine.pending:
            engine.run_until(engine.now + 1001)
        assert engine.pending >= 0


# Workload shapes for the eligible-structure check: (slice_ms, period_ms).
_server_specs = st.lists(
    st.tuples(st.integers(1, 6), st.integers(7, 30)),
    min_size=2,
    max_size=8,
)


@given(_server_specs, st.integers(1, 4), st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_incremental_eligible_matches_from_scratch(specs, pcpus, probe_ms):
    """The deadline heap selects what a full re-sort would select.

    Runs a gEDF-DS system, stops at an arbitrary instant, and checks
    the incremental structures against brute force over the raw server
    table: the ready index holds exactly the budget-holding servers,
    and ``_choose()`` returns the first m of the eligible set sorted by
    (deadline, uid).
    """
    system = RTXenSystem(pcpu_count=pcpus)
    for i, (s, p) in enumerate(specs):
        vm = system.create_vm(f"vm{i}", interfaces=[(s * MSEC, p * MSEC)])
        task = Task(f"t{i}", s * MSEC, p * MSEC)
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task, phase_ns=(i * p * MSEC) // 8).start()
    system.create_background_vm("bg", processes=1)
    scheduler = system.scheduler

    for _ in range(3):
        system.run(msec(probe_ms))
        # Brute force from the full server table.
        brute = sorted(
            (
                server
                for server in scheduler._servers.values()
                if server.remaining > 0
                and server.vcpu.vm.vcpu_has_work(server.vcpu)
            ),
            key=lambda server: (server.deadline, server.vcpu.uid),
        )
        assert sorted(scheduler._ready) == sorted(
            uid
            for uid, server in scheduler._servers.items()
            if server.remaining > 0
        )
        assert scheduler._eligible() == brute
        assert scheduler._choose() == brute[: pcpus]
        # _choose must leave the structure able to answer again.
        assert scheduler._choose() == brute[: pcpus]
