"""Property tests for event-queue accounting and the incremental
host-EDF eligible structure.

Two invariants pinned here guard the hot-path rework:

- the engine's pending count never underflows, no matter how cancels,
  fires, and stale-handle cancels interleave; and
- the lazily-maintained deadline heap in :class:`EDFHostScheduler`
  always selects exactly the servers a from-scratch filter+sort of the
  full server table would select.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rtxen import RTXenSystem
from repro.guest.task import Task
from repro.simcore.engine import Engine
from repro.simcore.events import EventQueue
from repro.simcore.time import MSEC, msec
from repro.workloads.periodic import PeriodicDriver

# An op is (kind, index): push at a time, cancel the index-th created
# event (possibly already fired — a stale handle), or fire the next one.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 1000)),
        st.tuples(st.just("cancel"), st.integers(0, 40)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=80,
)


@given(_ops)
def test_queue_live_count_never_negative(ops):
    """len(queue) stays exact under any cancel/fire interleaving."""
    q = EventQueue()
    created = []
    expected_live = 0
    for kind, arg in ops:
        if kind == "push":
            created.append(q.push(arg, lambda: None))
            expected_live += 1
        elif kind == "cancel" and arg < len(created):
            event = created[arg]
            if event.active:
                expected_live -= 1
            q.cancel(event)
        elif kind == "pop" and expected_live:
            q.pop()
            expected_live -= 1
        assert len(q) == expected_live >= 0


@given(_ops)
def test_engine_pending_never_negative(ops):
    """engine.pending mirrors the queue under stale-handle cancels."""
    engine = Engine()
    created = []
    for kind, arg in ops:
        if kind == "push":
            created.append(engine.at(arg + engine.now, lambda: None))
        elif kind == "cancel" and arg < len(created):
            engine.cancel(created[arg])
            engine.cancel(created[arg])  # double-cancel must be free
        elif kind == "pop" and engine.pending:
            engine.run_until(engine.now + 1001)
        assert engine.pending >= 0


@given(_ops)
def test_heap_size_is_live_plus_dead(ops):
    """The compaction invariant holds under any op interleaving.

    ``len(_heap) == _live + _dead`` is what makes the mass-cancellation
    compaction sound: cancel moves an entry live->dead, the lazy pop
    path discards dead entries one by one, and compaction drops them all
    at once.  Pop order must be unaffected throughout.
    """
    q = EventQueue()
    created = []
    for kind, arg in ops:
        if kind == "push":
            created.append(q.push(arg, lambda: None))
        elif kind == "cancel" and arg < len(created):
            q.cancel(created[arg])
        elif kind == "pop" and len(q):
            q.pop()
        assert len(q._heap) == q._live + q._dead
        assert q._dead >= 0 and q._live >= 0


@given(
    st.integers(EventQueue._COMPACT_MIN_DEAD + 1, 300),
    st.integers(0, 50),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_mass_cancellation_compacts_and_preserves_order(cancelled, kept, rng_seed):
    """Cancelling a big batch compacts the heap; survivors pop in order.

    Mirrors a PCPU failure revoking hundreds of in-flight timers at
    once: once dead entries both exceed the compaction floor and
    outnumber the live ones, the heap must shrink to exactly the live
    entries, and the surviving pop order must equal the sorted
    (time, priority, seq) order as if nothing had been cancelled.
    """
    import random

    rng = random.Random(rng_seed)
    q = EventQueue()
    doomed = [q.push(rng.randrange(10_000), lambda: None) for _ in range(cancelled)]
    survivors = [q.push(rng.randrange(10_000), lambda: None) for _ in range(kept)]
    rng.shuffle(doomed)
    for event in doomed:
        q.cancel(event)
        # Compaction bound: dead entries never exceed both the floor
        # and the live count once the cancel has been processed.
        assert q._dead <= q._COMPACT_MIN_DEAD or q._dead <= q._live
        assert len(q._heap) == q._live + q._dead
    # More cancels than floor and than survivors: compaction must have
    # fired at least once, so the heap cannot still hold every entry.
    if cancelled > kept:
        assert len(q._heap) < cancelled + kept
    expected = sorted(survivors, key=lambda e: (e.time, e.priority, e.seq))
    popped = [q.pop() for _ in range(len(q))]
    assert popped == expected
    assert len(q) == 0 and len(q._heap) == q._dead


def test_clear_resets_dead_count():
    q = EventQueue()
    events = [q.push(i, lambda: None) for i in range(100)]
    for event in events[:80]:
        q.cancel(event)
    q.clear()
    assert len(q) == 0 and q._dead == 0 and q._heap == []


# Workload shapes for the eligible-structure check: (slice_ms, period_ms).
_server_specs = st.lists(
    st.tuples(st.integers(1, 6), st.integers(7, 30)),
    min_size=2,
    max_size=8,
)


@given(_server_specs, st.integers(1, 4), st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_incremental_eligible_matches_from_scratch(specs, pcpus, probe_ms):
    """The deadline heap selects what a full re-sort would select.

    Runs a gEDF-DS system, stops at an arbitrary instant, and checks
    the incremental structures against brute force over the raw server
    table: the ready index holds exactly the budget-holding servers,
    and ``_choose()`` returns the first m of the eligible set sorted by
    (deadline, uid).
    """
    system = RTXenSystem(pcpu_count=pcpus)
    for i, (s, p) in enumerate(specs):
        vm = system.create_vm(f"vm{i}", interfaces=[(s * MSEC, p * MSEC)])
        task = Task(f"t{i}", s * MSEC, p * MSEC)
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task, phase_ns=(i * p * MSEC) // 8).start()
    system.create_background_vm("bg", processes=1)
    scheduler = system.scheduler

    for _ in range(3):
        system.run(msec(probe_ms))
        # Brute force from the full server table.
        brute = sorted(
            (
                server
                for server in scheduler._servers.values()
                if server.remaining > 0
                and server.vcpu.vm.vcpu_has_work(server.vcpu)
            ),
            key=lambda server: (server.deadline, server.vcpu.uid),
        )
        assert sorted(scheduler._ready) == sorted(
            uid
            for uid, server in scheduler._servers.items()
            if server.remaining > 0
        )
        assert scheduler._eligible() == brute
        assert scheduler._choose() == brute[: pcpus]
        # _choose must leave the structure able to answer again.
        assert scheduler._choose() == brute[: pcpus]
