"""Property tests for event-queue accounting and the incremental
host-EDF eligible structure.

Three families of invariants pinned here guard the hot-path rework:

- accounting: the pending count of either queue implementation never
  underflows, and ``live + dead`` always equals the number of stored
  entries, no matter how cancels, fires, stale-handle cancels, clears
  and compactions interleave;
- equivalence: the calendar queue and the reference binary heap pop the
  *same* events in the *same* order under arbitrary operation
  interleavings — including tie-break stability at equal timestamps and
  mass-cancellation compaction; and
- the incrementally-maintained eligible structure in
  :class:`EDFHostScheduler` always selects exactly the servers a
  from-scratch filter+sort of the full server table would select.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.rtxen import RTXenSystem
from repro.guest.task import Task
from repro.simcore.engine import Engine
from repro.simcore.events import CalendarEventQueue, EventQueue, HeapEventQueue
from repro.simcore.time import MSEC, msec
from repro.workloads.periodic import PeriodicDriver

BOTH_IMPLS = pytest.mark.parametrize(
    "impl", [HeapEventQueue, CalendarEventQueue], ids=["heap", "calendar"]
)


def _stored_entries(q) -> int:
    """Entries physically held by either implementation (live + dead)."""
    if isinstance(q, HeapEventQueue):
        return len(q._heap)
    return sum(len(bucket) for bucket in q._buckets.values())


# An op is (kind, arg): push at a time, cancel the index-th created
# event (possibly already fired — a stale handle), or fire the next one.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 1000)),
        st.tuples(st.just("cancel"), st.integers(0, 40)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=80,
)

# Richer op stream for the differential suite: constrained times force
# same-instant collisions, explicit priorities force tie-breaks, and
# pop_at/clear exercise the batch path and the reset path.
_diff_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"), st.integers(0, 12), st.sampled_from([0, 10, 20, 50])
        ),
        st.tuples(st.just("cancel"), st.integers(0, 60), st.just(0)),
        st.tuples(st.just("pop"), st.just(0), st.just(0)),
        st.tuples(st.just("pop_at"), st.integers(0, 12), st.just(0)),
        st.tuples(st.just("peek"), st.just(0), st.just(0)),
        st.tuples(st.just("clear"), st.just(0), st.just(0)),
    ),
    max_size=120,
)


@BOTH_IMPLS
@given(_ops)
def test_queue_live_count_never_negative(impl, ops):
    """len(queue) stays exact under any cancel/fire interleaving."""
    q = impl()
    created = []
    expected_live = 0
    for kind, arg in ops:
        if kind == "push":
            created.append(q.push(arg, lambda: None))
            expected_live += 1
        elif kind == "cancel" and arg < len(created):
            event = created[arg]
            if event.active:
                expected_live -= 1
            q.cancel(event)
        elif kind == "pop" and expected_live:
            q.pop()
            expected_live -= 1
        assert len(q) == expected_live >= 0


@given(_ops)
def test_engine_pending_never_negative(ops):
    """engine.pending mirrors the queue under stale-handle cancels."""
    engine = Engine()
    created = []
    for kind, arg in ops:
        if kind == "push":
            created.append(engine.at(arg + engine.now, lambda: None))
        elif kind == "cancel" and arg < len(created):
            engine.cancel(created[arg])
            engine.cancel(created[arg])  # double-cancel must be free
        elif kind == "pop" and engine.pending:
            engine.run_until(engine.now + 1001)
        assert engine.pending >= 0


@BOTH_IMPLS
@given(_ops)
def test_stored_size_is_live_plus_dead(impl, ops):
    """The compaction invariant holds under any op interleaving.

    ``stored == _live + _dead`` is what makes the mass-cancellation
    compaction sound: cancel moves an entry live->dead, the lazy pop
    path discards dead entries one by one, and compaction drops them all
    at once.  Pop order must be unaffected throughout.  For the heap the
    stored count is the heap length; for the calendar queue it is the
    sum of all bucket sizes (the stale entries on the distinct-times
    heap carry no events and are excluded by construction).
    """
    q = impl()
    created = []
    for kind, arg in ops:
        if kind == "push":
            created.append(q.push(arg, lambda: None))
        elif kind == "cancel" and arg < len(created):
            q.cancel(created[arg])
        elif kind == "pop" and len(q):
            q.pop()
        assert _stored_entries(q) == q._live + q._dead
        assert q._dead >= 0 and q._live >= 0


def test_calendar_never_stores_empty_buckets():
    """Every drain path deletes its bucket (the structural invariant
    that keeps ``_buckets`` bounded by distinct pending instants)."""
    q = CalendarEventQueue()
    a = q.push(5, lambda: None)
    q.push(5, lambda: None, priority=10)
    q.push(7, lambda: None)
    q.cancel(a)
    while len(q):
        q.pop()
        assert all(q._buckets.values())
    assert q._buckets == {}
    # pop_at on a bucket whose only entry is cancelled must drop it too.
    b = q.push(3, lambda: None)
    q.cancel(b)
    assert q.pop_at(3) is None
    assert 3 not in q._buckets


@BOTH_IMPLS
@given(
    st.integers(EventQueue._COMPACT_MIN_DEAD + 1, 300),
    st.integers(0, 50),
    st.integers(0, 2**32 - 1),
)
@settings(max_examples=25, deadline=None)
def test_mass_cancellation_compacts_and_preserves_order(
    impl, cancelled, kept, rng_seed
):
    """Cancelling a big batch compacts the store; survivors pop in order.

    Mirrors a PCPU failure revoking hundreds of in-flight timers at
    once: once dead entries both exceed the compaction floor and
    outnumber the live ones, the store must shrink to exactly the live
    entries, and the surviving pop order must equal the sorted
    (time, priority, seq) order as if nothing had been cancelled.
    """
    import random

    rng = random.Random(rng_seed)
    q = impl()
    doomed = [q.push(rng.randrange(10_000), lambda: None) for _ in range(cancelled)]
    survivors = [q.push(rng.randrange(10_000), lambda: None) for _ in range(kept)]
    rng.shuffle(doomed)
    for event in doomed:
        q.cancel(event)
        # Compaction bound: dead entries never exceed both the floor
        # and the live count once the cancel has been processed.
        assert q._dead <= q._COMPACT_MIN_DEAD or q._dead <= q._live
        assert _stored_entries(q) == q._live + q._dead
    # More cancels than floor and than survivors: compaction must have
    # fired at least once, so the store cannot still hold every entry.
    if cancelled > kept:
        assert _stored_entries(q) < cancelled + kept
    expected = sorted(survivors, key=lambda e: (e.time, e.priority, e.seq))
    popped = [q.pop() for _ in range(len(q))]
    assert popped == expected
    assert len(q) == 0 and _stored_entries(q) == q._dead


@BOTH_IMPLS
def test_clear_resets_dead_count(impl):
    q = impl()
    events = [q.push(i, lambda: None) for i in range(100)]
    for event in events[:80]:
        q.cancel(event)
    q.clear()
    assert len(q) == 0 and q._dead == 0 and _stored_entries(q) == 0
    assert all(not e.active for e in events)


# -- calendar/heap differential equivalence ---------------------------------


@given(_diff_ops)
@settings(max_examples=200, deadline=None)
def test_calendar_heap_pop_equivalence(ops):
    """Both implementations observe identical results op for op.

    The same operation stream is applied to a calendar queue and to the
    reference heap; every observable — pop/pop_at results (by the
    (time, priority, seq) identity of the event), peek_time answers,
    live counts, and the live+dead accounting — must agree after every
    single step.  Sequence numbers are assigned in push order by both
    implementations, so identical streams produce identical keys.
    """
    cal, heap = CalendarEventQueue(), HeapEventQueue()
    created = []  # (calendar event, heap event) pairs, in push order

    def key(event):
        return (event.time, event.priority, event.seq)

    for kind, a, b in ops:
        if kind == "push":
            pair = (
                cal.push(a, lambda: None, priority=b),
                heap.push(a, lambda: None, priority=b),
            )
            assert key(pair[0]) == key(pair[1])
            created.append(pair)
        elif kind == "cancel" and a < len(created):
            c, h = created[a]
            cal.cancel(c)
            heap.cancel(h)
        elif kind == "pop" and len(heap):
            assert key(cal.pop()) == key(heap.pop())
        elif kind == "pop_at":
            c, h = cal.pop_at(a), heap.pop_at(a)
            assert (c is None) == (h is None)
            if c is not None:
                assert key(c) == key(h)
        elif kind == "peek":
            assert cal.peek_time() == heap.peek_time()
        elif kind == "clear":
            cal.clear()
            heap.clear()
        assert len(cal) == len(heap)
        assert cal._live + cal._dead >= cal._live >= 0
    # Drain whatever is left: the full residual order must match.
    assert [key(cal.pop()) for _ in range(len(cal))] == [
        key(heap.pop()) for _ in range(len(heap))
    ]


@given(
    st.lists(st.sampled_from([0, 10, 20, 30, 50, 90]), min_size=1, max_size=40),
    st.integers(0, 5),
)
@settings(max_examples=100, deadline=None)
def test_tie_break_stability_at_equal_timestamps(priorities, time):
    """Same-instant events pop by (priority, insertion) in both impls.

    The tie-break contract the engine's determinism rests on: at one
    timestamp, lower priority wins, and equal priorities preserve push
    order exactly.
    """
    for impl in (HeapEventQueue, CalendarEventQueue):
        q = impl()
        pushed = [q.push(time, lambda: None, priority=p) for p in priorities]
        expected = sorted(pushed, key=lambda e: (e.priority, e.seq))
        popped = [q.pop_at(time) for _ in range(len(pushed))]
        assert popped == expected
        assert q.pop_at(time) is None


# Workload shapes for the eligible-structure check: (slice_ms, period_ms).
_server_specs = st.lists(
    st.tuples(st.integers(1, 6), st.integers(7, 30)),
    min_size=2,
    max_size=8,
)


@given(_server_specs, st.integers(1, 4), st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_incremental_eligible_matches_from_scratch(specs, pcpus, probe_ms):
    """The ready index selects what a full re-sort would select.

    Runs a gEDF-DS system, stops at an arbitrary instant, and checks
    the incremental structures against brute force over the raw server
    table: the ready index holds exactly the budget-holding servers,
    and ``_choose()`` returns the first m of the eligible set sorted by
    (deadline, uid).
    """
    system = RTXenSystem(pcpu_count=pcpus)
    for i, (s, p) in enumerate(specs):
        vm = system.create_vm(f"vm{i}", interfaces=[(s * MSEC, p * MSEC)])
        task = Task(f"t{i}", s * MSEC, p * MSEC)
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task, phase_ns=(i * p * MSEC) // 8).start()
    system.create_background_vm("bg", processes=1)
    scheduler = system.scheduler

    for _ in range(3):
        system.run(msec(probe_ms))
        # Brute force from the full server table.
        brute = sorted(
            (
                server
                for server in scheduler._servers.values()
                if server.remaining > 0
                and server.vcpu.vm.vcpu_has_work(server.vcpu)
            ),
            key=lambda server: (server.deadline, server.vcpu.uid),
        )
        assert sorted(scheduler._ready) == sorted(
            uid
            for uid, server in scheduler._servers.items()
            if server.remaining > 0
        )
        assert scheduler._eligible() == brute
        assert scheduler._choose() == brute[:pcpus]
        # _choose must leave the structure able to answer again.
        assert scheduler._choose() == brute[:pcpus]
