"""Property-based tests on the simulation core."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore.engine import Engine
from repro.simcore.events import EventQueue


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 90)), max_size=60))
def test_event_queue_pops_in_order(items):
    """Events always pop in (time, priority, insertion) order."""
    q = EventQueue()
    for time, priority in items:
        q.push(time, lambda: None, priority=priority)
    popped = []
    while q:
        e = q.pop()
        popped.append((e.time, e.priority, e.seq))
    assert popped == sorted(popped)


@given(
    st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 90)), max_size=60),
    st.sets(st.integers(0, 59)),
)
def test_cancelled_events_never_pop(items, cancel_idx):
    q = EventQueue()
    events = [q.push(t, lambda: None, priority=p) for t, p in items]
    for i in cancel_idx:
        if i < len(events):
            q.cancel(events[i])
    surviving = {id(e) for i, e in enumerate(events) if not e.cancelled}
    popped = set()
    while q:
        popped.add(id(q.pop()))
    assert popped == surviving


@given(st.lists(st.integers(0, 100_000), min_size=1, max_size=50))
def test_engine_executes_every_event_once(times):
    engine = Engine()
    hits = []
    for i, t in enumerate(times):
        engine.at(t, hits.append, i)
    engine.run_until(max(times))
    assert sorted(hits) == list(range(len(times)))


@given(st.lists(st.integers(0, 50_000), min_size=1, max_size=40))
@settings(max_examples=50)
def test_engine_clock_never_goes_backwards(times):
    engine = Engine()
    observed = []
    for t in times:
        engine.at(t, lambda: observed.append(engine.now))
    engine.run_until(max(times))
    assert observed == sorted(observed)
