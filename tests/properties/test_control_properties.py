"""Property-based tests for the tenant credit ledger.

The ledger underpins two determinism contracts: credits are a pure
function of the event stream (any two ledgers fed the same stream agree
exactly), and per-shard snapshots merged in canonical order reproduce
the serial state byte-for-byte (the parallel runner relies on this).
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.control.tenants import CreditLedger, TenantSLO
from repro.telemetry import events as T

SLOS = [
    TenantSLO("gold", 500.0, weight=4),
    TenantSLO("silver", 500.0, weight=2),
    TenantSLO("bronze", 500.0),
]
VM_TENANT = {"g0": "gold", "s0": "silver", "b0": "bronze"}

#: (kind, vm, value) event descriptions; "x0" exercises the unmapped path.
events = st.lists(
    st.tuples(
        st.sampled_from(["hit", "miss", "latency", "shed"]),
        st.sampled_from(["g0", "s0", "b0", "x0"]),
        st.integers(min_value=1, max_value=10_000_000),
    ),
    max_size=200,
)


def make_ledger():
    return CreditLedger(SLOS, VM_TENANT)


def feed(ledger, stream):
    for kind, vm, value in stream:
        task = f"{vm}.rta0"
        if kind == "hit":
            ledger._on_hit(T.DeadlineHitEvent(0, task, 0, 0, 0))
        elif kind == "miss":
            ledger._on_miss(T.DeadlineMissEvent(0, task, 0, 0, 0, value))
        elif kind == "latency":
            ledger._on_latency(T.JobLatencyEvent(0, task, 0, value))
        else:
            ledger._on_admission(
                T.AdmissionDecisionEvent(
                    0, "host", "shed", f"{vm}-v0", False, "", vm, ""
                )
            )


def canonical(ledger):
    return json.dumps(ledger.snapshot(), sort_keys=True)


@given(events)
def test_credits_are_a_pure_function_of_the_stream(stream):
    a, b = make_ledger(), make_ledger()
    feed(a, stream)
    feed(b, stream)
    assert a.credits() == b.credits()  # exact, not approximate
    assert canonical(a) == canonical(b)
    # Scoring must not mutate state: repeated reads agree.
    assert a.credits() == a.credits()


@given(events)
def test_credit_stays_within_the_weighted_unit_band(stream):
    ledger = make_ledger()
    feed(ledger, stream)
    for slo in SLOS:
        assert 0.0 < ledger.credit(slo.name) <= slo.weight


@given(events, st.integers(min_value=1, max_value=5))
def test_shard_merge_reproduces_the_serial_state(stream, shards):
    serial = make_ledger()
    feed(serial, stream)
    shard_ledgers = [make_ledger() for _ in range(shards)]
    for index, event in enumerate(stream):
        feed(shard_ledgers[index % shards], [event])
    merged = CreditLedger.merge(
        [shard.snapshot() for shard in shard_ledgers], SLOS, VM_TENANT
    )
    assert canonical(merged) == canonical(serial)
    assert merged.credits() == serial.credits()


@given(
    st.lists(st.integers(0, 10_000), unique=True, min_size=1, max_size=30),
    st.randoms(use_true_random=False),
)
def test_shed_order_is_a_permutation_independent_of_input_order(uids, rnd):
    owners = {uid: ("g0", "b0", "x0")[uid % 3] for uid in uids}
    ledger = make_ledger()
    feed(ledger, [("miss", "b0", 1)])  # give the credits some spread
    base = ledger.shed_order(list(uids), owners)
    shuffled = list(uids)
    rnd.shuffle(shuffled)
    assert ledger.shed_order(shuffled, owners) == base
    assert sorted(base) == sorted(uids)
