"""Property-based tests on metrics math."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.percentiles import cdf_points, percentile, tail_summary
from repro.simcore.time import bandwidth

floats = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


@given(st.lists(floats, min_size=1, max_size=300))
def test_percentile_is_monotone_in_p(samples):
    prev = None
    for p in (10, 50, 90, 99, 99.9, 100):
        value = percentile(samples, p)
        if prev is not None:
            assert value >= prev
        prev = value


@given(st.lists(floats, min_size=1, max_size=300))
def test_percentile_within_sample_range(samples):
    for p in (1, 50, 100):
        assert min(samples) <= percentile(samples, p) <= max(samples)


@given(st.lists(floats, min_size=1, max_size=300))
def test_p100_is_max(samples):
    assert percentile(samples, 100) == max(samples)


@given(st.lists(floats, min_size=1, max_size=200))
def test_cdf_is_valid_distribution(samples):
    pts = cdf_points(samples)
    xs = [x for x, _ in pts]
    ys = [y for _, y in pts]
    assert xs == sorted(set(xs))
    assert all(0 < y <= 1 for y in ys)
    assert ys == sorted(ys)
    assert abs(ys[-1] - 1.0) < 1e-12


@given(st.lists(floats, min_size=4, max_size=300))
def test_tail_summary_ordered(samples):
    tail = tail_summary(samples)
    assert tail[90.0] <= tail[95.0] <= tail[99.0] <= tail[99.9]


@given(st.integers(0, 10**9), st.integers(1, 10**9))
def test_bandwidth_exact(s, p):
    bw = bandwidth(s, p)
    assert bw == Fraction(s, p)
    assert 0 <= bw or s == 0
