"""Property: any telemetry event stream round-trips through RTVT exactly.

Strategies are derived from the same ``NamedTuple`` annotations the
codec table in :mod:`repro.telemetry.record` is built from, so every
event kind — and every field codec, including signed timestamp deltas,
interned strings, nested tuples with floats, and the tagged-scalar
``HypercallEvent.flag`` — is exercised with adversarial values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import TraceReader, merge_traces
from repro.telemetry import events as T
from repro.telemetry.record import EVENT_CLASSES, TraceWriter

# Text drawn from a small alphabet so interning gets collisions, plus a
# few adversarial shapes (empty, unicode, long).
names = st.one_of(
    st.sampled_from(["", "vm0", "vm0.v0", "t", "§µ∆", "x" * 200]),
    st.text(max_size=8),
)

ints = st.integers(min_value=-(2**62), max_value=2**62)

# Tuple payload items mirror what _encode_item accepts; floats must
# round-trip bit-exactly (encoded as IEEE doubles, never repr'd).
detail_items = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        ints,
        names,
        st.floats(allow_nan=False),
    ),
    lambda children: st.tuples(children, children),
    max_leaves=6,
)

_FIELD_STRATEGIES = {
    "int": ints,
    "str": names,
    "Optional[str]": st.one_of(st.none(), names),
    "bool": st.booleans(),
    "Tuple": st.tuples(detail_items, detail_items),
}

#: The tagged-scalar field: runtime type varies between int and str.
_OVERRIDES = {("HypercallEvent", "flag"): st.one_of(ints, names)}


def _event_strategy(kind):
    cls = EVENT_CLASSES[kind]
    fields = []
    for name, annotation in cls.__annotations__.items():
        if not isinstance(annotation, str):
            annotation = getattr(annotation, "__forward_arg__", repr(annotation))
        strategy = _OVERRIDES.get((cls.__name__, name))
        if strategy is None:
            strategy = _FIELD_STRATEGIES[annotation]
        fields.append(strategy)
    return st.tuples(*fields).map(lambda values, c=cls: c(*values))


any_event = st.one_of(
    [
        st.tuples(st.just(kind), _event_strategy(kind))
        for kind in T.ALL_KINDS
    ]
)

event_streams = st.lists(any_event, max_size=60)


def record(events, header=None):
    writer = TraceWriter(header=header)
    for kind, event in events:
        writer.write_event(kind, event)
    return writer.close()


@settings(max_examples=120, deadline=None)
@given(event_streams)
def test_any_stream_round_trips(events):
    reader = TraceReader(record(events))
    assert list(reader.events()) == events
    assert reader.event_count == len(events)


@settings(max_examples=60, deadline=None)
@given(event_streams)
def test_recording_is_deterministic(events):
    assert record(events) == record(events)


@settings(max_examples=60, deadline=None)
@given(event_streams)
def test_counts_agree_with_stream(events):
    reader = TraceReader(record(events))
    for kind in T.ALL_KINDS:
        want = sum(1 for k, _ in events if k == kind)
        assert reader.counts.get(kind, 0) == want


@settings(max_examples=60, deadline=None)
@given(event_streams, st.integers(min_value=-(2**62), max_value=2**62))
def test_start_time_filter_is_a_pure_filter(events, start):
    reader = TraceReader(record(events))
    want = [(k, e) for k, e in events if e.time >= start]
    assert list(reader.events(start_time=start)) == want


@settings(max_examples=40, deadline=None)
@given(st.lists(event_streams, min_size=1, max_size=4))
def test_merge_preserves_every_part(parts):
    labeled = [(f"part{i}", record(events)) for i, events in enumerate(parts)]
    reader = TraceReader(merge_traces(labeled))
    want = [pair for events in parts for pair in events]
    assert list(reader.events()) == want
    assert [s["label"] for s in reader.sections] == [lbl for lbl, _ in labeled]
