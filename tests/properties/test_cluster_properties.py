"""Cluster migration blackouts must tile exactly into job spans.

A live migration's stop-and-copy window pauses the VM's VCPUs: no job
can run inside it, and a multi-attached
:class:`~repro.telemetry.spans.SpanBuilder` must charge exactly the
overlap of that window with each affected job's ``[release, end]`` to
the ``migrating`` bucket — integer-exact, like every other tiling
invariant (``run + migrating + preempted + wait == response``).

The properties run real two-host cluster simulations with one live
migration at a hypothesis-drawn instant and VM size, then check every
span produced.  Because the client's release schedule is independent of
scheduling (all RNG draws happen at arrival time), a probe run without
the migration predicts the release timeline exactly — the deterministic
tests use that to aim the blackout at a job known to be in flight.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, default_specs
from repro.placement import safe_migration_params
from repro.placement.migration import precopy_schedule
from repro.simcore.rng import RandomStreams
from repro.simcore.time import msec, sec
from repro.telemetry import SpanBuilder
from repro.telemetry.spans import clip_intervals, merge_intervals, total

DURATION_NS = sec(1)
RTAS = ((msec(3), msec(10)),)


def params_for(mem_mib: int):
    return safe_migration_params(
        mem_mib * 1024 * 1024, 250_000_000, 1_250_000_000
    )


def run_cluster_sim(seed: int, mem_mib: int, migrate_at_ns=None):
    """Two RTVirt hosts, one client-driven VM, at most one migration.

    Returns (builder with finalized spans, blackout windows, vcpu name).
    """
    cluster = Cluster(
        default_specs(2), policy="first_fit", migration=params_for(mem_mib)
    )
    cluster.seed([("vm0", RTAS)])
    streams = RandomStreams(seed)
    task = cluster.rt_tasks["vm0"][0]
    cluster.attach_client(
        "vm0",
        0,
        streams.stream("prop:vm0"),
        task.period_ns,
        2 * task.period_ns,
        deadline_ns=msec(60),  # wide: blackout-straddlers still complete
    )
    # The builder observes BOTH hosts, scoped per host so equal PCPU
    # indices do not collide — the cluster multi-attach pattern.
    builder = SpanBuilder(migration_ns=0)
    builder.attach(cluster.hosts[0].machine, scope="h0")
    builder.attach(cluster.hosts[1].machine, replace=False, scope="h1")

    if migrate_at_ns is not None:
        cluster.engine.at(
            migrate_at_ns,
            lambda: cluster.migrate("vm0", 1),
            name="prop:migrate",
        )
    cluster.run(DURATION_NS)
    cluster.finalize()
    horizon = cluster.engine.now
    builder.finalize(horizon)

    blackouts = merge_intervals(
        (m.pause_ns, min(m.resume_ns, horizon))
        for m in cluster.migrations
        if m.pause_ns is not None and m.pause_ns < horizon
    )
    vcpu_name = cluster.vms["vm0"].vcpus[0].name
    return builder, blackouts, vcpu_name


def assert_exact_tiling(builder, blackouts):
    """The three integer-exact invariants, over every span."""
    straddlers = 0
    for span in builder.spans:
        # Tiling is always exact, migration or not.
        assert sum(span.buckets.values()) == span.end - span.release
        # Nothing runs inside a blackout: the VCPUs are extracted.
        run_in_blackout = sum(
            total(clip_intervals(blackouts, start, end))
            for start, end, *_ in span.segments
        )
        assert run_in_blackout == 0
        # And therefore the migrating bucket is exactly the blackout
        # overlap with the span's window.
        overlap = total(clip_intervals(blackouts, span.release, span.end))
        assert span.buckets["migrating"] == overlap
        if overlap:
            straddlers += 1
    return straddlers


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    mem_mib=st.sampled_from([64, 128, 256]),
    migrate_frac10=st.integers(min_value=1, max_value=6),
)
def test_blackout_tiles_exactly_into_spans(seed, mem_mib, migrate_frac10):
    builder, blackouts, _ = run_cluster_sim(
        seed, mem_mib, DURATION_NS * migrate_frac10 // 10
    )
    assert builder.spans, "the client must have released jobs"
    assert blackouts, "the migration must have paused the VM"
    assert_exact_tiling(builder, blackouts)


def test_aimed_blackout_hits_an_in_flight_job():
    """Acceptance: a migration's downtime is visible in per-job spans.

    The probe run predicts the release timeline; the blackout is then
    aimed at the middle of a known job's execution window, so exactly
    that job must carry the full downtime in its ``migrating`` bucket.
    """
    seed, mem_mib = 13, 128
    probe, _, _ = run_cluster_sim(seed, mem_mib)
    schedule = precopy_schedule(params_for(mem_mib))
    precopy_ns = schedule.total_duration_ns - schedule.downtime_ns
    victim = next(
        s
        for s in probe.spans
        if s.completed_at is not None
        and s.release > precopy_ns  # migration can start at t >= 0
        and s.completed_at + schedule.total_duration_ns < DURATION_NS
    )
    target_pause = (victim.release + victim.completed_at) // 2
    builder, blackouts, _ = run_cluster_sim(
        seed, mem_mib, target_pause - precopy_ns
    )
    assert blackouts == [(target_pause, target_pause + schedule.downtime_ns)]
    straddlers = assert_exact_tiling(builder, blackouts)
    assert straddlers >= 1
    moved = next(s for s in builder.spans if s.key == victim.key)
    # The victim was mid-execution at the pause: its span absorbs the
    # whole stop-and-copy window, nanosecond for nanosecond.
    assert moved.buckets["migrating"] == schedule.downtime_ns
    assert moved.end >= target_pause + schedule.downtime_ns


def test_blackout_open_at_horizon_still_tiles():
    """A stop-and-copy still open when the run ends must charge the
    truncated window, not lose it."""
    schedule = precopy_schedule(params_for(256))
    migrate_at = (
        DURATION_NS
        - schedule.total_duration_ns
        + schedule.downtime_ns // 2
    )
    builder, blackouts, _ = run_cluster_sim(3, 256, migrate_at)
    assert blackouts and blackouts[-1][1] == DURATION_NS  # truncated
    assert_exact_tiling(builder, blackouts)
    open_spans = [s for s in builder.spans if s.incomplete]
    assert open_spans
    for span in open_spans:
        assert span.end == DURATION_NS
