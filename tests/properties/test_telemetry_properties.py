"""Streaming aggregators must agree with the post-hoc metrics exactly.

The telemetry refactor replaced post-hoc walks (``metrics.latency``,
``metrics.deadlines``, trace scans) with online aggregators; these
properties pin the equivalence: for any sample stream, the streamed
answer equals the old batch answer — including the empty and
single-sample edges — and sharding the stream then merging snapshots
reproduces the single-stream result byte-for-byte.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.deadlines import DeadlineStats, MissReport
from repro.metrics.latency import LatencyRecorder
from repro.metrics.percentiles import TAIL_PERCENTILES, tail_summary
from repro.telemetry import (
    LatencyAggregator,
    MissRatioAggregator,
    StandardTelemetry,
    TelemetryBus,
)
from repro.telemetry import events as T

latencies_ns = st.lists(
    st.integers(min_value=0, max_value=10**9), min_size=1, max_size=300
)
outcomes = st.lists(
    st.tuples(st.sampled_from(("a", "b", "c")), st.booleans()), max_size=200
)


def canonical(snapshot) -> str:
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def streamed_latency(samples_ns) -> LatencyAggregator:
    bus = TelemetryBus()
    agg = LatencyAggregator().attach(bus)
    for i, ns in enumerate(samples_ns):
        bus.publish(T.JOB_LATENCY, T.JobLatencyEvent(i, "t", i, ns))
    return agg


@given(latencies_ns)
def test_latency_tails_match_recorder_exactly(samples_ns):
    recorder = LatencyRecorder()
    for ns in samples_ns:
        recorder.record(ns)
    agg = streamed_latency(samples_ns)
    # Percentiles select actual sample elements, so equality is exact.
    assert agg.tail_usec() == recorder.tail_usec()
    assert agg.tail.percentile(99.9) == recorder.p999_usec()
    assert agg.tail.cdf_points() == recorder.cdf_usec()


@given(latencies_ns)
def test_latency_mean_matches_recorder(samples_ns):
    recorder = LatencyRecorder()
    for ns in samples_ns:
        recorder.record(ns)
    agg = streamed_latency(samples_ns)
    # The recorder sums the sorted sample, the online stats sum arrival
    # order; the answers agree to floating-point reassociation.
    assert math.isclose(
        agg.mean_usec(), recorder.mean_usec(), rel_tol=1e-9, abs_tol=1e-12
    )
    assert agg.stats.count == len(recorder)


def test_empty_stream_edges_match_batch_behaviour():
    agg = streamed_latency([])
    with pytest.raises(ValueError):
        agg.tail_usec()  # tail_summary([]) raises the same way
    with pytest.raises(ValueError):
        tail_summary([])
    with pytest.raises(ValueError):
        agg.mean_usec()
    assert MissRatioAggregator().miss_ratio() == DeadlineStats().miss_ratio


def test_single_sample_edges():
    agg = streamed_latency([2_500])
    assert agg.tail_usec() == {p: 2.5 for p in TAIL_PERCENTILES}
    assert agg.mean_usec() == 2.5
    assert agg.stats.min == agg.stats.max == 2.5


@given(outcomes)
def test_miss_ratio_matches_deadline_stats(decisions):
    per_task = {}
    bus = TelemetryBus()
    agg = MissRatioAggregator().attach(bus)
    for i, (task, met) in enumerate(decisions):
        stats = per_task.setdefault(task, DeadlineStats())
        deadline = 10
        completion = 5 if met else 15
        stats.record_completion(0, deadline, completion)
        if met:
            bus.publish(
                T.DEADLINE_HIT, T.DeadlineHitEvent(i, task, i, 0, deadline)
            )
        else:
            bus.publish(
                T.DEADLINE_MISS,
                T.DeadlineMissEvent(i, task, i, 0, deadline, completion - deadline),
            )
    report = MissReport(per_task=per_task)
    assert agg.miss_ratio() == report.overall_miss_ratio
    assert agg.decided() == report.total_met + report.total_missed
    for task, stats in per_task.items():
        assert agg.miss_ratio(task) == stats.miss_ratio
        assert agg.decided(task) == stats.decided


@given(latencies_ns, st.lists(st.integers(0, 300), max_size=5))
def test_sharded_merge_matches_single_stream(samples_ns, cuts):
    whole = streamed_latency(samples_ns)
    bounds = sorted({min(c, len(samples_ns)) for c in cuts} | {0, len(samples_ns)})
    shards = [
        streamed_latency(samples_ns[lo:hi]).snapshot()
        for lo, hi in zip(bounds, bounds[1:])
    ]
    merged = LatencyAggregator.merge(shards)
    # Exact-mode tails merge sorted multisets, so the tail snapshot —
    # and every percentile derived from it — is byte-identical to the
    # single stream no matter where the cuts fall.
    assert canonical(merged.snapshot()["tail"]) == canonical(
        whole.snapshot()["tail"]
    )
    # The running sum reassociates across shards (float addition is not
    # associative), so totals/means agree to rounding, counters exactly.
    assert merged.stats.count == whole.stats.count
    assert merged.stats.min == whole.stats.min
    assert merged.stats.max == whole.stats.max
    assert math.isclose(
        merged.stats.total, whole.stats.total, rel_tol=1e-9, abs_tol=1e-12
    )


@given(latencies_ns, st.lists(st.integers(0, 300), max_size=5))
def test_merge_is_deterministic_for_a_fixed_sharding(samples_ns, cuts):
    # What tools/check_determinism.py --streams gates on: two runs over
    # the SAME shard decomposition merge to byte-identical snapshots.
    bounds = sorted({min(c, len(samples_ns)) for c in cuts} | {0, len(samples_ns)})

    def merge_once():
        shards = [
            streamed_latency(samples_ns[lo:hi]).snapshot()
            for lo, hi in zip(bounds, bounds[1:])
        ]
        return LatencyAggregator.merge(shards)

    assert canonical(merge_once().snapshot()) == canonical(merge_once().snapshot())


@settings(deadline=None)
@given(st.integers(min_value=1, max_value=2**31))
def test_reservoir_merge_is_deterministic_and_bounded(seed):
    def merge_once():
        shards = []
        for base in (0, 100):
            tail = LatencyAggregator(mode="reservoir", capacity=16, seed=seed)
            for ns in range(base, base + 100):
                tail._on_latency(T.JobLatencyEvent(ns, "t", ns, ns * 1000))
            shards.append(tail.snapshot())
        return LatencyAggregator.merge(shards, seed=seed)

    first, second = merge_once(), merge_once()
    assert canonical(first.snapshot()) == canonical(second.snapshot())
    assert len(first.tail) <= 16
    assert first.tail.seen == 200


# -- end-to-end: a real simulation, streamed vs post-hoc ------------------------------


def _scenario_spec():
    return {
        "system": {"type": "rtvirt", "pcpus": 2},
        "duration_s": 2,
        "seed": 5,
        "vms": [
            {
                "name": "vm1",
                "tasks": [
                    {"name": "rta1", "slice_ms": 4, "period_ms": 20},
                    {"name": "rta2", "slice_ms": 3, "period_ms": 10},
                ],
            },
            {
                "name": "vm2",
                "tasks": [{"name": "rta3", "slice_ms": 5, "period_ms": 25}],
            },
        ],
    }


def test_streamed_metrics_match_post_hoc_on_a_real_run():
    from repro.scenario import run_scenario

    holder = {}

    def attach(system):
        holder["telemetry"] = StandardTelemetry(system.machine.bus)

    result = run_scenario(_scenario_spec(), attach=attach)
    telemetry = holder["telemetry"]

    # Deadline outcomes: the streamed counters must equal the per-task
    # DeadlineStats for every completed job (the scenario is feasible,
    # so no abandoned job has a passed deadline to diverge on).
    assert result.report.total_missed == 0
    for task, stats in result.report.per_task.items():
        met, missed = telemetry.misses.per_task[task]
        assert (met, missed) == (stats.met, stats.missed)
        assert telemetry.misses.miss_ratio(task) == stats.miss_ratio

    # Latency: streamed tails equal the post-hoc percentile walk over
    # the recorded response times, exactly.
    response_usec = [
        rt / 1000.0
        for stats in result.report.per_task.values()
        for rt in stats.response_times
    ]
    assert telemetry.latency.stats.count == len(response_usec)
    assert telemetry.latency.tail_usec() == tail_summary(response_usec)

    # Bandwidth: every admitted VCPU consumed something, and nothing
    # consumed more than the simulated horizon.
    assert telemetry.bandwidth.consumed_ns
    for consumed in telemetry.bandwidth.consumed_ns.values():
        assert 0 < consumed <= result.duration_ns
