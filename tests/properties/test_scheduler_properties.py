"""Property-based tests on scheduler invariants.

These are the paper's core guarantees, checked on randomly generated
task sets:

- DP-WRAP optimality: any set with total utilization <= m (and per-task
  utilization <= 1) meets every deadline with zero overheads;
- no VCPU ever executes on two PCPUs at once;
- cumulative allocation tracks cumulative entitlement (carry fairness);
- admission control never over-commits.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import RTVirtSystem
from repro.guest.task import Task
from repro.host.costs import ZERO_COSTS
from repro.simcore.time import msec, usec
from repro.simcore.trace import Trace
from repro.workloads.periodic import PeriodicDriver

# (slice_ms, period_ms) pairs with utilization <= 1 each.
task_spec = st.tuples(st.integers(1, 9), st.integers(10, 40)).map(
    lambda t: (min(t[0], t[1]), t[1])
)


def _build(specs, pcpus, trace=None):
    system = RTVirtSystem(
        pcpu_count=pcpus, cost_model=ZERO_COSTS, slack_ns=0, trace=trace
    )
    tasks = []
    for i, (s, p) in enumerate(specs):
        vm = system.create_vm(f"vm{i}")
        task = Task(f"t{i}", msec(s), msec(p))
        vm.register_task(task)
        tasks.append(task)
        PeriodicDriver(system.engine, vm, task).start()
    return system, tasks


@given(st.lists(task_spec, min_size=1, max_size=5))
@settings(max_examples=25, deadline=None)
def test_dpwrap_meets_all_deadlines_when_feasible(specs):
    total = sum(Fraction(s, p) for s, p in specs)
    pcpus = int(total) + (1 if total % 1 else 0) or 1
    system, tasks = _build(specs, pcpus)
    system.run(msec(400))
    system.finalize()
    assert system.miss_report().total_missed == 0


@given(st.lists(task_spec, min_size=2, max_size=5))
@settings(max_examples=15, deadline=None)
def test_no_vcpu_runs_on_two_pcpus(specs):
    total = sum(Fraction(s, p) for s, p in specs)
    pcpus = max(int(total) + (1 if total % 1 else 0), 2)
    trace = Trace()
    system, tasks = _build(specs, pcpus, trace=trace)
    system.run(msec(200))
    by_vcpu = {}
    for seg in trace.segments:
        by_vcpu.setdefault(seg.vcpu, []).append((seg.start, seg.end))
    for intervals in by_vcpu.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1


@given(st.lists(task_spec, min_size=1, max_size=4))
@settings(max_examples=15, deadline=None)
def test_pcpu_never_runs_two_vcpus(specs):
    total = sum(Fraction(s, p) for s, p in specs)
    pcpus = int(total) + (1 if total % 1 else 0) or 1
    trace = Trace()
    system, tasks = _build(specs, pcpus, trace=trace)
    system.run(msec(200))
    assert list(trace.iter_overlaps()) == []


@given(st.lists(task_spec, min_size=1, max_size=4), st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_allocation_tracks_entitlement(specs, extra_idle_pcpus):
    """Over windows aligned with its period, every busy task receives at
    least its bandwidth share (exact reservations, zero costs)."""
    total = sum(Fraction(s, p) for s, p in specs)
    pcpus = (int(total) + (1 if total % 1 else 0) or 1) + extra_idle_pcpus
    trace = Trace()
    system, tasks = _build(specs, pcpus, trace=trace)
    horizon = msec(400)
    system.run(horizon)
    system.finalize()
    for task, (s, p) in zip(tasks, specs):
        windows = horizon // msec(p)
        demand = windows * msec(s)
        usage = trace.vcpu_usage_between(task.vcpu.name, 0, windows * msec(p))
        assert usage >= demand  # every released job completed on time


@given(
    st.lists(
        st.tuples(st.integers(1, 100), st.integers(100, 1000)), min_size=1, max_size=20
    ),
    st.integers(1, 4),
)
def test_admission_never_overcommits(requests, pcpus):
    from repro.core.admission import UtilizationAdmission
    from repro.guest.vm import VM

    adm = UtilizationAdmission(pcpus)
    vm = VM("vm", vcpu_count=1, max_vcpus=len(requests) or 1)
    granted = Fraction(0)
    for i, (budget, period) in enumerate(requests):
        vcpu = vm.vcpus[0] if i == 0 else vm.hotplug_vcpu() or vm.vcpus[0]
        before = adm.granted(vcpu)
        if adm.try_commit([(vcpu, usec(budget), usec(period))]):
            granted += Fraction(budget, period) - before
    assert adm.total_granted <= pcpus
    assert adm.total_granted == granted
