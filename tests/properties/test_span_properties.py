"""Span tiling and blame attribution must be exact, not approximate.

Two invariants hold by construction and these properties pin them:

* **Tiling** — for every job span, the four bucket durations
  (``run + wait + preempted + migrating``) sum *exactly* to the
  response time.  Integer arithmetic, no epsilon.
* **Blame conservation** — for every missed span, the per-cause
  lost-ns returned by :func:`attribute_miss` sums *exactly* to the
  lateness, and a met span blames nothing.

Both are checked three ways: on randomly generated event streams
(hypothesis), on the interval helpers the tiling is built from, and on
full simulator runs across every system type and fault scenario.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import SpanBuilder, TelemetryBus
from repro.telemetry import events as T
from repro.telemetry.blame import attribute_miss
from repro.telemetry.spans import (
    clip_intervals,
    merge_intervals,
    subtract_intervals,
    total,
)

intervals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=500),
    ).map(lambda p: (min(p), max(p))),
    max_size=20,
)


class TestIntervalAlgebra:
    @given(intervals)
    def test_merge_is_sorted_disjoint_and_idempotent(self, raw):
        merged = merge_intervals(raw)
        for (s, e) in merged:
            assert s < e
        for (_, e), (s2, _) in zip(merged, merged[1:]):
            assert e < s2
        assert merge_intervals(merged) == merged

    @given(intervals, intervals)
    def test_clip_plus_subtract_partition_exactly(self, raw, cut_raw):
        base = merge_intervals(raw)
        cut = merge_intervals(cut_raw)
        inside_total = 0
        for lo, hi in base:
            inside = clip_intervals(cut, lo, hi)
            outside = subtract_intervals([(lo, hi)], inside)
            # Every instant of [lo, hi) lands in exactly one side.
            assert total(inside) + total(outside) == hi - lo
            inside_total += total(inside)

    @given(intervals, intervals)
    def test_subtract_is_disjoint_from_cut(self, raw, cut_raw):
        base = merge_intervals(raw)
        cut = merge_intervals(cut_raw)
        remainder = subtract_intervals(base, cut)
        removed = sum(
            total(clip_intervals(cut, lo, hi)) for lo, hi in base
        )
        assert total(remainder) == total(base) - removed
        for lo, hi in remainder:
            assert clip_intervals(cut, lo, hi) == []


# A random single-job history: alternating on-CPU windows for the
# carrier VCPU (the job runs whenever its carrier holds the PCPU), a
# deadline anywhere in range, completion at the last executed nanosecond.
boundaries = st.lists(
    st.integers(min_value=1, max_value=1_000),
    min_size=2,
    max_size=12,
    unique=True,
).map(sorted)
deadlines = st.integers(min_value=1, max_value=1_200)


@settings(max_examples=60, deadline=None)
@given(boundaries, deadlines)
def test_random_history_tiles_and_blame_conserves(bounds, deadline):
    machine_bus = TelemetryBus()

    class _Costs:
        migration_ns = 0

    class _Engine:
        now = 0

    class _Machine:
        bus = machine_bus
        costs = _Costs()
        engine = _Engine()

    builder = SpanBuilder().attach(_Machine())
    machine_bus.publish(
        T.JOB_RELEASE, T.JobReleaseEvent(0, "vm0", "v0", "a", 0, 0, deadline)
    )
    windows = list(zip(bounds[0::2], bounds[1::2]))
    end = 0
    for start, stop in windows:
        machine_bus.publish(
            T.CONTEXT_SWITCH, T.ContextSwitchEvent(start, 0, "v0", False)
        )
        machine_bus.publish(
            T.SEGMENT_END, T.SegmentEndEvent(stop, 0, "v0", "a", start, stop)
        )
        machine_bus.publish(
            T.CONTEXT_SWITCH, T.ContextSwitchEvent(stop, 0, None, False)
        )
        end = stop
    machine_bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(end, "a", 0))
    if end > deadline:
        machine_bus.publish(
            T.DEADLINE_MISS,
            T.DeadlineMissEvent(end, "a", 0, 0, deadline, end - deadline),
        )
    builder.finalize(end_time=end)
    (span,) = builder.spans
    assert sum(span.buckets.values()) == span.response_time
    assert span.buckets["run"] == sum(stop - start for start, stop in windows)
    lost = attribute_miss(span, builder)
    if end > deadline:
        assert sum(lost.values()) == span.lateness == end - deadline
    else:
        assert lost == {}


def _assert_exact(builder):
    assert builder.spans, "deadline-bearing jobs must produce spans"
    for span in builder.spans:
        assert sum(span.buckets.values()) == span.response_time
        lost = attribute_miss(span, builder)
        if span.missed:
            assert sum(lost.values()) == span.lateness
        else:
            assert lost == {}


class TestFullSystemRuns:
    @pytest.mark.parametrize("system", ["rtvirt", "rtxen", "credit"])
    def test_invariants_hold_for_every_system_type(self, system):
        from repro.scenario import run_scenario
        from repro.telemetry.probe import _probe_spec

        holder = {}

        def attach(sim):
            holder["spans"] = SpanBuilder().attach(sim.machine)

        result = run_scenario(
            _probe_spec(system, seed=7, duration_s=0.5), attach=attach
        )
        _assert_exact(holder["spans"].finalize(result.duration_ns))

    @pytest.mark.parametrize("fault", ["pcpu_fail", "hypercall", "surge"])
    def test_invariants_survive_fault_scenarios(self, fault):
        from repro.experiments.robustness import run_robustness_case
        from repro.simcore.time import sec

        holder = {}

        def attach(sim):
            holder["spans"] = SpanBuilder().attach(sim.machine)

        run_robustness_case(
            fault,
            "RTVirt",
            sec(1),
            seed=11,
            check_invariants=False,
            attach=attach,
        )
        _assert_exact(holder["spans"].finalize(sec(1)))
