"""Property-based tests on the baseline schedulers' invariants."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.credit import CreditSystem
from repro.baselines.rtxen import RTXenSystem
from repro.guest.task import Task
from repro.host.costs import ZERO_COSTS
from repro.simcore.time import msec
from repro.simcore.trace import Trace
from repro.workloads.periodic import PeriodicDriver

server_spec = st.tuples(st.integers(1, 5), st.integers(6, 20))


@given(st.lists(server_spec, min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_deferrable_server_never_exceeds_budget(specs):
    """No server receives more than budget per period (supply cap)."""
    trace = Trace()
    system = RTXenSystem(pcpu_count=1, cost_model=ZERO_COSTS, trace=trace)
    vms = []
    for i, (budget, period) in enumerate(specs):
        vm = system.create_vm(f"v{i}", interfaces=[(msec(budget), msec(period))])
        # A greedy task demanding the whole period keeps the server busy.
        task = Task(f"t{i}", msec(period), msec(period))
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task).start()
        vms.append((vm, budget, period))
    horizon = msec(200)
    system.run(horizon)
    for vm, budget, period in vms:
        for k in range(horizon // msec(period)):
            window = (k * msec(period), (k + 1) * msec(period))
            usage = trace.vcpu_usage_between(vm.vcpus[0].name, *window)
            assert usage <= msec(budget)


@given(st.lists(server_spec, min_size=2, max_size=4))
@settings(max_examples=15, deadline=None)
def test_edf_host_work_conserving(specs):
    """With a backlogged server present, the PCPU never idles while any
    server has both budget and work."""
    total_bw = sum(Fraction(b, p) for b, p in specs)
    trace = Trace()
    system = RTXenSystem(pcpu_count=1, cost_model=ZERO_COSTS, trace=trace)
    for i, (budget, period) in enumerate(specs):
        vm = system.create_vm(f"v{i}", interfaces=[(msec(budget), msec(period))])
        task = Task(f"t{i}", msec(period), msec(period))
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task).start()
    horizon = msec(100)
    system.run(horizon)
    busy = trace.busy_time(pcpu=0)
    expected = min(float(total_bw), 1.0) * horizon
    assert busy >= expected * 0.95


@given(st.integers(1, 6), st.integers(1, 4))
@settings(max_examples=10, deadline=None)
def test_credit_proportional_share(weight_ratio, vm_pairs):
    """Long-run CPU time tracks weights for CPU-bound VMs."""
    trace = Trace()
    system = CreditSystem(
        pcpu_count=1, cost_model=ZERO_COSTS, timeslice_ns=msec(1)
    )
    heavy = system.create_vm("heavy", weight=256 * weight_ratio)
    heavy.add_background_process()
    light = system.create_vm("light", weight=256)
    light.add_background_process()
    system.machine.trace = trace
    system.machine.trace.enabled = True
    horizon = msec(600)
    system.run(horizon)
    heavy_time = trace.vcpu_usage_between("heavy.vcpu0", 0, horizon)
    light_time = trace.vcpu_usage_between("light.vcpu0", 0, horizon)
    assert heavy_time + light_time >= horizon * 0.99  # work conserving
    if weight_ratio > 1:
        assert heavy_time > light_time * 0.9
