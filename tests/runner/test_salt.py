"""Tests for the dependency-aware (import-closure) cache salt.

Two layers: a miniature package exercising every import form the static
walker handles (and every fallback trigger), and the real ``repro``
package copied to a temp directory so edits can prove the acceptance
property — editing one experiment module invalidates exactly that
experiment's units while everything else stays a warm cache hit.
"""

import os
import shutil

import pytest

from repro.runner import build_plans
from repro.runner.cache import (
    ResultCache,
    clear_salt_caches,
    code_salt,
    unit_salt,
)


@pytest.fixture(autouse=True)
def _fresh_memos():
    """Salts are memoised per process; tests rewrite files in place."""
    clear_salt_caches()
    yield
    clear_salt_caches()


def write(root, relpath, text):
    path = os.path.join(root, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)


def append(root, relpath, text):
    with open(os.path.join(root, relpath), "a") as fh:
        fh.write(text)


@pytest.fixture
def pkg(tmp_path):
    """Mini package: absolute, relative, lazy and aggregate imports."""
    root = str(tmp_path / "pkg")
    write(root, "__init__.py", "")
    write(root, "core.py", "X = 1\n")
    write(root, "mid.py", "from .core import X\n")
    write(
        root,
        "leaf.py",
        "import pkg.mid\n\n\ndef run():\n    return pkg.mid.X\n",
    )
    write(
        root,
        "lazy.py",
        "def run():\n    from .core import X\n\n    return X\n",
    )
    write(
        root,
        "standalone.py",
        "import json\n\n\ndef run():\n    return json\n",
    )
    return root


def salts(root, *modules):
    return {m: unit_salt(f"pkg.{m}:run", root) for m in modules}


class TestClosureSalt:
    def test_editing_a_dependency_changes_dependents_only(self, pkg):
        before = salts(pkg, "leaf", "mid", "lazy", "standalone")
        append(pkg, "core.py", "Y = 2\n")
        clear_salt_caches()
        after = salts(pkg, "leaf", "mid", "lazy", "standalone")
        assert after["leaf"] != before["leaf"]  # via pkg.mid -> pkg.core
        assert after["mid"] != before["mid"]
        assert after["lazy"] != before["lazy"]  # function-body import counts
        assert after["standalone"] == before["standalone"]

    def test_editing_the_module_itself_changes_its_salt(self, pkg):
        before = unit_salt("pkg.standalone:run", pkg)
        append(pkg, "standalone.py", "# tweak\n")
        clear_salt_caches()
        assert unit_salt("pkg.standalone:run", pkg) != before

    def test_unrelated_sibling_edit_keeps_salt(self, pkg):
        before = unit_salt("pkg.leaf:run", pkg)
        append(pkg, "standalone.py", "# tweak\n")
        clear_salt_caches()
        assert unit_salt("pkg.leaf:run", pkg) == before

    def test_ancestor_init_is_not_pulled_in(self, pkg):
        """``import pkg.mid`` depends on mid, not on ``pkg/__init__``."""
        before = unit_salt("pkg.leaf:run", pkg)
        append(pkg, "__init__.py", "# package docstring tweak\n")
        clear_salt_caches()
        assert unit_salt("pkg.leaf:run", pkg) == before

    def test_init_as_explicit_target_is_hashed(self, pkg):
        """``from . import core`` imports the package — its init counts."""
        write(root=pkg, relpath="agg.py", text="from . import core\n")
        before = unit_salt("pkg.agg:run", pkg)
        append(pkg, "__init__.py", "# re-export tweak\n")
        clear_salt_caches()
        assert unit_salt("pkg.agg:run", pkg) != before

    def test_memoised_within_a_process(self, pkg):
        first = unit_salt("pkg.leaf:run", pkg)
        append(pkg, "core.py", "Y = 2\n")
        # No clear_salt_caches(): the memo must still serve the old salt.
        assert unit_salt("pkg.leaf:run", pkg) == first


class TestFallback:
    def test_syntax_error_in_closure_falls_back(self, pkg):
        write(pkg, "broken.py", "def (\n")
        write(pkg, "imp.py", "from .broken import x\n")
        assert unit_salt("pkg.imp:run", pkg) == code_salt(pkg)

    def test_relative_escape_falls_back(self, pkg):
        write(pkg, "escape.py", "from ..outside import x\n")
        assert unit_salt("pkg.escape:run", pkg) == code_salt(pkg)

    def test_missing_import_target_falls_back(self, pkg):
        write(pkg, "ghost.py", "from .nothere import x\n")
        assert unit_salt("pkg.ghost:run", pkg) == code_salt(pkg)

    def test_unknown_module_falls_back(self, pkg):
        assert unit_salt("pkg.no_such_module:run", pkg) == code_salt(pkg)

    def test_fallback_tracks_whole_package_edits(self, pkg):
        write(pkg, "escape.py", "from ..outside import x\n")
        before = unit_salt("pkg.escape:run", pkg)
        append(pkg, "standalone.py", "# tweak\n")
        clear_salt_caches()
        assert unit_salt("pkg.escape:run", pkg) != before


@pytest.fixture
def repro_copy(tmp_path):
    """The real package under a writable root (edits must not touch src)."""
    import repro

    src = os.path.dirname(os.path.abspath(repro.__file__))
    dst = str(tmp_path / "repro")
    shutil.copytree(src, dst, ignore=shutil.ignore_patterns("__pycache__"))
    return dst


class TestRealPackage:
    def test_no_registry_unit_falls_back_to_whole_package_salt(self):
        """Every plan unit's import closure must resolve statically.

        Salt equality with :func:`code_salt` means the unit fell back to
        (or spans) the whole package — the regression this guards is an
        import edge that collapses an experiment's closure onto
        everything (e.g. through a package ``__init__``).
        """
        whole = code_salt()
        for plan in build_plans():
            for unit in plan.units:
                assert unit_salt(unit.fn) != whole, unit.unit_id

    def test_editing_fig4_invalidates_only_fig4_units(self, repro_copy, tmp_path):
        """The acceptance property: one experiment edit, one experiment miss."""
        cache = ResultCache(
            path=str(tmp_path / "cache"), package_root=repro_copy
        )
        units = [u for plan in build_plans() for u in plan.units]
        before = {u.unit_id: cache.key(u) for u in units}
        append(repro_copy, os.path.join("experiments", "fig4_dynamic.py"),
               "\n# cache-salt probe\n")
        clear_salt_caches()
        after = {u.unit_id: cache.key(u) for u in units}
        changed = {uid for uid in before if before[uid] != after[uid]}
        assert changed == {"fig4/vm1", "fig4/vm2", "fig4/vm3", "fig4/vm4"}

    def test_warm_cache_survives_unrelated_edit(self, repro_copy, tmp_path):
        """Executor-level: an edit elsewhere leaves cheap experiments warm."""
        from repro.runner import run_experiments

        cache_dir = str(tmp_path / "cache")
        ids = ["table2", "fig3"]

        def run():
            return run_experiments(
                ids,
                cache=ResultCache(cache_dir, package_root=repro_copy),
            )

        cold = run()
        assert cold.cache_writes == 2

        append(repro_copy, os.path.join("experiments", "fig4_dynamic.py"),
               "\n# cache-salt probe\n")
        clear_salt_caches()
        warm = run()
        assert warm.cache_misses == 0
        assert warm.cache_hits == 2

        append(repro_copy, os.path.join("experiments", "fig3_bandwidth.py"),
               "\n# cache-salt probe\n")
        clear_salt_caches()
        third = run()
        assert third.cache_hits == 1  # table2 still warm
        assert third.cache_misses == 1  # fig3 re-ran
