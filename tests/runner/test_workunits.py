"""Tests for the work-unit decomposition of the experiment registry."""

import pytest

from repro.experiments import registry
from repro.runner.workunits import (
    WorkUnit,
    build_plans,
    execute_unit,
    plan_for,
    resolve,
)
from repro.simcore.time import sec


class TestPlanShape:
    def test_every_registry_entry_has_a_plan(self):
        for experiment_id in registry.all_ids():
            plan = plan_for(experiment_id)
            assert plan.experiment_id == experiment_id
            assert plan.units

    def test_unit_ids_are_globally_unique(self):
        seen = set()
        for plan in build_plans():
            for unit in plan.units:
                assert unit.unit_id not in seen
                seen.add(unit.unit_id)
                assert unit.experiment_id == plan.experiment_id

    def test_sharded_experiments_have_multiple_units(self):
        for experiment_id, expected in (
            ("table1", 12),
            ("sporadic", 12),
            ("table4", 3),
            ("fig4", 4),
            ("fig5a", 4),
            ("fig5b", 4),
            ("table6", 3),
        ):
            assert len(plan_for(experiment_id).units) == expected

    def test_every_unit_fn_resolves(self):
        for plan in build_plans():
            for unit in plan.units:
                assert callable(resolve(unit.fn))

    def test_build_plans_keeps_canonical_order(self):
        plans = build_plans(["fig3", "table1"])
        assert [p.experiment_id for p in plans] == ["table1", "fig3"]

    def test_unknown_ids_rejected(self):
        with pytest.raises(KeyError):
            plan_for("nope")
        with pytest.raises(KeyError):
            build_plans(["fig3", "nope"])


class TestFingerprint:
    def test_depends_on_salt_and_kwargs(self):
        unit = WorkUnit("fig3", "fig3/whole", "m:f", (("a", 1),))
        assert unit.fingerprint("s1") != unit.fingerprint("s2")
        other = WorkUnit("fig3", "fig3/whole", "m:f", (("a", 2),))
        assert unit.fingerprint("s1") != other.fingerprint("s1")

    def test_stable_across_instances(self):
        a = WorkUnit("fig3", "fig3/whole", "m:f", (("a", 1),))
        b = WorkUnit("fig3", "fig3/whole", "m:f", (("a", 1),))
        assert a.fingerprint("s") == b.fingerprint("s")


class TestShardAssemblyEquivalence:
    """Shard parts reassembled in the parent equal the monolithic run.

    Uses sharply shortened durations: the shard and serial paths share
    all the code that matters, so equality at 1-2 simulated seconds
    carries to the full-length runs (the determinism tool verifies those
    at full length).
    """

    def test_table1(self):
        from repro.experiments.table1_periodic import (
            run_group_rtvirt,
            run_group_rtxen,
            run_table1,
        )
        from repro.runner.workunits import _assemble_table1

        duration = sec(2)
        parts = [
            run_group_rtvirt("H-Equiv", duration),
            run_group_rtxen("H-Equiv", duration),
        ]
        assembled = _assemble_table1(parts)
        serial = run_table1(duration, groups=["H-Equiv"])
        assert assembled.rows() == serial.rows()
        assert assembled.summary() == serial.summary()

    def test_fig4(self):
        from repro.experiments.fig4_dynamic import (
            FIG4_VM_COUNT,
            assemble_fig4,
            run_fig4,
            run_fig4_vm,
        )

        duration = sec(2)
        parts = [
            run_fig4_vm(vm_index, duration_ns=duration)
            for vm_index in range(FIG4_VM_COUNT)
        ]
        assembled = assemble_fig4(parts)
        serial = run_fig4(duration_ns=duration)
        assert assembled.rows() == serial.rows()
        assert assembled.summary() == serial.summary()

    def test_table4(self):
        from repro.experiments.table4_dedicated import (
            TABLE4_SCHEDULERS,
            run_table4,
            run_table4_scheduler,
        )
        from repro.runner.workunits import _assemble_table4

        duration = sec(2)
        parts = [run_table4_scheduler(s, duration) for s in TABLE4_SCHEDULERS]
        assembled = _assemble_table4(parts)
        serial = run_table4(duration)
        assert assembled.rows() == serial.rows()
        assert assembled.summary() == serial.summary()

    def test_fig5a(self):
        from repro.experiments.fig5_memcached import (
            FIG5_SCHEDULERS,
            run_fig5a,
            run_fig5a_scheduler,
        )
        from repro.runner.workunits import _assemble_fig5a

        duration = sec(2)
        parts = [run_fig5a_scheduler(s, duration) for s in FIG5_SCHEDULERS]
        assembled = _assemble_fig5a(parts)
        serial = run_fig5a(duration)
        assert assembled.rows() == serial.rows()
        assert assembled.summary() == serial.summary()

    def test_table6(self):
        from repro.experiments.table6_overhead import (
            TABLE6_SCENARIOS,
            run_table6,
            run_table6_scenario,
            rtxen_capacities,
        )
        from repro.runner.workunits import _assemble_table6

        duration = sec(1)
        parts = [run_table6_scenario(s, duration) for s in TABLE6_SCENARIOS]
        parts.append(rtxen_capacities(analyze_rtxen=False))
        assembled = _assemble_table6(parts)
        serial = run_table6(duration, analyze_rtxen=False)
        assert assembled.rows() == serial.rows()
        assert assembled.summary() == serial.summary()


class TestWholePlans:
    """Monolithic experiments bypass the registry-dispatching fallback."""

    def test_direct_fns_point_at_experiment_modules(self):
        for experiment_id, module in (
            ("fig1", "repro.experiments.fig1_motivation"),
            ("fig3", "repro.experiments.fig3_bandwidth"),
            ("table2", "repro.experiments.table2_config"),
        ):
            (unit,) = plan_for(experiment_id).units
            assert unit.fn.startswith(f"{module}:")
            assert unit.payload  # stripped to rows/summary in the worker

    def test_sharded_units_never_strip(self):
        for unit in plan_for("fig4").units:
            assert not unit.payload

    def test_payload_flag_not_in_fingerprint(self):
        """Payload stripping is an execution detail, not a cache input."""
        plain = WorkUnit("fig3", "fig3/whole", "m:f", payload=False)
        stripped = WorkUnit("fig3", "fig3/whole", "m:f", payload=True)
        assert plain.fingerprint("s") == stripped.fingerprint("s")


class TestExecuteUnit:
    def test_whole_unit_returns_payload(self):
        unit = plan_for("table2").units[0]
        payload = execute_unit(unit)
        assert payload["rows"]
        assert isinstance(payload["summary"], str)

    def test_resolve_rejects_bad_path(self):
        with pytest.raises(ValueError):
            resolve("no.colon.here")
