"""End-to-end tests for the parallel experiment runner."""

import pytest

from repro.experiments import registry
from repro.runner import ResultCache, run_experiments

#: Cheap analytical experiments (milliseconds each) for end-to-end runs.
CHEAP_IDS = ["table2", "fig3"]


def serial_reference(experiment_id):
    result = registry.run(experiment_id)
    return result.rows(), result.summary()


class TestSerialPath:
    def test_matches_registry_run(self):
        report = run_experiments(CHEAP_IDS, jobs=1)
        for experiment_report in report.reports:
            rows, summary = serial_reference(experiment_report.experiment_id)
            assert experiment_report.rows == rows
            assert experiment_report.summary == summary

    def test_canonical_order_and_accounting(self):
        report = run_experiments(["fig3", "table2"], jobs=1)
        assert [r.experiment_id for r in report.reports] == ["table2", "fig3"]
        assert report.jobs == 1
        for experiment_report in report.reports:
            assert experiment_report.units == 1
            assert experiment_report.cached_units == 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_experiments(CHEAP_IDS, jobs=0)

    def test_rejects_unknown_ids(self):
        with pytest.raises(KeyError):
            run_experiments(["nope"])


class TestParallelPath:
    def test_process_pool_output_is_byte_identical(self):
        parallel = run_experiments(CHEAP_IDS, jobs=2)
        for experiment_report in parallel.reports:
            rows, summary = serial_reference(experiment_report.experiment_id)
            assert experiment_report.rows == rows
            assert experiment_report.summary == summary


class TestCaching:
    def test_warm_cache_skips_everything_and_matches(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_experiments(CHEAP_IDS, jobs=1, cache=ResultCache(cache_dir))
        assert cold.cache_hits == 0
        assert cold.cache_writes == sum(r.units for r in cold.reports)

        warm = run_experiments(CHEAP_IDS, jobs=1, cache=ResultCache(cache_dir))
        assert warm.cache_misses == 0
        assert warm.cache_hits == sum(r.units for r in warm.reports)
        for warm_report, cold_report in zip(warm.reports, cold.reports):
            assert warm_report.cached_units == warm_report.units
            assert warm_report.rows == cold_report.rows
            assert warm_report.summary == cold_report.summary

    def test_refresh_reexecutes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiments(CHEAP_IDS, jobs=1, cache=ResultCache(cache_dir))
        refreshed = run_experiments(
            CHEAP_IDS, jobs=1, cache=ResultCache(cache_dir, refresh=True)
        )
        assert refreshed.cache_hits == 0
        assert refreshed.cache_writes == sum(r.units for r in refreshed.reports)

    def test_code_salt_invalidates(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiments(
            CHEAP_IDS, jobs=1, cache=ResultCache(cache_dir, salt="v1")
        )
        stale = run_experiments(
            CHEAP_IDS, jobs=1, cache=ResultCache(cache_dir, salt="v2")
        )
        assert stale.cache_hits == 0

    def test_default_is_uncached(self):
        report = run_experiments(CHEAP_IDS, jobs=1)
        assert report.cache_hits == 0
        assert report.cache_writes == 0


class TestShardedThroughRunner:
    def test_sharded_experiment_units_partition_cache(self, tmp_path):
        """Prime one table4 shard, then confirm run reuses exactly it.

        Executes single shards directly (2-second variants are separate
        cache keys, so this uses the cheap fig-level experiments plus a
        hand-primed shard) to prove per-unit granularity.
        """
        from repro.runner.workunits import plan_for

        cache = ResultCache(str(tmp_path / "cache"), salt="s")
        plan = plan_for("table4")
        assert [u.unit_id for u in plan.units] == [
            "table4/Credit",
            "table4/RT-Xen",
            "table4/RTVirt",
        ]
        cache.put(plan.units[0], {90.0: 1.0, 95.0: 1.0, 99.0: 1.0, 99.9: 1.0})
        hit, _ = cache.get(plan.units[0])
        assert hit
        assert not cache.get(plan.units[1])[0]
