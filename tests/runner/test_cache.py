"""Tests for the content-addressed work-unit result cache."""

import os
import pickle

import pytest

from repro.runner.cache import ResultCache, code_salt, disabled_cache
from repro.runner.workunits import WorkUnit

UNIT = WorkUnit(
    experiment_id="table2",
    unit_id="table2/whole",
    fn="repro.runner.workunits:run_whole",
    kwargs=(("experiment_id", "table2"),),
)


def make_cache(tmp_path, **kw) -> ResultCache:
    return ResultCache(path=str(tmp_path / "cache"), salt="s1", **kw)


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        hit, part = cache.get(UNIT)
        assert not hit and part is None
        cache.put(UNIT, {"rows": [1, 2], "summary": "x"})
        hit, part = cache.get(UNIT)
        assert hit
        assert part == {"rows": [1, 2], "summary": "x"}
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)

    def test_persists_across_instances(self, tmp_path):
        make_cache(tmp_path).put(UNIT, "part")
        hit, part = make_cache(tmp_path).get(UNIT)
        assert hit and part == "part"

    def test_preserves_non_json_types(self, tmp_path):
        """Pickle storage keeps float dict keys (Table 4 tails) intact."""
        cache = make_cache(tmp_path)
        tails = {90.0: 1.5, 99.9: 2.25}
        cache.put(UNIT, tails)
        assert cache.get(UNIT)[1] == tails


class TestInvalidation:
    def test_salt_changes_key(self, tmp_path):
        make_cache(tmp_path).put(UNIT, "old")
        stale = ResultCache(path=str(tmp_path / "cache"), salt="s2")
        hit, _ = stale.get(UNIT)
        assert not hit

    def test_kwargs_change_key(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "old")
        other = WorkUnit(
            UNIT.experiment_id, UNIT.unit_id, UNIT.fn, (("experiment_id", "fig3"),)
        )
        assert not cache.get(other)[0]

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part")
        entry = cache._entry_path(cache.key(UNIT))
        with open(entry, "wb") as fh:
            fh.write(b"not a pickle")
        hit, _ = cache.get(UNIT)
        assert not hit
        assert not os.path.exists(entry)

    def test_unit_id_mismatch_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part")
        entry = cache._entry_path(cache.key(UNIT))
        with open(entry, "wb") as fh:
            pickle.dump({"unit_id": "someone/else", "part": "x"}, fh)
        assert not cache.get(UNIT)[0]


class TestModes:
    def test_refresh_skips_reads_but_writes(self, tmp_path):
        make_cache(tmp_path).put(UNIT, "old")
        refreshing = make_cache(tmp_path, refresh=True)
        hit, _ = refreshing.get(UNIT)
        assert not hit
        refreshing.put(UNIT, "new")
        assert make_cache(tmp_path).get(UNIT) == (True, "new")

    def test_disabled_never_touches_disk(self, tmp_path):
        cache = ResultCache(
            path=str(tmp_path / "cache"), enabled=False, salt="s1"
        )
        cache.put(UNIT, "part")
        assert not cache.get(UNIT)[0]
        assert not os.path.exists(str(tmp_path / "cache"))

    def test_disabled_cache_helper_needs_no_salt(self):
        cache = disabled_cache()
        assert not cache.enabled
        assert cache.salt == ""


class TestCodeSalt:
    def test_stable_and_content_sensitive(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "b.py").write_text("y = 2\n")
        first = code_salt(str(pkg))
        # Memoised per root: clear the memo to force a re-walk.
        from repro.runner import cache as cache_module

        cache_module._SALT_CACHE.clear()
        assert code_salt(str(pkg)) == first
        cache_module._SALT_CACHE.clear()
        (pkg / "a.py").write_text("x = 3\n")
        assert code_salt(str(pkg)) != first
        cache_module._SALT_CACHE.clear()

    def test_ignores_non_python_files(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        from repro.runner import cache as cache_module

        cache_module._SALT_CACHE.clear()
        first = code_salt(str(pkg))
        cache_module._SALT_CACHE.clear()
        (pkg / "notes.txt").write_text("irrelevant")
        assert code_salt(str(pkg)) == first
        cache_module._SALT_CACHE.clear()

    def test_repo_salt_is_hex(self):
        salt = code_salt()
        assert len(salt) == 64
        int(salt, 16)
