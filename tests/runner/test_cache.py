"""Tests for the content-addressed work-unit result cache."""

import os
import pickle

import pytest

from repro.runner.cache import ResultCache, code_salt, disabled_cache
from repro.runner.workunits import WorkUnit

UNIT = WorkUnit(
    experiment_id="table2",
    unit_id="table2/whole",
    fn="repro.runner.workunits:run_whole",
    kwargs=(("experiment_id", "table2"),),
)


def make_cache(tmp_path, **kw) -> ResultCache:
    return ResultCache(path=str(tmp_path / "cache"), salt="s1", **kw)


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        hit, part = cache.get(UNIT)
        assert not hit and part is None
        cache.put(UNIT, {"rows": [1, 2], "summary": "x"})
        hit, part = cache.get(UNIT)
        assert hit
        assert part == {"rows": [1, 2], "summary": "x"}
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)

    def test_persists_across_instances(self, tmp_path):
        make_cache(tmp_path).put(UNIT, "part")
        hit, part = make_cache(tmp_path).get(UNIT)
        assert hit and part == "part"

    def test_preserves_non_json_types(self, tmp_path):
        """Pickle storage keeps float dict keys (Table 4 tails) intact."""
        cache = make_cache(tmp_path)
        tails = {90.0: 1.5, 99.9: 2.25}
        cache.put(UNIT, tails)
        assert cache.get(UNIT)[1] == tails


class TestInvalidation:
    def test_salt_changes_key(self, tmp_path):
        make_cache(tmp_path).put(UNIT, "old")
        stale = ResultCache(path=str(tmp_path / "cache"), salt="s2")
        hit, _ = stale.get(UNIT)
        assert not hit

    def test_kwargs_change_key(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "old")
        other = WorkUnit(
            UNIT.experiment_id, UNIT.unit_id, UNIT.fn, (("experiment_id", "fig3"),)
        )
        assert not cache.get(other)[0]

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part")
        entry = cache._entry_path(cache.key(UNIT))
        with open(entry, "wb") as fh:
            fh.write(b"not a pickle")
        hit, _ = cache.get(UNIT)
        assert not hit
        assert not os.path.exists(entry)

    def test_unit_id_mismatch_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part")
        entry = cache._entry_path(cache.key(UNIT))
        with open(entry, "wb") as fh:
            pickle.dump({"unit_id": "someone/else", "part": "x"}, fh)
        assert not cache.get(UNIT)[0]


class TestModes:
    def test_refresh_skips_reads_but_writes(self, tmp_path):
        make_cache(tmp_path).put(UNIT, "old")
        refreshing = make_cache(tmp_path, refresh=True)
        hit, _ = refreshing.get(UNIT)
        assert not hit
        refreshing.put(UNIT, "new")
        assert make_cache(tmp_path).get(UNIT) == (True, "new")

    def test_disabled_never_touches_disk(self, tmp_path):
        cache = ResultCache(
            path=str(tmp_path / "cache"), enabled=False, salt="s1"
        )
        cache.put(UNIT, "part")
        assert not cache.get(UNIT)[0]
        assert not os.path.exists(str(tmp_path / "cache"))

    def test_disabled_cache_helper_needs_no_salt(self):
        cache = disabled_cache()
        assert not cache.enabled
        assert cache.salt == ""


class TestCodeSalt:
    def test_stable_and_content_sensitive(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "b.py").write_text("y = 2\n")
        first = code_salt(str(pkg))
        # Memoised per root: clear the memo to force a re-walk.
        from repro.runner import cache as cache_module

        cache_module._SALT_CACHE.clear()
        assert code_salt(str(pkg)) == first
        cache_module._SALT_CACHE.clear()
        (pkg / "a.py").write_text("x = 3\n")
        assert code_salt(str(pkg)) != first
        cache_module._SALT_CACHE.clear()

    def test_ignores_non_python_files(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        from repro.runner import cache as cache_module

        cache_module._SALT_CACHE.clear()
        first = code_salt(str(pkg))
        cache_module._SALT_CACHE.clear()
        (pkg / "notes.txt").write_text("irrelevant")
        assert code_salt(str(pkg)) == first
        cache_module._SALT_CACHE.clear()

    def test_repo_salt_is_hex(self):
        salt = code_salt()
        assert len(salt) == 64
        int(salt, 16)


OTHER_UNITS = tuple(
    WorkUnit(
        experiment_id=experiment_id,
        unit_id=f"{experiment_id}/whole",
        fn="repro.runner.workunits:run_whole",
        kwargs=(("experiment_id", experiment_id),),
    )
    for experiment_id in ("fig3", "fig1")
)


class TestMaintenance:
    def test_stats_on_missing_dir(self, tmp_path):
        assert make_cache(tmp_path).stats() == {"entries": 0, "bytes": 0}

    def test_entries_and_stats(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part-a")
        cache.put(OTHER_UNITS[0], "part-b")
        entries = cache.entries()
        assert len(entries) == 2
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] == sum(size for _, size, _ in entries)
        assert stats["bytes"] > 0

    def test_clear(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part-a")
        cache.put(OTHER_UNITS[0], "part-b")
        assert cache.clear() == 2
        assert cache.stats() == {"entries": 0, "bytes": 0}
        # Empty fan-out directories are swept too.
        assert all(
            not os.path.isdir(os.path.join(cache.path, name))
            for name in os.listdir(cache.path)
        )

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        cache = make_cache(tmp_path)
        for index, unit in enumerate((UNIT,) + OTHER_UNITS):
            cache.put(unit, "part")
            entry = cache._entry_path(cache.key(unit))
            stamp = 1_000 + index
            os.utime(entry, (stamp, stamp))
        newest = cache._entry_path(cache.key(OTHER_UNITS[-1]))
        keep = os.stat(newest).st_size
        removed, remaining = cache.prune(max_bytes=keep)
        assert removed == 2
        assert remaining == keep
        assert [path for path, _, _ in cache.entries()] == [newest]

    def test_prune_within_budget_removes_nothing(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part")
        assert cache.prune(max_bytes=1 << 30) == (0, cache.stats()["bytes"])

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part")
        cache.put(OTHER_UNITS[0], "part")
        removed, remaining = cache.prune(max_bytes=0)
        assert (removed, remaining) == (2, 0)

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            make_cache(tmp_path).prune(max_bytes=-1)

    def test_hit_refreshes_entry_mtime(self, tmp_path):
        """LRU honesty: a read must count as recent use."""
        cache = make_cache(tmp_path)
        cache.put(UNIT, "part")
        entry = cache._entry_path(cache.key(UNIT))
        os.utime(entry, (1_000, 1_000))
        assert cache.get(UNIT)[0]
        assert os.stat(entry).st_mtime > 1_000


class TestLastRun:
    def test_round_trip(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.record_last_run({"hits": 3, "misses": 1, "wall_s": 2.5})
        assert make_cache(tmp_path).last_run() == {
            "hits": 3,
            "misses": 1,
            "wall_s": 2.5,
        }

    def test_missing_is_none(self, tmp_path):
        assert make_cache(tmp_path).last_run() is None

    def test_corrupt_is_none(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.record_last_run({"hits": 1})
        from repro.runner.cache import LAST_RUN_FILE_NAME

        with open(os.path.join(cache.path, LAST_RUN_FILE_NAME), "w") as fh:
            fh.write("not json")
        assert cache.last_run() is None

    def test_non_dict_payload_is_none(self, tmp_path):
        cache = make_cache(tmp_path)
        from repro.runner.cache import LAST_RUN_FILE_NAME

        os.makedirs(cache.path, exist_ok=True)
        with open(os.path.join(cache.path, LAST_RUN_FILE_NAME), "w") as fh:
            fh.write("[1, 2]")
        assert cache.last_run() is None

    def test_disabled_cache_never_writes(self, tmp_path):
        cache = ResultCache(
            path=str(tmp_path / "cache"), enabled=False, salt=""
        )
        cache.record_last_run({"hits": 1})
        assert not os.path.exists(cache.path)
