"""Tests for the measured per-unit cost model (costs.json)."""

import json
import os

import pytest

from repro.runner import ResultCache, run_experiments
from repro.runner.cache import disabled_cache
from repro.runner.costs import COSTS_FILE_NAME, CostModel
from repro.runner.workunits import WorkUnit, estimated_cost_s, ordered_by_cost


def model(tmp_path) -> CostModel:
    return CostModel(str(tmp_path / COSTS_FILE_NAME))


class TestPersistence:
    def test_round_trip(self, tmp_path):
        writer = model(tmp_path)
        writer.record({"fig3/whole": 1.23456, "table2/whole": 0.5})
        reader = model(tmp_path)
        assert reader.costs == {"fig3/whole": 1.235, "table2/whole": 0.5}
        assert reader.cost_for("fig3/whole") == 1.235
        assert reader.cost_for("nope") is None

    def test_merge_keeps_unmeasured_units(self, tmp_path):
        """A partial (--only) run must not forget the skipped units."""
        model(tmp_path).record({"a": 1.0, "b": 2.0})
        partial = model(tmp_path)
        partial.record({"b": 3.0})
        assert partial.costs == {"a": 1.0, "b": 3.0}
        assert model(tmp_path).costs == {"a": 1.0, "b": 3.0}

    def test_empty_record_writes_nothing(self, tmp_path):
        empty = model(tmp_path)
        empty.record({})
        assert not os.path.exists(empty.path)

    def test_missing_file_is_empty(self, tmp_path):
        assert model(tmp_path).costs == {}

    def test_corrupt_file_is_empty(self, tmp_path):
        broken = model(tmp_path)
        with open(broken.path, "w") as fh:
            fh.write("not json")
        assert broken.costs == {}

    def test_non_dict_payload_is_empty(self, tmp_path):
        listy = model(tmp_path)
        with open(listy.path, "w") as fh:
            json.dump([1, 2], fh)
        assert listy.costs == {}

    def test_non_numeric_values_are_dropped(self, tmp_path):
        mixed = model(tmp_path)
        with open(mixed.path, "w") as fh:
            json.dump({"a": "fast", "b": 2}, fh)
        assert mixed.costs == {"b": 2.0}

    def test_noop_model(self):
        noop = CostModel(None)
        assert noop.costs == {}
        noop.record({"a": 1.0})  # must not raise
        assert noop.costs == {"a": 1.0}  # in-memory only


class TestForCache:
    def test_enabled_cache_places_file_alongside_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), salt="s")
        costs = CostModel.for_cache(cache)
        assert costs.path == os.path.join(cache.path, COSTS_FILE_NAME)

    def test_disabled_cache_gets_noop_model(self):
        assert CostModel.for_cache(disabled_cache()).path is None


class TestScheduling:
    def test_measured_beats_reference_table(self):
        unit = WorkUnit("fig5b", "fig5b/RTVirt", "m:f")
        assert estimated_cost_s(unit) > 10  # hand-recorded table
        assert estimated_cost_s(unit, {"fig5b/RTVirt": 0.5}) == 0.5

    def test_family_and_default_fallbacks(self):
        table1_unit = WorkUnit("table1", "table1/X/RTVirt", "m:f")
        unknown = WorkUnit("fig9", "fig9/whole", "m:f")
        assert estimated_cost_s(table1_unit) == 0.5
        assert estimated_cost_s(unknown) == 0.15

    def test_measured_costs_reorder_lpt(self):
        fast = WorkUnit("a", "a/1", "m:f")
        slow = WorkUnit("b", "b/1", "m:f")
        assert ordered_by_cost([fast, slow]) == [fast, slow]  # id tiebreak
        measured = {"a/1": 0.1, "b/1": 9.0}
        assert ordered_by_cost([fast, slow], measured) == [slow, fast]


class TestExecutorIntegration:
    def test_run_persists_measured_walls(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiments(
            ["table2", "fig3"], cache=ResultCache(cache_dir, salt="s")
        )
        recorded = CostModel(os.path.join(cache_dir, COSTS_FILE_NAME)).costs
        assert set(recorded) == {"table2/whole", "fig3/whole"}
        assert all(wall >= 0 for wall in recorded.values())

    def test_fully_cached_run_keeps_previous_costs(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_experiments(["table2"], cache=ResultCache(cache_dir, salt="s"))
        before = CostModel(os.path.join(cache_dir, COSTS_FILE_NAME)).costs
        assert before
        run_experiments(["table2"], cache=ResultCache(cache_dir, salt="s"))
        after = CostModel(os.path.join(cache_dir, COSTS_FILE_NAME)).costs
        assert after == before
