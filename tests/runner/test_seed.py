"""Seed plumbing: CLI/runner seed overrides reach the robustness units
and participate in the result-cache key."""

from repro.experiments import registry
from repro.runner import run_experiments
from repro.runner.cache import ResultCache
from repro.runner.workunits import build_plans, plan_for

ROBUSTNESS_IDS = [i for i in registry.all_ids() if i.startswith("robustness_")]


class TestPlanSeeds:
    def test_registry_contains_robustness_family(self):
        assert len(ROBUSTNESS_IDS) == 5

    def test_default_seed_in_unit_kwargs(self):
        plan = plan_for("robustness_pcpu_fail")
        for unit in plan.units:
            assert dict(unit.kwargs)["seed"] == registry.ROBUSTNESS_SEED

    def test_seed_override_lands_in_every_unit(self):
        plan = plan_for("robustness_vm_churn", seed=424242)
        for unit in plan.units:
            assert dict(unit.kwargs)["seed"] == 424242

    def test_seed_changes_cache_fingerprint(self):
        base = plan_for("robustness_surge").units[0]
        seeded = plan_for("robustness_surge", seed=424242).units[0]
        assert base.fingerprint("salt") != seeded.fingerprint("salt")
        assert base.fingerprint("salt") == plan_for("robustness_surge").units[
            0
        ].fingerprint("salt")

    def test_seed_does_not_disturb_other_plans(self):
        default = build_plans(["table2"], seed=424242)[0]
        assert default.units == build_plans(["table2"])[0].units

    def test_one_unit_per_scheduler(self):
        plan = plan_for("robustness_jitter")
        assert [u.unit_id for u in plan.units] == [
            "robustness_jitter/RTVirt",
            "robustness_jitter/RT-Xen",
            "robustness_jitter/Credit",
        ]


class TestSeededRuns:
    def test_same_seed_reproduces_rows(self):
        first = run_experiments(["robustness_jitter"], jobs=1, seed=5)
        second = run_experiments(["robustness_jitter"], jobs=1, seed=5)
        assert first.reports[0].rows == second.reports[0].rows

    def test_seeded_runs_never_share_cache_entries(self, tmp_path):
        cache = ResultCache(path=str(tmp_path / "cache"))
        run_experiments(["robustness_jitter"], jobs=1, cache=cache, seed=5)
        assert cache.hits == 0
        cache2 = ResultCache(path=str(tmp_path / "cache"))
        run_experiments(["robustness_jitter"], jobs=1, cache=cache2, seed=6)
        assert cache2.hits == 0  # different seed: all misses
        cache3 = ResultCache(path=str(tmp_path / "cache"))
        report = run_experiments(["robustness_jitter"], jobs=1, cache=cache3, seed=5)
        assert cache3.hits == len(report.reports[0].rows) == 3  # same seed: all hits


class TestCliSeed:
    def test_run_all_seed_flag(self, capsys):
        from repro.cli import main

        rc = main(
            ["run-all", "--only", "robustness_jitter", "--no-cache", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "robustness_jitter" in out

    def test_run_all_glob_expansion(self, capsys):
        from repro.cli import main

        rc = main(["run-all", "--only", "robustness_*", "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        for experiment_id in ROBUSTNESS_IDS:
            assert experiment_id in out

    def test_run_all_bad_glob(self, capsys):
        from repro.cli import main

        assert main(["run-all", "--only", "nothing_*"]) == 2
