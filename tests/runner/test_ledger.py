"""Tests for the persistent run ledger (``runs/<stamp>/manifest.json``)."""

import json
import os

from repro.runner import ledger


class TestRunDirs:
    def test_new_run_dir_creates_stamped_dir(self, tmp_path):
        root = str(tmp_path / "runs")
        stamp, path = ledger.new_run_dir(root)
        assert os.path.isdir(path)
        assert os.path.basename(path) == stamp
        # UTC YYYYmmdd-HHMMSS
        date, clock = stamp.split("-")[:2]
        assert len(date) == 8 and date.isdigit()
        assert len(clock) == 6 and clock.isdigit()

    def test_collisions_get_counter_suffixes(self, tmp_path):
        root = str(tmp_path / "runs")
        stamps = [ledger.new_run_dir(root)[0] for _ in range(3)]
        assert len(set(stamps)) == 3
        assert stamps[1].startswith(stamps[0])

    def test_remove_run(self, tmp_path):
        root = str(tmp_path / "runs")
        _stamp, path = ledger.new_run_dir(root)
        (tmp_path / "runs" / os.path.basename(path) / "x.bin").write_bytes(
            b"x" * 10
        )
        ledger.remove_run(path)
        assert not os.path.exists(path)
        ledger.remove_run(path)  # idempotent


class TestManifest:
    def test_write_read_round_trip(self, tmp_path):
        run_dir = str(tmp_path)
        manifest = {"stamp": "s", "jobs": 2, "experiments": {"fig4": {"rows": 9}}}
        path = ledger.write_manifest(run_dir, manifest)
        assert os.path.basename(path) == ledger.MANIFEST_NAME
        assert ledger.read_manifest(run_dir) == manifest
        # atomic write leaves no temp file behind
        assert os.listdir(run_dir) == [ledger.MANIFEST_NAME]

    def test_read_missing_or_corrupt_returns_none(self, tmp_path):
        assert ledger.read_manifest(str(tmp_path)) is None
        (tmp_path / ledger.MANIFEST_NAME).write_text("{nope")
        assert ledger.read_manifest(str(tmp_path)) is None


class TestRowsHash:
    ROWS = [{"task": "t0", "miss_ratio": 0.25, "released": 100}]

    def test_stable_across_key_order(self):
        reordered = [
            {"released": 100, "miss_ratio": 0.25, "task": "t0"}
        ]
        assert ledger.rows_hash(self.ROWS) == ledger.rows_hash(reordered)

    def test_sensitive_to_float_changes(self):
        changed = [dict(self.ROWS[0], miss_ratio=0.25000001)]
        assert ledger.rows_hash(self.ROWS) != ledger.rows_hash(changed)

    def test_tuple_and_list_rows_agree(self):
        assert ledger.rows_hash([(1, 2.5)]) == ledger.rows_hash([[1, 2.5]])

    def test_is_a_sha256_hex(self):
        digest = ledger.rows_hash(self.ROWS)
        assert len(digest) == 64
        int(digest, 16)


class TestEntries:
    def _make_run(self, root, name, size, mtime):
        run_dir = os.path.join(root, name)
        os.makedirs(run_dir)
        path = os.path.join(run_dir, "blob.bin")
        with open(path, "wb") as handle:
            handle.write(b"x" * size)
        os.utime(path, (mtime, mtime))
        return run_dir

    def test_entries_oldest_first_with_sizes(self, tmp_path):
        root = str(tmp_path / "runs")
        os.makedirs(root)
        new = self._make_run(root, "b-new", 30, 2_000_000.0)
        old = self._make_run(root, "a-old", 70, 1_000_000.0)
        entries = ledger.run_entries(root)
        assert [entry[0] for entry in entries] == [old, new]
        assert [entry[1] for entry in entries] == [70, 30]

    def test_missing_root_is_empty(self, tmp_path):
        assert ledger.run_entries(str(tmp_path / "nope")) == []
        stats = ledger.runs_stats(str(tmp_path / "nope"))
        assert stats["runs"] == 0
        assert stats["total_bytes"] == 0

    def test_stats_totals(self, tmp_path):
        root = str(tmp_path / "runs")
        os.makedirs(root)
        self._make_run(root, "r1", 40, 1_000_000.0)
        self._make_run(root, "r2", 60, 2_000_000.0)
        stats = ledger.runs_stats(root)
        assert stats == {"root": root, "runs": 2, "total_bytes": 100}

    def test_stray_files_in_root_ignored(self, tmp_path):
        root = str(tmp_path / "runs")
        os.makedirs(root)
        (tmp_path / "runs" / "README").write_text("not a run")
        assert ledger.run_entries(root) == []


class TestGitSha:
    def test_in_repo_returns_full_sha(self):
        sha = ledger.git_sha(os.path.dirname(os.path.abspath(__file__)))
        assert sha is not None
        assert len(sha) == 40
        int(sha, 16)

    def test_outside_repo_returns_none(self, tmp_path):
        assert ledger.git_sha(str(tmp_path)) is None
