"""Unit and behaviour tests for the RT-Xen baseline system."""

import pytest

from repro.baselines.configs import (
    credit_weight_for_share,
    rtxen_interface_for_rta,
    rtxen_interfaces_for_group,
)
from repro.baselines.rtxen import RTXenSystem
from repro.guest.task import Task
from repro.host.costs import ZERO_COSTS
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec
from repro.workloads.periodic import TABLE1_GROUPS, RTASpec, PeriodicDriver


class TestConfiguration:
    def test_vm_needs_interfaces(self):
        system = RTXenSystem(pcpu_count=1)
        with pytest.raises(ConfigurationError):
            system.create_vm("v", interfaces=[])

    def test_interfaces_are_static(self):
        system = RTXenSystem(pcpu_count=1, cost_model=ZERO_COSTS)
        vm = system.create_vm("v", interfaces=[(msec(4), msec(5))])
        task = Task("t", msec(1), msec(10))
        system.register_rta(vm, task)
        # Guest registration must not change the CSA-configured server.
        assert vm.vcpus[0].budget_ns == msec(4)
        assert vm.vcpus[0].period_ns == msec(5)

    def test_partitioned_host_option(self):
        from repro.host.edf import PartitionedEDFHostScheduler

        system = RTXenSystem(pcpu_count=2, cost_model=ZERO_COSTS, host="pedf")
        assert isinstance(system.scheduler, PartitionedEDFHostScheduler)
        # A VM batch is placed first-fit decreasing: the two large
        # servers land on distinct PCPUs with the small ones beside
        # them, a packing arrival-order first fit would refuse.
        vm = system.create_vm(
            "v",
            interfaces=[
                (msec(4), msec(10)),
                (msec(4), msec(10)),
                (msec(6), msec(10)),
                (msec(6), msec(10)),
            ],
        )
        homes = [system.scheduler._home[v.uid] for v in vm.vcpus]
        assert homes[2] != homes[3]
        assert homes[0] != homes[1]

    def test_unknown_host_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            RTXenSystem(pcpu_count=1, host="credit")

    def test_multi_vcpu_vm(self):
        system = RTXenSystem(pcpu_count=2, cost_model=ZERO_COSTS)
        vm = system.create_vm(
            "v", interfaces=[(msec(4), msec(5)), (msec(2), msec(5))]
        )
        assert len(vm.vcpus) == 2
        assert vm.vcpus[1].budget_ns == msec(2)


class TestConfigHelpers:
    def test_group_interfaces_count(self):
        ifaces = rtxen_interfaces_for_group(TABLE1_GROUPS["H-Dec"], min_period=msec(1))
        assert len(ifaces) == 4

    def test_interface_pessimism(self):
        spec = RTASpec(13, 20)
        iface = rtxen_interface_for_rta(spec, min_period=msec(1))
        assert iface.bandwidth >= spec.utilization

    def test_credit_weight_formula(self):
        w = credit_weight_for_share(0.5, peers=1, peer_weight=256)
        assert w == 256  # equal share against one peer

    def test_credit_weight_bounds(self):
        with pytest.raises(ValueError):
            credit_weight_for_share(0.0, peers=1)
        with pytest.raises(ValueError):
            credit_weight_for_share(1.0, peers=1)


class TestBehaviour:
    def test_csa_interface_meets_deadlines(self):
        spec = RTASpec(13, 20)
        iface = rtxen_interface_for_rta(spec, min_period=msec(1))
        system = RTXenSystem(pcpu_count=1, cost_model=ZERO_COSTS)
        vm = system.create_vm("v", interfaces=[(iface.budget, iface.period)])
        task = Task("t", spec.slice_ns, spec.period_ns)
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task).start()
        system.run(msec(400))
        system.finalize()
        assert task.stats.missed == 0

    def test_underprovisioned_interface_misses(self):
        system = RTXenSystem(pcpu_count=1, cost_model=ZERO_COSTS)
        # Raw-bandwidth server without CSA pessimism: (13, 20) ms task on a
        # (0.65 * 4 = 2.6, 4) ms server is NOT guaranteed; with a competing
        # server occupying the CPU the task can miss.
        vm = system.create_vm("v", interfaces=[(msec(2.6), msec(4))])
        task = Task("t", msec(13), msec(20))
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task).start()
        other = system.create_vm("w", interfaces=[(msec(1.4), msec(4))])
        filler = Task("f", msec(6.5), msec(20))
        system.register_rta(other, filler)
        PeriodicDriver(system.engine, other, filler).start()
        system.run(msec(400))
        system.finalize()
        # Not asserting misses (phasing-dependent); assert bounded usage:
        # the server cannot exceed its bandwidth.
        assert task.stats.released >= 19

    def test_background_vm_runs_in_leftover(self):
        from repro.simcore.trace import Trace

        trace = Trace()
        system = RTXenSystem(pcpu_count=1, cost_model=ZERO_COSTS, trace=trace)
        vm = system.create_vm("v", interfaces=[(msec(5), msec(10))])
        task = Task("t", msec(5), msec(10))
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task).start()
        system.create_background_vm("bg")
        system.run(msec(100))
        assert trace.vcpu_usage_between("bg.vcpu0", 0, msec(100)) >= msec(45)
