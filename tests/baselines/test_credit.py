"""Unit and behaviour tests for the Credit scheduler."""

import pytest

from repro.baselines.credit import BOOST, OVER, UNDER, CreditScheduler, CreditSystem
from repro.guest.task import Task, TaskKind
from repro.host.costs import ZERO_COSTS
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec, usec
from repro.simcore.trace import Trace


def make_system(pcpus=1, trace=None, **kw):
    kw.setdefault("cost_model", ZERO_COSTS)
    kw.setdefault("timeslice_ns", msec(1))
    kw.setdefault("ratelimit_ns", usec(500))
    return CreditSystem(pcpu_count=pcpus, trace=trace, **kw)


class TestConfiguration:
    def test_invalid_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            CreditScheduler(timeslice_ns=0)
        with pytest.raises(ConfigurationError):
            CreditScheduler(ratelimit_ns=-1)

    def test_invalid_weight_rejected(self):
        system = make_system()
        vm = system.create_vm("a")
        with pytest.raises(ConfigurationError):
            system.scheduler.add_vcpu(vm.vcpus[0], weight=0)

    def test_double_add_rejected(self):
        system = make_system()
        vm = system.create_vm("a")
        with pytest.raises(ConfigurationError):
            system.scheduler.add_vcpu(vm.vcpus[0], weight=256)


class TestProportionalShare:
    def test_equal_weights_near_equal_time(self):
        trace = Trace()
        system = make_system(trace=trace)
        for i in range(2):
            system.create_background_vm(f"bg{i}")
        system.run(msec(300))
        u0 = trace.vcpu_usage_between("bg0.vcpu0", 0, msec(300))
        u1 = trace.vcpu_usage_between("bg1.vcpu0", 0, msec(300))
        assert abs(u0 - u1) < msec(40)

    def test_work_conserving_single_vm(self):
        trace = Trace()
        system = make_system(trace=trace)
        system.create_background_vm("solo")
        system.run(msec(50))
        assert trace.vcpu_usage_between("solo.vcpu0", 0, msec(50)) == msec(50)

    def test_multiprocessor_spreads(self):
        trace = Trace()
        system = make_system(pcpus=2, trace=trace)
        for i in range(2):
            system.create_background_vm(f"bg{i}")
        system.run(msec(50))
        for i in range(2):
            assert trace.vcpu_usage_between(f"bg{i}.vcpu0", 0, msec(50)) > msec(45)


class TestBoost:
    def test_wake_preempts_after_ratelimit(self):
        system = make_system()
        bg = system.create_background_vm("bg")
        vm = system.create_vm("rt")
        task = Task("t", usec(100), msec(5), TaskKind.SPORADIC)
        vm.register_task(task)
        system.machine.start()
        system.engine.at(msec(10), lambda: vm.release_job(task, now=msec(10)))
        system.run_until(msec(15))
        system.finalize()
        assert task.stats.completed == 1
        # Wake latency bounded by the 500 µs ratelimit (plus the job).
        assert task.stats.response_times[0] <= usec(700)

    def test_no_boost_for_queued_vcpu(self):
        system = make_system()
        sched = system.scheduler
        vm = system.create_vm("v")
        other = system.create_background_vm("bg")
        task = Task("t", usec(100), msec(5), TaskKind.SPORADIC)
        vm.register_task(task)
        system.machine.start()
        system.run(msec(1))
        info = sched._info[vm.vcpus[0].uid]
        info.queued = True  # simulate already-runnable
        sched.on_vcpu_wake(vm.vcpus[0])
        assert info.priority != BOOST

    def test_tick_sampling_debits_runner(self):
        system = make_system()
        system.create_background_vm("bg")
        system.run(msec(25))
        assert system.scheduler.tick_samples.get("bg.vcpu0", 0) == 2

    def test_parked_idler_loses_boost_after_sample(self):
        sched = CreditScheduler()
        # Direct state transition check for the parking rule.
        system = make_system()
        vm = system.create_vm("v")
        info = system.scheduler._info[vm.vcpus[0].uid]
        info.credits = 0
        info.active = False
        info.credits -= system.scheduler.tick_ns  # sampled while parked
        assert info.credits < 0  # -> OVER at the next priority recompute


class TestLatencyShape:
    def test_contended_tail_exceeds_slo_but_mean_low(self):
        # Miniature Figure 5a: the shape must hold even in a short run.
        from repro.simcore.rng import RandomStreams
        from repro.workloads.memcached import MemcachedService
        from repro.workloads.background import add_background_vms
        from repro.baselines.configs import credit_weight_for_share

        streams = RandomStreams(5)
        system = CreditSystem(
            pcpu_count=2,
            timeslice_ns=msec(1),
            ratelimit_ns=usec(500),
            wake_overhead_ns=usec(62),
        )
        vm = system.create_vm("mc", weight=credit_weight_for_share(0.26, peers=19))
        svc = MemcachedService(system.engine, vm, streams.stream("mc")).start()
        add_background_vms(system, 19)
        system.run(msec(20_000))
        system.finalize()
        assert svc.latency.mean_usec() < 500.0
        assert svc.latency.p999_usec() > 500.0
