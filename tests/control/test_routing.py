"""Every bandwidth/placement mutation routes through the actuation port.

These tests tap the system's port with an observer and drive the normal
lifecycle paths (RTA registration, adjustment, teardown, PCPU faults),
asserting the expected typed actions — and only typed actions — carry
the mutations.
"""

from fractions import Fraction

import pytest

from repro.control import actions as A
from repro.core.system import RTVirtSystem
from repro.guest.syscall import sched_adjust, sched_setattr, sched_unregister
from repro.host.costs import ZERO_COSTS
from repro.simcore.time import msec


def observed_system(pcpus=1):
    system = RTVirtSystem(pcpu_count=pcpus, cost_model=ZERO_COSTS, slack_ns=0)
    seen = []
    system.control.observe(lambda a, r: seen.append((a.kind, r)))
    return system, seen


class TestRegistrationPath:
    def test_register_routes_inc_bw_and_admit(self):
        system, seen = observed_system()
        vm = system.create_vm("vm")
        sched_setattr(vm, "vm.rta", runtime_ns=msec(2), period_ns=msec(10))
        kinds = [k for k, _ in seen]
        assert A.IncBandwidth.kind in kinds
        assert A.AdmitRequest.kind in kinds
        # The observer audits the verdicts the mechanisms returned.
        assert all(r for k, r in seen if k == A.AdmitRequest.kind)
        assert system.admission.total_granted == Fraction(1, 5)

    def test_rejected_admit_is_observed_with_result(self):
        from repro.simcore.errors import AdmissionError

        system, seen = observed_system(pcpus=1)
        vm = system.create_vm("vm")
        sched_setattr(vm, "vm.rta0", runtime_ns=msec(8), period_ns=msec(10))
        seen.clear()
        vm2 = system.create_vm("vm2")
        with pytest.raises(AdmissionError):
            sched_setattr(vm2, "vm2.rta0", runtime_ns=msec(8), period_ns=msec(10))
        admits = [r for k, r in seen if k == A.AdmitRequest.kind]
        assert admits and not any(admits)
        assert system.admission.total_granted == Fraction(4, 5)

    def test_adjust_and_unregister_route_decrease(self):
        system, seen = observed_system()
        vm = system.create_vm("vm")
        task = sched_setattr(vm, "vm.rta", runtime_ns=msec(4), period_ns=msec(10))
        seen.clear()
        sched_adjust(vm, task, runtime_ns=msec(2), period_ns=msec(10))
        kinds = [k for k, _ in seen]
        assert A.DecBandwidth.kind in kinds or A.IncBandwidth.kind in kinds
        seen.clear()
        sched_unregister(vm, task)
        kinds = [k for k, _ in seen]
        assert A.DecBandwidth.kind in kinds
        assert system.admission.total_granted == 0


class TestLifecyclePaths:
    def test_shutdown_routes_release(self):
        system, seen = observed_system()
        vm = system.create_vm("vm")
        sched_setattr(vm, "vm.rta", runtime_ns=msec(2), period_ns=msec(10))
        seen.clear()
        system.shutdown_vm(vm)
        kinds = [k for k, _ in seen]
        assert A.AdmitRelease.kind in kinds
        assert system.admission.total_granted == 0

    def test_pcpu_fail_routes_fault_and_shed(self):
        system, seen = observed_system(pcpus=2)
        for i in range(2):
            vm = system.create_vm(f"vm{i}")
            sched_setattr(
                vm, f"vm{i}.rta", runtime_ns=msec(7), period_ns=msec(10)
            )
        seen.clear()
        system.fail_pcpu(1)
        kinds = [k for k, _ in seen]
        assert A.FailPcpu.kind in kinds
        assert A.ShedToCapacity.kind in kinds
        # The shed's executor result (revoked uids) reaches the observer.
        revoked = next(r for k, r in seen if k == A.ShedToCapacity.kind)
        assert len(revoked) == 1
        assert system.admission.total_granted <= system.admission.capacity

    def test_pcpu_recover_routes_through_port(self):
        system, seen = observed_system(pcpus=2)
        system.fail_pcpu(1)
        seen.clear()
        system.recover_pcpu(1)
        assert A.RecoverPcpu.kind in [k for k, _ in seen]


class TestNoObserverFastPath:
    def test_fresh_system_has_no_observers(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("vm")
        sched_setattr(vm, "vm.rta", runtime_ns=msec(2), period_ns=msec(10))
        system.run(msec(20))
        # No policy attached: the port must stay on the unobserved fast
        # path for the whole run (the determinism gate relies on it).
        assert not system.control.observed
