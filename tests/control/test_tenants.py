"""Unit tests for tenant SLOs and the online credit ledger."""

import pytest

from repro.control.tenants import (
    W_BUDGET,
    W_TAIL,
    W_VIOLATION,
    CreditLedger,
    TenantSLO,
    default_task_owner,
)
from repro.simcore.errors import ConfigurationError
from repro.telemetry import events as T
from repro.telemetry.bus import TelemetryBus
from repro.simcore.time import usec


def hit(task, time=0):
    return T.DeadlineHitEvent(time, task, 0, 0, time)


def miss(task, time=0):
    return T.DeadlineMissEvent(time, task, 0, 0, time, 1)


def latency(task, latency_ns, time=0):
    return T.JobLatencyEvent(time, task, 0, latency_ns)


def shed(vm, time=0):
    return T.AdmissionDecisionEvent(
        time, "host", "shed", f"{vm}-v0", False, "revoked 1/2", vm, ""
    )


def make_ledger(**kw):
    slos = kw.pop(
        "slos",
        [TenantSLO("gold", 500.0, weight=4), TenantSLO("bronze", 500.0)],
    )
    vm_tenant = kw.pop("vm_tenant", {"g0": "gold", "b0": "bronze"})
    return CreditLedger(slos, vm_tenant, **kw)


class TestSLOValidation:
    def test_non_positive_target_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantSLO("t", 0.0)

    def test_error_budget_outside_unit_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantSLO("t", 500.0, error_budget=1.5)

    def test_weight_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantSLO("t", 500.0, weight=0)

    def test_unknown_tenant_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            CreditLedger([TenantSLO("gold", 500.0)], {"vm": "platinum"})

    def test_default_task_owner_strips_rta_suffix(self):
        assert default_task_owner("vm3.rta1") == "vm3"
        assert default_task_owner("bare") == "bare"


class TestScoring:
    def test_fresh_tenant_scores_full_weighted_credit(self):
        ledger = make_ledger()
        assert ledger.credit("gold") == pytest.approx(4.0)
        assert ledger.credit("bronze") == pytest.approx(1.0)

    def test_misses_burn_the_error_budget(self):
        ledger = make_ledger()
        for _ in range(99):
            ledger._on_hit(hit("b0.rta"))
        ledger._on_miss(miss("b0.rta"))
        # 1% miss ratio == the default 1% error budget: fully spent.
        assert ledger.credit("bronze") == pytest.approx(W_VIOLATION + W_TAIL)

    def test_violations_damp_repeat_offenders(self):
        ledger = make_ledger()
        ledger._on_admission(shed("b0"))
        expected = W_BUDGET + W_VIOLATION / 2 + W_TAIL
        assert ledger.credit("bronze") == pytest.approx(expected)

    def test_tail_term_tracks_p99_over_target(self):
        ledger = make_ledger()
        for _ in range(10):
            ledger._on_latency(latency("b0.rta", usec(1000)))
        # p99 is 1000 µs against a 500 µs target: timeliness halves.
        expected = W_BUDGET + W_VIOLATION + W_TAIL * 0.5
        assert ledger.credit("bronze") == pytest.approx(expected)

    def test_guest_and_commit_decisions_are_not_violations(self):
        ledger = make_ledger()
        ledger._on_admission(
            T.AdmissionDecisionEvent(0, "guest", "shed", "s", False, "", "b0", "")
        )
        ledger._on_admission(
            T.AdmissionDecisionEvent(0, "host", "commit", "s", True, "", "b0", "")
        )
        assert ledger.stats("bronze")["violations"] == 0

    def test_unmapped_vm_events_are_ignored(self):
        ledger = make_ledger()
        ledger._on_miss(miss("stranger.rta"))
        ledger._on_admission(shed("stranger"))
        assert ledger.stats("gold")["missed"] == 0
        assert ledger.stats("bronze")["violations"] == 0


class TestBusWiring:
    def test_attach_streams_bus_events(self):
        bus = TelemetryBus()
        ledger = make_ledger().attach(bus)
        bus.publish(T.DEADLINE_HIT, hit("g0.rta"))
        bus.publish(T.DEADLINE_MISS, miss("b0.rta"))
        bus.publish(T.JOB_LATENCY, latency("g0.rta", usec(100)))
        bus.publish(T.ADMISSION_DECISION, shed("b0"))
        assert ledger.stats("gold") == {
            "met": 1, "missed": 0, "violations": 0, "samples": 1
        }
        assert ledger.stats("bronze") == {
            "met": 0, "missed": 1, "violations": 1, "samples": 0
        }

    def test_detach_stops_the_stream(self):
        bus = TelemetryBus()
        ledger = make_ledger().attach(bus)
        ledger.detach()
        bus.publish(T.DEADLINE_MISS, miss("b0.rta"))
        assert ledger.stats("bronze")["missed"] == 0


class TestShedOrder:
    def test_unprotected_then_ascending_credit_newest_first(self):
        ledger = make_ledger()
        for _ in range(5):
            ledger._on_miss(miss("b0.rta"))
        uids = [1, 2, 3, 4]
        owners = {1: "g0", 2: "b0", 3: "free", 4: "b0"}
        # Unmapped "free" sheds first (no SLO protects it), then bronze
        # (cheapest credit) newest VCPU first, gold last.
        assert ledger.shed_order(uids, owners) == [3, 4, 2, 1]

    def test_order_is_input_order_independent(self):
        ledger = make_ledger()
        uids = [5, 9, 2, 7]
        owners = {5: "g0", 9: "b0", 2: "g0", 7: "b0"}
        forward = ledger.shed_order(list(uids), owners)
        backward = ledger.shed_order(list(reversed(uids)), owners)
        assert forward == backward == [9, 7, 5, 2]
