"""Tests for the blame-driven feedback controller.

Classification follows the offline blame taxonomy's precedence; the
actuations it emits go through the port and must land in the admission
state and the VCPU parameters; and a *broken* policy that bypasses
admission must be caught by the invariant checker, not silently trusted.
"""

from fractions import Fraction
from types import SimpleNamespace

import pytest

from repro.control import actions as A
from repro.control.controller import (
    EXHAUSTION,
    HYPERCALL_FAULT,
    PREEMPTION,
    THROTTLE,
    FeedbackController,
)
from repro.control.tenants import CreditLedger, TenantSLO
from repro.core.system import RTVirtSystem
from repro.faults import InvariantChecker, InvariantViolation
from repro.guest.syscall import sched_setattr
from repro.host.costs import ZERO_COSTS
from repro.simcore.time import msec


def rtvirt(pcpus=1):
    return RTVirtSystem(pcpu_count=pcpus, cost_model=ZERO_COSTS, slack_ns=0)


def vm_with_rta(system, name, runtime_ms, period_ms):
    vm = system.create_vm(name)
    task = sched_setattr(
        vm, f"{name}.rta", runtime_ns=msec(runtime_ms), period_ns=msec(period_ms)
    )
    return vm, task.vcpu


class TestClassification:
    """Precedence: shed > deplete > fault > inferred exhaustion > cap."""

    def vcpu(self, budget_ms=2, period_ms=10):
        return SimpleNamespace(
            name="v", budget_ns=msec(budget_ms), period_ns=msec(period_ms)
        )

    def test_shed_beats_everything(self):
        ctl = FeedbackController(system=None)
        ctl._shed_vcpus.add("v")
        ctl._depletes["v"] = 3
        ctl._fault_seen = True
        assert ctl._classify(self.vcpu()) == THROTTLE

    def test_deplete_beats_fault(self):
        ctl = FeedbackController(system=None)
        ctl._depletes["v"] = 1
        ctl._fault_seen = True
        assert ctl._classify(self.vcpu()) == EXHAUSTION

    def test_fault_window(self):
        ctl = FeedbackController(system=None)
        ctl._fault_seen = True
        assert ctl._classify(self.vcpu()) == HYPERCALL_FAULT

    def test_growable_reservation_is_inferred_exhaustion(self):
        ctl = FeedbackController(system=None)
        assert ctl._classify(self.vcpu(budget_ms=2)) == EXHAUSTION

    def test_at_cap_is_displacement(self):
        ctl = FeedbackController(system=None)
        assert ctl._classify(self.vcpu(budget_ms=10)) == PREEMPTION


class TestBump:
    def test_bump_grows_budget_one_step(self):
        system = rtvirt()
        vm, vcpu = vm_with_rta(system, "vm", 4, 10)
        ctl = FeedbackController(system)
        before = vcpu.budget_ns
        ctl._bump(vm, vcpu, now=0)
        assert vcpu.budget_ns == before * 5 // 4
        assert system.admission.granted(vcpu) == Fraction(
            vcpu.budget_ns, vcpu.period_ns
        )
        assert ctl.actions[-1] == (0, EXHAUSTION, vcpu.name, "inc_bw")

    def test_bump_converges_to_the_period_cap(self):
        system = rtvirt()
        vm, vcpu = vm_with_rta(system, "vm", 2, 10)
        ctl = FeedbackController(system)
        for _ in range(20):
            ctl._bump(vm, vcpu, now=0)
        assert vcpu.budget_ns == vcpu.period_ns
        assert ctl.action_counts()["at-cap"] > 0
        # Multiplicative steps: the cap is reached in few actuations.
        assert ctl.action_counts()["inc_bw"] < 12

    def test_bump_without_ledger_reports_rejection(self):
        system = rtvirt()
        vm_a, vcpu_a = vm_with_rta(system, "vm_a", 6, 10)
        vm_with_rta(system, "vm_b", 4, 10)  # host is now full
        ctl = FeedbackController(system)
        ctl._bump(vm_a, vcpu_a, now=0)
        assert ctl.actions[-1][3] == "rejected"
        assert vcpu_a.budget_ns == msec(6)  # nothing changed

    def test_bump_with_ledger_sheds_cheapest_tenant(self):
        system = rtvirt()
        vm_a, vcpu_a = vm_with_rta(system, "g0", 6, 10)
        vm_b, vcpu_b = vm_with_rta(system, "b0", 4, 10)
        ledger = CreditLedger(
            [TenantSLO("gold", 500.0, weight=4), TenantSLO("bronze", 500.0)],
            {"g0": "gold", "b0": "bronze"},
        )
        ctl = FeedbackController(system, ledger=ledger)
        ctl._bump(vm_a, vcpu_a, now=0)
        # Bronze paid for gold's growth, through bronze's own port.
        assert system.admission.granted(vcpu_b) == 0
        assert vcpu_a.budget_ns == msec(6) * 5 // 4
        counts = ctl.action_counts()
        assert counts["shed_tenant"] == 1 and counts["inc_bw"] == 1


class TestReclaim:
    def test_readmit_after_shed(self):
        from repro.guest.syscall import sched_unregister

        system = rtvirt(pcpus=2)
        # Attach first so the controller sees the registration-time
        # VCPU_PARAMS events (they seed the parameters to re-admit).
        ctl = FeedbackController(system).attach()
        vm_a = system.create_vm("vm_a")
        task_a = sched_setattr(vm_a, "vm_a.rta", msec(6), msec(10))
        vm_b, vcpu_b = vm_with_rta(system, "vm_b", 6, 10)
        system.fail_pcpu(1)  # capacity 1 vs 1.2 granted: vm_b sheds
        assert system.admission.granted(vcpu_b) == 0
        assert vcpu_b.name in ctl._shed_vcpus  # the evidence stream saw it
        sched_unregister(vm_a, task_a)  # headroom returns
        ctl._reclaim(vm_b, vcpu_b, now=system.engine.now)
        assert ctl.actions[-1][3] == "readmit"
        assert system.admission.granted(vcpu_b) == Fraction(3, 5)
        assert vcpu_b.budget_ns == msec(6)
        ctl.detach()

    def test_reclaim_without_params_is_a_noop(self):
        system = rtvirt()
        vm, vcpu = vm_with_rta(system, "vm", 2, 10)
        ctl = FeedbackController(system)  # never attached: no params seen
        ctl._reclaim(vm, vcpu, now=0)
        assert ctl.actions[-1][3] == "no-params"


class TestWiring:
    def test_attach_ticks_and_detach_stops(self):
        system = rtvirt()
        vm_with_rta(system, "vm", 2, 10)
        ctl = FeedbackController(system, period_ns=msec(5)).attach()
        system.run(msec(20))
        assert ctl._tick_event is not None
        ctl.detach()
        assert ctl._tick_event is None
        system.run(msec(20))  # no tick fires after detach

    def test_action_counts_keys_sorted(self):
        ctl = FeedbackController(system=None)
        ctl.actions = [(0, "", "", "wait"), (0, "", "", "inc_bw")]
        assert list(ctl.action_counts()) == ["inc_bw", "wait"]


class TestBrokenController:
    """A policy that bypasses admission must trip the invariant checker.

    The port's latest-wins registration is what lets an experiment (or a
    bug) replace a mechanism; the capacity invariant is the backstop
    that keeps a rogue replacement from silently over-committing the
    host.
    """

    def test_over_admitting_executor_trips_capacity(self):
        system = rtvirt()

        def rogue_admit(action):
            # Force-commit the batch without the utilization test.
            for vcpu, budget_ns, period_ns in action.updates:
                action.admission._granted[vcpu.uid] = Fraction(
                    budget_ns, period_ns
                )
            return True

        system.control.register(A.AdmitRequest.kind, rogue_admit)
        InvariantChecker(system).attach()
        vm_with_rta(system, "vm_a", 7, 10)
        vm_with_rta(system, "vm_b", 7, 10)  # 1.4 CPUs on a 1-CPU host
        assert system.admission.total_granted > system.admission.capacity
        with pytest.raises(InvariantViolation) as exc:
            system.run(msec(20))
        assert exc.value.rule == "capacity"

    def test_honest_executor_passes_the_same_workload(self):
        from repro.simcore.errors import AdmissionError

        system = rtvirt()
        InvariantChecker(system).attach()
        vm_with_rta(system, "vm_a", 7, 10)
        with pytest.raises(AdmissionError):  # honest admission refuses
            vm_with_rta(system, "vm_b", 7, 10)
        assert system.admission.total_granted <= system.admission.capacity
        system.run(msec(20))  # no violation
