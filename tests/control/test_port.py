"""Unit tests for the actuation port (executor registry + observer tap)."""

import pytest

from repro.control import actions as A
from repro.control.port import ActuationPort
from repro.simcore.errors import ConfigurationError


def make_action(**fields):
    """A minimal concrete action for registry tests."""
    return A.ShedToCapacity(admission=fields.get("admission"))


class TestRegistry:
    def test_submit_returns_executor_result(self):
        port = ActuationPort()
        port.register("shed", lambda a: ["r1", "r2"])
        assert port.submit(make_action()) == ["r1", "r2"]

    def test_missing_executor_raises(self):
        port = ActuationPort()
        with pytest.raises(ConfigurationError, match="shed"):
            port.submit(make_action())

    def test_latest_registration_wins(self):
        port = ActuationPort()
        port.register("shed", lambda a: "old")
        port.register("shed", lambda a: "new")
        assert port.submit(make_action()) == "new"

    def test_executes(self):
        port = ActuationPort()
        assert not port.executes("shed")
        port.register("shed", lambda a: None)
        assert port.executes("shed")


class TestObservers:
    def test_observer_sees_action_and_result(self):
        port = ActuationPort()
        port.register("shed", lambda a: 42)
        seen = []
        port.observe(lambda action, result: seen.append((action, result)))
        action = make_action()
        port.submit(action)
        assert seen == [(action, 42)]

    def test_observers_run_after_executor_in_order(self):
        port = ActuationPort()
        calls = []
        port.register("shed", lambda a: calls.append("exec"))
        port.observe(lambda a, r: calls.append("obs1"))
        port.observe(lambda a, r: calls.append("obs2"))
        port.submit(make_action())
        assert calls == ["exec", "obs1", "obs2"]

    def test_unsubscribe(self):
        port = ActuationPort()
        port.register("shed", lambda a: None)
        seen = []
        cancel = port.observe(lambda a, r: seen.append(a))
        port.submit(make_action())
        cancel()
        cancel()  # idempotent
        port.submit(make_action())
        assert len(seen) == 1

    def test_observed_property_tracks_taps(self):
        port = ActuationPort()
        assert not port.observed
        cancel = port.observe(lambda a, r: None)
        assert port.observed
        cancel()
        assert not port.observed


class TestActionShapes:
    def test_every_action_kind_is_unique(self):
        kinds = [
            A.IncBandwidth.kind,
            A.DecBandwidth.kind,
            A.AdmitRequest.kind,
            A.AdmitDecrease.kind,
            A.AdmitRelease.kind,
            A.ShedToCapacity.kind,
            A.FailPcpu.kind,
            A.RecoverPcpu.kind,
            A.MigrateVM.kind,
            A.RebalanceCluster.kind,
        ]
        assert len(set(kinds)) == len(kinds)

    def test_actions_are_frozen(self):
        action = A.FailPcpu(system=None, pcpu_index=0)
        with pytest.raises(Exception):
            action.pcpu_index = 1
