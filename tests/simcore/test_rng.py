"""Unit tests for the seeded random streams."""

import pytest

from repro.simcore.rng import RandomSource, RandomStreams


class TestStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(1).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        s = RandomStreams(1)
        a = s.stream("a")
        b = s.stream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_cached(self):
        s = RandomStreams(0)
        assert s.stream("x") is s.stream("x")

    def test_streams_iterator(self):
        s = RandomStreams(0)
        streams = list(s.streams("w", 3))
        assert len(streams) == 3
        assert streams[0] is s.stream("w[0]")

    def test_adding_consumer_does_not_perturb_others(self):
        s1 = RandomStreams(9)
        a1 = [s1.stream("a").random() for _ in range(3)]
        s2 = RandomStreams(9)
        s2.stream("b").random()  # extra consumer first
        a2 = [s2.stream("a").random() for _ in range(3)]
        assert a1 == a2


class TestDistributions:
    def test_uniform_int_bounds(self):
        r = RandomSource(0, "t")
        values = [r.uniform_int(3, 7) for _ in range(200)]
        assert min(values) >= 3 and max(values) <= 7

    def test_uniform_int_empty_range(self):
        with pytest.raises(ValueError):
            RandomSource(0, "t").uniform_int(5, 4)

    def test_normal_positive_floor(self):
        r = RandomSource(0, "t")
        values = [r.normal_positive(0.0, 10.0, floor=0.5) for _ in range(100)]
        assert min(values) >= 0.5

    def test_exponential_mean(self):
        r = RandomSource(0, "t")
        values = [r.exponential(10.0) for _ in range(5000)]
        assert 9.0 < sum(values) / len(values) < 11.0

    def test_exponential_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RandomSource(0, "t").exponential(0)

    def test_lognormal_positive(self):
        r = RandomSource(0, "t")
        assert all(r.lognormal(1.0, 0.5) > 0 for _ in range(100))

    def test_choice(self):
        r = RandomSource(0, "t")
        assert r.choice([1, 2, 3]) in (1, 2, 3)

    def test_shuffle_preserves_elements(self):
        r = RandomSource(0, "t")
        items = list(range(10))
        r.shuffle(items)
        assert sorted(items) == list(range(10))
