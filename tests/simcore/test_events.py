"""Unit tests for the event queue."""

import pytest

from repro.simcore.errors import SimulationError
from repro.simcore.events import (
    PRIORITY_COMPLETION,
    PRIORITY_RELEASE,
    PRIORITY_SCHEDULE,
    EventQueue,
)


def _noop():
    pass


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(20, _noop, name="b")
        q.push(10, _noop, name="a")
        assert q.pop().name == "a"
        assert q.pop().name == "b"

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(10, _noop, priority=PRIORITY_SCHEDULE, name="sched")
        q.push(10, _noop, priority=PRIORITY_RELEASE, name="release")
        q.push(10, _noop, priority=PRIORITY_COMPLETION, name="complete")
        assert [q.pop().name for _ in range(3)] == ["release", "complete", "sched"]

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        for i in range(5):
            q.push(10, _noop, name=f"e{i}")
        assert [q.pop().name for _ in range(5)] == [f"e{i}" for i in range(5)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        e1 = q.push(10, _noop, name="a")
        q.push(20, _noop, name="b")
        q.cancel(e1)
        assert q.pop().name == "b"

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(10, _noop)
        q.push(20, _noop)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 1

    def test_len_tracks_live_events(self):
        q = EventQueue()
        e1 = q.push(10, _noop)
        q.push(20, _noop)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(10, _noop)
        q.push(30, _noop)
        q.cancel(e)
        assert q.peek_time() == 30


class TestErrors:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1, _noop)

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1, _noop)
        q.clear()
        assert not q

    def test_cancel_after_fire_does_not_underflow_live_count(self):
        # Regression: cancelling an event whose callback already ran used
        # to decrement the live count a second time, so len() underflowed
        # and the queue reported pending work that did not exist.
        q = EventQueue()
        fired = q.push(10, _noop)
        q.push(20, _noop)
        assert q.pop() is fired
        assert len(q) == 1
        q.cancel(fired)  # stale handle; must be a no-op
        q.cancel(fired)
        assert len(q) == 1
        assert q.pop().time == 20
        assert len(q) == 0

    def test_popped_event_is_consumed_not_cancellable(self):
        q = EventQueue()
        e = q.push(5, _noop)
        q.pop()
        assert e.consumed
        assert not e.active
        q.cancel(e)
        assert not e.cancelled  # consumed events never become cancelled

    def test_clear_marks_dropped_events_inactive(self):
        # Regression: clear() dropped the heap but left the events
        # flagged active, so holders of stale handles (a scheduler's
        # exhaust timer, say) believed the timer was still pending.
        q = EventQueue()
        events = [q.push(t, _noop) for t in (1, 2, 3)]
        consumed = q.pop()
        q.clear()
        assert all(not e.active for e in events)
        assert all(e.cancelled for e in events if e is not consumed)
        assert consumed.consumed and not consumed.cancelled
        assert len(q) == 0 and not q


class TestEventState:
    def test_active_flag(self):
        q = EventQueue()
        e = q.push(5, _noop)
        assert e.active
        q.cancel(e)
        assert not e.active

    def test_callback_and_args_stored(self):
        q = EventQueue()
        calls = []
        e = q.push(5, calls.append, 42)
        e.callback(*e.args)
        assert calls == [42]
