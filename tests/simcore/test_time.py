"""Unit tests for the integer-nanosecond time helpers."""

from fractions import Fraction

import pytest

from repro.simcore.time import (
    MSEC,
    NSEC,
    SEC,
    USEC,
    bandwidth,
    format_time,
    msec,
    nsec,
    sec,
    to_msec,
    to_sec,
    to_usec,
    usec,
)


class TestUnits:
    def test_constants_scale(self):
        assert USEC == 1_000 * NSEC
        assert MSEC == 1_000 * USEC
        assert SEC == 1_000 * MSEC

    def test_integer_conversions(self):
        assert usec(5) == 5_000
        assert msec(15) == 15_000_000
        assert sec(2) == 2_000_000_000
        assert nsec(17) == 17

    def test_float_conversions_round(self):
        assert usec(2.5) == 2_500
        assert msec(0.001) == 1_000

    def test_fraction_conversion_exact(self):
        assert msec(Fraction(1, 2)) == 500_000

    def test_fraction_conversion_rejects_subnanosecond(self):
        with pytest.raises(ValueError):
            nsec(Fraction(1, 3))

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            usec(True)

    def test_non_number_rejected(self):
        with pytest.raises(TypeError):
            msec("5")  # type: ignore[arg-type]


class TestReporting:
    def test_to_usec(self):
        assert to_usec(2_500) == 2.5

    def test_to_msec(self):
        assert to_msec(1_500_000) == 1.5

    def test_to_sec(self):
        assert to_sec(SEC) == 1.0

    def test_format_picks_unit(self):
        assert format_time(999) == "999ns"
        assert format_time(usec(250)) == "250.000us"
        assert format_time(msec(1.5)) == "1.500ms"
        assert format_time(sec(3)) == "3.000s"


class TestBandwidth:
    def test_exact_fraction(self):
        assert bandwidth(msec(5), msec(15)) == Fraction(1, 3)

    def test_zero_slice(self):
        assert bandwidth(0, msec(10)) == 0

    def test_negative_slice_rejected(self):
        with pytest.raises(ValueError):
            bandwidth(-1, 10)

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            bandwidth(1, 0)
