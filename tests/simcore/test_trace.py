"""Unit tests for the execution trace."""

from repro.simcore.trace import NullTrace, Trace


class TestSegments:
    def test_record_and_query_by_vcpu(self, trace):
        trace.record_segment(0, "v1", "t1", 0, 10)
        trace.record_segment(1, "v2", "t2", 5, 15)
        assert len(trace.segments_for_vcpu("v1")) == 1
        assert trace.segments_for_vcpu("v1")[0].duration == 10

    def test_empty_segment_dropped(self, trace):
        trace.record_segment(0, "v1", "t1", 10, 10)
        assert trace.segments == []

    def test_query_by_task_and_pcpu(self, trace):
        trace.record_segment(0, "v1", "t1", 0, 10)
        trace.record_segment(0, "v1", "t2", 10, 20)
        trace.record_segment(1, "v1", "t1", 20, 30)
        assert len(trace.segments_for_task("t1")) == 2
        assert len(trace.segments_for_pcpu(0)) == 2

    def test_busy_time(self, trace):
        trace.record_segment(0, "v1", "t1", 0, 10)
        trace.record_segment(1, "v2", "t2", 0, 5)
        assert trace.busy_time() == 15
        assert trace.busy_time(pcpu=1) == 5


class TestUsageQueries:
    def test_usage_between_clips_to_window(self, trace):
        trace.record_segment(0, "v1", "t1", 0, 100)
        assert trace.vcpu_usage_between("v1", 30, 60) == 30

    def test_usage_sums_disjoint_segments(self, trace):
        trace.record_segment(0, "v1", "t1", 0, 10)
        trace.record_segment(1, "v1", "t1", 50, 70)
        assert trace.vcpu_usage_between("v1", 0, 100) == 30

    def test_usage_series_buckets(self, trace):
        trace.record_segment(0, "v1", "t1", 0, 15)
        series = trace.usage_series("v1", 0, 30, bucket=10)
        assert series == [(0, 10), (10, 5), (20, 0)]

    def test_usage_series_rejects_bad_bucket(self, trace):
        import pytest

        with pytest.raises(ValueError):
            trace.usage_series("v1", 0, 10, bucket=0)


class TestOverlapInvariant:
    def test_no_overlap_when_sequential(self, trace):
        trace.record_segment(0, "a", None, 0, 10)
        trace.record_segment(0, "b", None, 10, 20)
        assert list(trace.iter_overlaps()) == []

    def test_overlap_detected(self, trace):
        trace.record_segment(0, "a", None, 0, 10)
        trace.record_segment(0, "b", None, 5, 15)
        assert len(list(trace.iter_overlaps())) == 1

    def test_same_interval_different_pcpus_ok(self, trace):
        trace.record_segment(0, "a", None, 0, 10)
        trace.record_segment(1, "b", None, 0, 10)
        assert list(trace.iter_overlaps()) == []


class TestEventsAndNull:
    def test_point_events(self, trace):
        trace.record_event(5, "switch", 0, "v1")
        trace.record_event(9, "miss", "t1")
        assert len(trace.events_of_kind("switch")) == 1
        assert trace.events_of_kind("miss")[0].detail == ("t1",)

    def test_null_trace_records_nothing(self):
        null = NullTrace()
        null.record_segment(0, "v", "t", 0, 10)
        null.record_event(0, "switch")
        assert null.segments == [] and null.events == []
