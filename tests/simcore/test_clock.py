"""Per-host clock offset/drift semantics (cluster cross-host audit)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore.clock import HostClock
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec, sec

offsets = st.integers(min_value=-sec(1), max_value=sec(1))
drifts = st.integers(min_value=-500_000, max_value=500_000)  # ±500 ppm
times = st.integers(min_value=0, max_value=sec(3600))


class TestHostClock:
    def test_default_is_identity(self):
        clock = HostClock()
        assert clock.synchronized
        for t in (0, 1, msec(7), sec(123)):
            assert clock.local(t) == t
            assert clock.to_global(t) == t

    def test_offset_shifts_reading(self):
        clock = HostClock(offset_ns=msec(25))
        assert clock.local(0) == msec(25)
        assert clock.local(sec(1)) == sec(1) + msec(25)
        assert not clock.synchronized

    def test_drift_accumulates(self):
        clock = HostClock(drift_ppb=1000)  # 1 ppm fast
        assert clock.local(sec(1)) == sec(1) + 1000
        assert clock.local(sec(1000)) == sec(1000) + 1_000_000

    def test_stopping_drift_rejected(self):
        with pytest.raises(ConfigurationError):
            HostClock(drift_ppb=-1_000_000_000)

    @given(offsets, times, times, st.integers(0, sec(1)))
    def test_same_host_deadline_checks_are_offset_invariant(
        self, offset, release, completion, relative
    ):
        """local(c) <= local(r) + D  iff  c <= r + D, on one clock.

        This is why single-host simulations never see clock effects and
        the cluster audit only diverges across a live migration.
        """
        clock = HostClock(offset_ns=offset, drift_ppb=0)
        stamped = clock.local(release) + relative
        assert (clock.local(completion) <= stamped) == (
            completion <= release + relative
        )

    @given(offsets, drifts, times)
    def test_to_global_inverts_local_within_1ns(self, offset, drift, t):
        clock = HostClock(offset_ns=offset, drift_ppb=drift)
        back = clock.to_global(clock.local(t))
        assert abs(back - t) <= 1
