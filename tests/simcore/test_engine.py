"""Unit tests for the discrete-event engine."""

import pytest

from repro.simcore.engine import Engine
from repro.simcore.errors import SimulationError


class TestScheduling:
    def test_at_executes_in_order(self, engine):
        log = []
        engine.at(30, log.append, "c")
        engine.at(10, log.append, "a")
        engine.at(20, log.append, "b")
        engine.run_until(100)
        assert log == ["a", "b", "c"]

    def test_after_is_relative(self, engine):
        seen = []
        engine.at(10, lambda: engine.after(5, lambda: seen.append(engine.now)))
        engine.run_until(100)
        assert seen == [15]

    def test_clock_advances_to_horizon(self, engine):
        engine.run_until(500)
        assert engine.now == 500

    def test_schedule_in_past_rejected(self, engine):
        engine.at(50, lambda: None)
        engine.run_until(50)
        with pytest.raises(SimulationError):
            engine.at(40, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.after(-1, lambda: None)

    def test_run_until_past_rejected(self, engine):
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.run_until(50)

    def test_events_beyond_horizon_not_run(self, engine):
        log = []
        engine.at(200, log.append, "late")
        engine.run_until(100)
        assert log == []
        assert engine.pending == 1
        engine.run_until(300)
        assert log == ["late"]


class TestSameInstant:
    def test_events_added_during_batch_run_same_instant(self, engine):
        log = []

        def outer():
            engine.at(engine.now, log.append, "inner")

        engine.at(10, outer)
        engine.run_until(20)
        assert log == ["inner"]
        assert engine.now == 20

    def test_post_hook_runs_once_per_instant(self, engine):
        hooks = []
        engine.add_post_hook(lambda: hooks.append(engine.now))
        engine.at(10, lambda: None)
        engine.at(10, lambda: None)
        engine.at(20, lambda: None)
        engine.run_until(30)
        # One hook call per batch; the same-instant re-entry after a hook
        # may add another batch at the same time only if events appeared.
        assert hooks == [10, 20]

    def test_cancel_pending_event(self, engine):
        log = []
        event = engine.at(10, log.append, "x")
        engine.cancel(event)
        engine.run_until(20)
        assert log == []

    def test_cancel_none_is_noop(self, engine):
        engine.cancel(None)


class TestStepping:
    def test_run_next_returns_batch_time(self, engine):
        engine.at(5, lambda: None)
        engine.at(7, lambda: None)
        assert engine.run_next() == 5
        assert engine.run_next() == 7
        assert engine.run_next() is None

    def test_events_processed_counter(self, engine):
        for t in (1, 2, 3):
            engine.at(t, lambda: None)
        engine.run_until(10)
        assert engine.events_processed == 3

    def test_not_reentrant(self, engine):
        def recurse():
            engine.run_until(100)

        engine.at(1, recurse)
        with pytest.raises(SimulationError):
            engine.run_until(10)


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build():
            e = Engine()
            log = []
            for t in (5, 3, 9, 3, 7):
                e.at(t, lambda t=t: log.append((e.now, t)))
            e.run_until(20)
            return log

        assert build() == build()
