"""Unit tests for the VM abstraction and syscall veneer."""

import pytest

from repro.guest.gedf import GEDFGuestScheduler
from repro.guest.syscall import (
    nr_vcpus,
    sched_adjust,
    sched_getattr,
    sched_setattr,
    sched_unregister,
)
from repro.guest.task import Task, TaskKind
from repro.guest.vm import VM
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec


class TestConstruction:
    def test_vcpu_count(self):
        assert len(VM("v", vcpu_count=3).vcpus) == 3

    def test_zero_vcpus_rejected(self):
        with pytest.raises(ConfigurationError):
            VM("v", vcpu_count=0)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            VM("v", scheduler="cfs")

    def test_max_vcpus_below_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            VM("v", vcpu_count=2, max_vcpus=1)

    def test_gedf_selectable(self):
        vm = VM("v", scheduler="gedf")
        assert isinstance(vm.guest_scheduler, GEDFGuestScheduler)


class TestTaskManagement:
    def test_double_registration_rejected(self):
        vm = VM("v")
        t = Task("t", msec(1), msec(10))
        vm.register_task(t)
        with pytest.raises(ConfigurationError):
            VM("w").register_task(t)

    def test_unregister_foreign_task_rejected(self):
        vm = VM("v")
        with pytest.raises(ConfigurationError):
            vm.unregister_task(Task("t", 1, 2))

    def test_rt_and_background_partition(self):
        vm = VM("v")
        vm.register_task(Task("t", msec(1), msec(10)))
        vm.add_background_process()
        assert len(vm.rt_tasks) == 1
        assert len(vm.background_tasks) == 1

    def test_configure_vcpu_static(self):
        vm = VM("v")
        vm.configure_vcpu(0, msec(5), msec(10))
        assert vm.vcpus[0].budget_ns == msec(5)
        assert vm.vcpus[0].admitted


class TestReleasePaths:
    def test_release_requires_now_before_attach(self):
        vm = VM("v")
        t = Task("t", msec(1), msec(10))
        vm.register_task(t)
        with pytest.raises(ConfigurationError):
            vm.release_job(t)
        job = vm.release_job(t, now=msec(5))
        assert job.release == msec(5)

    def test_release_foreign_task_rejected(self):
        vm = VM("v")
        with pytest.raises(ConfigurationError):
            vm.release_job(Task("t", 1, 2), now=0)

    def test_wake_targets_pedf(self):
        vm = VM("v", vcpu_count=2)
        t = Task("t", msec(1), msec(10))
        vm.register_task(t)
        assert vm.wake_targets(t) == [t.vcpu]

    def test_wake_targets_gedf_all_vcpus(self):
        vm = VM("v", vcpu_count=2, scheduler="gedf")
        t = Task("t", msec(1), msec(10))
        vm.register_task(t)
        assert vm.wake_targets(t) == vm.vcpus


class TestSyscalls:
    def test_sched_setattr_registers(self):
        vm = VM("v")
        t = sched_setattr(vm, "rta", runtime_ns=msec(2), period_ns=msec(10))
        assert t.vm is vm
        assert t.kind is TaskKind.PERIODIC

    def test_sched_setattr_sporadic(self):
        vm = VM("v")
        t = sched_setattr(vm, "rta", msec(2), msec(10), sporadic=True)
        assert t.kind is TaskKind.SPORADIC

    def test_sched_adjust(self):
        vm = VM("v")
        t = sched_setattr(vm, "rta", msec(2), msec(10))
        sched_adjust(vm, t, msec(3), msec(10))
        assert t.slice_ns == msec(3)

    def test_sched_unregister(self):
        vm = VM("v")
        t = sched_setattr(vm, "rta", msec(2), msec(10))
        sched_unregister(vm, t)
        assert t.vm is None

    def test_sched_getattr(self):
        vm = VM("v")
        t = sched_setattr(vm, "rta", msec(2), msec(10))
        attrs = sched_getattr(t)
        assert attrs["runtime_ns"] == msec(2)
        assert attrs["vcpu"] == "v.vcpu0"
        assert attrs["bandwidth"] == 0.2

    def test_nr_vcpus_tracks_hotplug(self):
        vm = VM("v", vcpu_count=1, max_vcpus=3)
        assert nr_vcpus(vm) == 1
        sched_setattr(vm, "a", msec(6), msec(10))
        sched_setattr(vm, "b", msec(6), msec(10))
        assert nr_vcpus(vm) == 2


class TestGEDFDispatch:
    def test_gedf_steals_across_vcpus(self):
        vm = VM("v", vcpu_count=2, scheduler="gedf")
        a = Task("a", msec(1), msec(10))
        vm.register_task(a)
        a.release_job(now=0)
        # Any VCPU can pick the job under gEDF.
        other = vm.vcpus[1] if a.vcpu is vm.vcpus[0] else vm.vcpus[0]
        assert vm.pick_job(other, 0).task is a

    def test_gedf_claim_prevents_double_run(self):
        vm = VM("v", vcpu_count=2, scheduler="gedf")
        a = Task("a", msec(1), msec(10))
        vm.register_task(a)
        a.release_job(now=0)
        job0 = vm.pick_job(vm.vcpus[0], 0)
        job1 = vm.pick_job(vm.vcpus[1], 0)
        assert job0 is not None and job1 is None

    def test_gedf_claim_released_on_deschedule(self):
        vm = VM("v", vcpu_count=2, scheduler="gedf")
        a = Task("a", msec(1), msec(10))
        vm.register_task(a)
        a.release_job(now=0)
        assert vm.pick_job(vm.vcpus[0], 0) is not None
        vm.on_vcpu_descheduled(vm.vcpus[0])
        assert vm.pick_job(vm.vcpus[1], 0) is not None

    def test_gedf_earliest_deadline_wins(self):
        vm = VM("v", vcpu_count=1, scheduler="gedf")
        far = Task("far", msec(1), msec(100))
        near = Task("near", msec(1), msec(10))
        vm.register_task(far)
        vm.register_task(near)
        far.release_job(now=0)
        near.release_job(now=0)
        assert vm.pick_job(vm.vcpus[0], 0).task is near

    def test_gedf_vcpu_has_work_any_task(self):
        vm = VM("v", vcpu_count=2, scheduler="gedf")
        a = Task("a", msec(1), msec(10))
        vm.register_task(a)
        a.release_job(now=0)
        assert vm.vcpu_has_work(vm.vcpus[0])
        assert vm.vcpu_has_work(vm.vcpus[1])
