"""Unit tests for the RTA task/job model."""

from fractions import Fraction

import pytest

from repro.guest.task import Job, Task, TaskKind, make_background_task
from repro.simcore.errors import ConfigurationError, SimulationError
from repro.simcore.time import msec


class TestTaskConstruction:
    def test_bandwidth(self):
        t = Task("t", msec(5), msec(15))
        assert t.bandwidth == Fraction(1, 3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Task("t", 0, msec(10))
        with pytest.raises(ConfigurationError):
            Task("t", msec(11), msec(10))
        with pytest.raises(ConfigurationError):
            Task("t", msec(1), 0)

    def test_background_task(self):
        t = make_background_task("bg")
        assert t.kind is TaskKind.BACKGROUND
        assert t.bandwidth == 0

    def test_set_requirement(self):
        t = Task("t", msec(1), msec(10))
        t.set_requirement(msec(2), msec(20))
        assert (t.slice_ns, t.period_ns) == (msec(2), msec(20))

    def test_set_requirement_validates(self):
        t = Task("t", msec(1), msec(10))
        with pytest.raises(ConfigurationError):
            t.set_requirement(msec(11), msec(10))

    def test_task_seq_unique(self):
        assert Task("a", 1, 2).seq != Task("b", 1, 2).seq


class TestJobLifecycle:
    def test_release_defaults(self):
        t = Task("t", msec(2), msec(10))
        job = t.release_job(now=msec(100))
        assert job.work == msec(2)
        assert job.deadline == msec(110)
        assert t.stats.released == 1

    def test_release_custom_work_and_deadline(self):
        t = Task("t", msec(2), msec(10))
        job = t.release_job(now=0, work=msec(1), relative_deadline=msec(5))
        assert job.work == msec(1)
        assert job.deadline == msec(5)

    def test_charge_and_complete(self):
        t = Task("t", msec(2), msec(10))
        job = t.release_job(now=0)
        job.charge(msec(2))
        assert job.done
        t.retire_job(job, msec(5))
        assert job.completed_at == msec(5)
        assert t.stats.met == 1
        assert not t.pending

    def test_overcharge_rejected(self):
        t = Task("t", msec(2), msec(10))
        job = t.release_job(now=0)
        with pytest.raises(SimulationError):
            job.charge(msec(3))

    def test_complete_with_work_left_rejected(self):
        t = Task("t", msec(2), msec(10))
        job = t.release_job(now=0)
        with pytest.raises(SimulationError):
            job.complete(msec(1))

    def test_double_complete_rejected(self):
        t = Task("t", msec(2), msec(10))
        job = t.release_job(now=0)
        job.charge(job.work)
        job.complete(1)
        with pytest.raises(SimulationError):
            job.complete(2)

    def test_on_complete_callback(self):
        t = Task("t", msec(2), msec(10))
        seen = []
        job = t.release_job(now=0, on_complete=seen.append)
        job.charge(job.work)
        t.retire_job(job, msec(3))
        assert seen == [job]

    def test_late_completion_counts_missed(self):
        t = Task("t", msec(2), msec(10))
        job = t.release_job(now=0)
        job.charge(job.work)
        t.retire_job(job, msec(20))
        assert t.stats.missed == 1

    def test_head_job_fifo(self):
        t = Task("t", msec(1), msec(10))
        j1 = t.release_job(now=0)
        t.release_job(now=msec(10))
        assert t.head_job() is j1

    def test_has_work(self):
        t = Task("t", msec(1), msec(10))
        assert not t.has_work
        t.release_job(now=0)
        assert t.has_work


class TestSporadicRules:
    def test_minimum_interarrival_enforced(self):
        t = Task("t", msec(1), msec(10), TaskKind.SPORADIC)
        t.release_job(now=0)
        with pytest.raises(SimulationError):
            t.release_job(now=msec(5))

    def test_release_at_minimum_gap_ok(self):
        t = Task("t", msec(1), msec(10), TaskKind.SPORADIC)
        t.release_job(now=0)
        t.release_job(now=msec(10))
        assert t.stats.released == 2


class TestBoundaries:
    def test_periodic_boundary_is_next_release(self):
        t = Task("t", msec(1), msec(10))
        t.release_job(now=msec(20))
        assert t.next_worst_case_deadline(msec(25)) == msec(30)

    def test_periodic_never_released(self):
        t = Task("t", msec(1), msec(10))
        assert t.next_worst_case_deadline(msec(5)) == msec(15)

    def test_sporadic_worst_case(self):
        t = Task("t", msec(1), msec(10), TaskKind.SPORADIC)
        t.release_job(now=0)
        # Next possible arrival at 10, its deadline at 20.
        assert t.next_worst_case_deadline(msec(2)) == msec(20)
        # Once the minimum gap passed, arrival could be "now".
        assert t.next_worst_case_deadline(msec(15)) == msec(25)

    def test_background_no_boundary(self):
        t = make_background_task("bg")
        assert t.next_worst_case_deadline(0) is None

    def test_earliest_pending_deadline(self):
        t = Task("t", msec(1), msec(10))
        t.release_job(now=0)
        t.release_job(now=msec(10))
        assert t.earliest_pending_deadline() == msec(10)


class TestFinalize:
    def test_unfinished_past_deadline_counts(self):
        t = Task("t", msec(5), msec(10))
        t.release_job(now=0)
        t.finalize(end_time=msec(20))
        assert t.stats.missed == 1

    def test_unfinished_before_deadline_undecided(self):
        t = Task("t", msec(5), msec(10))
        t.release_job(now=0)
        t.finalize(end_time=msec(5))
        assert t.stats.decided == 0
