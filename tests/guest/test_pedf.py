"""Unit tests for the pEDF guest scheduler: placement, adjust, reshuffle."""

from fractions import Fraction

import pytest

from repro.guest.pedf import PEDFGuestScheduler
from repro.guest.port import CrossLayerPort, LocalPort
from repro.guest.task import Task, TaskKind
from repro.guest.vm import VM
from repro.simcore.errors import AdmissionError
from repro.simcore.time import msec, usec


class RecordingPort(LocalPort):
    """LocalPort that records every request for assertions."""

    def __init__(self, reject_increases=False):
        self.increases = []
        self.decreases = []
        self.reject = reject_increases

    def request_increase(self, updates):
        self.increases.append(updates)
        if self.reject:
            return False
        return super().request_increase(updates)

    def notify_decrease(self, updates):
        self.decreases.append(updates)
        super().notify_decrease(updates)


def make_vm(vcpus=2, slack=0, max_vcpus=None, port=None):
    vm = VM("vm", vcpu_count=vcpus, slack_ns=slack, max_vcpus=max_vcpus)
    vm.set_port(port or RecordingPort())
    return vm


class TestRegistration:
    def test_first_fit_placement(self):
        vm = make_vm()
        a = Task("a", msec(6), msec(10))
        b = Task("b", msec(6), msec(10))
        vm.register_task(a)
        vm.register_task(b)
        assert a.vcpu is vm.vcpus[0]
        assert b.vcpu is vm.vcpus[1]  # does not fit with a

    def test_packing_onto_same_vcpu(self):
        vm = make_vm()
        a = Task("a", msec(3), msec(10))
        b = Task("b", msec(3), msec(10))
        vm.register_task(a)
        vm.register_task(b)
        assert a.vcpu is b.vcpu

    def test_registration_issues_inc_bw(self):
        port = RecordingPort()
        vm = make_vm(port=port)
        vm.register_task(Task("a", msec(5), msec(10)))
        assert len(port.increases) == 1
        vcpu, budget, period = port.increases[0][0]
        assert period == msec(10) and budget == msec(5)

    def test_host_rejection_raises(self):
        vm = make_vm(port=RecordingPort(reject_increases=True))
        with pytest.raises(AdmissionError) as err:
            vm.register_task(Task("a", msec(5), msec(10)))
        assert err.value.level == "host"

    def test_guest_capacity_exhausted(self):
        vm = make_vm(vcpus=1)
        vm.register_task(Task("a", msec(9), msec(10)))
        with pytest.raises(AdmissionError) as err:
            vm.register_task(Task("b", msec(5), msec(10)))
        assert err.value.level == "guest"

    def test_vcpu_params_cover_all_pinned_tasks(self):
        vm = make_vm()
        vm.register_task(Task("a", msec(2), msec(20)))  # 0.1
        vm.register_task(Task("b", msec(3), msec(10)))  # 0.3
        vcpu = vm.vcpus[0]
        assert vcpu.period_ns == msec(10)
        assert vcpu.bandwidth == Fraction(2, 5)

    def test_background_needs_no_admission(self):
        port = RecordingPort(reject_increases=True)
        vm = make_vm(port=port)
        task = vm.add_background_process()
        assert task.kind is TaskKind.BACKGROUND
        assert port.increases == []


class TestAdjust:
    def test_increase_in_place(self):
        vm = make_vm()
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        vm.adjust_task(t, msec(4), msec(10))
        assert t.slice_ns == msec(4)
        assert t.vcpu is vm.vcpus[0]
        assert vm.vcpus[0].budget_ns == msec(4)

    def test_decrease_uses_dec_bw(self):
        port = RecordingPort()
        vm = make_vm(port=port)
        t = Task("t", msec(4), msec(10))
        vm.register_task(t)
        vm.adjust_task(t, msec(2), msec(10))
        assert len(port.decreases) == 1

    def test_move_to_other_vcpu_when_full(self):
        vm = make_vm()
        a = Task("a", msec(5), msec(10))
        t = Task("t", msec(2), msec(10))
        vm.register_task(a)
        vm.register_task(t)
        assert t.vcpu is vm.vcpus[0]
        vm.adjust_task(t, msec(7), msec(10))  # no longer fits with a
        assert t.vcpu is vm.vcpus[1]

    def test_move_issues_atomic_inc_dec(self):
        port = RecordingPort()
        vm = make_vm(port=port)
        a = Task("a", msec(5), msec(10))
        t = Task("t", msec(2), msec(10))
        vm.register_task(a)
        vm.register_task(t)
        port.increases.clear()
        vm.adjust_task(t, msec(7), msec(10))
        assert len(port.increases) == 1
        assert len(port.increases[0]) == 2  # both VCPUs in one batch

    def test_rejected_increase_restores_requirement(self):
        port = RecordingPort()
        vm = make_vm(vcpus=1, port=port)
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        port.reject = True
        with pytest.raises(AdmissionError):
            vm.adjust_task(t, msec(5), msec(10))
        assert t.slice_ns == msec(2)

    def test_adjust_unregistered_rejected(self):
        vm = make_vm()
        from repro.simcore.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            vm.adjust_task(Task("x", 1, 2), 1, 2)


class TestUnregister:
    def test_unregister_releases_bandwidth(self):
        port = RecordingPort()
        vm = make_vm(port=port)
        t = Task("t", msec(5), msec(10))
        vm.register_task(t)
        vm.unregister_task(t)
        assert t.vcpu is None
        assert t.vm is None
        assert len(port.decreases) == 1
        assert port.decreases[0][0][1] == 0  # budget drops to zero

    def test_unregister_keeps_other_tasks_params(self):
        vm = make_vm()
        a = Task("a", msec(2), msec(10))
        b = Task("b", msec(3), msec(10))
        vm.register_task(a)
        vm.register_task(b)
        vm.unregister_task(a)
        assert vm.vcpus[0].bandwidth == Fraction(3, 10)


class TestReshuffle:
    def test_fragmented_bandwidth_repacked(self):
        # Two VCPUs at 0.6 each cannot take a 0.7 task directly, but
        # repacking (0.6 + 0.6 on one? no - FFD finds 0.7+0.6 / 0.6) works
        # when the new set fits two bins.
        vm = make_vm()
        a = Task("a", msec(3), msec(10))  # 0.3
        b = Task("b", msec(4), msec(10))  # 0.4
        vm.register_task(a)
        vm.register_task(b)  # both fit on vcpu0 (0.7)
        c = Task("c", msec(5), msec(10))  # 0.5 -> vcpu1
        vm.register_task(c)
        d = Task("d", msec(6), msec(10))  # 0.6 doesn't fit either; repack:
        vm.register_task(d)  # FFD: 0.6+0.4 / 0.5+0.3
        loads = sorted(float(v.rt_bandwidth()) for v in vm.vcpus)
        assert loads == [0.8, 1.0]

    def test_reshuffle_failure_raises(self):
        vm = make_vm()
        vm.register_task(Task("a", msec(6), msec(10)))
        vm.register_task(Task("b", msec(6), msec(10)))
        with pytest.raises(AdmissionError):
            vm.register_task(Task("c", msec(6), msec(10)))


class TestHotplug:
    def test_hotplug_adds_vcpu(self):
        vm = make_vm(vcpus=1, max_vcpus=2)
        vm.register_task(Task("a", msec(6), msec(10)))
        vm.register_task(Task("b", msec(6), msec(10)))
        assert len(vm.vcpus) == 2

    def test_hotplug_respects_limit(self):
        vm = make_vm(vcpus=1, max_vcpus=1)
        vm.register_task(Task("a", msec(6), msec(10)))
        with pytest.raises(AdmissionError):
            vm.register_task(Task("b", msec(6), msec(10)))
