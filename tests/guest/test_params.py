"""Unit tests for VCPU parameter derivation (paper §3.3)."""

from fractions import Fraction

import pytest

from repro.guest.params import VCPUParams, derive_vcpu_params, fits_on_vcpu
from repro.guest.task import Task, make_background_task
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec, usec


class TestDerivation:
    def test_single_task_matches_table2(self):
        # Table 2: RTA (23, 30) ms with 500 µs slack -> VCPU (23.5, 30) ms.
        t = Task("t", msec(23), msec(30))
        p = derive_vcpu_params([t], slack_ns=usec(500))
        assert p.budget_ns == msec(23.5)
        assert p.period_ns == msec(30)

    def test_period_is_minimum(self):
        a = Task("a", msec(1), msec(30))
        b = Task("b", msec(1), msec(10))
        p = derive_vcpu_params([a, b], slack_ns=0)
        assert p.period_ns == msec(10)

    def test_budget_sums_bandwidths(self):
        a = Task("a", msec(5), msec(20))  # 0.25
        b = Task("b", msec(2), msec(10))  # 0.20
        p = derive_vcpu_params([a, b], slack_ns=0)
        assert p.budget_ns == int(0.45 * msec(10))

    def test_budget_rounds_up(self):
        t = Task("t", 1, 3)  # bw 1/3, period 3ns -> budget ceil(1) = 1
        p = derive_vcpu_params([t], slack_ns=0)
        assert p.budget_ns == 1

    def test_background_ignored(self):
        t = Task("t", msec(1), msec(10))
        p = derive_vcpu_params([t, make_background_task("bg")], slack_ns=0)
        assert p.bandwidth == Fraction(1, 10)

    def test_no_rt_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_vcpu_params([make_background_task("bg")])

    def test_negative_slack_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_vcpu_params([Task("t", 1, 2)], slack_ns=-1)

    def test_extra_bandwidth(self):
        t = Task("t", msec(1), msec(10))
        p = derive_vcpu_params([t], slack_ns=0, extra=[Fraction(1, 10)])
        assert p.bandwidth == Fraction(1, 5)

    def test_feasible(self):
        assert VCPUParams(msec(5), msec(10)).feasible()
        assert not VCPUParams(msec(11), msec(10)).feasible()


class TestFits:
    def test_fits_simple(self):
        existing = [Task("a", msec(4), msec(10))]
        assert fits_on_vcpu(existing, Task("b", msec(5), msec(10)), slack_ns=0)

    def test_overflow_rejected(self):
        existing = [Task("a", msec(6), msec(10))]
        assert not fits_on_vcpu(existing, Task("b", msec(5), msec(10)), slack_ns=0)

    def test_slack_counts_against_capacity(self):
        # bw 0.95 + slack 0.5ms on a 10ms period -> budget 10ms: fits exactly.
        assert fits_on_vcpu([], Task("t", msec(9.5), msec(10)), slack_ns=usec(500))
        # bw 0.96 + slack: budget 10.1ms > 10ms period -> rejected.
        assert not fits_on_vcpu([], Task("t", msec(9.6), msec(10)), slack_ns=usec(500))

    def test_exact_unit_bandwidth_without_slack(self):
        assert fits_on_vcpu([], Task("t", msec(10), msec(10)), slack_ns=0)
