"""Unit tests for the VCPU: pinning, dispatch, deadline publication."""

from fractions import Fraction

import pytest

from repro.guest.task import Task, TaskKind, make_background_task
from repro.guest.vcpu import VCPU
from repro.guest.vm import VM
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec, usec


@pytest.fixture
def vm():
    return VM("vm", vcpu_count=2)


class TestParams:
    def test_set_params_and_bandwidth(self, vm):
        v = vm.vcpus[0]
        v.set_params(msec(5), msec(15))
        assert v.bandwidth == Fraction(1, 3)

    def test_unconfigured_bandwidth_zero(self, vm):
        assert vm.vcpus[0].bandwidth == 0

    def test_invalid_params_rejected(self, vm):
        with pytest.raises(ConfigurationError):
            vm.vcpus[0].set_params(-1, msec(10))
        with pytest.raises(ConfigurationError):
            vm.vcpus[0].set_params(msec(1), 0)


class TestPinning:
    def test_pin_and_unpin(self, vm):
        t = Task("t", msec(1), msec(10))
        vm.vcpus[0].pin_task(t)
        assert t.vcpu is vm.vcpus[0]
        vm.vcpus[0].unpin_task(t)
        assert t.vcpu is None

    def test_pin_moves_between_vcpus(self, vm):
        t = Task("t", msec(1), msec(10))
        vm.vcpus[0].pin_task(t)
        vm.vcpus[1].pin_task(t)
        assert t.vcpu is vm.vcpus[1]
        assert t not in vm.vcpus[0].tasks

    def test_rt_bandwidth_excludes_background(self, vm):
        vm.vcpus[0].pin_task(Task("t", msec(1), msec(4)))
        vm.vcpus[0].pin_task(make_background_task("bg"))
        assert vm.vcpus[0].rt_bandwidth() == Fraction(1, 4)


class TestDispatch:
    def test_edf_order(self, vm):
        v = vm.vcpus[0]
        near = Task("near", msec(1), msec(10))
        far = Task("far", msec(1), msec(100))
        v.pin_task(far)
        v.pin_task(near)
        far.release_job(now=0)
        near.release_job(now=0)
        assert v.pick_job(0).task is near

    def test_background_runs_only_when_no_deadline_work(self, vm):
        v = vm.vcpus[0]
        bg = make_background_task("bg")
        rt = Task("rt", msec(1), msec(10))
        v.pin_task(bg)
        v.pin_task(rt)
        bg.release_job(now=0)
        assert v.pick_job(0).task is bg
        rt.release_job(now=0)
        assert v.pick_job(0).task is rt

    def test_tie_breaks_by_registration_order(self, vm):
        v = vm.vcpus[0]
        a = Task("a", msec(1), msec(10))
        b = Task("b", msec(1), msec(10))
        v.pin_task(a)
        v.pin_task(b)
        b.release_job(now=0)
        a.release_job(now=0)
        assert v.pick_job(0).task is a  # lower seq wins the deadline tie

    def test_empty_vcpu_picks_nothing(self, vm):
        assert vm.vcpus[0].pick_job(0) is None

    def test_has_rt_work(self, vm):
        v = vm.vcpus[0]
        bg = make_background_task("bg")
        v.pin_task(bg)
        bg.release_job(now=0)
        assert v.has_work and not v.has_rt_work


class TestDeadlinePublication:
    def test_pending_deadline_published(self, vm):
        v = vm.vcpus[0]
        t = Task("t", msec(2), msec(10))
        v.pin_task(t)
        t.release_job(now=0)
        assert v.next_earliest_deadline(usec(1)) == msec(10)

    def test_idle_periodic_publishes_release_boundary(self, vm):
        v = vm.vcpus[0]
        t = Task("t", msec(2), msec(10))
        v.pin_task(t)
        job = t.release_job(now=0)
        job.charge(job.work)
        t.retire_job(job, msec(1))
        assert v.next_earliest_deadline(msec(1)) == msec(10)

    def test_min_over_tasks(self, vm):
        v = vm.vcpus[0]
        a = Task("a", msec(1), msec(50))
        b = Task("b", msec(1), msec(20))
        v.pin_task(a)
        v.pin_task(b)
        a.release_job(now=0)
        b.release_job(now=0)
        assert v.next_earliest_deadline(0) == msec(20)

    def test_no_rt_tasks_returns_none(self, vm):
        v = vm.vcpus[0]
        v.pin_task(make_background_task("bg"))
        assert v.next_earliest_deadline(0) is None
