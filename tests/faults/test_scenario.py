"""Tests for the scenario timeline DSL."""

import pytest

from repro.core.system import RTVirtSystem
from repro.faults import At, Every, Fault, FaultContext, Scenario
from repro.host.costs import ZERO_COSTS
from repro.simcore.errors import ConfigurationError
from repro.simcore.rng import RandomStreams
from repro.simcore.time import msec


class Probe(Fault):
    """Records its application times on the context."""

    kind = "probe"

    def apply(self, ctx: FaultContext) -> None:
        ctx.record(self.kind)


def make_system():
    return RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)


class TestDirectives:
    def test_at_fires_once_at_exact_time(self):
        system = make_system()
        ctx = Scenario([At(msec(3), Probe())]).install(system)
        system.run(msec(10))
        assert ctx.fault_times("probe") == [msec(3)]

    def test_every_fires_periodically_from_one_period_in(self):
        system = make_system()
        ctx = Scenario([Every(msec(4), Probe())]).install(system)
        system.run(msec(18))
        assert ctx.fault_times("probe") == [msec(4), msec(8), msec(12), msec(16)]

    def test_every_with_start_and_count(self):
        system = make_system()
        ctx = Scenario([Every(msec(5), Probe(), start_ns=msec(1), count=3)]).install(
            system
        )
        system.run(msec(50))
        assert ctx.fault_times("probe") == [msec(1), msec(6), msec(11)]

    def test_directives_interleave_in_time_order(self):
        system = make_system()

        class Named(Probe):
            def __init__(self, tag):
                self.tag = tag

            def apply(self, ctx):
                ctx.record("probe", self.tag)

        ctx = Scenario(
            [At(msec(5), Named("late")), At(msec(2), Named("early"))]
        ).install(system)
        system.run(msec(10))
        assert [d[0] for _, _, d in ctx.log] == ["early", "late"]


class TestValidation:
    def test_rejects_non_directives(self):
        with pytest.raises(ConfigurationError):
            Scenario([Probe()])

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            Scenario([At(-1, Probe())])

    def test_rejects_non_positive_period(self):
        with pytest.raises(ConfigurationError):
            Scenario([Every(0, Probe())])


class TestContext:
    def test_install_returns_context_with_streams(self):
        system = make_system()
        streams = RandomStreams(9)
        ctx = Scenario([]).install(system, streams)
        assert ctx.streams is streams
        assert ctx.system is system

    def test_default_streams_are_seeded_zero(self):
        system = make_system()
        ctx = Scenario([]).install(system)
        other = RandomStreams(0)
        assert ctx.streams.stream("x").uniform_int(0, 10**6) == other.stream(
            "x"
        ).uniform_int(0, 10**6)

    def test_first_fault_time(self):
        system = make_system()
        ctx = Scenario([At(msec(2), Probe()), At(msec(7), Probe())]).install(system)
        system.run(msec(10))
        assert ctx.first_fault_time() == msec(2)
        assert ctx.first_fault_time("nope") is None
