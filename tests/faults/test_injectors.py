"""Unit tests for each fault injector, across system types."""

import pytest

from repro.baselines.credit import CreditSystem
from repro.baselines.rtxen import RTXenSystem
from repro.core.system import RTVirtSystem
from repro.faults import (
    At,
    ClockJitter,
    FaultContext,
    HypercallDelay,
    HypercallDrop,
    PcpuFail,
    PcpuRecover,
    Scenario,
    VmChurn,
    WorkloadSurge,
)
from repro.guest.task import Task
from repro.host.costs import ZERO_COSTS
from repro.simcore.rng import RandomStreams
from repro.simcore.time import msec, sec
from repro.workloads.periodic import PeriodicDriver


def rtvirt(pcpu_count=2, **kw):
    kw.setdefault("cost_model", ZERO_COSTS)
    kw.setdefault("slack_ns", 0)
    return RTVirtSystem(pcpu_count=pcpu_count, **kw)


def loaded(system, name="vm", slice_ns=msec(2), period_ns=msec(10)):
    """One VM with one driven RTA; returns (vm, task)."""
    task = Task(f"{name}.t", slice_ns, period_ns)
    if hasattr(system, "register_rta"):
        vm = system.create_vm(name, interfaces=[(slice_ns * 2, period_ns)])
        system.register_rta(vm, task)
    else:
        vm = system.create_vm(name)
        vm.register_task(task)
    PeriodicDriver(system.engine, vm, task).start()
    return vm, task


class TestPcpuFaults:
    def test_fail_evicts_and_blocks_placement(self):
        system = rtvirt(pcpu_count=2)
        loaded(system)
        ctx = FaultContext(system)
        system.run(msec(5))
        PcpuFail(1).apply(ctx)
        assert system.machine.pcpus[1].failed
        assert system.machine.pcpus[1].running_vcpu is None
        assert system.machine.available_count == 1

    def test_fail_sheds_overcommitted_bandwidth(self):
        system = rtvirt(pcpu_count=2)
        vm1, _ = loaded(system, "vm1", slice_ns=msec(7), period_ns=msec(10))
        vm2, _ = loaded(system, "vm2", slice_ns=msec(7), period_ns=msec(10))
        ctx = FaultContext(system)
        system.run(msec(1))
        PcpuFail(1).apply(ctx)
        # 1.4 CPUs granted no longer fit one PCPU: the newer VCPU is shed.
        assert system.admission.total_granted <= system.admission.capacity
        assert vm2.vcpus[0].budget_ns == 0

    def test_recover_readmits_displaced_bandwidth(self):
        system = rtvirt(pcpu_count=2)
        loaded(system, "vm1", slice_ns=msec(7), period_ns=msec(10))
        vm2, _ = loaded(system, "vm2", slice_ns=msec(7), period_ns=msec(10))
        ctx = FaultContext(system)
        system.run(msec(1))
        PcpuFail(1).apply(ctx)
        assert vm2.vcpus[0].budget_ns == 0
        PcpuRecover(1).apply(ctx)
        assert not system.machine.pcpus[1].failed
        assert vm2.vcpus[0].budget_ns == msec(7)

    def test_fault_log_and_trace(self):
        from repro.simcore.trace import Trace

        system = rtvirt(pcpu_count=2, trace=Trace())
        loaded(system)
        ctx = FaultContext(system)
        system.run(msec(1))
        PcpuFail(0).apply(ctx)
        assert [(k, d) for _, k, d in ctx.log] == [("pcpu_fail", (0,))]
        kinds = [e.detail[0] for e in system.machine.trace.events_of_kind("fault")]
        assert "pcpu_fail" in kinds

    @pytest.mark.parametrize("build", [
        lambda: RTXenSystem(pcpu_count=2, host="gedf"),
        lambda: RTXenSystem(pcpu_count=2, host="pedf"),
        lambda: CreditSystem(pcpu_count=2),
    ])
    def test_baselines_survive_fail_recover(self, build):
        system = build()
        loaded(system)
        scenario = Scenario([At(msec(3), PcpuFail(1)), At(msec(7), PcpuRecover(1))])
        scenario.install(system)
        system.run(msec(20))
        assert not system.machine.pcpus[1].failed
        assert system.miss_report().total_released > 0


class TestVmChurn:
    @pytest.mark.parametrize("build", [
        rtvirt,
        lambda: RTXenSystem(pcpu_count=2, host="gedf"),
        lambda: CreditSystem(pcpu_count=2),
    ])
    def test_boot_and_shutdown(self, build):
        system = build()
        loaded(system)
        before = len(system.vms)
        ctx = Scenario(
            [At(msec(2), VmChurn(lifetime_ns=msec(6), period_ns=msec(4),
                                 slice_ns=msec(1)))]
        ).install(system)
        system.run(msec(20))
        kinds = [d for _, k, d in ctx.log if k == "vm_churn"]
        # boot records carry (slice, period, lifetime) for trace replay
        assert ("churn0", "boot", msec(1), msec(4), msec(6)) in kinds
        assert ("churn0", "shutdown") in kinds
        assert len(system.vms) == before

    def test_retired_tasks_keep_their_stats(self):
        system = rtvirt(pcpu_count=2)
        Scenario(
            [At(0, VmChurn(lifetime_ns=msec(10), period_ns=msec(5),
                           slice_ns=msec(1)))]
        ).install(system)
        system.run(msec(20))
        report = system.miss_report()
        assert "churn0.rta" in report.per_task
        assert report.per_task["churn0.rta"].released >= 2

    def test_rejected_boot_is_logged_and_torn_down(self):
        system = rtvirt(pcpu_count=1)
        loaded(system, slice_ns=msec(9), period_ns=msec(10))
        ctx = Scenario(
            [At(msec(1), VmChurn(slice_ns=msec(5), period_ns=msec(10)))]
        ).install(system)
        system.run(msec(5))
        assert any(
            k == "vm_churn" and "rejected" in d for _, k, d in ctx.log
        )
        assert [vm.name for vm in system.vms] == ["vm"]


class TestCrossLayerFaults:
    def test_drop_window_rejects_and_freezes(self):
        system = rtvirt(pcpu_count=2)
        vm, _ = loaded(system)
        ctx = FaultContext(system)
        system.run(msec(1))
        HypercallDrop(duration_ns=msec(10)).apply(ctx)
        with pytest.raises(Exception):
            vm.register_task(Task("late", msec(1), msec(10)))
        assert vm.port.dropped >= 1

    def test_drop_serves_stale_snapshot(self):
        system = rtvirt(pcpu_count=2)
        vm, _ = loaded(system)
        system.run(msec(1))
        vcpu = vm.vcpus[0]
        now = system.engine.now
        frozen_value = system.shared_memory.read(vcpu, now)
        ctx = FaultContext(system)
        HypercallDrop(duration_ns=msec(50)).apply(ctx)
        system.run(msec(20))
        assert system.shared_memory.read(vcpu, system.engine.now) == frozen_value

    def test_delay_defers_parameter_installation(self):
        system = rtvirt(pcpu_count=2)
        vm, task = loaded(system)
        ctx = FaultContext(system)
        system.run(msec(1))
        HypercallDelay(delay_ns=msec(2), duration_ns=msec(10)).apply(ctx)
        old_budget = vm.vcpus[0].budget_ns
        vm.adjust_task(task, msec(4), msec(10))
        assert vm.vcpus[0].budget_ns == old_budget  # not yet installed
        system.run(system.engine.now + msec(3))
        assert vm.vcpus[0].budget_ns != old_budget
        assert vm.port.delayed >= 1

    def test_noop_on_baselines(self):
        system = CreditSystem(pcpu_count=2)
        loaded(system)
        ctx = FaultContext(system)
        HypercallDrop(duration_ns=msec(5)).apply(ctx)
        HypercallDelay().apply(ctx)
        assert [k for _, k, _ in ctx.log] == ["hypercall_drop", "hypercall_delay"]


class TestWorkloadSurge:
    def test_surge_scales_then_reverts(self):
        system = rtvirt(pcpu_count=2)
        vm, task = loaded(system, slice_ns=msec(2), period_ns=msec(10))
        Scenario(
            [At(msec(5), WorkloadSurge("vm", num=2, den=1, duration_ns=msec(10)))]
        ).install(system)
        system.run(msec(7))
        assert task.slice_ns == msec(4)
        system.run(msec(20))
        assert task.slice_ns == msec(2)

    def test_missing_vm_is_logged(self):
        system = rtvirt()
        ctx = FaultContext(system)
        surge = WorkloadSurge("ghost")
        surge.apply(ctx)
        assert ctx.log[0][1:] == (
            "workload_surge",
            ("ghost", "no-such-vm", surge.num, surge.den, surge.duration_ns),
        )


class TestClockJitter:
    def test_jitter_enabled_then_disabled(self):
        system = rtvirt(pcpu_count=2)
        loaded(system)
        ctx = FaultContext(system, RandomStreams(3))
        Scenario(
            [At(msec(2), ClockJitter(max_ns=msec(1), duration_ns=msec(10)))]
        ).install(system, RandomStreams(3))
        system.run(msec(5))
        scheduler = system.machine.host_scheduler
        assert scheduler._jitter_max == msec(1)
        system.run(msec(20))
        assert scheduler._jitter_max == 0
        assert scheduler.timer_jitter() == 0

    def test_jitter_perturbs_replenishment(self):
        miss_profiles = []
        for max_ns in (0, msec(5)):
            system = RTXenSystem(pcpu_count=1, host="gedf")
            task = Task("t", msec(5), msec(10))
            vm = system.create_vm("vm", interfaces=[(msec(6), msec(10))])
            system.register_rta(vm, task)
            PeriodicDriver(system.engine, vm, task).start()
            if max_ns:
                Scenario([At(0, ClockJitter(max_ns=max_ns))]).install(
                    system, RandomStreams(5)
                )
            system.run(sec(2))
            miss_profiles.append(system.miss_report().total_missed)
        assert miss_profiles[0] == 0
        assert miss_profiles[1] > 0  # late replenishment starves the server

    def test_seeded_jitter_is_deterministic(self):
        def run(seed):
            system = rtvirt(pcpu_count=2)
            loaded(system)
            Scenario([At(0, ClockJitter(max_ns=msec(1)))]).install(
                system, RandomStreams(seed)
            )
            system.run(msec(200))
            report = system.miss_report()
            return (report.total_released, report.total_missed)

        assert run(7) == run(7)
