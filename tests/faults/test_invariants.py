"""Tests for the online invariant checker.

Healthy systems must run fault scenarios without tripping any rule;
deliberately broken schedulers (wrong EDF order, a dead exhaust timer)
and corrupted state must raise :class:`InvariantViolation` naming the
rule and carrying the trailing decision window.
"""

import types
from fractions import Fraction

import pytest

from repro.baselines.credit import CreditSystem
from repro.baselines.rtxen import RTXenSystem
from repro.core.system import RTVirtSystem
from repro.faults import (
    At,
    InvariantChecker,
    InvariantViolation,
    PcpuFail,
    PcpuRecover,
    Scenario,
    VmChurn,
)
from repro.guest.task import Task
from repro.host.costs import ZERO_COSTS
from repro.simcore.time import msec
from repro.workloads.periodic import PeriodicDriver


def loaded_rtxen(pcpu_count=1, tasks=((msec(2), msec(10)),), host="gedf"):
    system = RTXenSystem(pcpu_count=pcpu_count, host=host)
    for i, (slice_ns, period_ns) in enumerate(tasks):
        task = Task(f"t{i}", slice_ns, period_ns)
        vm = system.create_vm(f"vm{i}", interfaces=[(slice_ns * 2, period_ns)])
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task).start()
    return system


class TestHealthySystems:
    @pytest.mark.parametrize("build", [
        lambda: RTVirtSystem(pcpu_count=2, cost_model=ZERO_COSTS),
        lambda: loaded_rtxen(pcpu_count=2, tasks=((msec(2), msec(10)),) * 3),
        lambda: loaded_rtxen(
            pcpu_count=2, tasks=((msec(2), msec(10)),) * 3, host="pedf"
        ),
        lambda: CreditSystem(pcpu_count=2),
    ])
    def test_clean_run_trips_nothing(self, build):
        system = build()
        checker = InvariantChecker(system).attach()
        system.run(msec(100))
        assert checker.checks > 0

    def test_faulted_run_trips_nothing(self):
        system = loaded_rtxen(pcpu_count=2, tasks=((msec(2), msec(10)),) * 3)
        checker = InvariantChecker(system).attach()
        Scenario(
            [
                At(msec(10), PcpuFail(1)),
                At(msec(30), PcpuRecover(1)),
                At(msec(5), VmChurn(lifetime_ns=msec(20), slice_ns=msec(1),
                                    period_ns=msec(10))),
            ]
        ).install(system)
        system.run(msec(100))
        assert checker.checks > 0

    def test_disabled_checker_skips(self):
        system = CreditSystem(pcpu_count=1)
        checker = InvariantChecker(system).attach()
        checker.enabled = False
        system.run(msec(10))
        assert checker.checks == 0


class TestBrokenSchedulers:
    def test_reversed_edf_choice_trips_edf_order(self):
        """A scheduler preferring the *latest* deadline must be caught."""
        system = loaded_rtxen(
            pcpu_count=1,
            tasks=((msec(2), msec(10)), (msec(2), msec(40))),
        )
        scheduler = system.machine.host_scheduler

        def broken_choose(self):
            servers = self._eligible()
            m = self.machine.available_count
            return list(reversed(servers))[:m]

        scheduler._choose = types.MethodType(broken_choose, scheduler)
        InvariantChecker(system).attach()
        with pytest.raises(InvariantViolation) as exc:
            system.run(msec(100))
        assert exc.value.rule == "edf_order"
        assert exc.value.window  # offending trace window attached

    def test_dead_exhaust_timer_trips_budget(self):
        """A server kept placed after draining its budget must be caught."""
        system = RTXenSystem(pcpu_count=1, host="gedf")
        task = Task("t", msec(5), msec(10))
        vm = system.create_vm("vm", interfaces=[(msec(3), msec(10))])
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task).start()
        scheduler = system.machine.host_scheduler
        scheduler._exhaust = types.MethodType(
            lambda self, server: None, scheduler
        )
        InvariantChecker(system).attach()
        with pytest.raises(InvariantViolation) as exc:
            system.run(msec(100))
        assert exc.value.rule == "budget"

    def test_negative_remaining_trips_budget(self):
        system = loaded_rtxen(pcpu_count=1)
        scheduler = system.machine.host_scheduler
        checker = InvariantChecker(system).attach()
        system.run(msec(10))
        server = next(iter(scheduler._servers.values()))
        server.remaining = -1
        with pytest.raises(InvariantViolation) as exc:
            checker._check()
        assert exc.value.rule == "budget"
        assert "overdrew" in str(exc.value)


class TestCorruptedState:
    def test_double_occupancy_trips_placement(self):
        system = loaded_rtxen(pcpu_count=2)
        checker = InvariantChecker(system).attach()
        system.run(msec(11))  # mid-job: the t=10ms release is running
        machine = system.machine
        placed = [p.running_vcpu for p in machine.pcpus if p.running_vcpu]
        assert placed
        for pcpu in machine.pcpus:
            pcpu.running_vcpu = placed[0]  # bypass the bookkeeping
        with pytest.raises(InvariantViolation) as exc:
            checker._check()
        assert exc.value.rule == "placement"

    def test_running_on_failed_pcpu_trips_placement(self):
        system = loaded_rtxen(pcpu_count=1)
        checker = InvariantChecker(system).attach()
        system.run(msec(11))  # mid-job: the t=10ms release is running
        pcpu = system.machine.pcpus[0]
        assert pcpu.running_vcpu is not None
        pcpu.failed = True
        with pytest.raises(InvariantViolation) as exc:
            checker._check()
        assert exc.value.rule == "placement"

    def test_overcommitted_admission_trips_capacity(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS)
        checker = InvariantChecker(system).attach()
        system.run(msec(1))
        system.admission._granted[999] = Fraction(100)
        with pytest.raises(InvariantViolation) as exc:
            checker._check()
        assert exc.value.rule == "capacity"


class TestViolationShape:
    def test_violation_carries_rule_time_and_window(self):
        system = loaded_rtxen(pcpu_count=1)
        checker = InvariantChecker(system, window=4).attach()
        system.run(msec(21))  # mid-job: the t=20ms release is running
        pcpu = system.machine.pcpus[0]
        pcpu.failed = True
        assert pcpu.running_vcpu is not None
        with pytest.raises(InvariantViolation) as exc:
            checker._check()
        violation = exc.value
        assert violation.time_ns == system.engine.now
        assert 0 < len(violation.window) <= 4
        time, snapshot = violation.window[-1]
        assert isinstance(time, int) and isinstance(snapshot, tuple)
