"""Unit tests for the CSA interface search (the CARTS substitute)."""

import pytest

from repro.analysis.csa import (
    csa_best_interface,
    csa_interface,
    default_period_candidates,
    is_schedulable,
)
from repro.analysis.dbf import AnalysisTask
from repro.analysis.sbf import PeriodicResource
from repro.simcore.errors import AnalysisError
from repro.simcore.time import msec, usec


class TestSchedulability:
    def test_dedicated_cpu_schedules_feasible_set(self):
        tasks = [AnalysisTask(msec(2), msec(10))]
        assert is_schedulable(tasks, PeriodicResource(msec(10), msec(10)))

    def test_insufficient_budget_fails(self):
        tasks = [AnalysisTask(msec(5), msec(10))]
        assert not is_schedulable(tasks, PeriodicResource(msec(10), msec(4)))

    def test_utilization_bound_prunes(self):
        tasks = [AnalysisTask(msec(9), msec(10))]
        assert not is_schedulable(tasks, PeriodicResource(msec(1), int(msec(1) * 0.8)))

    def test_empty_set_schedulable(self):
        assert is_schedulable([], PeriodicResource(msec(1), 0))


class TestInterface:
    def test_table2_nh_dec_values(self):
        # The paper's published CARTS outputs for NH-Dec (Table 2).
        cases = [
            ((23, 30), (4, 5)),
            ((13, 20), (3, 4)),
            ((5, 10), (2, 3)),
            ((10, 100), (1, 9)),
        ]
        for (s, p), (theta, pi) in cases:
            best = csa_best_interface(
                [AnalysisTask(msec(s), msec(p))], min_period=msec(1)
            )
            assert best.budget == msec(theta), f"task ({s},{p})"
            assert best.period == msec(pi), f"task ({s},{p})"

    def test_interface_always_pessimistic(self):
        task = AnalysisTask(msec(13), msec(20))
        best = csa_best_interface([task], min_period=msec(1))
        assert best.bandwidth >= task.utilization

    def test_minimal_budget_at_period(self):
        task = AnalysisTask(msec(23), msec(30))
        iface = csa_interface([task], msec(5), budget_granularity=msec(1))
        assert iface.budget == msec(4)
        # One ms less must not be schedulable.
        assert not is_schedulable([task], PeriodicResource(msec(5), msec(3)))

    def test_infeasible_set_raises(self):
        tasks = [AnalysisTask(msec(8), msec(10)), AnalysisTask(msec(8), msec(10))]
        with pytest.raises(AnalysisError):
            csa_interface(tasks, msec(5))

    def test_empty_tasks_zero_budget(self):
        assert csa_interface([], msec(5)).budget == 0

    def test_min_period_respected(self):
        task = AnalysisTask(usec(58), usec(500))
        best = csa_best_interface(
            [task], min_period=usec(100), budget_granularity=usec(1)
        )
        assert best.period >= usec(100)

    def test_best_improves_or_matches_single_query(self):
        task = AnalysisTask(msec(13), msec(20))
        single = csa_interface([task], msec(4), budget_granularity=msec(1))
        best = csa_best_interface([task], min_period=msec(1))
        assert best.bandwidth <= single.bandwidth + 1e-12


class TestCandidates:
    def test_ms_granularity_for_ms_tasks(self):
        candidates = default_period_candidates([AnalysisTask(msec(5), msec(10))])
        assert all(c % msec(1) == 0 for c in candidates)
        assert max(candidates) <= msec(10)

    def test_fine_granularity_for_us_tasks(self):
        candidates = default_period_candidates([AnalysisTask(usec(58), usec(500))])
        assert min(candidates) < usec(100)
