"""Unit tests for the DMPR claimed-CPU computation."""

from fractions import Fraction

import pytest

from repro.analysis.dmpr import DMPRInterface, claim_for_group, claimed_cpus, decompose
from repro.analysis.sbf import PeriodicResource
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec


class TestDecompose:
    def test_sub_unit_bandwidth(self):
        iface = decompose(PeriodicResource(msec(10), msec(4)), Fraction(2, 5))
        assert iface.full_cpus == 0
        assert iface.partial.budget == msec(4)

    def test_multi_cpu_bandwidth(self):
        iface = decompose(PeriodicResource(msec(10), msec(10)), Fraction(5, 2))
        assert iface.full_cpus == 2
        assert iface.partial.budget == msec(5)

    def test_exact_integer_bandwidth(self):
        iface = decompose(PeriodicResource(msec(10), msec(10)), Fraction(2))
        assert iface.full_cpus == 2
        assert iface.partial.budget == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            decompose(PeriodicResource(msec(10), 0), Fraction(-1))

    def test_bandwidth_property(self):
        iface = DMPRInterface(1, PeriodicResource(msec(10), msec(5)))
        assert iface.bandwidth == Fraction(3, 2)


class TestClaim:
    def _iface(self, num, den, period_ms=10):
        budget = msec(period_ms) * num // den
        return DMPRInterface(0, PeriodicResource(msec(period_ms), budget))

    def test_partials_packed_first_fit_decreasing(self):
        interfaces = [
            self._iface(7, 10),
            self._iface(1, 4),
            self._iface(2, 3),
            self._iface(3, 5),
        ]
        # FFD: 0.7+0.25 | 0.667+... loads 0.7,0.667,0.6,0.25 ->
        # bin1: 0.7+0.25=0.95, bin2: 0.667, bin3: 0.6 -> wait 0.667+0.6 > 1
        assert claimed_cpus(interfaces) == 3

    def test_full_cpus_added(self):
        interfaces = [
            DMPRInterface(2, PeriodicResource(msec(10), msec(1))),
            self._iface(1, 2),
        ]
        assert claimed_cpus(interfaces) == 2 + 1

    def test_zero_partials(self):
        interfaces = [DMPRInterface(1, PeriodicResource(msec(10), 0))]
        assert claimed_cpus(interfaces) == 1

    def test_claim_for_group_matches_paper_h_equiv(self):
        # Figure 3 / §4.2: H-Equiv needs 2.283 CPUs allocated, 3 claimed.
        from repro.baselines.configs import rtxen_interfaces_for_group
        from repro.workloads.periodic import TABLE1_GROUPS

        interfaces = rtxen_interfaces_for_group(
            TABLE1_GROUPS["H-Equiv"], min_period=msec(1)
        )
        claimed, allocated = claim_for_group(interfaces)
        assert claimed == 3
        assert abs(float(allocated) - 2.283) < 0.001
