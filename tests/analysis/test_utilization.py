"""Unit tests for utilization predicates."""

from fractions import Fraction

from repro.analysis.dbf import AnalysisTask
from repro.analysis.utilization import (
    dpwrap_schedulable,
    edf_uniprocessor_schedulable,
    exact_utilization,
    minimum_cpus_dpwrap,
)
from repro.simcore.time import msec


class TestUtilization:
    def test_exact_sum(self):
        assert exact_utilization([(1, 3), (1, 3), (1, 3)]) == 1

    def test_edf_uniprocessor_boundary(self):
        ok = [AnalysisTask(msec(5), msec(15)), AnalysisTask(msec(10), msec(15))]
        assert edf_uniprocessor_schedulable(ok)
        over = ok + [AnalysisTask(1, msec(15))]
        assert not edf_uniprocessor_schedulable(over)

    def test_dpwrap_optimality_bound(self):
        tasks = [AnalysisTask(msec(8), msec(10)) for _ in range(2)]
        tasks.append(AnalysisTask(msec(4), msec(10)))
        assert dpwrap_schedulable(tasks, cpus=2)
        assert not dpwrap_schedulable(tasks, cpus=1)

    def test_dpwrap_rejects_over_unit_task(self):
        # A task demanding more than one CPU's worth of bandwidth
        # (utilization 1.1 via an extended deadline) is never schedulable.
        task = AnalysisTask(msec(11), msec(10), deadline=msec(11))
        assert not dpwrap_schedulable([task], cpus=4)

    def test_minimum_cpus(self):
        tasks = [AnalysisTask(msec(8), msec(10)) for _ in range(3)]  # U=2.4
        assert minimum_cpus_dpwrap(tasks) == 3

    def test_minimum_cpus_exact_integer(self):
        tasks = [AnalysisTask(msec(10), msec(10)) for _ in range(2)]  # U=2
        assert minimum_cpus_dpwrap(tasks) == 2

    def test_minimum_cpus_at_least_one(self):
        assert minimum_cpus_dpwrap([AnalysisTask(1, msec(100))]) == 1
