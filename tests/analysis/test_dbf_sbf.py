"""Unit tests for demand and supply bound functions."""

import pytest

from repro.analysis.dbf import (
    AnalysisTask,
    dbf,
    dbf_task,
    demand_checkpoints,
    hyperperiod,
    utilization,
)
from repro.analysis.sbf import PeriodicResource, lsbf, sbf
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec


class TestDbf:
    def test_zero_before_first_deadline(self):
        t = AnalysisTask(msec(2), msec(10))
        assert dbf_task(t, msec(9)) == 0

    def test_steps_at_deadlines(self):
        t = AnalysisTask(msec(2), msec(10))
        assert dbf_task(t, msec(10)) == msec(2)
        assert dbf_task(t, msec(19)) == msec(2)
        assert dbf_task(t, msec(20)) == msec(4)

    def test_explicit_deadline(self):
        t = AnalysisTask(msec(2), msec(10), deadline=msec(5))
        assert dbf_task(t, msec(5)) == msec(2)
        assert dbf_task(t, msec(15)) == msec(4)

    def test_sum_over_tasks(self):
        tasks = [AnalysisTask(msec(1), msec(5)), AnalysisTask(msec(2), msec(10))]
        assert dbf(tasks, msec(10)) == msec(4)

    def test_invalid_task_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalysisTask(0, msec(10))
        with pytest.raises(ConfigurationError):
            AnalysisTask(msec(6), msec(10), deadline=msec(5))

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            dbf_task(AnalysisTask(1, 2), -1)

    def test_hyperperiod(self):
        tasks = [AnalysisTask(1, msec(10)), AnalysisTask(1, msec(15))]
        assert hyperperiod(tasks) == msec(30)

    def test_utilization(self):
        tasks = [AnalysisTask(msec(1), msec(4)), AnalysisTask(msec(1), msec(4))]
        assert utilization(tasks) == pytest.approx(0.5)

    def test_checkpoints_cover_deadlines(self):
        t = AnalysisTask(msec(2), msec(10))
        points = demand_checkpoints([t])
        assert msec(10) in points and msec(20) in points

    def test_checkpoints_truncated(self):
        t = AnalysisTask(1, 7)
        points = demand_checkpoints([t], bound=10**9, max_points=5)
        assert len(points) == 5


class TestSbf:
    def test_zero_through_starvation_gap(self):
        r = PeriodicResource(period=msec(10), budget=msec(4))
        # Worst-case gap 2(Π-Θ) = 12 ms.
        assert sbf(r, msec(12)) == 0
        assert sbf(r, msec(12) + 1) == 1

    def test_full_budget_after_gap_plus_budget(self):
        r = PeriodicResource(period=msec(10), budget=msec(4))
        assert sbf(r, msec(16)) == msec(4)

    def test_dedicated_cpu_supplies_everything(self):
        r = PeriodicResource(period=msec(10), budget=msec(10))
        assert sbf(r, msec(7)) == msec(7)

    def test_zero_budget_supplies_nothing(self):
        r = PeriodicResource(period=msec(10), budget=0)
        assert sbf(r, msec(100)) == 0

    def test_monotone_nondecreasing(self):
        r = PeriodicResource(period=msec(7), budget=msec(3))
        values = [sbf(r, t) for t in range(0, msec(50), msec(1) // 4)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_lsbf_lower_bounds_sbf(self):
        r = PeriodicResource(period=msec(7), budget=msec(3))
        for t in range(0, msec(60), msec(2)):
            assert lsbf(r, t) <= sbf(r, t) + 1e-6

    def test_invalid_resource_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicResource(period=0, budget=0)
        with pytest.raises(ConfigurationError):
            PeriodicResource(period=5, budget=6)

    def test_longest_starvation(self):
        r = PeriodicResource(period=msec(10), budget=msec(4))
        assert r.longest_starvation == msec(12)
