"""The multi-host cluster facade: placement, live migration, faults."""

from fractions import Fraction

import pytest

from repro.cluster import Cluster, HostSpec, default_specs
from repro.placement import safe_migration_params
from repro.placement.cluster import ClusterPlanner, HostDescriptor
from repro.placement.migration import precopy_schedule
from repro.simcore.errors import AdmissionError, ConfigurationError
from repro.simcore.rng import RandomStreams
from repro.simcore.time import msec, sec

#: 128 MiB over 10 GbE against a 250 MB/s dirty rate: 1 round, ~21.5 ms.
PARAMS = safe_migration_params(128 * 1024 * 1024, 250_000_000, 1_250_000_000)
RTAS = ((3 * msec(1), 10 * msec(1)),)


def two_hosts(**kwargs):
    return Cluster(default_specs(2), migration=PARAMS, **kwargs)


def seeded(cluster, count=2):
    cluster.seed([(f"vm{i}", RTAS) for i in range(count)])
    return cluster


def attach(cluster, vm_name, seed=5):
    streams = RandomStreams(seed)
    for j, task in enumerate(cluster.rt_tasks[vm_name]):
        cluster.attach_client(
            vm_name,
            j,
            streams.stream(f"t:{vm_name}.{j}"),
            task.period_ns,
            2 * task.period_ns,
        )


class TestConstruction:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(default_specs(2), scheduler="CFS")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster([])

    def test_hosts_share_one_engine(self):
        cluster = two_hosts()
        assert all(h.engine is cluster.engine for h in cluster.hosts)

    def test_host_lookup_by_index_name_identity(self):
        cluster = two_hosts()
        h1 = cluster.hosts[1]
        assert cluster.host(1) is h1
        assert cluster.host("h1") is h1
        assert cluster.host(h1) is h1
        with pytest.raises(ConfigurationError):
            cluster.host("h9")


class TestSeeding:
    @pytest.mark.parametrize("scheduler", ["RTVirt", "RT-Xen", "Credit"])
    def test_seed_matches_standalone_planner(self, scheduler):
        """The facade's placement is exactly ClusterPlanner.place_all on
        the reservation-derived demands — no second placement logic."""
        workload = [(f"vm{i}", RTAS) for i in range(3)]
        cluster = Cluster(default_specs(2), scheduler=scheduler, migration=PARAMS)
        assignments = cluster.seed(workload)

        reference = ClusterPlanner(
            [HostDescriptor(s.name, s.pcpu_count) for s in default_specs(2)]
        )
        demands = [cluster._demand(name, rtas) for name, rtas in workload]
        assert assignments == reference.place_all(demands)
        for name, host_name in assignments.items():
            assert cluster.host_of(name).name == host_name
            assert cluster.vms[name].name == name

    def test_add_vm_skips_failed_hosts(self):
        cluster = seeded(two_hosts())
        cluster.fail_host("h1")
        vm = cluster.add_vm("late", RTAS)
        assert cluster.host_of("late").name == "h0"
        assert vm.name == "late"

    def test_add_vm_raises_when_no_live_host_fits(self):
        cluster = Cluster(
            [HostSpec("h0", pcpu_count=1)], scheduler="RTVirt", migration=PARAMS
        )
        big = ((9 * msec(1), 10 * msec(1)),)
        cluster.seed([("vm0", big)])
        with pytest.raises(AdmissionError):
            cluster.add_vm("vm1", big)


class TestMigration:
    def test_migrate_moves_vm_and_records_downtime(self):
        cluster = seeded(two_hosts(policy="first_fit"))
        attach(cluster, "vm0")
        source = cluster.host_of("vm0")
        dest = cluster.hosts[1 - source.index]
        migration = cluster.migrate("vm0", dest)
        assert migration is not None
        schedule = precopy_schedule(PARAMS)
        assert migration.downtime_ns == schedule.downtime_ns
        cluster.run(sec(1))
        assert migration.done
        assert cluster.host_of("vm0") is dest
        assert cluster.total_downtime_ns == schedule.downtime_ns
        assert dest.migrations_in == 1 and source.migrations_out == 1
        assert cluster.planner.assignments["vm0"] == dest.name

    def test_vm_is_paused_during_blackout(self):
        cluster = seeded(two_hosts(policy="first_fit"))
        source = cluster.host_of("vm0")
        migration = cluster.migrate("vm0", 1 - source.index)
        mid_blackout = (migration.pause_ns + migration.resume_ns) // 2
        cluster.run(mid_blackout + 1)
        vm = cluster.vms["vm0"]
        assert vm.machine is None  # extracted: no host is running it
        cluster.run(sec(1))
        assert vm.machine is cluster.host_of("vm0").machine

    def test_migrate_without_params_is_graceful(self):
        """Satellite: a non-convergent pre-copy (dirty rate >= link)
        must refuse the migration, not raise."""
        assert safe_migration_params(1 << 20, 2_000_000_000, 1_000_000_000) is None
        cluster = seeded(Cluster(default_specs(2), migration=None))
        assert cluster.migrate("vm0", 1) is None
        assert cluster.rebalance() == []
        kinds = {kind for _, kind, _ in cluster.log}
        assert "migrate_unsafe" in kinds and "rebalance_off" in kinds
        assert cluster.host_of("vm0") is cluster.hosts[0]

    def test_migrate_to_own_host_skipped(self):
        cluster = seeded(two_hosts())
        source = cluster.host_of("vm0")
        assert cluster.migrate("vm0", source) is None

    def test_double_migrate_skipped_while_in_flight(self):
        cluster = seeded(two_hosts(policy="first_fit"))
        assert cluster.migrate("vm0", 1) is not None
        assert cluster.migrate("vm0", 1) is None
        assert len(cluster.migrations) == 1

    def test_shutdown_mid_migration_rejected(self):
        cluster = seeded(two_hosts(policy="first_fit"))
        cluster.migrate("vm0", 1)
        with pytest.raises(ConfigurationError):
            cluster.shutdown_vm("vm0")

    def test_shutdown_after_resume_ok(self):
        cluster = seeded(two_hosts(policy="first_fit"))
        cluster.migrate("vm0", 1)
        cluster.run(sec(1))
        cluster.shutdown_vm("vm0")
        assert "vm0" not in cluster.vms
        assert "vm0" not in cluster.planner.assignments


class TestHostFaults:
    def test_fail_host_evacuates_by_migration(self):
        cluster = Cluster(default_specs(3), migration=PARAMS)
        cluster.seed([("vm0", RTAS), ("vm1", RTAS)])
        victims = [n for n in ("vm0", "vm1") if cluster.host_of(n).name == "h0"]
        cluster.fail_host("h0")
        assert cluster.host("h0").failed
        cluster.run(sec(1))
        for name in victims:
            assert cluster.host_of(name).name != "h0"
        assert len(cluster.migrations) == len(victims)

    def test_fail_host_strands_when_nothing_fits(self):
        cluster = Cluster(
            [HostSpec("h0", pcpu_count=1), HostSpec("h1", pcpu_count=1)],
            migration=PARAMS,
        )
        big = ((9 * msec(1), 10 * msec(1)),)
        cluster.seed([("vm0", big), ("vm1", big)])
        cluster.fail_host("h0")
        kinds = [kind for _, kind, _ in cluster.log]
        assert "vm_stranded" in kinds
        assert not cluster.migrations

    def test_recover_host_accepts_new_vms_again(self):
        cluster = Cluster(default_specs(2, pcpu_count=1), migration=PARAMS)
        seeded(cluster)
        cluster.fail_host("h0")
        cluster.run(sec(1))
        cluster.recover_host("h0")
        assert not cluster.host("h0").failed
        cluster.add_vm("back", RTAS)
        assert cluster.host_of("back").name == "h0"  # worst fit: now empty


class TestRebalance:
    def test_rebalance_executes_proposals(self):
        cluster = Cluster(default_specs(2), policy="first_fit", migration=PARAMS)
        cluster.seed([(f"vm{i}", RTAS) for i in range(4)])
        assert all(cluster.host_of(f"vm{i}").name == "h0" for i in range(4))
        moved = cluster.rebalance(target_imbalance=0.25)
        assert moved
        cluster.run(sec(1))
        assert any(cluster.host_of(name).name == "h1" for name in moved)
        for name in moved:
            assert cluster.planner.assignments[name] == "h1"
