"""The cluster_* experiment family: shards, merging, clock-offset effect."""

import pytest

from repro.experiments import cluster_scale, registry
from repro.runner.workunits import plan_for
from repro.simcore.time import MSEC, sec

DURATION = sec(1)
SEED = 29


class TestUnitSpecs:
    def test_specs_cover_every_host(self):
        for mode in ("consolidate", "rebalance", "hostfail"):
            specs = cluster_scale.cluster_unit_specs(mode)
            for scheduler in cluster_scale.CLUSTER_SCHEDULERS:
                for host_count in cluster_scale.CLUSTER_HOST_COUNTS[mode]:
                    indices = [
                        kwargs["host_index"]
                        for _, kwargs in specs
                        if kwargs["scheduler"] == scheduler
                        and kwargs["host_count"] == host_count
                    ]
                    assert indices == list(range(host_count))

    def test_clockskew_specs_sweep_offsets(self):
        specs = cluster_scale.cluster_unit_specs("clockskew")
        offsets = {kwargs["clock_offset_step_ns"] for _, kwargs in specs}
        assert offsets == set(cluster_scale.CLOCKSKEW_OFFSETS_NS)
        assert len(specs) == 2 * len(cluster_scale.CLOCKSKEW_OFFSETS_NS)

    def test_smoke_grid_is_a_prefix(self):
        full = cluster_scale.cluster_unit_specs("rebalance")
        smoke = cluster_scale.cluster_unit_specs("rebalance", smoke=True)
        assert len(smoke) < len(full)
        labels = [label for label, _ in full]
        assert all(label in labels for label, _ in smoke)


class TestShardEquivalence:
    def test_serial_runner_equals_assembled_shards(self):
        """run_cluster is literally the shard list run in order — the
        invariant the parallel byte-identity gate rests on."""
        serial = cluster_scale.run_cluster(
            "hostfail", duration_ns=DURATION, seed=SEED, smoke=True
        )
        parts = [
            cluster_scale.run_cluster_host(
                duration_ns=DURATION, seed=SEED, **kwargs
            )
            for _, kwargs in cluster_scale.cluster_unit_specs("hostfail", smoke=True)
        ]
        assembled = cluster_scale.assemble_cluster(parts)
        assert assembled.rows() == serial.rows()

    def test_workunit_plan_matches_specs(self):
        plan = plan_for("cluster_hostfail", None)
        labels = [
            label
            for label, _ in cluster_scale.cluster_unit_specs("hostfail")
        ]
        assert [u.unit_id for u in plan.units] == [
            f"cluster_hostfail/{label}" for label in labels
        ]
        for unit in plan.units:
            assert unit.fn == "repro.experiments.cluster_scale:run_cluster_host"
            kwargs = dict(unit.kwargs)
            assert kwargs["duration_ns"] == registry.CLUSTER_DURATION_NS
            assert kwargs["seed"] == registry.CLUSTER_SEED

    def test_registry_has_every_mode(self):
        for mode in cluster_scale.CLUSTER_MODES:
            assert f"cluster_{mode}" in registry.REGISTRY


class TestClusterScenarios:
    def test_hostfail_evacuates_in_experiment(self):
        """Acceptance: >= 2 hosts in one engine with >= 1 live migration
        whose downtime lands in the result rows."""

        state = {}

        def attach(cluster, host):
            state["cluster"] = cluster

        part = cluster_scale.run_cluster_host(
            mode="hostfail",
            scheduler="RTVirt",
            host_count=3,
            host_index=0,
            duration_ns=DURATION,
            seed=SEED,
            attach=attach,
        )
        cluster = state["cluster"]
        assert len(cluster.hosts) == 3
        done = [m for m in cluster.migrations if m.done]
        assert done, "host failure must trigger at least one live migration"
        assert cluster.total_downtime_ns == sum(m.downtime_ns for m in done)
        assert part["row"]["migr_out"] == len(
            [m for m in done if m.source is cluster.hosts[0]]
        )

    def test_rebalance_migrates_but_consolidate_does_not(self):
        def migrations(mode):
            state = {}
            cluster_scale.run_cluster_host(
                mode=mode,
                scheduler="RTVirt",
                host_count=2,
                host_index=0,
                duration_ns=DURATION,
                seed=SEED,
                attach=lambda cluster, host: state.update(cluster=cluster),
            )
            return len(state["cluster"].migrations)

        assert migrations("consolidate") == 0
        assert migrations("rebalance") > 0

    def test_clock_offset_changes_cross_host_misses(self):
        """Acceptance: offset != 0 measurably changes the cross-host
        deadline-miss count while the engine-level accounting (which
        runs on true time) stays identical."""

        def audit_and_row(offset_ns):
            state = {}
            part = cluster_scale.run_cluster_host(
                mode="clockskew",
                scheduler="RTVirt",
                host_count=2,
                host_index=1,
                duration_ns=sec(2),
                seed=SEED,
                clock_offset_step_ns=offset_ns,
                attach=lambda cluster, host: state.update(cluster=cluster),
            )
            return state["cluster"].audit, part["row"]

        sync_audit, sync_row = audit_and_row(0)
        skew_audit, skew_row = audit_and_row(25 * MSEC)

        sync_decided, sync_missed = sync_audit.cross_pairs()
        skew_decided, skew_missed = skew_audit.cross_pairs()
        assert sync_decided == skew_decided > 0  # same timeline, same jobs
        assert sync_missed == 0
        assert skew_missed > 0
        # The engine's own per-task accounting is offset-invariant.
        assert skew_row["decided"] == sync_row["decided"]
        assert skew_row["missed"] == sync_row["missed"]

    def test_merged_cluster_row_sums_hosts(self):
        result = cluster_scale.run_cluster(
            "clockskew", duration_ns=DURATION, seed=SEED
        )
        rows = result.rows()
        host_rows = [r for r in rows if r["host"] != "cluster"]
        merged = [r for r in rows if r["host"] == "cluster"]
        assert len(merged) == len(cluster_scale.CLOCKSKEW_OFFSETS_NS)
        for config in merged:
            parts = [
                r
                for r in host_rows
                if r["offset_ms"] == config["offset_ms"]
            ]
            assert config["decided"] == sum(r["decided"] for r in parts)
            assert config["migr_in"] == sum(r["migr_in"] for r in parts)
