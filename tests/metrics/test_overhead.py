"""Unit tests for overhead accounting (the Table 6 quantities)."""

import pytest

from repro.metrics.overhead import HostMetrics, OverheadStats, PcpuUsage


class TestOverheadStats:
    def test_record_paths(self):
        s = OverheadStats()
        s.record_schedule(500)
        s.record_schedule(500)
        s.record_context_switch(2000)
        s.record_migration(3000)
        s.record_hypercall(10000)
        assert s.schedule_calls == 2
        assert s.schedule_time == 1000
        assert s.switch_and_migration_time == 5000
        assert s.total_overhead_time() == 16000

    def test_overhead_percent(self):
        s = OverheadStats()
        s.record_schedule(1_000_000)
        assert s.overhead_percent(100_000_000) == pytest.approx(1.0)

    def test_percent_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            OverheadStats().overhead_percent(0)

    def test_mean_schedule_call(self):
        s = OverheadStats()
        assert s.mean_schedule_call_usec() == 0.0
        s.record_schedule(2000)
        assert s.mean_schedule_call_usec() == 2.0

    def test_table6_row(self):
        s = OverheadStats()
        s.record_schedule(1_000)
        s.record_context_switch(2_000)
        row = s.as_table6_row(1_000_000)
        assert row["schedule_us"] == 1.0
        assert row["context_switch_us"] == 2.0
        assert row["overhead_percent"] == pytest.approx(0.3)


class TestHostMetrics:
    def test_pcpu_lazily_created(self):
        m = HostMetrics()
        m.pcpu(3).busy += 10
        assert m.total_busy() == 10

    def test_utilization(self):
        u = PcpuUsage(busy=50, overhead=10)
        assert u.utilization(100) == pytest.approx(0.6)

    def test_utilization_rejects_zero_wall(self):
        with pytest.raises(ValueError):
            PcpuUsage().utilization(0)
