"""Unit tests for deadline accounting."""

from repro.metrics.deadlines import DeadlineStats, MissReport


class TestDeadlineStats:
    def test_met_and_missed(self):
        s = DeadlineStats()
        s.record_release()
        s.record_completion(release=0, deadline=100, completion=90)
        s.record_release()
        s.record_completion(release=100, deadline=200, completion=250)
        assert s.met == 1 and s.missed == 1
        assert s.miss_ratio == 0.5
        assert s.met_ratio == 0.5

    def test_boundary_completion_meets(self):
        s = DeadlineStats()
        s.record_completion(0, 100, 100)
        assert s.met == 1 and s.missed == 0

    def test_response_times_recorded(self):
        s = DeadlineStats()
        s.record_completion(10, 100, 60)
        assert s.response_times == [50]

    def test_worst_tardiness(self):
        s = DeadlineStats()
        s.record_completion(0, 100, 150)
        s.record_completion(0, 100, 120)
        assert s.worst_tardiness == 50

    def test_abandoned_past_deadline_counts_missed(self):
        s = DeadlineStats()
        s.record_abandoned(deadline_passed=True)
        assert s.missed == 1

    def test_abandoned_before_deadline_undecided(self):
        s = DeadlineStats()
        s.record_abandoned(deadline_passed=False)
        assert s.decided == 0

    def test_empty_ratios(self):
        s = DeadlineStats()
        assert s.miss_ratio == 0.0
        assert s.met_ratio == 1.0


class _FakeTask:
    def __init__(self, name, stats):
        self.name = name
        self.stats = stats


class TestMissReport:
    def _stats(self, met, missed):
        s = DeadlineStats()
        s.met, s.missed = met, missed
        s.released = met + missed
        return s

    def test_aggregation(self):
        report = MissReport(
            {"a": self._stats(9, 1), "b": self._stats(10, 0)}
        )
        assert report.total_met == 19
        assert report.total_missed == 1
        assert report.overall_miss_ratio == 1 / 20

    def test_tasks_with_misses(self):
        report = MissReport({"a": self._stats(9, 1), "b": self._stats(10, 0)})
        assert report.tasks_with_misses == ["a"]

    def test_worst_task_miss_ratio(self):
        report = MissReport({"a": self._stats(1, 1), "b": self._stats(99, 1)})
        assert report.worst_task_miss_ratio == 0.5

    def test_empty_report(self):
        report = MissReport({})
        assert report.overall_miss_ratio == 0.0
        assert report.worst_task_miss_ratio == 0.0

    def test_collect_from_tasks(self):
        from repro.metrics.deadlines import collect_miss_report

        tasks = [_FakeTask("x", self._stats(5, 0))]
        assert collect_miss_report(tasks).total_met == 5
