"""Unit tests for bandwidth accounting (the Figure 3 quantities)."""

from fractions import Fraction

import pytest

from repro.metrics.bandwidth import (
    BandwidthBreakdown,
    allocated_savings_percent,
    average_extra_cpu,
    claimed_savings_percent,
    total_bandwidth,
)


def _breakdown(req="2", alloc="9/4", claimed="3", rtvirt="21/10"):
    return BandwidthBreakdown(
        group="g",
        rta_required=Fraction(req),
        rtxen_allocated=Fraction(alloc),
        rtxen_claimed=Fraction(claimed),
        rtvirt=Fraction(rtvirt),
    )


class TestBreakdown:
    def test_wasted(self):
        assert _breakdown().rtxen_wasted == Fraction(1)

    def test_rtvirt_overhead(self):
        assert _breakdown().rtvirt_overhead == Fraction(1, 10)

    def test_percent_rendering(self):
        pct = _breakdown().as_percent()
        assert pct["RTA-Req"] == 200.0
        assert pct["RT-Xen: Claimed"] == 300.0


class TestAggregates:
    def test_total_bandwidth(self):
        assert total_bandwidth([(1, 4), (1, 2)]) == Fraction(3, 4)

    def test_average_extra_cpu(self):
        b = [_breakdown(), _breakdown(claimed="4")]
        assert average_extra_cpu(b, "rtxen") == 1.5

    def test_average_extra_cpu_rtvirt(self):
        assert average_extra_cpu([_breakdown()], "rtvirt") == pytest.approx(0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            average_extra_cpu([_breakdown()], "bogus")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_extra_cpu([], "rtxen")

    def test_claimed_savings(self):
        # rtvirt 2.1 vs claimed 3 -> 30%
        assert claimed_savings_percent([_breakdown()]) == pytest.approx(30.0)

    def test_allocated_savings(self):
        # rtvirt 2.1 vs allocated 2.25 -> 6.67%
        assert allocated_savings_percent([_breakdown()]) == pytest.approx(100 * (1 - 2.1 / 2.25))
