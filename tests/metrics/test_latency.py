"""Unit tests for the latency recorder."""

import pytest

from repro.metrics.latency import LatencyRecorder, merge_recorders
from repro.simcore.time import usec


class TestRecorder:
    def test_record_and_percentiles(self):
        r = LatencyRecorder()
        for v in range(1, 1001):
            r.record(usec(v))
        tail = r.tail_usec()
        assert tail[90.0] == 900
        assert tail[99.9] == 999
        assert r.p999_usec() == 999

    def test_mean(self):
        r = LatencyRecorder()
        r.record(usec(10))
        r.record(usec(30))
        assert r.mean_usec() == 20

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_len(self):
        r = LatencyRecorder()
        r.record(1)
        assert len(r) == 1

    def test_slo(self):
        r = LatencyRecorder()
        for v in [100] * 998 + [600, 600]:
            r.record(usec(v))
        assert not r.meets_slo(500.0)
        assert r.meets_slo(500.0, quantile=99.0)
        assert r.slo_attainment(500.0) == 0.998

    def test_cdf_ends_at_one(self):
        r = LatencyRecorder()
        for v in (5, 1, 5):
            r.record(usec(v))
        cdf = r.cdf_usec()
        assert cdf[-1] == (5.0, 1.0)


class TestMerge:
    def test_merge_combines_samples(self):
        a, b = LatencyRecorder("a"), LatencyRecorder("b")
        a.record(usec(1))
        b.record(usec(2))
        merged = merge_recorders([a, b])
        assert sorted(merged.samples_usec) == [1.0, 2.0]

    def test_merge_does_not_mutate_sources(self):
        a = LatencyRecorder("a")
        a.record(1)
        merge_recorders([a]).record(2)
        assert len(a) == 1
