"""Unit tests for percentile/CDF math."""

import pytest

from repro.metrics.percentiles import (
    cdf_points,
    fraction_below,
    mean,
    percentile,
    percentiles,
    tail_summary,
)


class TestPercentile:
    def test_nearest_rank_simple(self):
        data = list(range(1, 101))  # 1..100
        assert percentile(data, 90) == 90
        assert percentile(data, 99) == 99
        assert percentile(data, 100) == 100

    def test_unsorted_input(self):
        assert percentile([5, 1, 3], 100) == 5

    def test_single_sample(self):
        assert percentile([7], 99.9) == 7

    def test_p999_nearest_rank(self):
        # Nearest-rank: the 999th of 1000 ordered samples.
        data = [1.0] * 998 + [50.0, 100.0]
        assert percentile(data, 99.9) == 50.0
        # With more samples the top outliers are captured.
        data = [1.0] * 9989 + [100.0] * 11
        assert percentile(data, 99.9) == 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 0)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentiles_batch_matches_single(self):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        batch = percentiles(data, [50, 90, 99])
        for p in (50, 90, 99):
            assert batch[p] == percentile(data, p)

    def test_tail_summary_keys(self):
        tail = tail_summary([1, 2, 3])
        assert set(tail) == {90.0, 95.0, 99.0, 99.9}


class TestCdf:
    def test_points_monotone(self):
        pts = cdf_points([3, 1, 2, 2])
        xs = [x for x, _ in pts]
        ys = [y for _, y in pts]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_duplicates_collapse(self):
        pts = cdf_points([2, 2, 2])
        assert pts == [(2, 1.0)]

    def test_empty(self):
        assert cdf_points([]) == []

    def test_fraction_below(self):
        assert fraction_below([1, 2, 3, 4], 2) == 0.5

    def test_fraction_below_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_below([], 1)


class TestMean:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
