"""Integration tests across the full stack."""

from fractions import Fraction

import pytest

from repro.core.system import RTVirtSystem
from repro.guest.syscall import sched_adjust, sched_setattr, sched_unregister
from repro.guest.task import Task, TaskKind
from repro.host.costs import DEFAULT_COSTS, ZERO_COSTS
from repro.simcore.rng import RandomStreams
from repro.simcore.time import msec, sec, usec
from repro.simcore.trace import Trace
from repro.workloads.memcached import MemcachedService
from repro.workloads.background import add_background_vms
from repro.workloads.periodic import PeriodicDriver


class TestDynamicLifecycle:
    def test_register_adjust_unregister_cycle(self):
        system = RTVirtSystem(pcpu_count=2, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("vm")
        t = sched_setattr(vm, "rta", msec(2), msec(10))
        d = PeriodicDriver(system.engine, vm, t).start()
        system.run(msec(50))
        sched_adjust(vm, t, msec(6), msec(10))
        system.run(msec(50))
        d.stop()
        system.run(msec(20))
        sched_unregister(vm, t)
        system.run(msec(30))
        system.finalize()
        assert t.stats.missed == 0
        assert t.stats.met >= 9

    def test_late_arriving_vm_admitted_online(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm1 = system.create_vm("vm1")
        t1 = sched_setattr(vm1, "a", msec(4), msec(10))
        PeriodicDriver(system.engine, vm1, t1).start()
        system.run(msec(100))
        # A second VM registers mid-run through the hypercall.
        vm2 = system.create_vm("vm2")
        t2 = sched_setattr(vm2, "b", msec(4), msec(10))
        PeriodicDriver(system.engine, vm2, t2).start()
        system.run(msec(100))
        system.finalize()
        assert t1.stats.missed == 0
        assert t2.stats.missed == 0

    def test_departure_frees_bandwidth_for_newcomer(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm1 = system.create_vm("vm1")
        t1 = sched_setattr(vm1, "a", msec(7), msec(10))
        d1 = PeriodicDriver(system.engine, vm1, t1).start()
        system.run(msec(50))
        vm2 = system.create_vm("vm2")
        from repro.simcore.errors import AdmissionError

        with pytest.raises(AdmissionError):
            sched_setattr(vm2, "b", msec(7), msec(10))
        d1.stop()
        system.run(msec(20))
        sched_unregister(vm1, t1)
        t2 = sched_setattr(vm2, "b", msec(7), msec(10))
        PeriodicDriver(system.engine, vm2, t2).start()
        system.run(msec(100))
        system.finalize()
        assert t2.stats.missed == 0


class TestMixedWorkloads:
    def test_periodic_and_sporadic_share_host(self):
        streams = RandomStreams(4)
        system = RTVirtSystem(pcpu_count=2, slack_ns=usec(500))
        vm_p = system.create_vm("periodic")
        tp = sched_setattr(vm_p, "video", msec(17), msec(20))
        PeriodicDriver(system.engine, vm_p, tp).start()
        vm_m = system.create_vm("mc", slack_ns=0)
        svc = MemcachedService(system.engine, vm_m, streams.stream("mc")).start()
        add_background_vms(system, 3)
        system.run(sec(10))
        system.finalize()
        assert tp.stats.missed == 0
        assert svc.latency.p999_usec() < 500.0

    def test_multiprocessor_vm_with_hotplug_under_load(self):
        system = RTVirtSystem(pcpu_count=4, cost_model=DEFAULT_COSTS)
        vm = system.create_vm("big", vcpu_count=1, max_vcpus=4)
        tasks = []
        for i in range(4):
            t = sched_setattr(vm, f"t{i}", msec(6), msec(10))
            tasks.append(t)
            PeriodicDriver(system.engine, vm, t).start()
        assert len(vm.vcpus) >= 3  # hotplug happened
        system.run(sec(2))
        system.finalize()
        assert sum(t.stats.missed for t in tasks) == 0


class TestAccountingConsistency:
    def test_busy_time_matches_trace(self):
        trace = Trace()
        system = RTVirtSystem(
            pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0, trace=trace
        )
        vm = system.create_vm("vm")
        t = sched_setattr(vm, "a", msec(3), msec(10))
        PeriodicDriver(system.engine, vm, t).start()
        system.run(msec(100))
        system.finalize()
        assert trace.busy_time() == system.machine.metrics.total_busy()

    def test_work_executed_equals_work_completed(self):
        trace = Trace()
        system = RTVirtSystem(
            pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0, trace=trace
        )
        vm = system.create_vm("vm")
        t = sched_setattr(vm, "a", msec(3), msec(10))
        PeriodicDriver(system.engine, vm, t).start()
        system.run(msec(105))
        system.finalize()
        completed_work = t.stats.completed * msec(3)
        pending_progress = sum(j.work - j.remaining for j in t.pending)
        assert trace.busy_time() == completed_work + pending_progress

    def test_determinism_across_runs(self):
        def run_once():
            streams = RandomStreams(7)
            system = RTVirtSystem(pcpu_count=2)
            vm = system.create_vm("mc", slack_ns=0)
            svc = MemcachedService(system.engine, vm, streams.stream("mc")).start()
            add_background_vms(system, 5)
            system.run(sec(5))
            system.finalize()
            return svc.latency.samples_ns

        assert run_once() == run_once()
