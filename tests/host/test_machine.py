"""Unit tests for the machine model: work charging, completions, overheads."""

import pytest

from repro.guest.task import Task
from repro.guest.vm import VM
from repro.host.costs import ZERO_COSTS, CostModel
from repro.host.machine import Machine
from repro.host.scheduler import HostScheduler
from repro.simcore.engine import Engine
from repro.simcore.errors import ConfigurationError, SchedulingError
from repro.simcore.time import msec, usec
from repro.simcore.trace import Trace


class ManualScheduler(HostScheduler):
    """A host scheduler driven explicitly by the test."""

    name = "manual"

    def __init__(self):
        super().__init__()
        self.wakes = []
        self.idles = []
        self.accounted = []

    def add_vcpu(self, vcpu):
        pass

    def remove_vcpu(self, vcpu):
        pass

    def on_vcpu_wake(self, vcpu):
        self.wakes.append(vcpu.name)

    def on_vcpu_idle(self, vcpu, pcpu_index):
        self.idles.append((vcpu.name, pcpu_index))

    def account(self, vcpu, pcpu_index, elapsed):
        self.accounted.append((vcpu.name, elapsed))

    def start(self):
        pass


def build(pcpus=1, costs=ZERO_COSTS, trace=None):
    engine = Engine()
    machine = Machine(engine, pcpus, costs, trace)
    sched = ManualScheduler()
    machine.set_host_scheduler(sched)
    vm = VM("vm", vcpu_count=2)
    machine.attach_vm(vm)
    return engine, machine, sched, vm


class TestWorkCharging:
    def test_job_completes_at_exact_instant(self):
        engine, machine, sched, vm = build()
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        engine.run_until(msec(5))
        assert t.stats.met == 1
        assert t.pending == []
        # Completed exactly at 2ms.
        assert t.stats.response_times == [msec(2)]

    def test_idle_pcpu_charges_nothing(self):
        engine, machine, sched, vm = build()
        machine.start()
        engine.run_until(msec(5))
        machine.sync_all()
        assert machine.metrics.total_busy() == 0

    def test_preemption_splits_work(self):
        engine, machine, sched, vm = build()
        t = Task("t", msec(4), msec(20))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        engine.at(msec(1), machine.set_running, 0, None)
        engine.at(msec(3), machine.set_running, 0, t.vcpu)
        engine.run_until(msec(10))
        # 1ms before preemption + 3ms after resume -> completes at 6ms.
        assert t.stats.response_times == [msec(6)]

    def test_account_reports_wallclock(self):
        engine, machine, sched, vm = build()
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        engine.run_until(msec(2))
        total = sum(e for name, e in sched.accounted if name == t.vcpu.name)
        assert total == msec(2)

    def test_vcpu_cannot_run_twice(self):
        engine, machine, sched, vm = build(pcpus=2)
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        machine.set_running(0, t.vcpu)
        with pytest.raises(SchedulingError):
            machine.set_running(1, t.vcpu)

    def test_trace_segments_recorded(self):
        trace = Trace()
        engine, machine, sched, vm = build(trace=trace)
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        engine.run_until(msec(3))
        segs = trace.segments_for_task("t")
        assert sum(s.duration for s in segs) == msec(2)
        assert list(trace.iter_overlaps()) == []


class TestNotifications:
    def test_wake_notification_reaches_scheduler(self):
        engine, machine, sched, vm = build()
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        assert sched.wakes == [t.vcpu.name]

    def test_idle_reported_once(self):
        engine, machine, sched, vm = build()
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        engine.run_until(msec(5))
        assert sched.idles == [(t.vcpu.name, 0)]

    def test_idle_not_reported_when_work_arrives_same_instant(self):
        engine, machine, sched, vm = build()
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        # Next job released exactly at the completion instant.
        engine.at(msec(2), lambda: vm.release_job(t, now=engine.now))
        engine.run_until(msec(3))
        assert sched.idles == []

    def test_empty_vcpu_reports_idle(self):
        engine, machine, sched, vm = build()
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        machine.set_running(0, t.vcpu)  # no job released
        engine.run_until(usec(1))
        assert sched.idles == [(t.vcpu.name, 0)]


class TestOverheadWindows:
    COSTS = CostModel(
        context_switch_ns=usec(2),
        migration_ns=usec(3),
        schedule_base_ns=0,
        schedule_per_elem_ns=0,
        hypercall_ns=usec(10),
        guest_switch_ns=0,
    )

    def test_context_switch_delays_completion(self):
        engine, machine, sched, vm = build(costs=self.COSTS)
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        engine.run_until(msec(5))
        assert t.stats.response_times == [msec(2) + usec(2)]
        assert machine.metrics.overhead.context_switches == 1

    def test_migration_cost_added(self):
        engine, machine, sched, vm = build(pcpus=2, costs=self.COSTS)
        t = Task("t", msec(4), msec(20))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        engine.at(msec(1), machine.set_running, 0, None)

        def migrate():
            machine.set_running(1, t.vcpu)

        engine.at(msec(1), migrate)
        engine.run_until(msec(10))
        assert machine.metrics.overhead.migrations == 1
        # 2µs initial switch + (2µs + 3µs) migration switch delay the
        # 4ms of work; the migration itself is seamless at t=1ms.
        assert t.stats.response_times == [msec(4) + usec(7)]

    def test_hypercall_charges_pcpu0(self):
        engine, machine, sched, vm = build(costs=self.COSTS)
        machine.start()
        machine.charge_hypercall()
        assert machine.metrics.overhead.hypercalls == 1
        assert machine.pcpus[0].overhead_until == usec(10)

    def test_schedule_cost_recorded(self):
        engine, machine, sched, vm = build(
            costs=CostModel(schedule_base_ns=500, schedule_per_elem_ns=50)
        )
        machine.start()
        machine.charge_schedule(0, elements=10)
        assert machine.metrics.overhead.schedule_calls == 1
        assert machine.metrics.overhead.schedule_time == 1000

    def test_overhead_counted_in_usage(self):
        engine, machine, sched, vm = build(costs=self.COSTS)
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        machine.set_running(0, t.vcpu)
        engine.run_until(msec(5))
        usage = machine.metrics.pcpu(0)
        assert usage.overhead == usec(2)
        assert usage.busy == msec(2)


class TestLifecycle:
    def test_run_requires_scheduler(self):
        machine = Machine(Engine(), 1, ZERO_COSTS)
        with pytest.raises(ConfigurationError):
            machine.run(100)

    def test_attach_vm_twice_rejected(self):
        engine, machine, sched, vm = build()
        with pytest.raises(ConfigurationError):
            machine.attach_vm(vm)

    def test_zero_pcpus_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(Engine(), 0, ZERO_COSTS)

    def test_finalize_accounts_pending(self):
        engine, machine, sched, vm = build()
        t = Task("t", msec(5), msec(10))
        vm.register_task(t)
        machine.start()
        vm.release_job(t, now=0)
        engine.run_until(msec(20))
        machine.finalize()
        assert t.stats.missed == 1  # never ran, deadline long past

    def test_total_cpu_time(self):
        engine, machine, sched, vm = build(pcpus=3)
        machine.start()
        engine.run_until(msec(10))
        assert machine.total_cpu_time() == 3 * msec(10)
