"""Tests for the HostScheduler base helpers (background fill/rotation)."""

import pytest

from repro.guest.vm import VM
from repro.host.costs import ZERO_COSTS
from repro.host.machine import Machine
from repro.host.scheduler import HostScheduler
from repro.simcore.engine import Engine
from repro.simcore.errors import SchedulingError
from repro.simcore.time import msec
from repro.simcore.trace import Trace


class BareScheduler(HostScheduler):
    """Minimal concrete scheduler exposing only the base helpers."""

    name = "bare"

    def add_vcpu(self, vcpu):
        pass

    def remove_vcpu(self, vcpu):
        pass

    def on_vcpu_wake(self, vcpu):
        pass

    def on_vcpu_idle(self, vcpu, pcpu_index):
        self.fill_with_background(pcpu_index)

    def start(self):
        for pcpu in self.machine.pcpus:
            self.fill_with_background(pcpu.index)


def build(bg_count=2, pcpus=1):
    engine = Engine()
    trace = Trace()
    machine = Machine(engine, pcpus, ZERO_COSTS, trace)
    sched = BareScheduler()
    machine.set_host_scheduler(sched)
    vms = []
    for i in range(bg_count):
        vm = VM(f"bg{i}", slack_ns=0)
        machine.attach_vm(vm)
        vm.add_background_process()
        sched.add_background_vcpu(vm.vcpus[0])
        vms.append(vm)
    return engine, machine, sched, trace, vms


class TestBackgroundHelpers:
    def test_engine_access_requires_attach(self):
        sched = BareScheduler()
        with pytest.raises(SchedulingError):
            _ = sched.engine

    def test_single_background_runs_continuously(self):
        engine, machine, sched, trace, vms = build(bg_count=1)
        machine.run(msec(10))
        assert trace.vcpu_usage_between("bg0.vcpu0", 0, msec(10)) == msec(10)

    def test_rotation_alternates_vcpus(self):
        engine, machine, sched, trace, vms = build(bg_count=2)
        machine.run(msec(10))
        u0 = trace.vcpu_usage_between("bg0.vcpu0", 0, msec(10))
        u1 = trace.vcpu_usage_between("bg1.vcpu0", 0, msec(10))
        assert u0 > 0 and u1 > 0
        assert abs(u0 - u1) <= sched.bg_quantum_ns

    def test_next_background_skips_running(self):
        engine, machine, sched, trace, vms = build(bg_count=2, pcpus=2)
        machine.run(msec(5))
        # Both PCPUs occupied; the two VCPUs must be distinct.
        occupants = {p.running_vcpu.name for p in machine.pcpus}
        assert len(occupants) == 2

    def test_next_background_excludes(self):
        engine, machine, sched, trace, vms = build(bg_count=2)
        machine.start()
        choice = sched.next_background_vcpu(exclude={vms[0].vcpus[0], vms[1].vcpus[0]})
        assert choice is None

    def test_no_background_leaves_pcpu_idle(self):
        engine = Engine()
        machine = Machine(engine, 1, ZERO_COSTS)
        sched = BareScheduler()
        machine.set_host_scheduler(sched)
        machine.run(msec(5))
        assert machine.pcpus[0].running_vcpu is None
