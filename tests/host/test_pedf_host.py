"""Tests for the partitioned-EDF host scheduler (RT-Xen's other config)."""

import pytest

from repro.guest.port import StaticPort
from repro.guest.task import Task
from repro.guest.vm import VM
from repro.host.base_system import BaseSystem
from repro.host.costs import ZERO_COSTS
from repro.host.edf import PartitionedEDFHostScheduler
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec
from repro.simcore.trace import Trace
from repro.workloads.periodic import PeriodicDriver


def build(pcpus=2, trace=None):
    system = BaseSystem(pcpus, cost_model=ZERO_COSTS, trace=trace)
    sched = PartitionedEDFHostScheduler()
    system.machine.set_host_scheduler(sched)
    return system, sched


def add_server(system, sched, name, budget_ms, period_ms, pcpu=None, drive=True):
    vm = VM(name, slack_ns=0)
    vm.set_port(StaticPort())
    system._attach(vm)
    vm.configure_vcpu(0, msec(budget_ms), msec(period_ms))
    sched.add_vcpu(vm.vcpus[0], pcpu=pcpu)
    task = Task(f"{name}.t", msec(budget_ms), msec(period_ms))
    vm.register_task(task)
    driver = PeriodicDriver(system.engine, vm, task).start() if drive else None
    return vm, task


class TestPlacement:
    def test_first_fit_decreasing_spreads(self):
        system, sched = build()
        vm_a, _ = add_server(system, sched, "a", 6, 10)
        vm_b, _ = add_server(system, sched, "b", 6, 10)
        assert sched._home[vm_a.vcpus[0].uid] != sched._home[vm_b.vcpus[0].uid]

    def test_overload_rejected(self):
        system, sched = build(pcpus=1)
        add_server(system, sched, "a", 6, 10)
        with pytest.raises(ConfigurationError):
            add_server(system, sched, "b", 6, 10)

    def test_explicit_pin(self):
        system, sched = build()
        vm, _ = add_server(system, sched, "a", 2, 10, pcpu=1)
        assert sched._home[vm.vcpus[0].uid] == 1

    def test_invalid_pin_rejected(self):
        system, sched = build()
        with pytest.raises(ConfigurationError):
            add_server(system, sched, "a", 2, 10, pcpu=7)

    def test_batch_placement_is_first_fit_decreasing(self):
        # Bandwidths 0.4, 0.4, 0.6, 0.6 on two PCPUs: FFD packs them
        # exactly (0.6+0.4 per PCPU); arrival-order first fit puts both
        # 0.4s on PCPU 0 and strands the second 0.6.
        system, sched = build(pcpus=2)
        vcpus = []
        for name, budget_ms in (("s0", 4), ("s1", 4), ("b0", 6), ("b1", 6)):
            vm = VM(name, slack_ns=0)
            vm.set_port(StaticPort())
            system._attach(vm)
            vm.configure_vcpu(0, msec(budget_ms), msec(10))
            vcpus.append(vm.vcpus[0])
        sched.add_vcpus(vcpus)
        from fractions import Fraction

        assert sched._loads[0] == sched._loads[1] == Fraction(1)
        s0, s1, b0, b1 = vcpus
        assert sched._home[b0.uid] != sched._home[b1.uid]
        assert sched._home[s0.uid] != sched._home[s1.uid]

    def test_arrival_order_single_adds_can_strand(self):
        # The single-add path packs in arrival order by design; the same
        # workload that add_vcpus() fits is rejected when added one by
        # one in unfavourable order (documents the add_vcpus contract).
        system, sched = build(pcpus=2)
        add_server(system, sched, "s0", 4, 10, drive=False)
        add_server(system, sched, "s1", 4, 10, drive=False)
        add_server(system, sched, "b0", 6, 10, drive=False)
        with pytest.raises(ConfigurationError):
            add_server(system, sched, "b1", 6, 10, drive=False)

    def test_loads_exact_across_add_remove_cycles(self):
        # Regression: float loads drifted across repeated add/remove of
        # bandwidths like 1/3, eventually refusing feasible placements.
        from fractions import Fraction

        system, sched = build(pcpus=1)
        for cycle in range(50):
            vm = VM(f"vm{cycle}", slack_ns=0)
            vm.set_port(StaticPort())
            system._attach(vm)
            vm.configure_vcpu(0, msec(1), msec(3))
            sched.add_vcpu(vm.vcpus[0])
            sched.remove_vcpu(vm.vcpus[0])
        assert sched._loads[0] == Fraction(0)
        # A full-bandwidth server still fits after the churn.
        vm = VM("full", slack_ns=0)
        vm.set_port(StaticPort())
        system._attach(vm)
        vm.configure_vcpu(0, msec(10), msec(10))
        sched.add_vcpu(vm.vcpus[0])
        assert sched._loads[0] == Fraction(1)


class TestExecution:
    def test_no_migration_ever(self):
        trace = Trace()
        system, sched = build(trace=trace)
        vms = [add_server(system, sched, f"v{i}", 3, 10)[0] for i in range(4)]
        system.run(msec(200))
        for vm in vms:
            pcpus = {s.pcpu for s in trace.segments_for_vcpu(vm.vcpus[0].name)}
            assert len(pcpus) == 1

    def test_partitioned_feasible_set_meets_deadlines(self):
        system, sched = build()
        tasks = []
        for i, (s, p) in enumerate([(5, 10), (4, 10), (5, 10), (4, 10)]):
            tasks.append(add_server(system, sched, f"v{i}", s, p)[1])
        system.run(msec(300))
        system.finalize()
        assert sum(t.stats.missed for t in tasks) == 0

    def test_edf_order_within_pcpu(self):
        trace = Trace()
        system, sched = build(pcpus=1, trace=trace)
        add_server(system, sched, "long", 2, 20, pcpu=0)
        add_server(system, sched, "short", 2, 10, pcpu=0)
        system.run(msec(5))
        assert trace.segments[0].vcpu == "short.t" or trace.segments[0].vcpu == "short.vcpu0"

    def test_background_fills_leftover(self):
        trace = Trace()
        system, sched = build(pcpus=1, trace=trace)
        add_server(system, sched, "a", 2, 10)
        bg = VM("bg", slack_ns=0)
        system._attach(bg)
        bg.add_background_process()
        sched.add_background_vcpu(bg.vcpus[0])
        system.run(msec(100))
        assert trace.vcpu_usage_between("bg.vcpu0", 0, msec(100)) >= msec(70)

    def test_fragmentation_vs_global(self):
        """The documented pEDF-host weakness: a set schedulable under
        gEDF fails partitioned placement when bandwidth fragments."""
        system, sched = build(pcpus=2)
        add_server(system, sched, "a", 6, 10)
        add_server(system, sched, "b", 6, 10)
        with pytest.raises(ConfigurationError):
            add_server(system, sched, "c", 6, 10)  # 1.8 total, but no fit
