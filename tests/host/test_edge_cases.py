"""Edge-case and failure-injection tests for the host layer."""

import pytest

from repro.core.system import RTVirtSystem
from repro.guest.task import Task, TaskKind
from repro.host.costs import ZERO_COSTS
from repro.simcore.errors import AdmissionError, ConfigurationError
from repro.simcore.time import msec, usec
from repro.workloads.periodic import PeriodicDriver


def make_system(**kw):
    kw.setdefault("cost_model", ZERO_COSTS)
    kw.setdefault("slack_ns", 0)
    kw.setdefault("pcpu_count", 1)
    return RTVirtSystem(**kw)


class TestZeroAndTinyWork:
    def test_one_nanosecond_jobs(self):
        system = make_system()
        vm = system.create_vm("vm")
        task = Task("tiny", 1, usec(1))
        vm.register_task(task)
        PeriodicDriver(system.engine, vm, task).start()
        system.run(usec(50))
        system.finalize()
        assert task.stats.missed == 0
        assert task.stats.met >= 40

    def test_task_with_slice_equal_period(self):
        system = make_system()
        vm = system.create_vm("vm")
        task = Task("full", msec(10), msec(10))
        vm.register_task(task)
        PeriodicDriver(system.engine, vm, task).start()
        system.run(msec(100))
        system.finalize()
        assert task.stats.missed == 0


class TestMidRunChanges:
    def test_unregister_running_task_mid_job(self):
        system = make_system()
        vm = system.create_vm("vm")
        task = Task("t", msec(5), msec(10))
        vm.register_task(task)
        system.machine.start()
        system.engine.at(0, lambda: vm.release_job(task, now=0))
        system.run_until(msec(2))  # mid-job
        vm.unregister_task(task)
        system.run_until(msec(20))  # must not crash or run the orphan
        system.finalize()
        assert task.stats.completed == 0

    def test_adjust_while_job_in_flight(self):
        system = make_system(pcpu_count=2)
        vm = system.create_vm("vm")
        task = Task("t", msec(2), msec(10))
        vm.register_task(task)
        driver = PeriodicDriver(system.engine, vm, task).start()
        system.run(msec(11))  # second job in flight
        vm.adjust_task(task, msec(6), msec(10))
        system.run(msec(100))
        system.finalize()
        # The in-flight 2 ms job and all 6 ms successors complete on time.
        assert task.stats.missed == 0

    def test_rejected_batch_leaves_running_schedule_intact(self):
        system = make_system()
        vm = system.create_vm("vm")
        task = Task("t", msec(6), msec(10))
        vm.register_task(task)
        PeriodicDriver(system.engine, vm, task).start()
        system.run(msec(25))
        vm2 = system.create_vm("vm2")
        with pytest.raises(AdmissionError):
            vm2.register_task(Task("greedy", msec(6), msec(10)))
        system.run(msec(25))
        system.finalize()
        assert task.stats.missed == 0


class TestSporadicEdges:
    def test_burst_at_minimum_interarrival(self):
        system = make_system()
        vm = system.create_vm("vm")
        task = Task("sp", msec(2), msec(10), TaskKind.SPORADIC)
        vm.register_task(task)
        system.machine.start()
        for k in range(5):  # arrivals exactly p apart: worst legal burst
            system.engine.at(
                msec(10 * k), lambda t=msec(10 * k): vm.release_job(task, now=t)
            )
        system.run_until(msec(60))
        system.finalize()
        assert task.stats.met == 5

    def test_long_idle_then_arrival(self):
        system = make_system()
        vm = system.create_vm("vm")
        task = Task("sp", msec(2), msec(10), TaskKind.SPORADIC)
        vm.register_task(task)
        hog = system.create_vm("hog")
        hog_task = Task("hog", msec(8), msec(10))
        hog.register_task(hog_task)
        PeriodicDriver(system.engine, hog, hog_task).start()
        system.machine.start()
        system.engine.at(msec(995), lambda: vm.release_job(task, now=msec(995)))
        system.run_until(msec(1050))
        system.finalize()
        assert task.stats.met == 1


class TestEngineSafety:
    def test_run_twice_continues(self):
        system = make_system()
        vm = system.create_vm("vm")
        task = Task("t", msec(1), msec(10))
        vm.register_task(task)
        PeriodicDriver(system.engine, vm, task).start()
        system.run(msec(20))
        first = task.stats.met
        system.run(msec(20))
        assert task.stats.met > first

    def test_finalize_idempotent(self):
        system = make_system()
        vm = system.create_vm("vm")
        task = Task("t", msec(1), msec(10))
        vm.register_task(task)
        PeriodicDriver(system.engine, vm, task).start()
        system.run(msec(15))
        system.finalize()
        met = task.stats.met
        system.finalize()
        assert task.stats.met == met

    def test_empty_system_runs(self):
        system = make_system()
        system.run(msec(100))
        system.finalize()
        assert system.miss_report().total_released == 0
