"""Unit tests for the EDF deferrable-server host scheduler."""

import pytest

from repro.guest.port import StaticPort
from repro.guest.task import Task
from repro.guest.vm import VM
from repro.host.base_system import BaseSystem
from repro.host.costs import ZERO_COSTS
from repro.host.edf import EDFHostScheduler
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec
from repro.simcore.trace import Trace
from repro.workloads.periodic import PeriodicDriver


def build(pcpus=1, trace=None):
    system = BaseSystem(pcpus, cost_model=ZERO_COSTS, trace=trace)
    sched = EDFHostScheduler()
    system.machine.set_host_scheduler(sched)
    return system, sched


def add_server(system, sched, name, budget_ms, period_ms, task_params=None):
    vm = VM(name, slack_ns=0)
    vm.set_port(StaticPort())
    system._attach(vm)
    vm.configure_vcpu(0, msec(budget_ms), msec(period_ms))
    sched.add_vcpu(vm.vcpus[0])
    task = None
    if task_params is not None:
        s, p = task_params
        task = Task(f"{name}.t", msec(s), msec(p))
        vm.register_task(task)
    return vm, task


class TestConfiguration:
    def test_unconfigured_vcpu_rejected(self):
        system, sched = build()
        vm = VM("v")
        system._attach(vm)
        with pytest.raises(ConfigurationError):
            sched.add_vcpu(vm.vcpus[0])

    def test_double_add_rejected(self):
        system, sched = build()
        vm, _ = add_server(system, sched, "v", 1, 10)
        with pytest.raises(ConfigurationError):
            sched.add_vcpu(vm.vcpus[0])


class TestEDFBehaviour:
    def test_earliest_deadline_runs_first(self):
        trace = Trace()
        system, sched = build(trace=trace)
        vm_a, t_a = add_server(system, sched, "a", 5, 20, task_params=(5, 20))
        vm_b, t_b = add_server(system, sched, "b", 5, 10, task_params=(5, 10))
        PeriodicDriver(system.engine, vm_a, t_a).start()
        PeriodicDriver(system.engine, vm_b, t_b).start()
        system.run(msec(10))
        first = trace.segments[0]
        assert first.vcpu == "b.vcpu0"  # deadline 10 < 20

    def test_full_utilization_edf_meets_all(self):
        system, sched = build()
        drivers = []
        for name, (s, p) in {"a": (5, 10), "b": (5, 20), "c": (5, 20)}.items():
            vm, t = add_server(system, sched, name, s, p, task_params=(s, p))
            drivers.append(PeriodicDriver(system.engine, vm, t).start())
        system.run(msec(200))
        system.finalize()
        assert system.miss_report().total_missed == 0

    def test_budget_exhaustion_preempts(self):
        trace = Trace()
        system, sched = build(trace=trace)
        # Server a has budget 2 but its task wants 5 per period: it gets
        # throttled at 2ms and b runs.
        vm_a, t_a = add_server(system, sched, "a", 2, 10, task_params=(5, 10))
        vm_b, t_b = add_server(system, sched, "b", 5, 10, task_params=(5, 10))
        PeriodicDriver(system.engine, vm_a, t_a).start()
        PeriodicDriver(system.engine, vm_b, t_b).start()
        system.run(msec(10))
        a_usage = trace.vcpu_usage_between("a.vcpu0", 0, msec(10))
        assert a_usage == msec(2)

    def test_deferrable_retains_budget_while_idle(self):
        system, sched = build()
        # Task arrives mid-period; a deferrable server still has budget.
        vm, t = add_server(system, sched, "a", 2, 10)
        task = Task("late", msec(2), msec(4))
        vm.register_task(task)
        system.machine.start()
        system.engine.at(msec(5), lambda: vm.release_job(task, now=msec(5)))
        system.run_until(msec(10))
        system.finalize()
        assert task.stats.met == 1  # served at 5..7 with retained budget

    def test_multiprocessor_runs_m_earliest(self):
        trace = Trace()
        system, sched = build(pcpus=2, trace=trace)
        for name, p in (("a", 10), ("b", 20), ("c", 30)):
            vm, t = add_server(system, sched, name, 5, p, task_params=(5, p))
            PeriodicDriver(system.engine, vm, t).start()
        system.run(msec(5))
        running = {s.vcpu for s in trace.segments if s.start == 0}
        assert running == {"a.vcpu0", "b.vcpu0"}


class TestBackgroundFill:
    def test_leftover_goes_to_background(self):
        trace = Trace()
        system, sched = build(trace=trace)
        vm, t = add_server(system, sched, "a", 2, 10, task_params=(2, 10))
        PeriodicDriver(system.engine, vm, t).start()
        bg_vm = VM("bg", slack_ns=0)
        system._attach(bg_vm)
        bg_vm.add_background_process()
        sched.add_background_vcpu(bg_vm.vcpus[0])
        system.run(msec(10))
        assert trace.vcpu_usage_between("bg.vcpu0", 0, msec(10)) >= msec(7)

    def test_background_rotation_shares_time(self):
        trace = Trace()
        system, sched = build(trace=trace)
        for i in range(2):
            bg_vm = VM(f"bg{i}", slack_ns=0)
            system._attach(bg_vm)
            bg_vm.add_background_process()
            sched.add_background_vcpu(bg_vm.vcpus[0])
        system.run(msec(20))
        u0 = trace.vcpu_usage_between("bg0.vcpu0", 0, msec(20))
        u1 = trace.vcpu_usage_between("bg1.vcpu0", 0, msec(20))
        assert u0 > 0 and u1 > 0
        assert abs(u0 - u1) <= msec(2)  # one rotation quantum

    def test_rt_preempts_background(self):
        trace = Trace()
        system, sched = build(trace=trace)
        bg_vm = VM("bg", slack_ns=0)
        system._attach(bg_vm)
        bg_vm.add_background_process()
        sched.add_background_vcpu(bg_vm.vcpus[0])
        vm, t = add_server(system, sched, "a", 5, 10)
        task = Task("rt", msec(5), msec(10))
        vm.register_task(task)
        system.machine.start()
        system.engine.at(msec(3), lambda: vm.release_job(task, now=msec(3)))
        system.run_until(msec(9))
        system.finalize()
        assert task.stats.met == 1


class TestRemoval:
    def test_remove_frees_pcpu(self):
        system, sched = build()
        vm, t = add_server(system, sched, "a", 5, 10, task_params=(5, 10))
        PeriodicDriver(system.engine, vm, t).start()
        system.run(msec(3))
        sched.remove_vcpu(vm.vcpus[0])
        assert system.machine.pcpu_of(vm.vcpus[0]) is None
        system.run(msec(5))  # no crash with the server gone
