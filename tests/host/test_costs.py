"""Unit tests for the overhead cost model."""

import pytest

from repro.host.costs import DEFAULT_COSTS, ZERO_COSTS, CostModel
from repro.simcore.errors import ConfigurationError


class TestCostModel:
    def test_zero_costs_all_zero(self):
        assert ZERO_COSTS.context_switch_ns == 0
        assert ZERO_COSTS.schedule_cost(100) == 0
        assert ZERO_COSTS.hypercall_ns == 0

    def test_default_hypercall_matches_paper(self):
        # The paper measures ~10 µs per hypercall.
        assert DEFAULT_COSTS.hypercall_ns == 10_000

    def test_schedule_cost_scales_with_elements(self):
        model = CostModel(schedule_base_ns=100, schedule_per_elem_ns=10)
        assert model.schedule_cost(0) == 100
        assert model.schedule_cost(5) == 150

    def test_negative_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(context_switch_ns=-1)

    def test_negative_elements_rejected(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_COSTS.schedule_cost(-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.context_switch_ns = 5  # type: ignore[misc]
