"""Tests for the cross-layer I/O scheduling extension (§7 future work)."""

import pytest

from repro.io import (
    BlockDevice,
    CrossLayerEDFIOScheduler,
    FairShareIOScheduler,
    FifoIOScheduler,
)
from repro.simcore.engine import Engine
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec, usec

KB = 1024
MB = 1024 * 1024


def make_device(scheduler=None, bps=100 * MB, overhead=usec(50)):
    engine = Engine()
    device = BlockDevice(
        engine, bytes_per_second=bps, fixed_overhead_ns=overhead, scheduler=scheduler
    )
    return engine, device


class TestDevice:
    def test_service_time_model(self):
        engine, device = make_device(bps=100 * MB, overhead=usec(50))
        request = device.submit("vm", 1 * MB)
        engine.run_until(msec(50))
        assert request.completed_at is not None
        # 1 MiB at 100 MiB/s = 10 ms + 50 µs overhead.
        assert request.latency_ns == msec(10) + usec(50) + usec(0)

    def test_sequential_service(self):
        engine, device = make_device()
        a = device.submit("vm", 1 * MB)
        b = device.submit("vm", 1 * MB)
        engine.run_until(msec(50))
        assert a.completed_at < b.completed_at
        assert b.started_at >= a.completed_at

    def test_deadline_tracking(self):
        engine, device = make_device()
        hit = device.submit("vm", 64 * KB, deadline=msec(10))
        miss = device.submit("vm", 10 * MB, deadline=msec(1))
        engine.run_until(msec(500))
        assert hit.met_deadline is True
        assert miss.met_deadline is False
        assert device.miss_count() == 1

    def test_on_complete_callback(self):
        engine, device = make_device()
        done = []
        device.submit("vm", KB, on_complete=done.append)
        engine.run_until(msec(10))
        assert len(done) == 1

    def test_invalid_inputs(self):
        engine, device = make_device()
        with pytest.raises(ConfigurationError):
            device.submit("vm", 0)
        with pytest.raises(ConfigurationError):
            BlockDevice(engine, bytes_per_second=0)

    def test_latencies_by_vm(self):
        engine, device = make_device()
        device.submit("a", KB)
        device.submit("b", KB)
        engine.run_until(msec(10))
        assert set(device.latencies_by_vm()) == {"a", "b"}


class TestFairShare:
    def test_weights_shape_service_order(self):
        sched = FairShareIOScheduler()
        sched.set_weight("heavy", 300)
        sched.set_weight("light", 100)
        engine, device = make_device(scheduler=sched)
        # Saturate with interleaved bulk requests.
        for _ in range(30):
            device.submit("heavy", MB)
            device.submit("light", MB)
        engine.run_until(msec(300))
        served = {}
        for request in device.completed:
            served[request.vm_name] = served.get(request.vm_name, 0) + request.size_bytes
        assert served["heavy"] > 2 * served["light"]

    def test_invalid_weight(self):
        with pytest.raises(ConfigurationError):
            FairShareIOScheduler().set_weight("vm", 0)

    def test_deadline_blindness(self):
        """Fair share ignores deadlines: a tight request waits its turn."""
        sched = FairShareIOScheduler()
        engine, device = make_device(scheduler=sched)
        for _ in range(10):
            device.submit("bulk", 2 * MB)
        urgent = device.submit("latency", 16 * KB, deadline=msec(5))
        engine.run_until(msec(500))
        # With equal weights the urgent request is served early-ish but
        # still behind the in-flight bulk request at minimum.
        assert urgent.latency_ns > msec(5)


class TestCrossLayerEDF:
    def test_reserved_deadline_request_preempts_queue(self):
        sched = CrossLayerEDFIOScheduler(period_ns=msec(100))
        sched.reserve("latency", 10 * MB)
        engine, device = make_device(scheduler=sched)
        for _ in range(10):
            device.submit("bulk", 2 * MB)
        urgent = device.submit("latency", 16 * KB, deadline=msec(25))
        engine.run_until(msec(500))
        # Served right after the in-flight bulk request completes.
        assert urgent.met_deadline is True

    def test_edf_order_among_reserved(self):
        sched = CrossLayerEDFIOScheduler(period_ns=msec(100))
        sched.reserve("a", 10 * MB)
        sched.reserve("b", 10 * MB)
        engine, device = make_device(scheduler=sched)
        device.submit("bulk", MB)  # occupies the device first
        late = device.submit("a", 64 * KB, deadline=msec(90))
        early = device.submit("b", 64 * KB, deadline=msec(40))
        engine.run_until(msec(200))
        assert early.completed_at < late.completed_at

    def test_budget_exhaustion_demotes_to_leftover(self):
        sched = CrossLayerEDFIOScheduler(period_ns=msec(1000))
        sched.reserve("greedy", 1 * MB)  # 1 MiB per second
        engine, device = make_device(scheduler=sched)
        first = device.submit("greedy", MB, deadline=msec(500))
        bulk = device.submit("bulk", 64 * KB)
        over = device.submit("greedy", MB, deadline=msec(500))
        engine.run_until(msec(500))
        # After `first` consumes the whole budget, `over` is plain FIFO,
        # behind the earlier best-effort request.
        assert first.completed_at < bulk.completed_at < over.completed_at

    def test_budget_replenished_each_period(self):
        sched = CrossLayerEDFIOScheduler(period_ns=msec(100))
        sched.reserve("vm", 1 * MB)
        engine, device = make_device(scheduler=sched)
        device.submit("vm", MB, deadline=msec(50))  # drains the budget
        engine.run_until(msec(150))
        # Queue both behind an in-flight filler so selection is exercised.
        filler = device.submit("bulk", MB)
        bulk = device.submit("bulk", 64 * KB)
        fresh = device.submit("vm", 64 * KB, deadline=msec(250))
        engine.run_until(msec(400))
        assert fresh.completed_at < bulk.completed_at  # budget is back

    def test_reservation_utilization(self):
        from fractions import Fraction

        sched = CrossLayerEDFIOScheduler(period_ns=msec(100))
        sched.reserve("a", 10 * MB)  # 100 MB/s
        assert sched.utilization_of_reservations(200 * MB) == Fraction(1, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CrossLayerEDFIOScheduler(period_ns=0)
        with pytest.raises(ConfigurationError):
            CrossLayerEDFIOScheduler().reserve("vm", 0)


class TestEndToEndComparison:
    """The §7 thesis in miniature: only the cross-layer scheduler keeps
    I/O tail latency under control against bulk contention."""

    def _run(self, scheduler):
        engine, device = make_device(scheduler=scheduler, bps=200 * MB)
        latencies = []
        # Bursty bulk writer: four 1 MiB requests every 24 ms (~85% of the
        # device).  The burst builds a queue, but a single request's
        # non-preemptive blocking (~5 ms) stays inside the probe's 10 ms
        # deadline — so the *scheduler*, not the device, decides the tail.
        def bulk(t=0):
            if engine.now < msec(900):
                for _ in range(4):
                    device.submit("bulk", 1 * MB)
                engine.after(msec(24), bulk)

        # Latency-critical reader: 64 KiB every 20 ms, 10 ms deadline.
        def probe():
            if engine.now < msec(900):
                device.submit(
                    "latency",
                    64 * KB,
                    deadline=engine.now + msec(10),
                    on_complete=lambda r: latencies.append(r.latency_ns),
                )
                engine.after(msec(20), probe)

        engine.at(0, bulk)
        engine.at(0, probe)
        engine.run_until(msec(1000))
        misses = device.miss_count("latency")
        return latencies, misses

    def test_cross_layer_beats_baselines(self):
        xl = CrossLayerEDFIOScheduler(period_ns=msec(100))
        xl.reserve("latency", 4 * MB)
        fifo_lat, fifo_miss = self._run(FifoIOScheduler())
        fair = FairShareIOScheduler()
        fair_lat, fair_miss = self._run(fair)
        xl_lat, xl_miss = self._run(xl)
        assert xl_miss == 0
        assert max(xl_lat) <= msec(10)
        assert fifo_miss > 0
        assert max(xl_lat) < max(fifo_lat)
        assert max(xl_lat) <= max(fair_lat)
