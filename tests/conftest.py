"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.host.costs import ZERO_COSTS
from repro.simcore.engine import Engine
from repro.simcore.trace import Trace


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def trace() -> Trace:
    return Trace()


@pytest.fixture
def zero_costs():
    return ZERO_COSTS


def make_rtvirt(pcpus=1, slack_ns=0, costs=ZERO_COSTS, trace=None, **kw):
    """An RTVirt system with exact-schedule defaults for unit tests."""
    from repro.core.system import RTVirtSystem

    return RTVirtSystem(
        pcpu_count=pcpus, cost_model=costs, slack_ns=slack_ns, trace=trace, **kw
    )
