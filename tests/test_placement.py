"""Tests for the multi-host placement and migration extensions (§6)."""

from fractions import Fraction

import pytest

from repro.placement import (
    ClusterPlanner,
    HostDescriptor,
    MigrationParams,
    VMDemand,
    estimate_migration,
    migration_safe_for,
    plan_rebalancing,
)
from repro.simcore.errors import AdmissionError, ConfigurationError
from repro.simcore.time import msec, usec

GB = 1024**3
GBPS = GB // 8  # bytes/s of a 1 Gb/s link... (8 Gb/s -> 1 GB/s)


def hosts(*caps):
    return [HostDescriptor(f"h{i}", c) for i, c in enumerate(caps)]


class TestPlacement:
    def test_worst_fit_spreads(self):
        planner = ClusterPlanner(hosts(4, 4))
        planner.place(VMDemand("a", Fraction(2)))
        planner.place(VMDemand("b", Fraction(2)))
        assert planner.assignments["a"] != planner.assignments["b"]

    def test_first_fit_packs(self):
        planner = ClusterPlanner(hosts(4, 4), policy="first_fit")
        planner.place(VMDemand("a", Fraction(2)))
        planner.place(VMDemand("b", Fraction(2)))
        assert planner.assignments == {"a": "h0", "b": "h0"}

    def test_best_fit_picks_tightest(self):
        planner = ClusterPlanner(hosts(4, 2), policy="best_fit")
        planner.place(VMDemand("a", Fraction(3, 2)))
        assert planner.assignments["a"] == "h1"

    def test_rejects_when_nothing_fits(self):
        planner = ClusterPlanner(hosts(1, 1))
        planner.place(VMDemand("a", Fraction(3, 4)))
        planner.place(VMDemand("b", Fraction(3, 4)))
        with pytest.raises(AdmissionError):
            planner.place(VMDemand("c", Fraction(1, 2)))

    def test_place_all_atomic(self):
        planner = ClusterPlanner(hosts(1))
        with pytest.raises(AdmissionError):
            planner.place_all(
                [VMDemand("a", Fraction(3, 4)), VMDemand("b", Fraction(3, 4))]
            )
        assert planner.assignments == {}
        assert planner.hosts[0].load == 0

    def test_remove_frees_capacity(self):
        planner = ClusterPlanner(hosts(1))
        planner.place(VMDemand("a", Fraction(3, 4)))
        planner.remove("a")
        planner.place(VMDemand("b", Fraction(3, 4)))
        assert "b" in planner.assignments

    def test_background_reserve_respected(self):
        host = HostDescriptor("h", 2, background_reserve=Fraction(1, 2))
        planner = ClusterPlanner([host])
        with pytest.raises(AdmissionError):
            planner.place(VMDemand("a", Fraction(7, 4)))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterPlanner([HostDescriptor("h", 1), HostDescriptor("h", 1)])

    def test_grow_in_place(self):
        planner = ClusterPlanner(hosts(2))
        planner.place(VMDemand("a", Fraction(1, 2)))
        host, migrated = planner.grow("a", Fraction(3, 2))
        assert not migrated
        assert host.load == Fraction(3, 2)

    def test_grow_migrates_when_full(self):
        planner = ClusterPlanner(hosts(2, 4), policy="first_fit")
        planner.place(VMDemand("a", Fraction(1)))
        planner.place(VMDemand("filler", Fraction(1)))
        host, migrated = planner.grow("a", Fraction(3))
        assert migrated
        assert host.name == "h1"

    def test_grow_rolls_back_on_failure(self):
        planner = ClusterPlanner(hosts(2))
        planner.place(VMDemand("a", Fraction(1)))
        planner.place(VMDemand("b", Fraction(1)))
        with pytest.raises(AdmissionError):
            planner.grow("a", Fraction(2))
        assert planner.host_of("a").name == "h0"
        assert planner.host("h0").load == Fraction(2)


class TestMigrationModel:
    def _params(self, dirty=100 * 1024 * 1024):
        return MigrationParams(
            memory_bytes=4 * GB,
            dirty_rate_bytes_per_s=dirty,
            link_bytes_per_s=GB,  # ~8 Gb/s
        )

    def test_precopy_converges(self):
        est = estimate_migration(self._params())
        assert est.downtime_ns < est.total_duration_ns
        assert est.rounds >= 2
        assert est.transferred_bytes >= 4 * GB

    def test_zero_dirty_rate_single_round(self):
        est = estimate_migration(self._params(dirty=0))
        assert est.downtime_ns == 0 or est.rounds <= 2

    def test_higher_dirty_rate_more_downtime(self):
        low = estimate_migration(self._params(dirty=50 * 1024 * 1024))
        high = estimate_migration(self._params(dirty=500 * 1024 * 1024))
        assert high.downtime_ns >= low.downtime_ns

    def test_nonconvergent_rejected(self):
        with pytest.raises(ConfigurationError):
            MigrationParams(
                memory_bytes=GB, dirty_rate_bytes_per_s=GB, link_bytes_per_s=GB
            )

    def test_safety_criterion(self):
        est = estimate_migration(self._params())
        # A task with 100 ms slack tolerates ~60 ms downtime; one with
        # 10 µs slack does not.
        assert migration_safe_for(est, slice_ns=msec(10), period_ns=msec(200))
        assert not migration_safe_for(est, slice_ns=usec(490), period_ns=usec(500))


class TestRebalancing:
    def test_rebalance_reduces_imbalance(self):
        planner = ClusterPlanner(hosts(4, 4), policy="first_fit")
        for i in range(6):
            planner.place(VMDemand(f"vm{i}", Fraction(1, 2)))
        assert planner.imbalance() > 0.5
        params = MigrationParams(
            memory_bytes=GB, dirty_rate_bytes_per_s=0, link_bytes_per_s=GB
        )
        moved = plan_rebalancing(planner, params, target_imbalance=0.3)
        assert moved
        assert planner.imbalance() <= 0.5

    def test_rebalance_noop_when_balanced(self):
        planner = ClusterPlanner(hosts(4, 4))
        planner.place(VMDemand("a", Fraction(1)))
        planner.place(VMDemand("b", Fraction(1)))
        params = MigrationParams(
            memory_bytes=GB, dirty_rate_bytes_per_s=0, link_bytes_per_s=GB
        )
        assert plan_rebalancing(planner, params, target_imbalance=0.2) == []
