"""Tests for the declarative scenario runner."""

import json

import pytest

from repro.scenario import run_scenario, run_scenario_file
from repro.simcore.errors import ConfigurationError


def basic_spec(**overrides):
    spec = {
        "system": {"type": "rtvirt", "pcpus": 1, "slack_us": 0},
        "duration_s": 3,
        "seed": 1,
        "vms": [
            {
                "name": "vm1",
                "tasks": [{"name": "rta1", "slice_ms": 2, "period_ms": 10}],
            }
        ],
    }
    spec.update(overrides)
    return spec


class TestRTVirtScenarios:
    def test_basic_periodic(self):
        result = run_scenario(basic_spec())
        assert result.report.total_missed == 0
        assert result.report.total_released >= 299

    def test_multiple_vms_high_utilization(self):
        # ~87% utilization: feasible under the realistic cost model the
        # scenario runner uses (100% would need zero overheads).  The
        # default 500 µs slack absorbs the scheduling overhead.
        spec = basic_spec(
            system={"type": "rtvirt", "pcpus": 1},
            vms=[
                {"name": "a", "tasks": [{"name": "t1", "slice_ms": 5, "period_ms": 15}]},
                {"name": "b", "tasks": [{"name": "t2", "slice_ms": 4, "period_ms": 10}]},
                {"name": "c", "tasks": [{"name": "t3", "slice_ms": 4, "period_ms": 30}]},
            ]
        )
        result = run_scenario(spec)
        assert result.report.total_missed == 0

    def test_sporadic_task(self):
        spec = basic_spec(
            vms=[
                {
                    "name": "sp",
                    "tasks": [
                        {
                            "name": "sp1",
                            "slice_ms": 2,
                            "period_ms": 50,
                            "kind": "sporadic",
                            "max_requests": 10,
                        }
                    ],
                }
            ],
            duration_s=15,
        )
        result = run_scenario(spec)
        assert result.report.per_task["sp1"].released == 10
        assert result.report.total_missed == 0

    def test_background_vm(self):
        spec = basic_spec()
        spec["vms"].append({"name": "bg", "background": True})
        result = run_scenario(spec)
        assert result.report.total_missed == 0

    def test_phase_offset(self):
        spec = basic_spec()
        spec["vms"][0]["tasks"][0]["phase_ms"] = 5
        result = run_scenario(spec)
        assert result.report.total_released >= 298

    def test_summary_readable(self):
        result = run_scenario(basic_spec(), name="demo")
        text = result.summary()
        assert "demo" in text and "deadlines met" in text


class TestOtherSystems:
    def test_credit_scenario(self):
        spec = basic_spec(system={"type": "credit", "pcpus": 1, "timeslice_us": 1000})
        result = run_scenario(spec)
        assert result.report.total_released > 0

    def test_rtxen_scenario_auto_csa(self):
        spec = basic_spec(system={"type": "rtxen", "pcpus": 1})
        result = run_scenario(spec)
        assert result.report.total_missed == 0

    def test_rtxen_explicit_interface(self):
        spec = basic_spec(system={"type": "rtxen", "pcpus": 1})
        spec["vms"][0]["interface_us"] = [3000, 10000]
        result = run_scenario(spec)
        assert result.report.total_missed == 0

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario(basic_spec(system={"type": "xen5"}))

    def test_missing_field_rejected(self):
        spec = basic_spec()
        del spec["vms"][0]["tasks"][0]["period_ms"]
        with pytest.raises(ConfigurationError):
            run_scenario(spec)


class TestFileLoading:
    def test_run_from_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(basic_spec()))
        result = run_scenario_file(str(path))
        assert result.report.total_missed == 0

    def test_cli_scenario_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(basic_spec()))
        assert main(["scenario", str(path)]) == 0
        assert "deadlines met" in capsys.readouterr().out
