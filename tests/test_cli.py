"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import main


class TestList:
    def test_list_shows_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig1", "table2", "fig5a", "table6"):
            assert experiment_id in out

    def test_list_mentions_paper_refs(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Table 2" in out


class TestRunAll:
    def test_run_all_only_cheap_ids(self, capsys, tmp_path):
        rc = main(
            [
                "run-all",
                "--only",
                "table2,fig3",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--no-ledger",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-experiment timing" in out
        assert "table2" in out and "fig3" in out
        assert "1 job(s)" in out

    def test_run_all_warm_cache_reuses_units(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = ["run-all", "--only", "table2", "--cache-dir", cache_dir,
                "--no-ledger"]
        main(args)
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache: 1 hits, 0 misses" in out

    def test_run_all_no_cache(self, capsys, tmp_path):
        rc = main(["run-all", "--only", "fig3", "--no-cache", "--no-ledger"])
        assert rc == 0
        assert "cache disabled" in capsys.readouterr().out

    def test_run_all_summaries(self, capsys, tmp_path):
        rc = main(["run-all", "--only", "table2", "--no-cache",
                   "--no-ledger", "--summaries"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "(4,5)" in out

    def test_run_all_unknown_id(self, capsys):
        assert main(["run-all", "--only", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestRun:
    def test_run_single(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "(4,5)" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "table2", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Table 2" in out

    def test_unknown_id_fails(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCacheCommand:
    def test_stats_on_empty_cache(self, capsys, tmp_path):
        rc = main(
            [
                "cache",
                "stats",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--runs-dir",
                str(tmp_path / "runs"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert "no recorded run" in out
        assert "runs: 0" in out

    def test_stats_after_a_run(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runs_dir = str(tmp_path / "runs")
        main(
            [
                "run-all",
                "--only",
                "table2",
                "--cache-dir",
                cache_dir,
                "--runs-dir",
                runs_dir,
            ]
        )
        capsys.readouterr()
        rc = main(
            ["cache", "stats", "--cache-dir", cache_dir, "--runs-dir", runs_dir]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert "last run: 0 hits, 1 misses, 1 writes" in out
        assert "runs: 1" in out

    def test_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        main(["run-all", "--only", "table2", "--cache-dir", cache_dir,
              "--no-ledger"])
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out
        main(["cache", "stats", "--cache-dir", cache_dir])
        assert "entries: 0" in capsys.readouterr().out

    def test_prune_requires_max_bytes(self, capsys, tmp_path):
        rc = main(["cache", "prune", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prune_rejects_negative_budget(self, capsys, tmp_path):
        rc = main(
            [
                "cache",
                "prune",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--max-bytes",
                "-1",
            ]
        )
        assert rc == 2
        assert "max_bytes" in capsys.readouterr().err

    def test_prune_evicts_down_to_budget(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runs_dir = str(tmp_path / "runs")
        main(["run-all", "--only", "table2,fig3", "--cache-dir", cache_dir,
              "--no-ledger"])
        capsys.readouterr()
        rc = main(
            [
                "cache",
                "prune",
                "--cache-dir",
                cache_dir,
                "--runs-dir",
                runs_dir,
                "--max-bytes",
                "0",
            ]
        )
        assert rc == 0
        assert "pruned 2 cache entries" in capsys.readouterr().out
        main(["cache", "stats", "--cache-dir", cache_dir])
        assert "entries: 0" in capsys.readouterr().out

    def test_prune_sweeps_ledger_runs_lru_first(self, capsys, tmp_path):
        """The oldest store — cache entry or run dir — is evicted first."""
        import os
        import time as _time

        cache_dir = str(tmp_path / "cache")
        runs_dir = str(tmp_path / "runs")
        main(
            [
                "run-all",
                "--only",
                "table2",
                "--cache-dir",
                cache_dir,
                "--runs-dir",
                runs_dir,
            ]
        )
        capsys.readouterr()
        # Age the ledger run far behind the cache entry.
        run_dir = os.path.join(runs_dir, os.listdir(runs_dir)[0])
        old = _time.time() - 10_000
        for name in os.listdir(run_dir):
            os.utime(os.path.join(run_dir, name), (old, old))
        from repro.runner.cache import ResultCache

        cache_bytes = ResultCache(cache_dir, salt="").stats()["bytes"]
        rc = main(
            [
                "cache",
                "prune",
                "--cache-dir",
                cache_dir,
                "--runs-dir",
                runs_dir,
                "--max-bytes",
                str(cache_bytes),
            ]
        )
        assert rc == 0
        assert "pruned 0 cache entries and 1 ledger runs" in capsys.readouterr().out
        assert os.listdir(runs_dir) == []


class TestExplain:
    def test_unknown_target_lists_known_faults(self, capsys):
        assert main(["explain", "robustness_nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown target" in err
        assert "robustness_pcpu_fail" in err

    def test_sweep_prints_blame_table_and_worst_misses(self, capsys):
        rc = main(
            ["explain", "robustness_pcpu_fail", "--duration-s", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "deadline-miss blame" in out
        assert "worst misses" in out
        assert "primary=" in out

    def test_job_flag_renders_causal_timeline(self, capsys):
        rc = main(
            [
                "explain",
                "robustness_pcpu_fail",
                "--job",
                "vm2.rta1",
                "--scheduler",
                "RT-Xen",
                "--duration-s",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "vm2.rta1" in out
        assert "release" in out and "run " in out

    def test_job_without_spans_fails(self, capsys):
        rc = main(
            [
                "explain",
                "robustness_pcpu_fail",
                "--job",
                "vm9.none",
                "--duration-s",
                "0.5",
            ]
        )
        assert rc == 2
        assert "no spans" in capsys.readouterr().err


class TestCluster:
    def test_cluster_run_prints_per_host_rows(self, capsys):
        rc = main(
            [
                "cluster",
                "--mode",
                "rebalance",
                "--hosts",
                "2",
                "--duration-s",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "h0" in out and "h1" in out and "cluster" in out
        assert "migr_in" in out and "downtime_ms" in out

    def test_cluster_log_shows_migration_lifecycle(self, capsys):
        rc = main(
            [
                "cluster",
                "--mode",
                "hostfail",
                "--hosts",
                "3",
                "--duration-s",
                "1",
                "--log",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "management-plane log" in out
        for kind in ("host_fail", "migrate_start", "migrate_pause",
                     "migrate_resume", "host_recover"):
            assert kind in out

    def test_cluster_needs_two_hosts(self, capsys):
        assert main(["cluster", "--hosts", "1"]) == 2
        assert "at least 2 hosts" in capsys.readouterr().err

class TestRunAllLedger:
    def test_run_all_writes_manifest(self, capsys, tmp_path):
        runs_dir = tmp_path / "runs"
        rc = main(
            [
                "run-all",
                "--only",
                "table2",
                "--no-cache",
                "--runs-dir",
                str(runs_dir),
            ]
        )
        assert rc == 0
        assert "ledger:" in capsys.readouterr().out
        import json

        stamps = list(runs_dir.iterdir())
        assert len(stamps) == 1
        manifest = json.loads((stamps[0] / "manifest.json").read_text())
        assert manifest["stamp"] == stamps[0].name
        assert manifest["jobs"] == 1
        assert manifest["event_queue"]
        entry = manifest["experiments"]["table2"]
        assert entry["rows"] > 0
        assert len(entry["rows_sha256"]) == 64
        assert entry["units"] == len(entry["unit_walls"])

    def test_no_ledger_skips_manifest(self, capsys, tmp_path):
        runs_dir = tmp_path / "runs"
        rc = main(
            [
                "run-all",
                "--only",
                "table2",
                "--no-cache",
                "--no-ledger",
                "--runs-dir",
                str(runs_dir),
            ]
        )
        assert rc == 0
        assert not runs_dir.exists()


class TestTraceCommand:
    def _record(self, tmp_path, capsys):
        path = str(tmp_path / "fail.rtvt")
        rc = main(
            [
                "trace",
                "record",
                "robustness_pcpu_fail",
                "--duration-s",
                "1",
                "-o",
                path,
            ]
        )
        assert rc == 0
        capsys.readouterr()
        return path

    def test_record_and_inspect(self, capsys, tmp_path):
        path = self._record(tmp_path, capsys)
        assert main(["trace", "inspect", path]) == 0
        out = capsys.readouterr().out
        assert "fault: pcpu_fail" in out
        assert "scheduler: RTVirt" in out
        assert "hash:" in out
        assert "job_release" in out

    def test_record_rejects_unknown_fault(self, capsys, tmp_path):
        rc = main(["trace", "record", "robustness_nope"])
        assert rc == 2
        assert "unknown target" in capsys.readouterr().err

    def test_replay_round_trip_matches(self, capsys, tmp_path):
        path = self._record(tmp_path, capsys)
        assert main(["trace", "replay", path]) == 0
        out = capsys.readouterr().out
        assert "round trip vs recorded rows: MATCH" in out

    def test_what_if_replay_diffs(self, capsys, tmp_path):
        path = self._record(tmp_path, capsys)
        rc = main(
            ["trace", "replay", path, "--scheduler", "Credit", "--diff"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "what-if: recorded under RTVirt, replayed under Credit" in out
        assert "traces diverge at event #" in out
        assert "Per-task deltas" in out

    def test_diff_identical_trace_exits_zero(self, capsys, tmp_path):
        path = self._record(tmp_path, capsys)
        assert main(["trace", "diff", path, path]) == 0
        assert "traces identical" in capsys.readouterr().out

    def test_explain_accepts_trace_file(self, capsys, tmp_path):
        path = self._record(tmp_path, capsys)
        assert main(["explain", path]) == 0
        out = capsys.readouterr().out
        assert "deadline-miss blame" in out
        assert "pcpu_fail under RTVirt" in out
