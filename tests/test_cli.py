"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import main


class TestList:
    def test_list_shows_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig1", "table2", "fig5a", "table6"):
            assert experiment_id in out

    def test_list_mentions_paper_refs(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Table 2" in out


class TestRun:
    def test_run_single(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "(4,5)" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "table2", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Table 2" in out

    def test_unknown_id_fails(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
