"""Tests for report formatting helpers and small shared utilities."""

import pytest

from repro.experiments.common import format_table, percent
from repro.simcore.errors import (
    AdmissionError,
    AnalysisError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    SimulationError,
)


class TestFormatTable:
    def test_columns_aligned(self):
        rows = [
            {"name": "a", "value": 1},
            {"name": "longer", "value": 12345},
        ]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All data lines equal width.
        assert len(set(len(l) for l in lines[2:])) <= 2

    def test_floats_fixed_precision(self):
        out = format_table([{"x": 1.23456}])
        assert "1.235" in out

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="T")

    def test_missing_cell_blank(self):
        out = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert out.count("\n") == 3

    def test_percent(self):
        assert percent(0.123456) == "12.346%"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (SimulationError, SchedulingError, ConfigurationError, AnalysisError):
            assert issubclass(exc, ReproError)

    def test_admission_error_level(self):
        err = AdmissionError("nope", level="guest")
        assert err.level == "guest"
        assert isinstance(err, ReproError)

    def test_admission_error_default_level(self):
        assert AdmissionError("nope").level == "host"


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_public_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.experiments
        import repro.monitoring
        import repro.placement
        import repro.report
        import repro.workloads
