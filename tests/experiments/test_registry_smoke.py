"""Catalogue smoke test: every registry entry must run end to end.

Each entry's shortened ``smoke`` variant is executed and must produce
non-empty ``rows()`` and a string ``summary()`` — a new experiment that
is registered but broken (or returns the wrong result shape) fails here
rather than silently corrupting EXPERIMENTS.md or the benchmarks.
"""

import pytest

from repro.experiments import registry


@pytest.mark.parametrize("experiment_id", registry.all_ids())
def test_registry_entry_smoke(experiment_id):
    result = registry.run_smoke(experiment_id)
    rows = result.rows()
    assert isinstance(rows, list) and rows, f"{experiment_id} returned no rows"
    for row in rows:
        assert isinstance(row, dict) and row
    summary = result.summary()
    assert isinstance(summary, str) and summary.strip()


class TestExpandIds:
    """Glob expansion backing ``run-all --only`` and the tool gates."""

    def test_plain_ids_pass_through(self):
        assert registry.expand_ids(["fig3", "table2"]) == ["fig3", "table2"]

    def test_glob_expands_in_paper_order(self):
        assert registry.expand_ids(["robustness_*"]) == [
            "robustness_pcpu_fail",
            "robustness_vm_churn",
            "robustness_surge",
            "robustness_hypercall",
            "robustness_jitter",
        ]

    def test_question_mark_glob(self):
        assert registry.expand_ids(["fig5?"]) == ["fig5a", "fig5b"]

    def test_mixed_patterns_deduplicate(self):
        assert registry.expand_ids(["fig5b", "fig5*", "fig5b"]) == [
            "fig5b",
            "fig5a",
        ]

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            registry.expand_ids(["nope"])

    def test_unmatched_glob_raises(self):
        with pytest.raises(KeyError):
            registry.expand_ids(["nope_*"])


def test_smoke_variants_differ_from_full_runners():
    """Smoke runners must stay cheap: they may not be the full runner
    for the simulation-heavy entries."""
    for experiment_id in (
        "table1",
        "fig4",
        "fig5a",
        "fig5b",
        "table6",
        "robustness_pcpu_fail",
    ):
        entry = registry.REGISTRY[experiment_id]
        assert entry.smoke is not entry.runner
