"""Tests that the experiment harnesses reproduce the paper's claims.

These are the repository's acceptance tests: each asserts the *shape*
of a published result (who wins, by roughly what factor) on shortened
runs.  The full-length numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.simcore.time import msec, sec


class TestFig1:
    def test_uncoordinated_misses_every_other_deadline(self):
        from repro.experiments.fig1_motivation import run_uncoordinated

        result = run_uncoordinated(duration_ns=sec(6))
        assert abs(result.miss_ratio("rta2") - 0.5) < 0.02
        assert result.miss_ratio("rta1") == 0.0

    def test_rtvirt_meets_everything(self):
        from repro.experiments.fig1_motivation import run_rtvirt

        result = run_rtvirt(duration_ns=sec(6))
        for rta in ("rta1", "rta2", "vm2.rta", "vm3.rta"):
            assert result.miss_ratio(rta) == 0.0


class TestTable1:
    @pytest.mark.parametrize("group", ["H-Equiv", "NH-Inc"])
    def test_rtvirt_meets_group(self, group):
        from repro.experiments.table1_periodic import run_group_rtvirt

        run = run_group_rtvirt(group, duration_ns=sec(5))
        assert run.missed == 0

    def test_rtxen_meets_group(self):
        from repro.experiments.table1_periodic import run_group_rtxen

        run = run_group_rtxen("NH-Dec", duration_ns=sec(5))
        assert run.missed == 0


class TestTable2:
    def test_reproduces_paper_exactly(self):
        from repro.experiments.table2_config import run_table2

        result = run_table2()
        rows = result.rows()
        assert rows[0]["RT-Xen VM (s,p)"] == "(4,5)"
        assert rows[1]["RT-Xen VM (s,p)"] == "(3,4)"
        assert rows[2]["RT-Xen VM (s,p)"] == "(2,3)"
        assert rows[3]["RT-Xen VM (s,p)"] == "(1,9)"
        assert rows[0]["RTVirt VM (s,p)"] == "(23.5,30)"
        assert abs(float(result.rtxen_bandwidth) - 2.33) < 0.005
        assert abs(float(result.rtvirt_bandwidth) - 2.11) < 0.005


class TestFig3:
    def test_ordering_and_headline_numbers(self):
        from repro.experiments.fig3_bandwidth import run_fig3

        result = run_fig3()
        for b in result.breakdowns:
            # Required <= RTVirt <= RT-Xen allocated <= claimed.
            assert b.rta_required <= b.rtvirt
            assert b.rtvirt < b.rtxen_allocated
            assert b.rtxen_allocated < b.rtxen_claimed

    def test_h_equiv_allocated_matches_paper(self):
        from repro.experiments.fig3_bandwidth import breakdown_for_group

        b = breakdown_for_group("H-Equiv")
        assert abs(float(b.rtxen_allocated) - 2.283) < 0.001
        assert b.rtxen_claimed == 3

    def test_savings_bands(self):
        from repro.experiments.fig3_bandwidth import run_fig3
        from repro.metrics.bandwidth import (
            allocated_savings_percent,
            claimed_savings_percent,
        )

        result = run_fig3()
        assert 4.0 < allocated_savings_percent(result.breakdowns) < 12.0
        assert 25.0 < claimed_savings_percent(result.breakdowns) < 45.0


class TestSporadic:
    def test_no_misses_small_run(self):
        from repro.experiments.sporadic_rtas import run_group_sporadic_rtvirt

        run = run_group_sporadic_rtvirt("H-Dec", requests_per_rta=10)
        assert run.missed == 0
        assert run.released >= 40


class TestTable4:
    def test_scheduler_ordering(self):
        from repro.experiments.table4_dedicated import run_table4

        result = run_table4(duration_ns=sec(20))
        credit = result.tails["Credit"][99.9]
        rtxen = result.tails["RT-Xen"][99.9]
        rtvirt = result.tails["RTVirt"][99.9]
        assert credit > 1.5 * rtvirt  # Credit's wake path dominates
        assert rtvirt < 70.0  # calibrated band (paper: 57.5 µs)
        assert rtxen < 80.0


class TestFig5a:
    def test_verdicts(self):
        from repro.experiments.fig5_memcached import run_fig5a

        result = run_fig5a(duration_ns=sec(25))
        assert result.outcome("RTVirt").meets_slo
        assert result.outcome("RT-Xen A").meets_slo
        assert not result.outcome("Credit").meets_slo
        # The bandwidth headline: RTVirt needs ~50% less than RT-Xen A.
        rtvirt = result.outcome("RTVirt").reserved_cpus
        rtxen_a = result.outcome("RT-Xen A").reserved_cpus
        assert abs(1 - rtvirt / rtxen_a - 0.502) < 0.01

    def test_credit_mean_low_tail_long(self):
        from repro.experiments.fig5_memcached import run_fig5a, SLO_USEC

        result = run_fig5a(duration_ns=sec(25))
        credit = result.outcome("Credit")
        assert credit.latency.mean_usec() < SLO_USEC
        assert credit.p999_usec > 2 * SLO_USEC


class TestTable6:
    def test_overhead_under_one_percent(self):
        from repro.experiments.table6_overhead import run_table6

        result = run_table6(duration_ns=sec(2), analyze_rtxen=False)
        for run in result.runs:
            assert run.overhead_percent < 1.0
            assert run.miss_ratio < 0.01
        multi = next(r for r in result.runs if r.scenario == "Multi-RTA")
        single = next(r for r in result.runs if r.scenario == "Single-RTA")
        assert multi.vcpus == 20  # the paper's packing
        assert single.vcpus == 100

    def test_rtxen_capacity_limits(self):
        from repro.experiments.table6_overhead import (
            rtxen_multi_rta_capacity,
            rtxen_single_rta_capacity,
        )

        assert rtxen_multi_rta_capacity() < 10  # cannot fit all groups
        assert 85 <= rtxen_single_rta_capacity() < 100  # paper: 93


class TestFeedbackControlPlane:
    def test_adaptive_beats_static_and_csa_on_overrun(self):
        from repro.experiments.feedback_adaptive import run_feedback

        result = run_feedback("feedback_overrun", duration_ns=sec(2), seed=31)
        by_policy = {row["policy"]: row for row in result.rows()}
        static = by_policy["static"]
        csa = by_policy["csa"]
        adaptive = by_policy["adaptive"]
        # The blame-driven controller converges onto the stealthy VM's
        # real demand: a fraction of the static miss ratio, at lower
        # granted bandwidth than the CSA's offline over-provisioning.
        assert adaptive["miss_pct"] < 0.1 * static["miss_pct"]
        assert adaptive["miss_pct"] < csa["miss_pct"]
        assert adaptive["avg_bw"] < csa["avg_bw"]
        assert adaptive["inc_bw"] >= 1
        # Static policies never actuate.
        assert static["inc_bw"] == 0 and csa["inc_bw"] == 0

    def test_credit_policy_redirects_the_shed(self):
        from repro.experiments.feedback_adaptive import run_feedback

        result = run_feedback("tenant_shed", duration_ns=sec(2), seed=31)
        rows = {(r["policy"], r["tenant"]): r for r in result.rows()}
        # Arrival order sheds the newest grant — the gold tenant.
        assert rows[("arrival", "gold")]["sheds"] == 1
        assert rows[("arrival", "gold")]["missed"] > 0
        # Credit ranking sheds the cheapest tenant instead; gold and
        # silver ride out the capacity loss clean.
        assert rows[("credit", "bronze")]["sheds"] == 1
        assert rows[("credit", "gold")]["sheds"] == 0
        assert rows[("credit", "gold")]["missed"] == 0
        assert rows[("credit", "silver")]["missed"] == 0

    def test_tardy_wakes_do_not_storm_the_partitioner(self):
        from repro.experiments.feedback_adaptive import run_feedback_case

        captured = {}
        run_feedback_case(
            "overrun", "adaptive", duration_ns=sec(1), seed=31,
            attach=lambda system: captured.update(system=system),
        )
        overhead = captured["system"].machine.metrics.overhead
        # Regression guard for the future-boundary test in
        # DPWrapScheduler.on_vcpu_wake: a backlogged VCPU publishing a
        # past deadline used to force a repartition on every wake
        # (~300k schedule calls per simulated second); the plan must
        # stay stable while the backlog drains.
        assert overhead.schedule_calls < 50_000


class TestRegistry:
    def test_all_ids_present(self):
        from repro.experiments.registry import REGISTRY, all_ids

        assert set(all_ids()) == {
            "fig1",
            "table1",
            "table2",
            "fig3",
            "sporadic",
            "fig4",
            "table4",
            "fig5a",
            "fig5b",
            "table6",
            "robustness_pcpu_fail",
            "robustness_vm_churn",
            "robustness_surge",
            "robustness_hypercall",
            "robustness_jitter",
            "cluster_consolidate",
            "cluster_rebalance",
            "cluster_hostfail",
            "cluster_clockskew",
            "feedback_overrun",
            "feedback_migrate",
            "tenant_shed",
        }
        for entry in REGISTRY.values():
            assert entry.paper_ref and entry.description

    def test_run_by_id(self):
        from repro.experiments.registry import run

        result = run("table2")
        assert "Table 2" in result.summary()
