"""Tests for the aggregated arrival process (:class:`ArrivalMux`).

The mux's contract is exactness: routing open-loop clients through it
must not move, reorder, or drop a single arrival relative to per-client
engine events.  These tests pin that equivalence end to end (identical
latency samples and task stats with and without the mux) plus the
mechanism itself: one armed engine event, same-instant batching, and
re-arming when an earlier arrival preempts the head.
"""

import pytest

from repro.core.system import RTVirtSystem
from repro.guest.task import Task, TaskKind
from repro.host.costs import ZERO_COSTS
from repro.simcore.engine import Engine
from repro.simcore.errors import SimulationError
from repro.simcore.rng import RandomSource, RandomStreams
from repro.simcore.time import MSEC, SEC, msec, sec
from repro.workloads.arrivals import ArrivalMux
from repro.workloads.memcached import MemcachedService
from repro.workloads.sporadic import SporadicDriver


class TestMuxMechanism:
    def test_dispatch_order_and_single_armed_event(self):
        engine = Engine()
        mux = ArrivalMux(engine)
        fired = []
        mux.at(30, lambda: fired.append("c"))
        mux.at(10, lambda: fired.append("a"))  # preempts the armed head
        mux.at(20, lambda: fired.append("b"))
        assert engine.pending == 1  # one engine event no matter how many arrivals
        engine.run_until(100)
        assert fired == ["a", "b", "c"]
        assert len(mux) == 0

    def test_same_instant_arrivals_drain_in_schedule_order(self):
        engine = Engine()
        mux = ArrivalMux(engine)
        fired = []
        for tag in "abcde":
            mux.at(50, lambda t=tag: fired.append(t))
        engine.run_until(100)
        assert fired == list("abcde")
        assert mux.scheduled == 5 and mux.fires == 1
        assert mux.events_saved == 4

    def test_callback_scheduling_now_drains_same_fire(self):
        engine = Engine()
        mux = ArrivalMux(engine)
        fired = []

        def chain():
            fired.append("first")
            mux.at(engine.now, lambda: fired.append("second"))

        mux.at(5, chain)
        engine.run_until(10)
        assert fired == ["first", "second"]
        assert mux.fires == 1

    def test_rejects_past_arrival(self):
        engine = Engine()
        mux = ArrivalMux(engine)
        engine.at(10, lambda: None)
        engine.run_until(20)
        with pytest.raises(SimulationError):
            mux.at(5, lambda: None)


def _sporadic_system(shared_mux: bool):
    """Three sporadic RTAs on two PCPUs, muxed or per-client."""
    streams = RandomStreams(42)
    system = RTVirtSystem(pcpu_count=2, cost_model=ZERO_COSTS, slack_ns=0)
    mux = ArrivalMux(system.engine) if shared_mux else None
    tasks = []
    for i in range(3):
        vm = system.create_vm(f"vm{i}")
        task = Task(f"sp{i}", msec(2), msec(40), TaskKind.SPORADIC)
        vm.register_task(task)
        tasks.append(task)
        SporadicDriver(
            system.engine,
            vm,
            task,
            streams.stream(f"sp{i}"),
            min_interarrival_ns=100 * MSEC,
            max_interarrival_ns=SEC,
            mux=mux,
        ).start()
    system.run(sec(30))
    system.finalize()
    return [(t.stats.released, t.stats.met, t.stats.missed) for t in tasks]


def test_sporadic_mux_equivalence():
    """Muxed and per-client runs release and retire identical job sets."""
    assert _sporadic_system(True) == _sporadic_system(False)


def _memcached_system(shared_mux: bool):
    """Two memcached services on one PCPU (contended), muxed or not."""
    streams = RandomStreams(7)
    system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
    mux = ArrivalMux(system.engine) if shared_mux else None
    services = []
    for i in range(2):
        vm = system.create_vm(f"mc{i}", slack_ns=0)
        services.append(
            MemcachedService(
                system.engine,
                vm,
                streams.stream(f"mc{i}"),
                name=f"mc{i}",
                mux=mux,
            ).start()
        )
    system.run(sec(10))
    system.finalize()
    return [(s.requests_sent, s.latency.samples_ns) for s in services]


def test_memcached_mux_equivalence():
    """Per-request latencies are byte-identical with and without the mux.

    The services contend for one PCPU, so any reordering of arrivals
    relative to scheduler/completion events would shift at least one
    latency sample.
    """
    assert _memcached_system(True) == _memcached_system(False)


def test_synchronized_clients_compress_to_one_event_per_instant():
    """The client count stops being the event count.

    Ten clients with a deterministic (min == max) inter-arrival all
    request in lockstep waves; the mux must spend one engine event per
    wave, not one per client.
    """
    streams = RandomStreams(3)
    system = RTVirtSystem(pcpu_count=2, cost_model=ZERO_COSTS, slack_ns=0)
    mux = ArrivalMux(system.engine)
    drivers = []
    for i in range(10):
        vm = system.create_vm(f"vm{i}")
        task = Task(f"sp{i}", msec(1), msec(50), TaskKind.SPORADIC)
        vm.register_task(task)
        drivers.append(
            SporadicDriver(
                system.engine,
                vm,
                task,
                streams.stream(f"sp{i}"),
                min_interarrival_ns=200 * MSEC,
                max_interarrival_ns=200 * MSEC,
                mux=mux,
            ).start()
        )
    system.run(sec(4))
    waves = 20  # arrivals at 200 ms, 400 ms, ..., 4.0 s inclusive
    assert mux.scheduled >= 10 * waves
    assert mux.fires == waves
    assert mux.events_saved == mux.scheduled - waves
    assert all(d.requests_sent == waves for d in drivers)
