"""Tests for the rt-app configuration loader."""

import json

import pytest

from repro.core.system import RTVirtSystem
from repro.host.costs import ZERO_COSTS
from repro.simcore.errors import ConfigurationError
from repro.simcore.rng import RandomSource
from repro.simcore.time import sec
from repro.workloads.rtapp import (
    deploy_rtapp,
    load_rtapp_file,
    parse_rtapp_config,
    table1_group_as_rtapp,
)


def config_dict():
    return {
        "tasks": {
            "thread0": {
                "policy": "SCHED_DEADLINE",
                "runtime": 13000,
                "period": 20000,
                "deadline": 20000,
            },
            "thread1": {"runtime": 5000, "period": 40000, "delay": 3000},
        },
        "global": {"duration": 5},
    }


class TestParsing:
    def test_parse_basic(self):
        config = parse_rtapp_config(config_dict())
        assert len(config.tasks) == 2
        assert config.duration_s == 5
        thread0 = config.tasks[0]
        assert thread0.runtime_us == 13000
        assert thread0.period_us == 20000

    def test_utilization(self):
        config = parse_rtapp_config(config_dict())
        assert config.total_utilization == pytest.approx(0.65 + 0.125)

    def test_default_policy_and_deadline(self):
        config = parse_rtapp_config(config_dict())
        assert config.tasks[1].deadline_us == 40000

    def test_missing_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_rtapp_config({"global": {"duration": 1}})

    def test_unsupported_policy_rejected(self):
        bad = config_dict()
        bad["tasks"]["thread0"]["policy"] = "SCHED_OTHER"
        with pytest.raises(ConfigurationError):
            parse_rtapp_config(bad)

    def test_invalid_runtime_rejected(self):
        bad = config_dict()
        bad["tasks"]["thread0"]["runtime"] = 50000  # > period
        with pytest.raises(ConfigurationError):
            parse_rtapp_config(bad)

    def test_missing_period_rejected(self):
        bad = config_dict()
        del bad["tasks"]["thread1"]["period"]
        with pytest.raises(ConfigurationError):
            parse_rtapp_config(bad)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(config_dict()))
        config = load_rtapp_file(str(path))
        assert len(config.tasks) == 2


class TestDeployment:
    def test_deploy_and_run(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("rtapp-vm")
        config = parse_rtapp_config(config_dict())
        tasks = deploy_rtapp(config, vm)
        system.run(config.duration_ns)
        system.finalize()
        assert sum(t.stats.missed for t in tasks) == 0
        assert tasks[0].stats.released >= 249  # 5 s / 20 ms

    def test_delay_respected(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("rtapp-vm")
        config = parse_rtapp_config(config_dict())
        tasks = deploy_rtapp(config, vm)
        system.run(sec(1))
        t1_jobs = tasks[1].stats.released
        assert t1_jobs == 25  # phase 3 ms, period 40 ms, within 1 s

    def test_sporadic_thread(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("rtapp-vm")
        config = parse_rtapp_config(
            {
                "tasks": {
                    "sp": {"runtime": 1000, "period": 50000, "sporadic": True}
                },
                "global": {"duration": 20},
            }
        )
        tasks = deploy_rtapp(config, vm, rng=RandomSource(1, "rtapp"))
        system.run(sec(20))
        system.finalize()
        assert tasks[0].stats.released > 10
        assert tasks[0].stats.missed == 0

    def test_sporadic_needs_rng(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("rtapp-vm")
        config = parse_rtapp_config(
            {
                "tasks": {"sp": {"runtime": 1000, "period": 50000, "sporadic": True}},
                "global": {"duration": 1},
            }
        )
        with pytest.raises(ConfigurationError):
            deploy_rtapp(config, vm)

    def test_deploy_requires_attached_vm(self):
        from repro.guest.vm import VM

        vm = VM("floating")
        config = parse_rtapp_config(config_dict())
        with pytest.raises(ConfigurationError):
            deploy_rtapp(config, vm)


class TestRoundTrip:
    def test_table1_round_trip(self):
        rendered = table1_group_as_rtapp("NH-Dec")
        config = parse_rtapp_config(rendered)
        assert len(config.tasks) == 4
        assert config.total_utilization == pytest.approx(
            23 / 30 + 13 / 20 + 5 / 10 + 10 / 100
        )

    def test_unknown_group(self):
        with pytest.raises(ConfigurationError):
            table1_group_as_rtapp("Nope")
