"""Unit tests for the sporadic and memcached workload models."""

import pytest

from repro.guest.task import Task, TaskKind
from repro.guest.vm import VM
from repro.simcore.engine import Engine
from repro.simcore.errors import ConfigurationError
from repro.simcore.rng import RandomSource
from repro.simcore.time import MSEC, SEC, msec, sec, usec
from repro.workloads.memcached import MemcachedService
from repro.workloads.sporadic import SporadicDriver


def sporadic_setup(**kw):
    engine = Engine()
    vm = VM("vm")
    task = Task("sp", msec(5), msec(50), TaskKind.SPORADIC)
    vm.register_task(task)
    driver = SporadicDriver(engine, vm, task, RandomSource(1, "sp"), **kw)
    return engine, vm, task, driver


class TestSporadicDriver:
    def test_respects_max_requests(self):
        engine, vm, task, driver = sporadic_setup(max_requests=5)
        driver.start()
        engine.run_until(20 * SEC)
        assert driver.requests_sent == 5
        assert task.stats.released == 5

    def test_interarrival_in_bounds(self):
        engine, vm, task, driver = sporadic_setup(max_requests=20)
        driver.start()
        engine.run_until(60 * SEC)
        releases = sorted(j.release for j in task.pending)
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert all(100 * MSEC <= g <= SEC for g in gaps)

    def test_rejects_periodic_task(self):
        engine = Engine()
        vm = VM("vm")
        task = Task("p", msec(5), msec(50))
        vm.register_task(task)
        with pytest.raises(ConfigurationError):
            SporadicDriver(engine, vm, task, RandomSource(1, "x"))

    def test_rejects_interarrival_below_min_gap(self):
        engine = Engine()
        vm = VM("vm")
        task = Task("sp", msec(5), msec(500), TaskKind.SPORADIC)
        vm.register_task(task)
        with pytest.raises(ConfigurationError):
            SporadicDriver(
                engine, vm, task, RandomSource(1, "x"), min_interarrival_ns=msec(100)
            )

    def test_stop(self):
        engine, vm, task, driver = sporadic_setup()
        driver.start()
        engine.at(sec(2), driver.stop)
        engine.run_until(sec(10))
        assert task.stats.released <= 20


class TestMemcached:
    def test_requests_recorded_on_dedicated_cpu(self):
        from repro.core.system import RTVirtSystem
        from repro.host.costs import ZERO_COSTS

        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("mc", slack_ns=0)
        svc = MemcachedService(system.engine, vm, RandomSource(2, "mc")).start()
        system.run(sec(5))
        system.finalize()
        assert len(svc.latency) > 300
        # Uncontended: latency == service time, well under the SLO.
        assert svc.latency.p999_usec() < 100.0

    def test_service_times_lognormal_band(self):
        from repro.core.system import RTVirtSystem
        from repro.host.costs import ZERO_COSTS

        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("mc", slack_ns=0)
        svc = MemcachedService(system.engine, vm, RandomSource(2, "mc")).start()
        system.run(sec(5))
        system.finalize()
        tail = svc.latency.tail_usec()
        assert 40.0 < tail[90.0] < 60.0  # calibrated to Table 4

    def test_interarrival_mean_100qps(self):
        from repro.core.system import RTVirtSystem
        from repro.host.costs import ZERO_COSTS

        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("mc", slack_ns=0)
        svc = MemcachedService(system.engine, vm, RandomSource(2, "mc")).start()
        system.run(sec(20))
        assert 1700 <= svc.requests_sent <= 2300

    def test_mean_interarrival_must_exceed_period(self):
        engine = Engine()
        vm = VM("mc")
        with pytest.raises(ConfigurationError):
            MemcachedService(
                engine,
                vm,
                RandomSource(0, "mc"),
                mean_interarrival_ns=usec(400),
            )

    def test_sporadic_minimum_gap_respected(self):
        # Even with an aggressive arrival distribution, released gaps
        # never violate the task's minimum inter-arrival.
        from repro.core.system import RTVirtSystem
        from repro.host.costs import ZERO_COSTS

        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("mc", slack_ns=0)
        svc = MemcachedService(
            system.engine,
            vm,
            RandomSource(3, "mc"),
            mean_interarrival_ns=msec(1),
            interarrival_sigma_ns=msec(5),
        ).start()
        system.run(sec(2))
        assert svc.requests_sent > 0
