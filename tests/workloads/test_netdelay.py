"""Client-to-host network link latency model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simcore.errors import ConfigurationError
from repro.simcore.rng import RandomSource
from repro.workloads.netdelay import NetLink
from repro.simcore.time import usec


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            NetLink(base_ns=-1)
        with pytest.raises(ConfigurationError):
            NetLink(jitter_ns=-1)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            NetLink(base_ns=10, shape="pareto")

    def test_lognormal_needs_base(self):
        with pytest.raises(ConfigurationError):
            NetLink(base_ns=0, jitter_ns=10, shape="lognormal")


class TestZeroLink:
    def test_zero_link_never_touches_rng(self):
        """The degenerate link must leave the stream byte-identical, so
        wiring links into a driver cannot perturb linkless configs."""
        link = NetLink()
        assert link.zero
        rng = RandomSource(7, "probe")
        before = [rng.uniform_int(0, 1000) for _ in range(3)]
        rng2 = RandomSource(7, "probe")
        assert link.sample(rng2) == 0
        assert [rng2.uniform_int(0, 1000) for _ in range(3)] == before


class TestSampling:
    def test_jitterless_link_is_constant(self):
        link = NetLink(base_ns=usec(20))
        rng = RandomSource(1, "link")
        assert [link.sample(rng) for _ in range(5)] == [usec(20)] * 5

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_uniform_sample_within_bounds(self, base, jitter, seed):
        link = NetLink(base_ns=base, jitter_ns=jitter)
        value = link.sample(RandomSource(seed, "link"))
        assert max(0, base - jitter) <= value <= base + jitter

    @given(st.integers(min_value=0, max_value=2**31))
    def test_lognormal_sample_non_negative(self, seed):
        link = NetLink(base_ns=usec(20), jitter_ns=usec(30), shape="lognormal")
        assert link.sample(RandomSource(seed, "link")) >= 0

    def test_same_seed_same_draws(self):
        link = NetLink(base_ns=usec(20), jitter_ns=usec(10))
        a = [link.sample(RandomSource(3, "link")) for _ in range(1)]
        b = [link.sample(RandomSource(3, "link")) for _ in range(1)]
        assert a == b
