"""Unit tests for the periodic workload driver and Table 1 data."""

from fractions import Fraction

import pytest

from repro.guest.task import Task
from repro.guest.vm import VM
from repro.simcore.engine import Engine
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec, sec
from repro.workloads.periodic import (
    TABLE1_GROUPS,
    TABLE5_GROUPS,
    PeriodicDriver,
    RTASpec,
)


class TestTableData:
    def test_six_groups_of_four(self):
        assert len(TABLE1_GROUPS) == 6
        assert all(len(specs) == 4 for specs in TABLE1_GROUPS.values())

    def test_harmonic_groups_have_harmonic_periods(self):
        for group in ("H-Equiv", "H-Dec", "H-Inc"):
            periods = [s.period_ms for s in TABLE1_GROUPS[group]]
            base = min(periods)
            assert all(p % base == 0 or base % p == 0 or p % 20 == 0 for p in periods)

    def test_group_utilizations_around_two_cpus(self):
        for group, specs in TABLE1_GROUPS.items():
            total = sum(s.utilization for s in specs)
            assert 1.9 < total < 2.1, group

    def test_table5_has_ten_groups(self):
        assert len(TABLE5_GROUPS) == 10

    def test_spec_conversions(self):
        spec = RTASpec(13, 20)
        assert spec.slice_ns == msec(13)
        assert spec.period_ns == msec(20)
        assert spec.utilization == pytest.approx(0.65)


class TestDriver:
    def _setup(self, phase=0, until=None):
        engine = Engine()
        vm = VM("vm")
        task = Task("t", msec(1), msec(10))
        vm.register_task(task)
        driver = PeriodicDriver(engine, vm, task, phase_ns=phase, until=until)
        return engine, vm, task, driver

    def test_releases_every_period(self):
        engine, vm, task, driver = self._setup()
        driver.start()
        engine.run_until(msec(55))
        assert task.stats.released == 6  # t = 0, 10, ..., 50

    def test_phase_offsets_first_release(self):
        engine, vm, task, driver = self._setup(phase=msec(3))
        driver.start()
        engine.run_until(msec(25))
        assert task.stats.released == 3  # 3, 13, 23
        assert task.pending[0].release == msec(3)

    def test_until_stops_releases(self):
        engine, vm, task, driver = self._setup(until=msec(25))
        driver.start()
        engine.run_until(msec(100))
        assert task.stats.released == 3  # 0, 10, 20

    def test_stop_cancels(self):
        engine, vm, task, driver = self._setup()
        driver.start()
        engine.at(msec(15), driver.stop)
        engine.run_until(msec(100))
        assert task.stats.released == 2

    def test_negative_phase_rejected(self):
        with pytest.raises(ConfigurationError):
            self._setup(phase=-1)


class TestBuildGroupVMs:
    def test_builds_one_vm_per_rta(self):
        from repro.core.system import RTVirtSystem
        from repro.workloads.periodic import build_group_vms

        system = RTVirtSystem(pcpu_count=3)
        pairs = build_group_vms(system, "H-Dec")
        assert len(pairs) == 4
        for vm, task in pairs:
            assert task.vm is vm

    def test_unknown_group_rejected(self):
        from repro.core.system import RTVirtSystem
        from repro.workloads.periodic import build_group_vms

        with pytest.raises(ConfigurationError):
            build_group_vms(RTVirtSystem(pcpu_count=1), "Nope")
