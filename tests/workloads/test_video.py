"""Unit tests for the video streaming workload (Table 3 / Figure 4)."""

import pytest

from repro.core.system import RTVirtSystem
from repro.host.costs import ZERO_COSTS
from repro.simcore.rng import RandomSource
from repro.simcore.time import msec, sec
from repro.workloads.video import (
    TABLE3_PROFILES,
    DynamicStreamingWorkload,
    StreamingSession,
)


class TestTable3:
    def test_four_profiles(self):
        assert sorted(TABLE3_PROFILES) == [24, 30, 48, 60]

    def test_periods_floor_of_frame_interval(self):
        # Period = floor(1000/fps) ms, as the paper derives.
        for fps, profile in TABLE3_PROFILES.items():
            assert profile.period_ms == int(1000 / fps)

    def test_paper_parameters(self):
        assert (TABLE3_PROFILES[24].slice_ms, TABLE3_PROFILES[24].period_ms) == (19, 41)
        assert (TABLE3_PROFILES[60].slice_ms, TABLE3_PROFILES[60].period_ms) == (15, 16)

    def test_bandwidth_close_to_paper_percent(self):
        for profile in TABLE3_PROFILES.values():
            measured = profile.slice_ms / profile.period_ms * 100
            assert abs(measured - profile.bandwidth_percent) < 12


class TestSession:
    def test_session_registers_runs_unregisters(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("vm")
        session = StreamingSession(
            system.engine, vm, "s1", TABLE3_PROFILES[30], end_ns=msec(200)
        )
        assert session.start()
        system.run(msec(100))
        assert session.task.vm is vm
        system.run(msec(200))
        assert session.task.vm is None  # unregistered at end
        assert session.task.stats.met >= 5

    def test_session_admission_failure_reports_false(self):
        system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
        vm = system.create_vm("vm")
        hog = StreamingSession(
            system.engine, vm, "hog", TABLE3_PROFILES[60], end_ns=sec(10)
        )
        assert hog.start()
        # A second 60fps stream (0.94 bw) cannot fit the same 1-VCPU VM.
        second = StreamingSession(
            system.engine, vm, "s2", TABLE3_PROFILES[60], end_ns=sec(10)
        )
        assert not second.start()


class TestChurn:
    def test_workload_runs_and_reports(self):
        system = RTVirtSystem(pcpu_count=15)
        workload = DynamicStreamingWorkload(
            system,
            RandomSource(3, "churn"),
            vm_count=2,
            vcpus_per_vm=2,
            duration_ns=sec(30),
            min_interval_ns=sec(5),
            max_interval_ns=sec(15),
        ).start()
        system.run(sec(30))
        system.finalize()
        admitted = workload.admitted_sessions()
        assert admitted, "churn should admit at least one session"
        assert workload.worst_miss_ratio() <= 0.01
        total_jobs = sum(s.stats.released for s in admitted)
        assert total_jobs > 100

    def test_sessions_deterministic_under_seed(self):
        def run():
            system = RTVirtSystem(pcpu_count=15)
            w = DynamicStreamingWorkload(
                system,
                RandomSource(9, "churn"),
                vm_count=2,
                vcpus_per_vm=2,
                duration_ns=sec(20),
                min_interval_ns=sec(5),
                max_interval_ns=sec(15),
            ).start()
            system.run(sec(20))
            return [(s.name, s.start_ns, s.fps) for s in w.sessions]

        assert run() == run()
