"""Tests for the ASCII figure renderers."""

import pytest

from repro.report import render_cdf, render_gantt, sparkline
from repro.simcore.errors import ConfigurationError
from repro.simcore.trace import Trace


class TestSparkline:
    def test_constant_series(self):
        line = sparkline([5.0] * 10, width=10)
        assert len(line) == 10
        assert len(set(line)) == 1

    def test_rising_series_rises(self):
        line = sparkline([0.0, 0.5, 1.0], width=3)
        assert line[0] < line[-1]

    def test_empty(self):
        assert sparkline([]) == ""

    def test_compression(self):
        assert len(sparkline(list(range(1000)), width=50)) <= 51

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            sparkline([1.0], width=0)


class TestCdfPlot:
    def _curves(self):
        return {
            "fast": [(50.0, 0.5), (60.0, 0.99), (70.0, 1.0)],
            "slow": [(100.0, 0.5), (5000.0, 0.999), (9000.0, 1.0)],
        }

    def test_contains_series_markers_and_legend(self):
        out = render_cdf(self._curves())
        assert "*" in out and "o" in out
        assert "fast" in out and "slow" in out

    def test_slo_line_drawn(self):
        out = render_cdf(self._curves(), slo=500.0)
        assert "|" in out and "SLO 500" in out

    def test_empty_curves(self):
        assert render_cdf({}) == "(no data)"

    def test_log_axis_bounds_in_footer(self):
        out = render_cdf(self._curves())
        assert "(log)" in out


class TestGantt:
    def test_renders_lanes_and_key(self):
        trace = Trace()
        trace.record_segment(0, "vm1", "t", 0, 50)
        trace.record_segment(0, "vm2", "t", 50, 100)
        trace.record_segment(1, "vm3", "t", 0, 100)
        out = render_gantt(trace, 0, 100, width=20)
        assert "pcpu0" in out and "pcpu1" in out
        assert "key:" in out
        assert "A=vm1" in out

    def test_majority_wins_bucket(self):
        trace = Trace()
        trace.record_segment(0, "a", "t", 0, 90)
        trace.record_segment(0, "b", "t", 90, 100)
        out = render_gantt(trace, 0, 100, width=1)
        assert "|A|" in out

    def test_idle_buckets_dotted(self):
        trace = Trace()
        trace.record_segment(0, "a", "t", 0, 10)
        out = render_gantt(trace, 0, 100, width=10)
        assert "·" in out

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigurationError):
            render_gantt(Trace(), 10, 10)

    def test_no_segments(self):
        assert render_gantt(Trace(), 0, 10) == "(no execution)"
