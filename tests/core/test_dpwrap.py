"""Unit and behaviour tests for the DP-WRAP host scheduler."""

from fractions import Fraction

import pytest

from repro.core.system import RTVirtSystem
from repro.guest.task import Task, TaskKind
from repro.host.costs import ZERO_COSTS
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec, usec
from repro.simcore.trace import Trace
from repro.workloads.periodic import PeriodicDriver


def system_with(pcpus=1, trace=None, **kw):
    kw.setdefault("cost_model", ZERO_COSTS)
    kw.setdefault("slack_ns", 0)
    return RTVirtSystem(pcpu_count=pcpus, trace=trace, **kw)


def add_rta(system, name, s_ms, p_ms, kind=TaskKind.PERIODIC, drive=True):
    vm = system.create_vm(f"{name}-vm")
    task = Task(name, msec(s_ms), msec(p_ms), kind)
    vm.register_task(task)
    driver = None
    if drive and kind is TaskKind.PERIODIC:
        driver = PeriodicDriver(system.engine, vm, task).start()
    return vm, task, driver


class TestConfiguration:
    def test_invalid_min_slice_rejected(self):
        from repro.core.dpwrap import DPWrapScheduler

        with pytest.raises(ConfigurationError):
            DPWrapScheduler(min_global_slice_ns=0)

    def test_idle_slice_below_min_rejected(self):
        from repro.core.dpwrap import DPWrapScheduler

        with pytest.raises(ConfigurationError):
            DPWrapScheduler(min_global_slice_ns=usec(250), idle_slice_ns=usec(100))


class TestOptimality:
    def test_full_utilization_one_cpu(self):
        system = system_with()
        for name, (s, p) in {"a": (5, 15), "b": (5, 10), "c": (5, 30)}.items():
            add_rta(system, name, s, p)
        system.run(msec(600))
        system.finalize()
        assert system.miss_report().total_missed == 0
        assert system.total_rt_bandwidth == 1

    def test_full_utilization_two_cpus(self):
        system = system_with(pcpus=2)
        # Total utilization exactly 2.0 with a task that must migrate.
        for name, (s, p) in {
            "a": (8, 10),
            "b": (8, 10),
            "c": (4, 10),
        }.items():
            add_rta(system, name, s, p)
        system.run(msec(500))
        system.finalize()
        assert system.miss_report().total_missed == 0

    def test_non_harmonic_high_utilization(self):
        system = system_with(pcpus=2, slack_ns=usec(500))
        for name, (s, p) in {
            "a": (11, 21),
            "b": (26, 43),
            "c": (40, 60),
            "d": (13, 100),
        }.items():
            add_rta(system, name, s, p)
        system.run(msec(2000))
        system.finalize()
        assert system.miss_report().total_missed == 0

    def test_admission_rejects_overload(self):
        system = system_with()
        add_rta(system, "a", 6, 10)
        vm = system.create_vm("b-vm")
        from repro.simcore.errors import AdmissionError

        with pytest.raises(AdmissionError):
            vm.register_task(Task("b", msec(5), msec(10)))


class TestWrapMechanics:
    def test_migrations_bounded_per_slice(self):
        trace = Trace()
        system = system_with(pcpus=2, trace=trace)
        for name, (s, p) in {"a": (8, 10), "b": (8, 10), "c": (4, 10)}.items():
            add_rta(system, name, s, p)
        system.run(msec(100))
        migrations = [e for e in trace.events_of_kind("switch") if e.detail[2]]
        slices = system.scheduler.slices_computed
        # DP-WRAP bound: at most m-1 = 1 split vcpu per slice; each split
        # causes at most 2 migration-flagged switches (away and back).
        assert len(migrations) <= 2 * slices

    def test_no_parallel_execution_of_one_vcpu(self):
        trace = Trace()
        system = system_with(pcpus=2, trace=trace)
        for name, (s, p) in {"a": (8, 10), "b": (8, 10), "c": (4, 10)}.items():
            add_rta(system, name, s, p)
        system.run(msec(100))
        by_vcpu = {}
        for s in trace.segments:
            by_vcpu.setdefault(s.vcpu, []).append((s.start, s.end))
        for intervals in by_vcpu.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1, "vcpu ran on two PCPUs simultaneously"

    def test_allocation_tracks_bandwidth(self):
        trace = Trace()
        system = system_with(trace=trace)
        vm, task, _ = add_rta(system, "a", 3, 10)
        # A competing reservation so 'a' cannot borrow all slack.
        add_rta(system, "b", 7, 10)
        system.run(msec(100))
        usage = trace.vcpu_usage_between(vm.vcpus[0].name, 0, msec(100))
        assert usage == msec(30)

    def test_min_global_slice_enforced(self):
        system = system_with(min_global_slice_ns=usec(250))
        add_rta(system, "a", 1, 2)  # deadlines every 2 ms
        system.run(msec(50))
        # Slices cannot be shorter than 250 µs: at most 50ms/250µs of them.
        assert system.scheduler.slices_computed <= msec(50) // usec(250) + 2

    def test_idle_system_uses_idle_slice(self):
        system = system_with(idle_slice_ns=msec(10))
        system.run(msec(100))
        assert system.scheduler.slices_computed <= 12


class TestSporadicSupport:
    def test_sporadic_reservation_meets_deadline(self):
        system = system_with()
        vm, task, _ = add_rta(
            system, "sp", 2, 10, kind=TaskKind.SPORADIC, drive=False
        )
        add_rta(system, "bulk", 7, 10)  # competing periodic load
        system.machine.start()
        for arrival in (msec(3), msec(17), msec(31)):
            system.engine.at(
                arrival, lambda a=arrival: vm.release_job(task, now=a)
            )
        system.run_until(msec(60))
        system.finalize()
        assert task.stats.met == 3

    def test_sporadic_wake_borrows_slack_quickly(self):
        system = system_with(pcpus=1)
        vm, task, _ = add_rta(system, "sp", 1, 100, kind=TaskKind.SPORADIC, drive=False)
        bg = system.create_background_vm("bg")
        system.machine.start()
        system.engine.at(msec(50), lambda: vm.release_job(task, now=msec(50)))
        system.run_until(msec(60))
        system.finalize()
        # With only background competition, the job runs immediately.
        assert task.stats.met == 1
        assert task.stats.response_times[0] <= msec(2)


class TestWorkConservation:
    def test_background_gets_leftover(self):
        trace = Trace()
        system = system_with(trace=trace)
        add_rta(system, "a", 2, 10)
        system.create_background_vm("bg")
        system.run(msec(100))
        bg_usage = trace.vcpu_usage_between("bg.vcpu0", 0, msec(100))
        assert bg_usage >= msec(75)

    def test_rt_waiter_preferred_over_background(self):
        trace = Trace()
        system = system_with(trace=trace)
        # Two RT VMs at 0.4 each; when one finishes early its donated
        # time goes to the other RT VM before background.
        vm_a, task_a, _ = add_rta(system, "a", 4, 10)
        system.create_background_vm("bg")
        system.run(msec(100))
        a_usage = trace.vcpu_usage_between(vm_a.vcpus[0].name, 0, msec(100))
        assert a_usage == msec(40)  # exactly its demand; rest to bg

    def test_dynamic_update_repartitions(self):
        system = system_with()
        vm, task, driver = add_rta(system, "a", 2, 10)
        system.run(msec(50))
        vm.adjust_task(task, msec(5), msec(10))
        system.run(msec(50))
        system.finalize()
        assert system.miss_report().total_missed == 0
        assert vm.vcpus[0].bandwidth == Fraction(1, 2)

    def test_unregister_frees_bandwidth(self):
        system = system_with()
        vm, task, driver = add_rta(system, "a", 6, 10)
        system.run(msec(30))
        driver.stop()
        system.run(msec(15))  # drain
        vm.unregister_task(task)
        vm2, task2, _ = add_rta(system, "b", 6, 10)
        system.run(msec(50))
        system.finalize()
        assert task2.stats.missed == 0
