"""Regression tests for DP-WRAP's sporadic budget preservation.

These lock in the fixes developed for the §4.2 sporadic experiment:

- a sporadic arrival whose reservation piece was donated away redeems a
  bounded bank and triggers a re-partition, meeting its deadline even
  when the host is otherwise fully reserved and busy;
- periodic-only VCPUs never redeem (their releases coincide with slice
  boundaries), so exact 100%-utilization periodic schedules stay exact;
- the carry/bank bookkeeping never grants the same wall-clock window
  twice, so repeated same-instant re-partitions are idempotent.
"""

from fractions import Fraction

import pytest

from repro.core.system import RTVirtSystem
from repro.guest.task import Task, TaskKind
from repro.host.costs import ZERO_COSTS
from repro.simcore.time import msec, usec
from repro.workloads.periodic import PeriodicDriver


def make_system(pcpus=1, **kw):
    kw.setdefault("cost_model", ZERO_COSTS)
    kw.setdefault("slack_ns", 0)
    return RTVirtSystem(pcpu_count=pcpus, **kw)


class TestSporadicBank:
    def test_mid_slice_arrival_with_short_deadline_meets(self):
        """Sporadic deadline (4 ms) shorter than the periodic boundary
        spacing (10 ms): only the bank + re-partition can serve it."""
        system = make_system()
        vm_p = system.create_vm("periodic")
        hog = Task("hog", msec(7), msec(10))
        vm_p.register_task(hog)
        PeriodicDriver(system.engine, vm_p, hog).start()
        vm_s = system.create_vm("sporadic")
        task = Task("sp", int(msec(1.2)), msec(4), TaskKind.SPORADIC)
        vm_s.register_task(task)
        system.machine.start()
        for arrival in (msec(13), msec(27), msec(41)):  # mid-slice phases
            system.engine.at(arrival, lambda a=arrival: vm_s.release_job(task, now=a))
        system.run_until(msec(60))
        system.finalize()
        assert task.stats.met == 3
        assert hog.stats.missed == 0

    def test_bank_capped_at_one_budget(self):
        """A long-idle sporadic VCPU redeems at most one budget's worth;
        its competitor keeps meeting deadlines through the redemption."""
        system = make_system()
        vm_p = system.create_vm("periodic")
        hog = Task("hog", msec(7), msec(10))
        vm_p.register_task(hog)
        PeriodicDriver(system.engine, vm_p, hog).start()
        vm_s = system.create_vm("sporadic")
        task = Task("sp", msec(3), msec(10), TaskKind.SPORADIC)
        vm_s.register_task(task)
        system.machine.start()
        # One arrival after a long idle stretch (lots of donated pieces).
        system.engine.at(msec(503), lambda: vm_s.release_job(task, now=msec(503)))
        system.run_until(msec(560))
        system.finalize()
        assert task.stats.met == 1
        assert hog.stats.missed == 0

    def test_periodic_vcpus_never_redeem(self):
        """Exact 100%-utilization periodic schedules stay exact even when
        tasks complete early and their pieces are donated."""
        system = make_system(pcpus=2)
        tasks = []
        for name, (s, p) in {"a": (8, 10), "b": (8, 10), "c": (4, 10)}.items():
            vm = system.create_vm(f"{name}-vm")
            t = Task(name, msec(s), msec(p))
            vm.register_task(t)
            tasks.append(t)
            PeriodicDriver(system.engine, vm, t).start()
        system.run(msec(500))
        system.finalize()
        assert sum(t.stats.missed for t in tasks) == 0

    def test_same_instant_repartitions_idempotent(self):
        """Simultaneous release batches (all periods aligned) plan once
        and never lose entitlement to double-granting."""
        system = make_system()
        tasks = []
        for name, (s, p) in {"a": (5, 15), "b": (5, 10), "c": (5, 30)}.items():
            vm = system.create_vm(f"{name}-vm")
            t = Task(name, msec(s), msec(p))
            vm.register_task(t)
            tasks.append(t)
            PeriodicDriver(system.engine, vm, t).start()
        system.run(msec(600))
        system.finalize()
        assert sum(t.stats.missed for t in tasks) == 0

    def test_repeated_sporadic_bursts_all_meet(self):
        system = make_system()
        vm_p = system.create_vm("periodic")
        hog = Task("hog", msec(6), msec(10))
        vm_p.register_task(hog)
        PeriodicDriver(system.engine, vm_p, hog).start()
        vm_s = system.create_vm("sporadic")
        task = Task("sp", msec(3), msec(10), TaskKind.SPORADIC)
        vm_s.register_task(task)
        system.machine.start()
        t = msec(7)
        arrivals = []
        while t < msec(300):
            arrivals.append(t)
            t += msec(23)  # never aligned with the 10 ms boundaries
        for arrival in arrivals:
            system.engine.at(arrival, lambda a=arrival: vm_s.release_job(task, now=a))
        system.run_until(msec(350))
        system.finalize()
        assert task.stats.missed == 0
        assert task.stats.met == len(arrivals)
        assert hog.stats.missed == 0
