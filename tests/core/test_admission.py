"""Unit tests for host-level utilization admission."""

from fractions import Fraction

import pytest

from repro.core.admission import UtilizationAdmission
from repro.guest.vcpu import VCPU
from repro.guest.vm import VM
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec


@pytest.fixture
def vcpus():
    vm = VM("vm", vcpu_count=4)
    return vm.vcpus


class TestCommit:
    def test_simple_grant(self, vcpus):
        adm = UtilizationAdmission(2)
        assert adm.try_commit([(vcpus[0], msec(5), msec(10))])
        assert adm.total_granted == Fraction(1, 2)

    def test_over_capacity_rejected(self, vcpus):
        adm = UtilizationAdmission(1)
        assert adm.try_commit([(vcpus[0], msec(6), msec(10))])
        assert not adm.try_commit([(vcpus[1], msec(5), msec(10))])
        assert adm.total_granted == Fraction(3, 5)  # unchanged

    def test_exact_full_capacity_accepted(self, vcpus):
        adm = UtilizationAdmission(2)
        assert adm.try_commit([(vcpus[0], msec(10), msec(10))])
        assert adm.try_commit([(vcpus[1], msec(10), msec(10))])
        assert adm.remaining == 0

    def test_single_vcpu_cannot_exceed_one_cpu(self, vcpus):
        adm = UtilizationAdmission(4)
        assert not adm.try_commit([(vcpus[0], msec(11), msec(10))])

    def test_update_replaces_prior_grant(self, vcpus):
        adm = UtilizationAdmission(1)
        adm.try_commit([(vcpus[0], msec(5), msec(10))])
        assert adm.try_commit([(vcpus[0], msec(8), msec(10))])
        assert adm.total_granted == Fraction(4, 5)

    def test_atomic_batch_rolls_back(self, vcpus):
        adm = UtilizationAdmission(1)
        ok = adm.try_commit(
            [(vcpus[0], msec(5), msec(10)), (vcpus[1], msec(6), msec(10))]
        )
        assert not ok
        assert adm.total_granted == 0

    def test_inc_dec_batch(self, vcpus):
        adm = UtilizationAdmission(1)
        adm.try_commit([(vcpus[0], msec(6), msec(10))])
        # Move bandwidth between vcpus atomically: 0.6 -> 0.2 + 0.5.
        assert adm.try_commit(
            [(vcpus[0], msec(2), msec(10)), (vcpus[1], msec(5), msec(10))]
        )
        assert adm.total_granted == Fraction(7, 10)

    def test_invalid_params_rejected(self, vcpus):
        adm = UtilizationAdmission(1)
        assert not adm.try_commit([(vcpus[0], -1, msec(10))])
        assert not adm.try_commit([(vcpus[0], msec(1), 0)])


class TestDecrease:
    def test_decrease_always_applies(self, vcpus):
        adm = UtilizationAdmission(1)
        adm.try_commit([(vcpus[0], msec(8), msec(10))])
        adm.commit_decrease([(vcpus[0], msec(2), msec(10))])
        assert adm.total_granted == Fraction(1, 5)

    def test_release(self, vcpus):
        adm = UtilizationAdmission(1)
        adm.try_commit([(vcpus[0], msec(8), msec(10))])
        adm.release(vcpus[0])
        assert adm.total_granted == 0


class TestBackgroundReserve:
    def test_reserve_reduces_capacity(self, vcpus):
        adm = UtilizationAdmission(2, background_reserve=Fraction(1, 2))
        assert adm.capacity == Fraction(3, 2)
        assert adm.try_commit([(vcpus[0], msec(10), msec(10))])
        assert not adm.try_commit([(vcpus[1], msec(6), msec(10))])

    def test_invalid_reserve_rejected(self):
        with pytest.raises(ConfigurationError):
            UtilizationAdmission(1, background_reserve=Fraction(1))

    def test_zero_pcpus_rejected(self):
        with pytest.raises(ConfigurationError):
            UtilizationAdmission(0)
