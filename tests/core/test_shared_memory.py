"""Unit tests for the shared-memory deadline page."""

from repro.core.shared_memory import SharedMemoryPage
from repro.guest.task import Task, TaskKind
from repro.guest.vm import VM
from repro.simcore.time import msec


def make_vcpu_with_task(period_ms=10, kind=TaskKind.PERIODIC):
    vm = VM(f"vm-{kind.value}-{period_ms}")
    task = Task("t", msec(1), msec(period_ms), kind)
    vm.register_task(task)
    return vm.vcpus[0], task


class TestPage:
    def test_map_and_read(self):
        page = SharedMemoryPage()
        vcpu, task = make_vcpu_with_task()
        page.map_vcpu(vcpu)
        task.release_job(now=0)
        assert page.read(vcpu, 0) == msec(10)

    def test_read_unmapped_returns_none(self):
        page = SharedMemoryPage()
        vcpu, _ = make_vcpu_with_task()
        assert page.read(vcpu, 0) is None

    def test_unmap(self):
        page = SharedMemoryPage()
        vcpu, _ = make_vcpu_with_task()
        page.map_vcpu(vcpu)
        page.unmap_vcpu(vcpu)
        assert len(page) == 0

    def test_earliest_across_vcpus(self):
        page = SharedMemoryPage()
        v1, t1 = make_vcpu_with_task(period_ms=20)
        v2, t2 = make_vcpu_with_task(period_ms=10)
        page.map_vcpu(v1)
        page.map_vcpu(v2)
        t1.release_job(now=0)
        t2.release_job(now=0)
        assert page.earliest(0) == msec(10)

    def test_earliest_empty_page(self):
        assert SharedMemoryPage().earliest(0) is None

    def test_read_all_ordered_by_uid(self):
        page = SharedMemoryPage()
        v1, t1 = make_vcpu_with_task()
        v2, t2 = make_vcpu_with_task()
        page.map_vcpu(v2)
        page.map_vcpu(v1)
        t1.release_job(now=0)
        t2.release_job(now=0)
        uids = [v.uid for v, _ in page.read_all(0)]
        assert uids == sorted(uids)

    def test_custom_provider(self):
        page = SharedMemoryPage()
        vcpu, _ = make_vcpu_with_task()
        page.map_vcpu(vcpu, provider=lambda now: now + 42)
        assert page.read(vcpu, 100) == 142

    def test_footprint_8_bytes_per_vcpu(self):
        page = SharedMemoryPage()
        for _ in range(3):
            vcpu, _ = make_vcpu_with_task()
            page.map_vcpu(vcpu)
        assert page.size_bytes == 24

    def test_sporadic_worst_case_published(self):
        page = SharedMemoryPage()
        vcpu, task = make_vcpu_with_task(kind=TaskKind.SPORADIC)
        page.map_vcpu(vcpu)
        # Never released: worst case is arrival now, deadline one period out.
        assert page.read(vcpu, msec(3)) == msec(13)

    def test_reads_counted(self):
        page = SharedMemoryPage()
        vcpu, _ = make_vcpu_with_task()
        page.map_vcpu(vcpu)
        page.read(vcpu, 0)
        page.earliest(0)
        assert page.reads == 2
