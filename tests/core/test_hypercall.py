"""Unit tests for the sched_rtvirt() hypercall path."""

from fractions import Fraction

import pytest

from repro.core.flags import SchedRTVirtFlag
from repro.core.system import RTVirtSystem
from repro.guest.task import Task
from repro.host.costs import CostModel, ZERO_COSTS
from repro.simcore.errors import AdmissionError
from repro.simcore.time import msec, usec


def make_system(pcpu_count=1, **kw):
    kw.setdefault("cost_model", ZERO_COSTS)
    kw.setdefault("slack_ns", 0)
    return RTVirtSystem(pcpu_count=pcpu_count, **kw)


class TestFlags:
    def test_registration_logs_inc_bw(self):
        system = make_system()
        vm = system.create_vm("vm")
        vm.register_task(Task("t", msec(2), msec(10)))
        assert vm.port.log == [(SchedRTVirtFlag.INC_BW, True)]

    def test_unregister_logs_dec_bw(self):
        system = make_system()
        vm = system.create_vm("vm")
        t = Task("t", msec(2), msec(10))
        vm.register_task(t)
        vm.unregister_task(t)
        assert vm.port.log[-1] == (SchedRTVirtFlag.DEC_BW, True)

    def test_cross_vcpu_move_logs_inc_dec(self):
        system = make_system(pcpu_count=2)
        vm = system.create_vm("vm", vcpu_count=2)
        a = Task("a", msec(5), msec(10))
        t = Task("t", msec(2), msec(10))
        vm.register_task(a)
        vm.register_task(t)
        vm.adjust_task(t, msec(7), msec(10))
        assert (SchedRTVirtFlag.INC_DEC_BW, True) in vm.port.log

    def test_rejected_request_logged(self):
        system = make_system()
        vm1 = system.create_vm("vm1")
        vm1.register_task(Task("a", msec(8), msec(10)))
        vm2 = system.create_vm("vm2")
        with pytest.raises(AdmissionError):
            vm2.register_task(Task("b", msec(5), msec(10)))
        assert vm2.port.log == [(SchedRTVirtFlag.INC_BW, False)]


class TestEffects:
    def test_grant_updates_vcpu_and_scheduler(self):
        system = make_system()
        vm = system.create_vm("vm")
        vm.register_task(Task("t", msec(2), msec(10)))
        assert vm.vcpus[0].bandwidth == Fraction(1, 5)
        assert vm.vcpus[0].admitted
        assert system.total_rt_bandwidth == Fraction(1, 5)

    def test_rejection_changes_nothing(self):
        system = make_system()
        vm1 = system.create_vm("vm1")
        vm1.register_task(Task("a", msec(8), msec(10)))
        vm2 = system.create_vm("vm2")
        try:
            vm2.register_task(Task("b", msec(5), msec(10)))
        except AdmissionError:
            pass
        assert vm2.vcpus[0].bandwidth == 0
        assert system.total_rt_bandwidth == Fraction(4, 5)

    def test_hypercall_cost_charged(self):
        system = RTVirtSystem(
            pcpu_count=1,
            cost_model=CostModel(hypercall_ns=usec(10)),
            slack_ns=0,
        )
        vm = system.create_vm("vm")
        vm.register_task(Task("t", msec(2), msec(10)))
        assert system.machine.metrics.overhead.hypercalls == 1
        assert system.machine.metrics.overhead.hypercall_time == usec(10)

    def test_hotplugged_vcpu_mapped_in_shared_memory(self):
        system = make_system(pcpu_count=2)
        vm = system.create_vm("vm", vcpu_count=1, max_vcpus=2)
        vm.register_task(Task("a", msec(6), msec(10)))
        vm.register_task(Task("b", msec(5), msec(10)))
        assert len(vm.vcpus) == 2
        assert len(system.shared_memory) >= 2
