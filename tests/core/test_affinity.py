"""Tests for DP-WRAP CPU affinity (paper §6 extension)."""

import pytest

from repro.core.system import RTVirtSystem
from repro.guest.task import Task
from repro.host.costs import ZERO_COSTS
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec
from repro.simcore.trace import Trace
from repro.workloads.periodic import PeriodicDriver


def build(pcpus=2, trace=None):
    system = RTVirtSystem(pcpu_count=pcpus, cost_model=ZERO_COSTS, slack_ns=0, trace=trace)
    return system


def add_rta(system, name, s_ms, p_ms):
    vm = system.create_vm(f"{name}-vm")
    task = Task(name, msec(s_ms), msec(p_ms))
    vm.register_task(task)
    PeriodicDriver(system.engine, vm, task).start()
    return vm, task


class TestAffinity:
    def test_affine_vcpu_never_migrates(self):
        trace = Trace()
        system = build(trace=trace)
        # High-utilization mix that forces wrap-around splits.
        vm_a, t_a = add_rta(system, "pinned", 8, 10)
        add_rta(system, "b", 8, 10)
        add_rta(system, "c", 3, 10)
        system.scheduler.set_affinity(vm_a.vcpus[0], 1)
        system.run(msec(100))
        pcpus = {s.pcpu for s in trace.segments_for_vcpu(vm_a.vcpus[0].name)}
        assert pcpus == {1}

    def test_affine_vcpu_meets_deadlines(self):
        system = build()
        vm_a, t_a = add_rta(system, "pinned", 8, 10)
        add_rta(system, "b", 6, 10)
        system.scheduler.set_affinity(vm_a.vcpus[0], 0)
        system.run(msec(200))
        system.finalize()
        assert t_a.stats.missed == 0

    def test_flexible_peers_still_meet_deadlines(self):
        system = build()
        vm_a, t_a = add_rta(system, "pinned", 5, 10)
        vm_b, t_b = add_rta(system, "flex-b", 7, 10)
        vm_c, t_c = add_rta(system, "flex-c", 7, 10)
        system.scheduler.set_affinity(vm_a.vcpus[0], 0)
        system.run(msec(300))
        system.finalize()
        assert t_a.stats.missed == 0
        assert t_b.stats.missed == 0
        assert t_c.stats.missed == 0

    def test_no_parallel_self_execution_with_affinity(self):
        trace = Trace()
        system = build(trace=trace)
        vm_a, _ = add_rta(system, "pinned", 4, 10)
        add_rta(system, "b", 8, 10)
        add_rta(system, "c", 7, 10)
        system.scheduler.set_affinity(vm_a.vcpus[0], 1)
        system.run(msec(100))
        by_vcpu = {}
        for seg in trace.segments:
            by_vcpu.setdefault(seg.vcpu, []).append((seg.start, seg.end))
        for intervals in by_vcpu.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1

    def test_clear_affinity_restores_migration(self):
        trace = Trace()
        system = build(trace=trace)
        vm_a, t_a = add_rta(system, "pinned", 8, 10)
        add_rta(system, "b", 8, 10)
        add_rta(system, "c", 3, 10)
        system.scheduler.set_affinity(vm_a.vcpus[0], 1)
        system.run(msec(50))
        system.scheduler.clear_affinity(vm_a.vcpus[0])
        system.run(msec(100))
        system.finalize()
        assert t_a.stats.missed == 0

    def test_invalid_pcpu_rejected(self):
        system = build()
        vm, _ = add_rta(system, "a", 1, 10)
        with pytest.raises(ConfigurationError):
            system.scheduler.set_affinity(vm.vcpus[0], 5)

    def test_two_affine_vcpus_share_a_pcpu(self):
        trace = Trace()
        system = build(trace=trace)
        vm_a, t_a = add_rta(system, "pin-a", 4, 10)
        vm_b, t_b = add_rta(system, "pin-b", 4, 10)
        system.scheduler.set_affinity(vm_a.vcpus[0], 0)
        system.scheduler.set_affinity(vm_b.vcpus[0], 0)
        system.run(msec(200))
        system.finalize()
        assert t_a.stats.missed == 0
        assert t_b.stats.missed == 0
        assert {s.pcpu for s in trace.segments_for_vcpu(vm_a.vcpus[0].name)} == {0}
        assert {s.pcpu for s in trace.segments_for_vcpu(vm_b.vcpus[0].name)} == {0}
