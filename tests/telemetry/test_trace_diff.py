"""Tests for the trace divergence diff.

The headline use: record a healthy run and a run whose scheduler was
silently broken (reversed EDF priority), and the diff must localize the
first event where the two executions part ways — debugging a scheduler
regression from two trace files alone.
"""

import types

import pytest

from repro.baselines.rtxen import RTXenSystem
from repro.guest.task import Task
from repro.simcore.time import msec
from repro.telemetry import TraceReader, TraceRecorder
from repro.telemetry import events as T
from repro.telemetry.diff import diff_traces
from repro.workloads.periodic import PeriodicDriver

#: Two RTAs whose EDF order matters: under reversed-EDF the heavy 40 ms
#: server preempts the 10 ms one, so the short-deadline task misses.
TASKS = ((msec(2), msec(10)), (msec(8), msec(40)))


def record_rtxen_run(break_scheduler=False):
    """Record one single-PCPU gEDF run, optionally with reversed EDF."""
    system = RTXenSystem(pcpu_count=1, host="gedf")
    recorder = TraceRecorder(
        header={"broken": break_scheduler}
    ).attach(system.machine.bus)
    for i, (slice_ns, period_ns) in enumerate(TASKS):
        task = Task(f"t{i}", slice_ns, period_ns)
        vm = system.create_vm(f"vm{i}", interfaces=[(slice_ns * 2, period_ns)])
        system.register_rta(vm, task)
        PeriodicDriver(system.engine, vm, task).start()
    if break_scheduler:
        scheduler = system.machine.host_scheduler

        def broken_choose(self):
            servers = self._eligible()
            m = self.machine.available_count
            return list(reversed(servers))[:m]

        scheduler._choose = types.MethodType(broken_choose, scheduler)
    system.run(msec(200))
    system.finalize()
    recorder.detach()
    return recorder.close()


class TestBrokenSchedulerDiff:
    @pytest.fixture(scope="class")
    def diff(self):
        healthy = record_rtxen_run()
        broken = record_rtxen_run(break_scheduler=True)
        return diff_traces(TraceReader(healthy), TraceReader(broken))

    def test_diff_pinpoints_divergence(self, diff):
        assert not diff.identical
        assert diff.hash_a != diff.hash_b
        assert diff.divergence_index is not None
        assert diff.event_a is not None
        assert diff.event_b is not None
        assert diff.event_a != diff.event_b

    def test_context_precedes_divergence(self, diff):
        """Context events are the shared prefix just before the split."""
        assert len(diff.context) <= 3
        healthy = list(TraceReader(record_rtxen_run()).events())
        start = diff.divergence_index - len(diff.context)
        assert diff.context == healthy[start : diff.divergence_index]

    def test_reversed_edf_shows_up_as_extra_misses(self, diff):
        deltas = {row["task"]: row for row in diff.task_deltas}
        assert deltas["t0"]["missed_a"] == 0
        assert deltas["t0"]["miss_delta"] > 0

    def test_summary_renders_the_story(self, diff):
        text = diff.summary()
        assert "traces diverge at event #" in text
        assert "Per-task deltas" in text

    def test_count_deltas_cover_deadline_misses(self, diff):
        kinds = {row["kind"] for row in diff.count_deltas}
        assert T.DEADLINE_MISS in kinds


class TestIdenticalTraces:
    def test_identical_short_circuit(self):
        data = record_rtxen_run()
        diff = diff_traces(TraceReader(data), TraceReader(data))
        assert diff.identical
        assert diff.divergence_index is None
        assert diff.count_deltas == []
        assert "traces identical" in diff.summary()

    def test_recorded_runs_are_reproducible(self):
        """Two fresh recordings of the same system diff as identical."""
        diff = diff_traces(record_rtxen_run(), record_rtxen_run())
        assert diff.identical
