"""Unit tests for the telemetry bus (pub/sub + zero-subscriber path)."""

from repro.telemetry import TelemetryBus
from repro.telemetry import events as T


class TestSubscribe:
    def test_publish_delivers_in_subscription_order(self):
        bus = TelemetryBus()
        order = []
        bus.subscribe("k", lambda e: order.append(("a", e)))
        bus.subscribe("k", lambda e: order.append(("b", e)))
        bus.publish("k", 1)
        assert order == [("a", 1), ("b", 1)]

    def test_publish_without_subscribers_is_a_noop(self):
        bus = TelemetryBus()
        bus.publish("nobody-listens", object())  # must not raise

    def test_kinds_are_independent(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe("a", seen.append)
        bus.publish("b", "wrong-kind")
        bus.publish("a", "right-kind")
        assert seen == ["right-kind"]

    def test_unsubscribe_removes_handler(self):
        bus = TelemetryBus()
        seen = []
        cancel = bus.subscribe("k", seen.append)
        bus.publish("k", 1)
        cancel()
        bus.publish("k", 2)
        assert seen == [1]

    def test_unsubscribe_is_idempotent(self):
        bus = TelemetryBus()
        handler = lambda e: None  # noqa: E731
        first = bus.subscribe("k", handler)
        second = bus.subscribe("k", handler)
        first()
        first()  # second call must not remove the other registration
        assert bus.has_subscribers("k")
        second()
        assert not bus.has_subscribers("k")

    def test_handler_may_unsubscribe_itself_during_publish(self):
        bus = TelemetryBus()
        seen = []
        cancels = []

        def once(event):
            seen.append(event)
            cancels[0]()

        cancels.append(bus.subscribe("k", once))
        bus.subscribe("k", seen.append)
        bus.publish("k", 1)
        bus.publish("k", 2)
        assert seen == [1, 1, 2]

    def test_subscribe_many_single_cancel(self):
        bus = TelemetryBus()
        seen = []
        cancel = bus.subscribe_many(
            (T.DEADLINE_HIT, T.DEADLINE_MISS), seen.append
        )
        bus.publish(T.DEADLINE_HIT, "hit")
        bus.publish(T.DEADLINE_MISS, "miss")
        cancel()
        bus.publish(T.DEADLINE_HIT, "late")
        assert seen == ["hit", "miss"]
        assert not bus.has_subscribers(T.DEADLINE_HIT)
        assert not bus.has_subscribers(T.DEADLINE_MISS)


class TestHasSubscribers:
    def test_tracks_last_handler_exactly(self):
        bus = TelemetryBus()
        assert not bus.has_subscribers("k")
        c1 = bus.subscribe("k", lambda e: None)
        c2 = bus.subscribe("k", lambda e: None)
        assert bus.has_subscribers("k")
        c1()
        assert bus.has_subscribers("k")
        c2()
        assert not bus.has_subscribers("k")

    def test_key_is_dropped_not_left_empty(self):
        # The zero-subscriber fast path relies on the kind's key being
        # deleted (membership test), not on an empty list lingering.
        bus = TelemetryBus()
        cancel = bus.subscribe("k", lambda e: None)
        cancel()
        assert "k" not in bus._subscribers


class TestWatch:
    def test_callback_runs_immediately(self):
        bus = TelemetryBus()
        bus.subscribe("k", lambda e: None)
        calls = []
        bus.watch(lambda b: calls.append(b.has_subscribers("k")))
        assert calls == [True]

    def test_callback_fires_on_subscribe_and_unsubscribe(self):
        bus = TelemetryBus()
        flags = []
        bus.watch(lambda b: flags.append(b.has_subscribers("k")))
        cancel = bus.subscribe("k", lambda e: None)
        cancel()
        assert flags == [False, True, False]

    def test_unwatch_stops_notifications(self):
        bus = TelemetryBus()
        calls = []
        unwatch = bus.watch(lambda b: calls.append(1))
        unwatch()
        bus.subscribe("k", lambda e: None)
        assert calls == [1]
        unwatch()  # idempotent


class TestProducerFlags:
    def test_machine_caches_interest_flags_via_watch(self):
        # The end-to-end contract of the fast path: a Machine's cached
        # flag flips when a subscriber arrives and back when it leaves.
        from repro.host.costs import ZERO_COSTS
        from repro.host.machine import Machine
        from repro.simcore.engine import Engine

        machine = Machine(Engine(), 1, ZERO_COSTS)
        assert not machine._t_segment
        cancel = machine.bus.subscribe(T.SEGMENT_END, lambda e: None)
        assert machine._t_segment
        cancel()
        assert not machine._t_segment
