"""Unit tests for miss blame attribution and the mergeable reports."""

import json

from repro.telemetry import BlameReport, SpanBuilder, TelemetryBus
from repro.telemetry import events as T
from repro.telemetry.blame import (
    CAUSES,
    analyze_spans,
    attribute_miss,
    primary_cause,
)
from repro.telemetry.blame_plan import blame_plan


def canonical(snapshot) -> str:
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


class _Costs:
    migration_ns = 0


class _Engine:
    now = 0


class _StubMachine:
    def __init__(self):
        self.bus = TelemetryBus()
        self.costs = _Costs()
        self.engine = _Engine()


def _miss_scenario(deplete=None, shed=None):
    """One job: on-CPU 0..10 (wait), off-CPU 10..70, runs 70..80,
    completes at 80 against a deadline of 60 — lateness 20."""
    machine = _StubMachine()
    builder = SpanBuilder().attach(machine)
    bus = machine.bus
    bus.publish(
        T.JOB_RELEASE, T.JobReleaseEvent(0, "vm0", "v0", "a", 0, 0, 60)
    )
    bus.publish(T.CONTEXT_SWITCH, T.ContextSwitchEvent(0, 0, "v0", False))
    bus.publish(T.CONTEXT_SWITCH, T.ContextSwitchEvent(10, 0, None, False))
    if deplete:
        bus.publish(
            T.BUDGET_DEPLETE, T.BudgetDepleteEvent(deplete[0], "v0", 0)
        )
        bus.publish(
            T.BUDGET_REPLENISH,
            T.BudgetReplenishEvent(deplete[1], "v0", 1, 1),
        )
    if shed:
        bus.publish(
            T.ADMISSION_DECISION,
            T.AdmissionDecisionEvent(
                shed[0], "host", "shed", "v0", False, "revoked"
            ),
        )
        bus.publish(
            T.ADMISSION_DECISION,
            T.AdmissionDecisionEvent(shed[1], "host", "commit", "v0", True, ""),
        )
    bus.publish(T.CONTEXT_SWITCH, T.ContextSwitchEvent(70, 0, "v0", False))
    bus.publish(T.SEGMENT_END, T.SegmentEndEvent(80, 0, "v0", "a", 70, 80))
    bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(80, "a", 0))
    bus.publish(T.DEADLINE_MISS, T.DeadlineMissEvent(80, "a", 0, 0, 60, 20))
    return builder.finalize(end_time=100)


class TestAttribution:
    def test_lost_ns_sums_to_lateness(self):
        builder = _miss_scenario()
        (span,) = builder.spans
        lost = attribute_miss(span, builder)
        assert sum(lost.values()) == span.lateness == 20
        assert primary_cause(lost) == "host_preemption"

    def test_backward_walk_takes_latest_stall(self):
        # Off-CPU 10..70 covers the lateness (20) entirely: the latest
        # 20ns of that stall (50..70) are what the miss cost.
        builder = _miss_scenario(deplete=(50, 70))
        (span,) = builder.spans
        lost = attribute_miss(span, builder)
        assert lost == {"budget_exhaustion": 20}

    def test_throttle_outranks_depletion(self):
        # Shed and depleted windows overlap: shedding zeroed the budget,
        # so the slice blames admission, not exhaustion.
        builder = _miss_scenario(deplete=(50, 70), shed=(50, 70))
        (span,) = builder.spans
        lost = attribute_miss(span, builder)
        assert lost == {"admission_throttle": 20}

    def test_unblamed_lateness_is_overload(self):
        machine = _StubMachine()
        builder = SpanBuilder().attach(machine)
        bus = machine.bus
        bus.publish(
            T.JOB_RELEASE, T.JobReleaseEvent(0, "vm0", "v0", "a", 0, 0, 10)
        )
        bus.publish(T.CONTEXT_SWITCH, T.ContextSwitchEvent(0, 0, "v0", False))
        # The job runs its entire 0..30 window and is still 20 late.
        bus.publish(T.SEGMENT_END, T.SegmentEndEvent(30, 0, "v0", "a", 0, 30))
        bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(30, "a", 0))
        bus.publish(
            T.DEADLINE_MISS, T.DeadlineMissEvent(30, "a", 0, 0, 10, 20)
        )
        builder.finalize(end_time=50)
        (span,) = builder.spans
        lost = attribute_miss(span, builder)
        assert lost == {"overload": 20}

    def test_met_span_has_no_blame(self):
        machine = _StubMachine()
        builder = SpanBuilder().attach(machine)
        bus = machine.bus
        bus.publish(
            T.JOB_RELEASE, T.JobReleaseEvent(0, "vm0", "v0", "a", 0, 0, 100)
        )
        bus.publish(T.SEGMENT_END, T.SegmentEndEvent(20, 0, "v0", "a", 0, 20))
        bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(20, "a", 0))
        builder.finalize(end_time=50)
        assert attribute_miss(builder.spans[0], builder) == {}

    def test_primary_tie_breaks_by_taxonomy_order(self):
        lost = {"host_preemption": 5, "guest_queueing": 5}
        assert primary_cause(lost) == "host_preemption"
        assert CAUSES.index("host_preemption") < CAUSES.index("guest_queueing")


class TestBlameReport:
    def test_analyze_explains_every_miss(self):
        builder = _miss_scenario()
        report, misses = analyze_spans(builder)
        assert report.observed == report.explained == 1
        (miss,) = misses
        assert miss["primary"] != "none"
        assert sum(miss["lost_ns"].values()) == miss["lateness_ns"]

    def test_merge_is_byte_identical_to_single_stream(self):
        combined = BlameReport()
        shards = []
        for lost in (
            {"host_preemption": 10},
            {"budget_exhaustion": 7, "guest_queueing": 3},
            {"host_preemption": 2},
        ):
            combined.add_miss("a", lost)
            shard = BlameReport()
            shard.add_miss("a", lost)
            shards.append(shard.snapshot())
        merged = BlameReport.merge(shards)
        assert canonical(merged.snapshot()) == canonical(combined.snapshot())

    def test_merge_handles_empty_shards(self):
        merged = BlameReport.merge([BlameReport().snapshot()])
        assert merged.observed == 0
        assert merged.snapshot()["per_cause"] == {}


class TestBlamePlan:
    def test_plan_units_are_canonical(self):
        plan = blame_plan(faults=("pcpu_fail",), duration_ns=1, seed=3)
        assert plan.experiment_id == "blame_sweep"
        assert [u.unit_id for u in plan.units] == [
            "blame_sweep/pcpu_fail/RTVirt",
            "blame_sweep/pcpu_fail/RT-Xen",
            "blame_sweep/pcpu_fail/Credit",
        ]
        for unit in plan.units:
            assert unit.fn == "repro.telemetry.blame_plan:run_blame_shard"
            assert dict(unit.kwargs)["seed"] == 3

    def test_sharded_sweep_runs_and_explains(self):
        from repro.runner.executor import execute_plan
        from repro.simcore.time import sec

        plan = blame_plan(
            faults=("pcpu_fail",),
            schedulers=("RT-Xen",),
            duration_ns=sec(1),
            seed=11,
        )
        sweep = execute_plan(plan, jobs=1)
        (part,) = sweep.parts
        blame = part["blame"]
        assert blame["observed"] > 0, "pcpu_fail under RT-Xen must miss"
        assert blame["explained"] == blame["observed"]
        for miss in part["misses"]:
            assert miss["primary"] in CAUSES
            assert sum(miss["lost_ns"].values()) == miss["lateness_ns"]
        (row,) = sweep.rows()
        assert row["top_cause"] in CAUSES
