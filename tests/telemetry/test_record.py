"""Tests for the flight-recorder trace format (record/read/merge).

The RTVT format must round-trip every telemetry event kind exactly —
timestamps, interned strings, nested tuples and the tagged-scalar
``HypercallEvent.flag`` — seek by time through the trailer checkpoints,
and merge shard traces into byte-stable sectioned files.
"""

import pytest

from repro.telemetry import TelemetryBus, TraceReader, TraceRecorder, merge_traces
from repro.telemetry import events as T
from repro.telemetry.record import (
    CHECKPOINT_EVERY,
    EVENT_CLASSES,
    TraceWriter,
)


def sample_events():
    """One instance of every kind, exercising each field codec."""
    return [
        (T.JOB_RELEASE, T.JobReleaseEvent(10, "vm0", "vm0.v0", "vm0.t", 0, 10, 20)),
        (T.ENQUEUE, T.EnqueueEvent(11, "vm0", None, "vm0.t", 0, "global")),
        (T.CONTEXT_SWITCH, T.ContextSwitchEvent(12, 0, "vm0.v0", True)),
        (T.MIGRATION, T.MigrationEvent(13, "vm0.v0", 0, 1, "host")),
        (T.SEGMENT_END, T.SegmentEndEvent(14, 0, "vm0.v0", "vm0.t", 12, 14)),
        (T.DEADLINE_HIT, T.DeadlineHitEvent(15, "vm0.t", 0, 10, 20)),
        (T.DEADLINE_MISS, T.DeadlineMissEvent(16, "vm0.t", 1, 10, 14, 2)),
        (T.JOB_LATENCY, T.JobLatencyEvent(17, "vm0.t", 0, 7)),
        (T.JOB_COMPLETE, T.JobCompleteEvent(18, "vm0.t", 0)),
        (T.HYPERCALL, T.HypercallEvent(19, "vm0.v0", "increase", "granted", 3, 5, 9)),
        (T.BUDGET_REPLENISH, T.BudgetReplenishEvent(20, "vm0.v0", 5, 5)),
        (T.BUDGET_DEPLETE, T.BudgetDepleteEvent(21, "vm0.v0", -3)),
        (
            T.ADMISSION_DECISION,
            T.AdmissionDecisionEvent(
                22, "host", "commit", "vm9.v0", True, "fits", "vm9", "t0"
            ),
        ),
        (T.FAULT_INJECTED, T.FaultInjectedEvent(23, "pcpu_fail", (0, None))),
        (T.FAULT_RECOVERED, T.FaultRecoveredEvent(24, "pcpu_recover", (0, None))),
        (T.CPU_ACCOUNT, T.CpuAccountEvent(25, "vm0.v0", 3, 0, 100)),
        (T.VCPU_PARAMS, T.VcpuParamsEvent(26, "vm0.v0", 9, 4, 10)),
    ]


def record(events, header=None):
    writer = TraceWriter(header=header)
    for kind, event in events:
        writer.write_event(kind, event)
    return writer.close()


class TestFormat:
    def test_every_kind_has_a_class(self):
        assert set(EVENT_CLASSES) == set(T.ALL_KINDS)

    def test_round_trip_all_kinds(self):
        events = sample_events()
        reader = TraceReader(record(events, header={"who": "test"}))
        assert reader.header == {"who": "test"}
        assert reader.event_count == len(events)
        assert list(reader.events()) == events

    def test_counts_and_hash_stable(self):
        events = sample_events()
        a, b = TraceReader(record(events)), TraceReader(record(events))
        assert a.trace_hash == b.trace_hash
        assert a.counts[T.JOB_RELEASE] == 1
        assert sum(a.counts.values()) == len(events)

    def test_kind_filter(self):
        events = sample_events() * 3
        reader = TraceReader(record(events))
        got = list(reader.events(kinds=(T.HYPERCALL,)))
        assert len(got) == 3
        assert all(kind == T.HYPERCALL for kind, _ in got)

    def test_hypercall_flag_string_survives(self):
        """The flag field carries enum *values* (strings) at runtime."""
        events = [
            (T.HYPERCALL, T.HypercallEvent(5, "v", "increase", "granted", "S", 1, 2)),
            (T.HYPERCALL, T.HypercallEvent(6, "v", "decrease", "dropped", 7, 0, 0)),
        ]
        reader = TraceReader(record(events))
        assert list(reader.events()) == events

    def test_nested_tuple_payloads(self):
        events = [
            (
                T.FAULT_INJECTED,
                T.FaultInjectedEvent(1, "vm_churn", ("c0", "boot", 1, 2, 3)),
            ),
            (
                T.FAULT_INJECTED,
                T.FaultInjectedEvent(2, "surge", ("vm1", 3.5, (1, "n"), True)),
            ),
        ]
        reader = TraceReader(record(events))
        assert list(reader.events()) == events

    def test_time_must_not_go_backwards_is_not_required(self):
        """Deltas are signed: out-of-order stamps still round-trip."""
        events = [
            (T.ENQUEUE, T.EnqueueEvent(100, "a", None, "t", 0, "local")),
            (T.ENQUEUE, T.EnqueueEvent(50, "a", None, "t", 1, "local")),
        ]
        assert list(TraceReader(record(events)).events()) == events

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "t.rtvt")
        writer = TraceWriter(path, header={"n": 1})
        for kind, event in sample_events():
            writer.write_event(kind, event)
        assert writer.close() is None
        reader = TraceReader(path)
        assert list(reader.events()) == sample_events()


class TestSeek:
    def test_checkpoint_seek_matches_full_scan(self):
        many = [
            (T.ENQUEUE, T.EnqueueEvent(i * 10, f"vm{i % 7}", None, "t", i, "local"))
            for i in range(3 * CHECKPOINT_EVERY)
        ]
        reader = TraceReader(record(many))
        assert len(reader.checkpoints) >= 2
        start = CHECKPOINT_EVERY * 10 + 5
        want = [(k, e) for k, e in many if e.time >= start]
        assert list(reader.events(start_time=start)) == want

    def test_start_time_filter_without_checkpoints(self):
        events = sample_events()
        reader = TraceReader(record(events))
        got = list(reader.events(start_time=20))
        assert got == [(k, e) for k, e in events if e.time >= 20]


class TestRecorder:
    def test_recorder_streams_bus_events(self):
        bus = TelemetryBus()
        recorder = TraceRecorder(header={"h": 1})
        recorder.attach(bus)
        bus.publish(T.ENQUEUE, T.EnqueueEvent(1, "vm", None, "t", 0, "local"))
        bus.publish(T.JOB_LATENCY, T.JobLatencyEvent(2, "t", 0, 9))
        recorder.detach()
        bus.publish(T.ENQUEUE, T.EnqueueEvent(3, "vm", None, "t", 1, "local"))  # dropped
        data = recorder.close()
        reader = TraceReader(data)
        assert reader.event_count == 2
        assert reader.meta == {}

    def test_detach_restores_zero_subscriber_bus(self):
        bus = TelemetryBus()
        recorder = TraceRecorder()
        recorder.attach(bus)
        recorder.detach()
        recorder.close()
        assert not any(bus.has_subscribers(kind) for kind in T.ALL_KINDS)


class TestMerge:
    def test_merge_is_byte_stable(self):
        part_a = record(sample_events())
        part_b = record(sample_events()[:5])
        merged1 = merge_traces([("a", part_a), ("b", part_b)], header={"m": 1})
        merged2 = merge_traces([("a", part_a), ("b", part_b)], header={"m": 1})
        assert merged1 == merged2
        reader = TraceReader(merged1)
        assert reader.event_count == len(sample_events()) + 5
        assert [s["label"] for s in reader.sections] == ["a", "b"]

    def test_merge_order_changes_hash(self):
        part_a = record(sample_events())
        part_b = record(sample_events()[:5])
        ab = TraceReader(merge_traces([("a", part_a), ("b", part_b)]))
        ba = TraceReader(merge_traces([("b", part_b), ("a", part_a)]))
        assert ab.trace_hash != ba.trace_hash

    def test_merged_trace_iterates_all_parts(self):
        part = record(sample_events())
        merged = merge_traces([("x", part), ("y", part)])
        got = list(TraceReader(merged).events())
        assert got == sample_events() * 2

    def test_section_counts_accumulate(self):
        part = record(sample_events())
        reader = TraceReader(merge_traces([("x", part), ("y", part)]))
        assert reader.counts[T.ENQUEUE] == 2

    def test_unknown_magic_rejected(self):
        with pytest.raises(ValueError):
            TraceReader(b"NOPE" + b"\x00" * 32)
