"""Unit tests for the simulator self-profiler."""

from repro.simcore.engine import Engine
from repro.telemetry import SimProfiler, TelemetryBus, profile_scope
from repro.telemetry import events as T
from repro.telemetry.profile import ANONYMOUS_PHASE


def _publish_n(bus, n):
    for i in range(n):
        bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(i, "a", i))


class TestBusProfiling:
    def test_counts_publishes_and_deliveries(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(T.JOB_COMPLETE, seen.append)
        bus.subscribe(T.JOB_COMPLETE, lambda e: None)
        profiler = SimProfiler().install(bus=bus)
        _publish_n(bus, 3)
        profiler.uninstall()
        snap = profiler.snapshot()
        record = snap["events"][T.JOB_COMPLETE]
        assert record["publishes"] == 3
        assert record["deliveries"] == 6
        assert record["wall_s"] >= 0.0
        assert len(seen) == 3

    def test_zero_subscriber_publishes_not_recorded(self):
        bus = TelemetryBus()
        profiler = SimProfiler().install(bus=bus)
        _publish_n(bus, 5)  # nobody listening: the fast path returns early
        profiler.uninstall()
        assert profiler.snapshot()["events"] == {}

    def test_uninstall_detaches_the_hook(self):
        bus = TelemetryBus()
        bus.subscribe(T.JOB_COMPLETE, lambda e: None)
        profiler = SimProfiler().install(bus=bus)
        profiler.uninstall()
        _publish_n(bus, 2)
        assert profiler.snapshot()["events"] == {}


class TestEnginePhases:
    def test_phases_group_by_name_prefix(self):
        engine = Engine()
        engine.after(10, lambda: None, name="release:vm0.rta0")
        engine.after(10, lambda: None, name="release:vm0.rta1")
        engine.after(20, lambda: None, name="tick")
        engine.after(30, lambda: None)
        profiler = SimProfiler().install(engine=engine)
        engine.run_until(100)
        profiler.uninstall()
        phases = profiler.snapshot()["phases"]
        assert phases["release"]["events"] == 2
        assert phases["tick"]["events"] == 1
        # Unnamed events fall back to the callback's __name__.
        assert phases["<lambda>"]["events"] == 1

    def test_empty_phase_name_buckets_as_anonymous(self):
        profiler = SimProfiler()
        profiler.record_phase("", 0.0)
        assert profiler.snapshot()["phases"][ANONYMOUS_PHASE]["events"] == 1

    def test_uninstalled_engine_records_nothing(self):
        engine = Engine()
        engine.after(10, lambda: None, name="tick")
        profiler = SimProfiler()
        engine.run_until(100)
        assert profiler.snapshot()["phases"] == {}


class TestScopeAndOutput:
    def test_profile_scope_installs_and_restores(self):
        engine = Engine()
        bus = TelemetryBus()
        bus.subscribe(T.JOB_COMPLETE, lambda e: None)
        with profile_scope(engine=engine, bus=bus) as profiler:
            engine.after(5, lambda: None, name="tick")
            engine.run_until(10)
            _publish_n(bus, 1)
        assert engine._profile is None
        assert bus._profile is None
        snap = profiler.snapshot()
        assert snap["phases"]["tick"]["events"] == 1
        assert snap["events"][T.JOB_COMPLETE]["publishes"] == 1

    def test_summary_lists_hot_entries(self):
        bus = TelemetryBus()
        bus.subscribe(T.JOB_COMPLETE, lambda e: None)
        with profile_scope(bus=bus) as profiler:
            _publish_n(bus, 4)
        text = profiler.summary()
        assert T.JOB_COMPLETE in text
        assert "4 pubs" in text

    def test_export_profile_writes_sorted_json(self, tmp_path):
        import json

        from repro.report.export import export_profile

        bus = TelemetryBus()
        bus.subscribe(T.JOB_COMPLETE, lambda e: None)
        with profile_scope(bus=bus) as profiler:
            _publish_n(bus, 2)
        path = tmp_path / "profile.json"
        written = export_profile(profiler, str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == written
        assert on_disk["events"][T.JOB_COMPLETE]["publishes"] == 2

    def test_export_profile_requires_json_suffix(self, tmp_path):
        import pytest

        from repro.report.export import export_profile
        from repro.simcore.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            export_profile(SimProfiler(), str(tmp_path / "profile.txt"))
