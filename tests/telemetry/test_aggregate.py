"""Unit tests for the streaming aggregators and their snapshot merges."""

import json
from fractions import Fraction

import pytest

from repro.metrics.percentiles import tail_summary
from repro.telemetry import (
    BandwidthAggregator,
    LatencyAggregator,
    MissRatioAggregator,
    OnlineStats,
    StandardTelemetry,
    TailAggregator,
    TelemetryBus,
)
from repro.telemetry import events as T


def canonical(snapshot) -> str:
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


class TestOnlineStats:
    def test_running_summary(self):
        stats = OnlineStats()
        for v in (3.0, 1.0, 2.0):
            stats.add(v)
        assert stats.count == 3
        assert stats.total == 6.0
        assert stats.min == 1.0
        assert stats.max == 3.0
        assert stats.mean == 2.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().mean

    def test_merge_skips_empty_shards(self):
        full = OnlineStats()
        full.add(5.0)
        merged = OnlineStats.merge([OnlineStats().snapshot(), full.snapshot()])
        assert merged.count == 1
        assert merged.min == merged.max == 5.0


class TestTailAggregator:
    def test_exact_matches_percentiles_module(self):
        samples = [7.0, 1.0, 9.0, 3.0, 3.0, 8.0, 2.0]
        tail = TailAggregator(mode="exact")
        for v in samples:
            tail.add(v)
        assert tail.tail_summary() == tail_summary(samples)
        assert tail.percentile(50) == sorted(samples)[len(samples) // 2]

    def test_exact_merge_is_byte_identical_to_single_stream(self):
        samples = [float(v) for v in (5, 1, 4, 1, 5, 9, 2, 6, 5, 3)]
        whole = TailAggregator(mode="exact")
        for v in samples:
            whole.add(v)
        shards = []
        for chunk in (samples[:3], samples[3:4], samples[4:]):
            shard = TailAggregator(mode="exact")
            for v in chunk:
                shard.add(v)
            shards.append(shard.snapshot())
        merged = TailAggregator.merge(shards)
        assert canonical(merged.snapshot()) == canonical(whole.snapshot())

    def test_reservoir_bounds_memory(self):
        tail = TailAggregator(mode="reservoir", capacity=16, seed=3)
        for v in range(1000):
            tail.add(float(v))
        assert len(tail) == 16
        assert tail.seen == 1000

    def test_reservoir_is_deterministic_per_seed(self):
        def run(seed):
            tail = TailAggregator(mode="reservoir", capacity=8, seed=seed)
            for v in range(200):
                tail.add(float(v))
            return tail.snapshot()

        assert canonical(run(7)) == canonical(run(7))
        assert canonical(run(7)) != canonical(run(8))

    def test_reservoir_merge_forces_reservoir(self):
        exact = TailAggregator(mode="exact")
        exact.add(1.0)
        res = TailAggregator(mode="reservoir", capacity=4)
        for v in range(10):
            res.add(float(v))
        merged = TailAggregator.merge([exact.snapshot(), res.snapshot()])
        assert merged.mode == "reservoir"
        assert merged.seen == 11
        assert len(merged) <= 4

    def test_invalid_mode_and_capacity(self):
        with pytest.raises(ValueError):
            TailAggregator(mode="bogus")
        with pytest.raises(ValueError):
            TailAggregator(mode="reservoir", capacity=0)


class TestMissRatioAggregator:
    def _hit(self, time, task):
        return T.DeadlineHitEvent(time, task, 0, 0, time)

    def _miss(self, time, task):
        return T.DeadlineMissEvent(time, task, 0, 0, time - 1, 1)

    def test_counts_from_bus(self):
        bus = TelemetryBus()
        agg = MissRatioAggregator().attach(bus)
        bus.publish(T.DEADLINE_HIT, self._hit(10, "a"))
        bus.publish(T.DEADLINE_HIT, self._hit(20, "a"))
        bus.publish(T.DEADLINE_MISS, self._miss(30, "a"))
        bus.publish(T.DEADLINE_MISS, self._miss(40, "b"))
        assert agg.decided() == 4
        assert agg.decided("a") == 3
        assert agg.miss_ratio() == 0.5
        assert agg.miss_ratio("a") == pytest.approx(1 / 3)
        assert agg.miss_ratio("b") == 1.0

    def test_empty_ratio_is_zero(self):
        agg = MissRatioAggregator()
        assert agg.miss_ratio() == 0.0
        assert agg.miss_ratio("nope") == 0.0
        assert agg.decided() == 0

    def test_detach_stops_counting(self):
        bus = TelemetryBus()
        agg = MissRatioAggregator().attach(bus)
        agg.detach()
        bus.publish(T.DEADLINE_HIT, self._hit(10, "a"))
        assert agg.decided() == 0
        assert not bus.has_subscribers(T.DEADLINE_HIT)

    def test_merge_sums_counts(self):
        a, b = MissRatioAggregator(), MissRatioAggregator()
        a.per_task["t"] = [2, 1]
        b.per_task["t"] = [1, 0]
        b.per_task["u"] = [0, 3]
        merged = MissRatioAggregator.merge([a.snapshot(), b.snapshot()])
        assert merged.per_task == {"t": [3, 1], "u": [0, 3]}


class TestLatencyAggregator:
    def test_streams_usec_from_latency_events(self):
        bus = TelemetryBus()
        agg = LatencyAggregator().attach(bus)
        latencies_ns = [5_000, 1_000, 3_000, 3_000]
        for i, ns in enumerate(latencies_ns):
            bus.publish(T.JOB_LATENCY, T.JobLatencyEvent(100 + i, "t", i, ns))
        assert agg.stats.count == 4
        assert agg.mean_usec() == 3.0
        assert agg.tail_usec() == tail_summary([5.0, 1.0, 3.0, 3.0])

    def test_merge_equals_single_stream(self):
        latencies = list(range(1, 50))
        whole = LatencyAggregator()
        for ns in latencies:
            whole._on_latency(T.JobLatencyEvent(0, "t", 0, ns * 1000))
        shards = []
        for chunk in (latencies[:10], latencies[10:]):
            shard = LatencyAggregator()
            for ns in chunk:
                shard._on_latency(T.JobLatencyEvent(0, "t", 0, ns * 1000))
            shards.append(shard.snapshot())
        merged = LatencyAggregator.merge(shards)
        assert canonical(merged.snapshot()) == canonical(whole.snapshot())


class TestBandwidthAggregator:
    def test_accumulates_and_tracks_grants(self):
        bus = TelemetryBus()
        agg = BandwidthAggregator().attach(bus)
        bus.publish(T.CPU_ACCOUNT, T.CpuAccountEvent(10, "v1", 1, 0, 400))
        bus.publish(T.CPU_ACCOUNT, T.CpuAccountEvent(20, "v1", 1, 0, 100))
        bus.publish(T.VCPU_PARAMS, T.VcpuParamsEvent(5, "v1", 1, 250, 1000))
        bus.publish(T.VCPU_PARAMS, T.VcpuParamsEvent(6, "v2", 2, 900, 1000))
        assert agg.consumed_ns == {"v1": 500}
        assert agg.granted == {"v1": Fraction(1, 4), "v2": Fraction(9, 10)}
        assert agg.consumed_bandwidth("v1", 1000) == Fraction(1, 2)
        assert agg.consumed_bandwidth("v2", 1000) == 0
        # v2 was granted 0.9 but consumed nothing; v1 under-claims.
        assert agg.over_claimers(1000, slack=0.1) == ["v2"]

    def test_zero_period_grants_zero(self):
        agg = BandwidthAggregator()
        agg._on_params(T.VcpuParamsEvent(0, "v", 1, 100, 0))
        assert agg.granted["v"] == 0

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(ValueError):
            BandwidthAggregator().consumed_bandwidth("v", 0)

    def test_merge_sums_consumption_last_grant_wins(self):
        a, b = BandwidthAggregator(), BandwidthAggregator()
        a.consumed_ns["v"] = 100
        a.granted["v"] = Fraction(1, 4)
        b.consumed_ns["v"] = 50
        b.granted["v"] = Fraction(1, 2)
        merged = BandwidthAggregator.merge([a.snapshot(), b.snapshot()])
        assert merged.consumed_ns == {"v": 150}
        assert merged.granted == {"v": Fraction(1, 2)}


class TestStandardTelemetry:
    def _feed(self, bus, latencies_ns):
        for i, ns in enumerate(latencies_ns):
            kind = T.DEADLINE_HIT if ns < 4000 else T.DEADLINE_MISS
            if kind == T.DEADLINE_HIT:
                bus.publish(kind, T.DeadlineHitEvent(i, "t", i, 0, i))
            else:
                bus.publish(kind, T.DeadlineMissEvent(i, "t", i, 0, i, 1))
            bus.publish(T.JOB_LATENCY, T.JobLatencyEvent(i, "t", i, ns))
            bus.publish(T.CPU_ACCOUNT, T.CpuAccountEvent(i, "v", 1, 0, ns))

    def test_snapshot_is_json_able_and_merge_matches_single_stream(self):
        latencies = [1_000, 5_000, 2_000, 7_000, 3_000, 500]
        whole_bus = TelemetryBus()
        whole = StandardTelemetry(whole_bus)
        self._feed(whole_bus, latencies)
        json.dumps(whole.snapshot())  # must not raise

        shard_snaps = []
        for chunk in (latencies[:2], latencies[2:]):
            bus = TelemetryBus()
            telem = StandardTelemetry(bus)
            self._feed(bus, chunk)
            shard_snaps.append(telem.snapshot())
        merged = StandardTelemetry.merge_snapshots(shard_snaps)
        assert canonical(merged) == canonical(whole.snapshot())

    def test_detach_releases_every_kind(self):
        bus = TelemetryBus()
        StandardTelemetry(bus).detach()
        for kind in (
            T.DEADLINE_HIT,
            T.DEADLINE_MISS,
            T.JOB_LATENCY,
            T.CPU_ACCOUNT,
            T.VCPU_PARAMS,
        ):
            assert not bus.has_subscribers(kind)

    def test_merge_of_empty_shards_is_empty(self):
        bus = TelemetryBus()
        empty = StandardTelemetry(bus).snapshot()
        merged = StandardTelemetry.merge_snapshots([empty, empty])
        assert canonical(merged) == canonical(empty)
