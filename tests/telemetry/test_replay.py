"""Tests for what-if replay: stimulus reconstruction from traces.

A recorded trace must replay bit-exactly under the same scheduler (rows
and trace hash identical), and replaying the *same* recorded stimulus
under a different scheduler is the what-if experiment the flight
recorder exists for: the diff between the two traces localizes exactly
where and how the schedulers part ways.
"""

import pytest

from repro.simcore.time import sec
from repro.telemetry.diff import diff_traces
from repro.telemetry.record import TraceReader
from repro.telemetry.replay import (
    canonical_scheduler,
    record_robustness_case,
    record_scenario,
    replay_trace,
)

SEED = 11


def overloadable_spec():
    """Feasible under RTVirt; the background VM starves RTAs on Credit.

    RTVirt admission control rejects genuinely overloaded specs, so
    overload is induced scheduler-side instead: the background VM only
    gets slack under RTVirt but competes round-robin under Credit.
    """
    return {
        "system": {"type": "rtvirt", "pcpus": 1, "slack_us": 0},
        "duration_s": 2,
        "seed": 7,
        "vms": [
            {
                "name": "vm1",
                "tasks": [
                    {
                        "name": "sp1",
                        "slice_ms": 2,
                        "period_ms": 10,
                        "kind": "sporadic",
                        "min_interarrival_ms": 10,
                        "max_interarrival_ms": 25,
                    },
                    {"name": "p1", "slice_ms": 2, "period_ms": 10},
                ],
            },
            {
                "name": "vm2",
                "tasks": [
                    {
                        "name": "sp2",
                        "slice_ms": 2,
                        "period_ms": 12,
                        "kind": "sporadic",
                        "min_interarrival_ms": 12,
                        "max_interarrival_ms": 30,
                    },
                    {"name": "p2", "slice_ms": 2, "period_ms": 15},
                ],
            },
            {"name": "bg", "background": True, "processes": 2},
        ],
    }


class TestSameSchedulerRoundTrip:
    @pytest.mark.parametrize(
        "fault,scheduler",
        [
            ("pcpu_fail", "RTVirt"),
            ("vm_churn", "Credit"),
            ("surge", "RT-Xen"),
        ],
    )
    def test_robustness_cell_replays_exactly(self, fault, scheduler):
        recorded = record_robustness_case(fault, scheduler, sec(1), SEED)
        result = replay_trace(recorded.data, record=True)
        assert result.scheduler == scheduler
        assert result.rows_match()
        assert result.rows == recorded.rows
        replay_reader = result.reader()
        assert (
            replay_reader.trace_hash == TraceReader(recorded.data).trace_hash
        )

    def test_scenario_replays_exactly(self):
        recorded = record_scenario(overloadable_spec(), name="xsched")
        result = replay_trace(recorded.data, record=True)
        assert result.rows_match()
        assert (
            result.reader().trace_hash == TraceReader(recorded.data).trace_hash
        )


class TestWhatIfReplay:
    @pytest.fixture(scope="class")
    def recorded(self):
        return record_scenario(overloadable_spec(), name="xsched")

    def test_credit_replay_diverges_with_miss_deltas(self, recorded):
        """Credit starves the RTAs the RTVirt recording kept feasible."""
        result = replay_trace(recorded.data, scheduler="Credit", record=True)
        diff = diff_traces(TraceReader(recorded.data), result.reader())
        assert not diff.identical
        assert diff.divergence_index is not None
        assert diff.event_a is not None and diff.event_b is not None
        deltas = {row["task"]: row for row in diff.task_deltas}
        assert set(deltas) == {"sp1", "sp2", "p1", "p2"}
        # Same stimulus: release counts must match event for event.
        for row in deltas.values():
            assert row["released_a"] == row["released_b"]
        # The recording had no misses; Credit must introduce some on
        # every task — the headline what-if result.
        for row in deltas.values():
            assert row["missed_a"] == 0
            assert row["miss_delta"] > 0

    def test_rtxen_replay_diverges_but_keeps_deadlines(self, recorded):
        """RT-Xen schedules differently yet misses nothing extra."""
        result = replay_trace(recorded.data, scheduler="RT-Xen", record=True)
        diff = diff_traces(TraceReader(recorded.data), result.reader())
        assert not diff.identical
        assert diff.divergence_index is not None
        for row in diff.task_deltas:
            assert row["miss_delta"] == 0

    def test_robustness_what_if_under_credit(self):
        recorded = record_robustness_case("pcpu_fail", "RTVirt", sec(1), SEED)
        result = replay_trace(recorded.data, scheduler="Credit", record=True)
        diff = diff_traces(TraceReader(recorded.data), result.reader())
        assert diff.divergence_index is not None
        worst = max(diff.task_deltas, key=lambda row: row["miss_delta"])
        assert worst["miss_delta"] > 0


class TestReplayErrors:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            canonical_scheduler("bogus")

    def test_replay_rejects_unknown_scheduler(self):
        recorded = record_robustness_case("pcpu_fail", "RTVirt", sec(1), SEED)
        with pytest.raises(ValueError):
            replay_trace(recorded.data, scheduler="bogus")
