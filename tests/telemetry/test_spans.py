"""Unit tests for causal span stitching and the interval tiling."""

import pytest

from repro.telemetry import SpanBuilder, TelemetryBus
from repro.telemetry import events as T
from repro.telemetry.spans import (
    clip_intervals,
    merge_intervals,
    subtract_intervals,
    total,
)


class _Costs:
    def __init__(self, migration_ns=0):
        self.migration_ns = migration_ns


class _Engine:
    def __init__(self, now=0):
        self.now = now


class _StubMachine:
    """Just enough machine surface for SpanBuilder.attach()."""

    def __init__(self, migration_ns=0):
        self.bus = TelemetryBus()
        self.costs = _Costs(migration_ns)
        self.engine = _Engine()


class TestIntervalHelpers:
    def test_merge_coalesces_and_sorts(self):
        assert merge_intervals([(5, 7), (1, 3), (2, 4), (7, 7)]) == [
            (1, 4),
            (5, 7),
        ]

    def test_clip_bounds_and_merges(self):
        assert clip_intervals([(0, 5), (8, 12)], 3, 10) == [(3, 5), (8, 10)]
        assert clip_intervals([(0, 5)], 5, 10) == []

    def test_subtract_splits_base(self):
        assert subtract_intervals([(0, 10)], [(2, 4), (6, 8)]) == [
            (0, 2),
            (4, 6),
            (8, 10),
        ]
        assert subtract_intervals([(0, 10)], [(0, 10)]) == []

    def test_clip_plus_subtract_partition_the_base(self):
        base = [(0, 100)]
        cut = [(10, 30), (50, 60)]
        inside = clip_intervals(cut, 0, 100)
        outside = subtract_intervals(base, inside)
        assert total(inside) + total(outside) == total(base)


def _release(bus, time, task, job, deadline, vcpu="v0"):
    bus.publish(
        T.JOB_RELEASE,
        T.JobReleaseEvent(time, "vm0", vcpu, task, job, time, deadline),
    )
    bus.publish(
        T.ENQUEUE, T.EnqueueEvent(time, "vm0", vcpu, task, job, "local")
    )


def _switch(bus, time, pcpu, vcpu, migrated=False):
    bus.publish(
        T.CONTEXT_SWITCH, T.ContextSwitchEvent(time, pcpu, vcpu, migrated)
    )


def _segment(bus, start, end, task, pcpu=0, vcpu="v0"):
    bus.publish(
        T.SEGMENT_END, T.SegmentEndEvent(end, pcpu, vcpu, task, start, end)
    )


class TestSpanBuilder:
    def test_tiles_window_into_wait_run_preempted(self):
        machine = _StubMachine()
        builder = SpanBuilder().attach(machine)
        bus = machine.bus
        _release(bus, 0, "a", 0, deadline=100)
        _switch(bus, 0, 0, "v0")  # carrier on CPU: 0..40
        _segment(bus, 10, 40, "a")
        _switch(bus, 40, 0, None)  # carrier off CPU: 40..60
        _switch(bus, 60, 0, "v0")
        _segment(bus, 60, 80, "a")
        bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(80, "a", 0))
        bus.publish(T.DEADLINE_HIT, T.DeadlineHitEvent(80, "a", 0, 0, 100))
        builder.finalize(end_time=200)
        (span,) = builder.spans
        assert span.completed_at == 80
        assert not span.missed and not span.incomplete
        assert span.buckets == {
            "run": 50,
            "wait": 10,
            "preempted": 20,
            "migrating": 0,
        }
        assert sum(span.buckets.values()) == span.response_time == 80
        assert span.enqueue_time == 0 and span.enqueue_scope == "local"

    def test_miss_event_marks_span(self):
        machine = _StubMachine()
        builder = SpanBuilder().attach(machine)
        bus = machine.bus
        _release(bus, 0, "a", 0, deadline=70)
        _switch(bus, 0, 0, "v0")
        _segment(bus, 0, 80, "a")
        bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(80, "a", 0))
        bus.publish(
            T.DEADLINE_MISS, T.DeadlineMissEvent(80, "a", 0, 0, 70, 10)
        )
        builder.finalize(end_time=100)
        (span,) = builder.spans
        assert span.missed and span.tardiness == 10 and span.lateness == 10

    def test_abandoned_span_counts_as_miss(self):
        machine = _StubMachine()
        builder = SpanBuilder().attach(machine)
        _release(machine.bus, 0, "a", 0, deadline=50)
        builder.finalize(end_time=100)
        (span,) = builder.spans
        assert span.incomplete and span.missed
        assert span.end == 100 and span.lateness == 50
        # Never ran, carrier never on CPU: the whole window is preempted.
        assert span.buckets["run"] == 0
        assert sum(span.buckets.values()) == 100

    def test_migration_window_classifies_gap(self):
        machine = _StubMachine(migration_ns=5)
        builder = SpanBuilder().attach(machine)
        bus = machine.bus
        _release(bus, 0, "a", 0, deadline=100)
        _switch(bus, 0, 0, "v0")
        _segment(bus, 0, 20, "a")
        _switch(bus, 20, 0, None)
        _switch(bus, 20, 1, "v0", migrated=True)
        bus.publish(
            T.MIGRATION, T.MigrationEvent(20, "v0", 0, 1, "host")
        )
        _segment(bus, 25, 40, "a", pcpu=1)
        bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(40, "a", 0))
        builder.finalize(end_time=50)
        (span,) = builder.spans
        assert span.buckets == {
            "run": 35,
            "migrating": 5,
            "preempted": 0,
            "wait": 0,
        }

    def test_fifo_attribution_across_two_jobs(self):
        machine = _StubMachine()
        builder = SpanBuilder().attach(machine)
        bus = machine.bus
        _switch(bus, 0, 0, "v0")
        _release(bus, 0, "a", 0, deadline=100)
        _release(bus, 10, "a", 1, deadline=110)
        _segment(bus, 0, 30, "a")  # job 0 runs
        bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(30, "a", 0))
        _segment(bus, 30, 50, "a")  # job 1 runs
        bus.publish(T.JOB_COMPLETE, T.JobCompleteEvent(50, "a", 1))
        builder.finalize(end_time=60)
        first, second = builder.spans
        assert first.buckets["run"] == 30
        assert second.buckets["run"] == 20
        assert second.buckets["wait"] == 20  # queued behind job 0
        for span in builder.spans:
            assert sum(span.buckets.values()) == span.response_time

    def test_depleted_and_throttled_windows_tracked(self):
        machine = _StubMachine()
        builder = SpanBuilder().attach(machine)
        bus = machine.bus
        bus.publish(T.BUDGET_DEPLETE, T.BudgetDepleteEvent(10, "v0", 0))
        bus.publish(
            T.BUDGET_REPLENISH, T.BudgetReplenishEvent(30, "v0", 5, 5)
        )
        bus.publish(
            T.ADMISSION_DECISION,
            T.AdmissionDecisionEvent(40, "host", "shed", "v1", False, "revoked"),
        )
        bus.publish(
            T.ADMISSION_DECISION,
            T.AdmissionDecisionEvent(70, "host", "commit", "v1", True, "8/10"),
        )
        builder.finalize(end_time=100)
        assert builder.depleted_windows("v0") == [(10, 30)]
        assert builder.throttled_windows("v1") == [(40, 70)]

    def test_detach_stops_consuming(self):
        machine = _StubMachine()
        builder = SpanBuilder().attach(machine)
        builder.detach()
        _release(machine.bus, 0, "a", 0, deadline=10)
        assert builder.spans == []
        assert not machine.bus.has_subscribers(T.JOB_RELEASE)

    def test_finalize_requires_end_time_when_unattached(self):
        with pytest.raises(ValueError):
            SpanBuilder().finalize()


class TestSystemIntegration:
    def test_real_run_produces_exact_spans(self):
        from repro.scenario import run_scenario
        from repro.telemetry.probe import _probe_spec

        holder = {}

        def attach(system):
            holder["spans"] = SpanBuilder().attach(system.machine)

        result = run_scenario(
            _probe_spec("rtvirt", seed=1, duration_s=0.5), attach=attach
        )
        builder = holder["spans"].finalize(result.duration_ns)
        assert builder.spans, "deadline-bearing jobs must produce spans"
        for span in builder.spans:
            assert sum(span.buckets.values()) == span.response_time
        completed = [s for s in builder.spans if not s.incomplete]
        assert completed and all(s.buckets["run"] > 0 for s in completed)
