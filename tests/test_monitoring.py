"""Tests for usage monitoring and the idle-CPU tax (§6 extensions)."""

from fractions import Fraction

import pytest

from repro.core.system import RTVirtSystem
from repro.guest.task import Task
from repro.host.costs import ZERO_COSTS
from repro.monitoring import IdleCpuTax, UsageMonitor
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import msec, sec
from repro.workloads.periodic import PeriodicDriver


def build_system(honest_bw=(2, 10), claimed_bw=(6, 10)):
    """One honest VM (uses its grant) and one over-claimer (claims 0.6,
    uses 0.1)."""
    system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0)
    honest_vm = system.create_vm("honest")
    honest = Task("honest.t", msec(honest_bw[0]), msec(honest_bw[1]))
    honest_vm.register_task(honest)
    PeriodicDriver(system.engine, honest_vm, honest).start()

    greedy_vm = system.create_vm("greedy")
    greedy = Task("greedy.t", msec(claimed_bw[0]), msec(claimed_bw[1]))
    greedy_vm.register_task(greedy)
    # The greedy task claims 0.6 but only ever runs 1 ms per 10 ms.
    driver = PeriodicDriver(system.engine, greedy_vm, greedy)
    original = driver._release

    def light_release():
        if driver._stopped:
            return
        greedy_vm.release_job(greedy, now=system.engine.now, work=msec(1))
        driver._event = system.engine.after(greedy.period_ns, light_release)

    driver._release = light_release
    driver.start()
    return system, honest_vm, greedy_vm


class TestUsageMonitor:
    def test_idle_ratio_separates_honest_from_greedy(self):
        system, honest_vm, greedy_vm = build_system()
        monitor = UsageMonitor(system, window_ns=msec(500)).start()
        system.run(sec(3))
        assert monitor.idle_ratio(honest_vm.vcpus[0]) < 0.1
        assert monitor.idle_ratio(greedy_vm.vcpus[0]) > 0.5

    def test_over_claimers_listed(self):
        system, honest_vm, greedy_vm = build_system()
        monitor = UsageMonitor(system, window_ns=msec(500)).start()
        system.run(sec(3))
        assert monitor.over_claimers(threshold=0.5) == [greedy_vm.vcpus[0].uid]

    def test_samples_cover_windows(self):
        system, honest_vm, _ = build_system()
        monitor = UsageMonitor(system, window_ns=msec(500)).start()
        system.run(sec(2))
        samples = monitor.samples[honest_vm.vcpus[0].uid]
        assert len(samples) >= 3
        assert all(s.window_end - s.window_start == msec(500) for s in samples)

    def test_invalid_window_rejected(self):
        system, _, _ = build_system()
        with pytest.raises(ConfigurationError):
            UsageMonitor(system, window_ns=0)

    def test_start_idempotent(self):
        system, _, _ = build_system()
        monitor = UsageMonitor(system, window_ns=msec(500)).start()
        monitor.start()
        system.run(sec(1))


class TestIdleCpuTax:
    def test_assessment_targets_greedy_only(self):
        system, honest_vm, greedy_vm = build_system()
        monitor = UsageMonitor(system, window_ns=msec(500)).start()
        system.run(sec(3))
        assessments = IdleCpuTax().assess(monitor)
        taxed = {a.vcpu.uid for a in assessments}
        assert greedy_vm.vcpus[0].uid in taxed
        assert honest_vm.vcpus[0].uid not in taxed

    def test_apply_reclaims_bandwidth(self):
        system, _, greedy_vm = build_system()
        monitor = UsageMonitor(system, window_ns=msec(500)).start()
        system.run(sec(3))
        before = system.total_rt_bandwidth
        tax = IdleCpuTax(tax_rate=1.0, protect_ratio=0.0)
        reclaimed = tax.apply(system, tax.assess(monitor))
        assert reclaimed > Fraction(1, 3)  # most of the greedy 0.6 claim
        assert system.total_rt_bandwidth == before - reclaimed

    def test_honest_workload_survives_taxation(self):
        system, honest_vm, greedy_vm = build_system()
        monitor = UsageMonitor(system, window_ns=msec(500)).start()
        system.run(sec(2))
        tax = IdleCpuTax(tax_rate=0.75, protect_ratio=0.1)
        tax.apply(system, tax.assess(monitor))
        system.run(sec(2))
        system.finalize()
        honest = honest_vm.rt_tasks[0]
        assert honest.stats.missed == 0

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            IdleCpuTax(tax_rate=1.5)
        with pytest.raises(ConfigurationError):
            IdleCpuTax(protect_ratio=1.0)

    def test_protect_ratio_shields_bursty(self):
        system, honest_vm, _ = build_system(honest_bw=(2, 10))
        monitor = UsageMonitor(system, window_ns=msec(500)).start()
        system.run(sec(2))
        # Idle ratio of the honest VM is ~0; a generous protect ratio
        # yields no assessment for it even with a 100% tax rate.
        tax = IdleCpuTax(tax_rate=1.0, protect_ratio=0.2)
        taxed = {a.vcpu.uid for a in tax.assess(monitor)}
        assert honest_vm.vcpus[0].uid not in taxed
