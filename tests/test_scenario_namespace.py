"""The two "scenario" namespaces must stay distinct and stable.

``repro.scenario`` is the declarative experiment runner;
``repro.faults.timeline`` (formerly ``repro.faults.scenario``) is the
fault-timeline DSL.  These tests pin the public import paths and the
deprecation shim left at the old module name.
"""

import importlib
import sys
import warnings

import pytest


def test_public_fault_dsl_path_is_the_package():
    from repro.faults import At, Every, Scenario
    from repro.faults.timeline import At as TAt
    from repro.faults.timeline import Every as TEvery
    from repro.faults.timeline import Scenario as TScenario

    assert (At, Every, Scenario) == (TAt, TEvery, TScenario)


def test_experiment_runner_namespace_is_unrelated():
    import repro.faults.timeline
    import repro.scenario

    assert repro.scenario is not repro.faults.timeline
    assert hasattr(repro.scenario, "run_scenario")
    assert not hasattr(repro.faults.timeline, "run_scenario")
    # The DSL's Scenario is not the experiment runner's entry point.
    assert repro.scenario.run_scenario is not repro.faults.timeline.Scenario


def _reset_shim_warning():
    """Forget that this process already warned (test isolation)."""
    from repro.faults import timeline

    sys.modules.pop("repro.faults.scenario", None)
    if hasattr(timeline, "_SCENARIO_SHIM_WARNED"):
        del timeline._SCENARIO_SHIM_WARNED


def test_old_module_path_warns_but_still_exports():
    _reset_shim_warning()
    with pytest.warns(DeprecationWarning, match="repro.faults.timeline"):
        shim = importlib.import_module("repro.faults.scenario")
    from repro.faults import timeline

    assert shim.At is timeline.At
    assert shim.Every is timeline.Every
    assert shim.Scenario is timeline.Scenario


def test_old_module_path_warns_exactly_once_per_process():
    # One warning per process: re-importing the cached module is silent,
    # and so is a *fresh* re-import after the module object is dropped
    # from sys.modules — the failure mode that made the parallel
    # runner's worker warm-up repeat the warning per work unit.
    _reset_shim_warning()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.import_module("repro.faults.scenario")
        importlib.import_module("repro.faults.scenario")
        sys.modules.pop("repro.faults.scenario", None)
        importlib.import_module("repro.faults.scenario")
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "repro.faults.timeline" in str(deprecations[0].message)


def test_new_module_path_does_not_warn():
    sys.modules.pop("repro.faults.timeline", None)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        importlib.import_module("repro.faults.timeline")
