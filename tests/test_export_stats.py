"""Tests for trace export and statistical helpers."""

import json

import pytest

from repro.metrics.stats import (
    bootstrap_percentile_ci,
    miss_ratio_upper_bound,
    wilson_interval,
)
from repro.report.export import export_chrome_trace, trace_to_chrome_events
from repro.simcore.errors import ConfigurationError
from repro.simcore.trace import Trace


def sample_trace():
    trace = Trace()
    trace.record_segment(0, "vm1.vcpu0", "t1", 0, 1_000_000)
    trace.record_segment(1, "vm2.vcpu0", "t2", 0, 2_000_000)
    trace.record_event(1_000_000, "switch", 0, "vm2.vcpu0", True)
    trace.record_event(2_000_000, "complete", "t2", 0)
    return trace


class TestChromeExport:
    def test_events_structure(self):
        events = trace_to_chrome_events(sample_trace())
        duration = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(duration) == 2
        assert len(instants) == 2
        assert len(meta) >= 3  # process + 2 thread names

    def test_times_in_microseconds(self):
        events = trace_to_chrome_events(sample_trace())
        seg = next(e for e in events if e["ph"] == "X" and e["name"] == "t1")
        assert seg["ts"] == 0.0 and seg["dur"] == 1000.0

    def test_migration_flagged(self):
        events = trace_to_chrome_events(sample_trace())
        assert any(e.get("name") == "migration" for e in events)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        count = export_chrome_trace(sample_trace(), str(path))
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
        assert data["displayTimeUnit"] == "ms"

    def test_extension_enforced(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_chrome_trace(sample_trace(), str(tmp_path / "trace.bin"))


class TestFaultTrack:
    def faulted_trace(self):
        trace = sample_trace()
        trace.record_event(500_000, "fault", "pcpu_fail", 1, "vm1.vcpu0")
        trace.record_event(1_500_000, "fault", "vm_churn", "churn0", "boot")
        return trace

    def test_fault_events_land_on_dedicated_track(self):
        from repro.report.export import FAULT_TRACK_TID

        events = trace_to_chrome_events(self.faulted_trace())
        faults = [e for e in events if e.get("cat") == "faults"]
        assert [e["name"] for e in faults] == ["fault:pcpu_fail", "fault:vm_churn"]
        assert all(e["tid"] == FAULT_TRACK_TID for e in faults)
        assert all(e["ph"] == "i" and e["s"] == "g" for e in faults)
        track_names = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["args"]["name"] == "faults"
        ]
        assert len(track_names) == 1
        assert track_names[0]["tid"] == FAULT_TRACK_TID

    def test_fault_detail_serialised(self):
        events = trace_to_chrome_events(self.faulted_trace())
        fail = next(e for e in events if e["name"] == "fault:pcpu_fail")
        assert fail["args"]["detail"] == ["1", "vm1.vcpu0"]
        assert fail["ts"] == 500.0  # 500_000 ns -> µs

    def test_no_fault_track_without_faults(self):
        events = trace_to_chrome_events(sample_trace())
        assert not any(
            e["ph"] == "M" and e.get("args", {}).get("name") == "faults"
            for e in events
        )

    def test_end_to_end_from_simulation(self, tmp_path):
        from repro.core.system import RTVirtSystem
        from repro.faults import At, PcpuFail, PcpuRecover, Scenario
        from repro.simcore.time import msec

        system = RTVirtSystem(pcpu_count=2, trace=Trace())
        Scenario(
            [At(msec(2), PcpuFail(1)), At(msec(4), PcpuRecover(1))]
        ).install(system)
        system.run(msec(10))
        events = trace_to_chrome_events(system.machine.trace)
        names = [e["name"] for e in events if e.get("cat") == "faults"]
        assert "fault:pcpu_fail" in names and "fault:pcpu_recover" in names


class TestStreamingExporter:
    """The streamed exporter must hold its invariants under a real,
    faulted, spans-enabled run — not just synthetic traces."""

    @pytest.fixture(scope="class")
    def faulted_run(self):
        from repro.experiments.robustness import run_robustness_case
        from repro.report.export import ChromeTraceExporter
        from repro.simcore.time import sec
        from repro.telemetry.spans import SpanBuilder

        holder = {}

        def attach(system):
            holder["exporter"] = ChromeTraceExporter().attach(
                system.machine.bus
            )
            holder["spans"] = SpanBuilder().attach(system.machine)

        run_robustness_case(
            "pcpu_fail",
            "RT-Xen",
            sec(1),
            seed=11,
            check_invariants=False,
            attach=attach,
        )
        return holder

    def test_written_json_parses(self, faulted_run, tmp_path):
        path = tmp_path / "trace.json"
        count = faulted_run["exporter"].write(str(path))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == count > 0

    def test_duration_events_ordered_and_disjoint_per_tid(self, faulted_run):
        per_tid = {}
        for event in faulted_run["exporter"].events():
            if event["ph"] == "X":
                per_tid.setdefault(event["tid"], []).append(event)
        assert per_tid, "a faulted run must execute something"
        for tid, rows in per_tid.items():
            cursor = None
            for row in rows:
                # Timestamps are float µs; compare in integer ns to dodge
                # the rounding noise the ns->µs division introduces.
                start = round(row["ts"] * 1000)
                end = round((row["ts"] + row["dur"]) * 1000)
                assert end > start
                if cursor is not None:
                    # Streamed in charge order: starts never go backwards
                    # and segments on one PCPU never overlap.
                    assert start >= cursor
                cursor = end

    def test_fault_rows_survive_spans_enabled_run(self, faulted_run):
        from repro.report.export import FAULT_TRACK_TID

        events = faulted_run["exporter"].events()
        fault_rows = [
            e
            for e in events
            if e.get("tid") == FAULT_TRACK_TID and e["ph"] == "i"
        ]
        assert fault_rows, "pcpu_fail must land on the fault track"
        assert any("pcpu_fail" in e["name"] for e in fault_rows)
        meta = [
            e
            for e in events
            if e["ph"] == "M" and e.get("tid") == FAULT_TRACK_TID
        ]
        assert meta and meta[0]["args"]["name"] == "faults"
        # And the span consumer on the same bus saw the run too.
        spans = faulted_run["spans"]
        assert spans.spans and spans.hypercall_fault_windows() == []


class TestWilson:
    def test_zero_misses_has_nonzero_upper_bound(self):
        lo, hi = wilson_interval(0, 4800)
        assert lo == 0.0
        assert 0.0 < hi < 0.002

    def test_upper_bound_shrinks_with_samples(self):
        assert miss_ratio_upper_bound(0, 10_000) < miss_ratio_upper_bound(0, 100)

    def test_interval_contains_point_estimate(self):
        lo, hi = wilson_interval(50, 1000)
        assert lo < 0.05 < hi

    def test_symmetric_at_half(self):
        lo, hi = wilson_interval(500, 1000)
        assert abs((0.5 - lo) - (hi - 0.5)) < 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)

    def test_higher_confidence_wider(self):
        assert (
            wilson_interval(10, 100, 0.99)[1] > wilson_interval(10, 100, 0.90)[1]
        )


class TestBootstrap:
    def test_ci_brackets_estimate(self):
        from repro.metrics.percentiles import percentile

        samples = list(range(1, 1001))
        lo, hi = bootstrap_percentile_ci(samples, 99.0, resamples=300)
        assert lo <= percentile(samples, 99.0) <= hi

    def test_deterministic_under_seed(self):
        samples = [float(x % 97) for x in range(500)]
        a = bootstrap_percentile_ci(samples, 95.0, resamples=200, seed=5)
        b = bootstrap_percentile_ci(samples, 95.0, resamples=200, seed=5)
        assert a == b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_percentile_ci([], 99.0)
