"""Extension benchmark — cross-layer I/O scheduling (paper §7).

Compares device-level FIFO, per-VM fair share, and cross-layer EDF with
reservations under bursty bulk contention.  The expected shape matches
the CPU-side story: only cross-layer information (reservations +
deadlines) controls the latency-critical tail.
"""

from repro.io import (
    BlockDevice,
    CrossLayerEDFIOScheduler,
    FairShareIOScheduler,
    FifoIOScheduler,
)
from repro.simcore.engine import Engine
from repro.simcore.time import msec

from .conftest import run_once

KB, MB = 1024, 1024 * 1024


def _run(scheduler):
    engine = Engine()
    device = BlockDevice(engine, bytes_per_second=200 * MB, scheduler=scheduler)
    latencies = []

    def bulk():
        if engine.now < msec(1900):
            for _ in range(4):
                device.submit("bulk", 1 * MB)
            engine.after(msec(24), bulk)

    def probe():
        if engine.now < msec(1900):
            device.submit(
                "latency",
                64 * KB,
                deadline=engine.now + msec(10),
                on_complete=lambda r: latencies.append(r.latency_ns / 1e6),
            )
            engine.after(msec(20), probe)

    engine.at(0, bulk)
    engine.at(0, probe)
    engine.run_until(msec(2000))
    return max(latencies), device.miss_count("latency"), len(latencies)


def run_comparison():
    xl = CrossLayerEDFIOScheduler(period_ns=msec(100))
    xl.reserve("latency", 4 * MB)
    return {
        "FIFO": _run(FifoIOScheduler()),
        "fair-share": _run(FairShareIOScheduler()),
        "cross-layer EDF": _run(xl),
    }


def test_io_cross_layer_extension(benchmark):
    results = run_once(benchmark, run_comparison)
    print()
    for name, (worst, misses, total) in results.items():
        print(f"{name:16s} worst {worst:6.2f} ms, misses {misses}/{total}")
        benchmark.extra_info[f"{name}_misses"] = misses
    assert results["cross-layer EDF"][1] == 0
    assert results["FIFO"][1] > 0
    assert results["cross-layer EDF"][0] < results["FIFO"][0]
