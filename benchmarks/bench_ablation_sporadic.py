"""Ablation — the sporadic worst-case deadline reservation (paper §3.3).

For sporadic RTAs the guest publishes the *worst-case* next deadline
(an arrival exactly one minimum inter-arrival after the previous one),
so DP-WRAP keeps reserving bandwidth even while the task idles — "the
only way to guarantee that the sporadic RTA can meet its deadline when
it arrives".  This ablation disables that publication (the host sees a
sporadic VCPU only after its job has already arrived) on a host that is
otherwise fully reserved by periodic load: reservations keep every
deadline, reactive scheduling misses.
"""

from repro.core.system import RTVirtSystem
from repro.guest.task import Task, TaskKind
from repro.simcore.rng import RandomStreams
from repro.simcore.time import msec, sec
from repro.workloads.periodic import PeriodicDriver
from repro.workloads.sporadic import SporadicDriver

from .conftest import run_once


def _pending_only_provider(vcpu):
    def provider(now):
        deadlines = []
        for task in vcpu.rt_tasks():
            if task.kind is TaskKind.SPORADIC:
                pending = task.earliest_pending_deadline()
                if pending is not None:
                    deadlines.append(pending)
            else:
                boundary = task.next_worst_case_deadline(now)
                if boundary is not None:
                    deadlines.append(boundary)
        return min(deadlines) if deadlines else None

    return provider


def run_variant(reserve_worst_case, duration_ns=sec(60), seed=13):
    from repro.host.costs import ZERO_COSTS

    streams = RandomStreams(seed)
    # Zero costs and zero slack isolate the reservation mechanism: the
    # host is exactly fully utilized (0.7 periodic + 0.3 sporadic).
    system = RTVirtSystem(pcpu_count=1, slack_ns=0, cost_model=ZERO_COSTS)
    # Periodic load that leaves exactly the sporadic task's share free.
    vm_p = system.create_vm("periodic", slack_ns=0)
    hog = Task("hog", msec(7), msec(10))
    vm_p.register_task(hog)
    PeriodicDriver(system.engine, vm_p, hog).start()

    # The sporadic task's deadline (4 ms) is shorter than the periodic
    # load's 10 ms boundaries, so without the worst-case publication no
    # global deadline falls inside an arrival's window.
    vm_s = system.create_vm("sporadic", slack_ns=0)
    task = Task("sp", int(msec(1.2)), msec(4), TaskKind.SPORADIC)
    vm_s.register_task(task)
    if not reserve_worst_case:
        # Reactive mode: no standing reservation for the sporadic VCPU and
        # no re-partition on arrival — the host learns of the job only at
        # the next natural global deadline.
        system.scheduler.repartition_on_wake = False
        system.shared_memory.map_vcpu(
            vm_s.vcpus[0], provider=_pending_only_provider(vm_s.vcpus[0])
        )
    SporadicDriver(
        system.engine,
        vm_s,
        task,
        streams.stream("arrivals"),
        min_interarrival_ns=msec(100),
        max_interarrival_ns=msec(400),
    ).start()
    system.run(duration_ns)
    system.finalize()
    return {
        "worst_case_reservation": reserve_worst_case,
        "sporadic_missed": task.stats.missed,
        "sporadic_met": task.stats.met,
        "periodic_missed": hog.stats.missed,
    }


def run_ablation():
    return [run_variant(True), run_variant(False)]


def test_ablation_sporadic_reservation(benchmark):
    rows = run_once(benchmark, run_ablation)
    print()
    for row in rows:
        mode = "worst-case reserved" if row["worst_case_reservation"] else "reactive"
        print(
            f"{mode:20s}: sporadic met {row['sporadic_met']}, "
            f"missed {row['sporadic_missed']}; periodic missed "
            f"{row['periodic_missed']}"
        )
        benchmark.extra_info[f"{mode}_missed"] = row["sporadic_missed"]
    reserved, reactive = rows
    assert reserved["sporadic_missed"] == 0
    assert reactive["sporadic_missed"] > reserved["sporadic_missed"]
