"""Figure 4 / Table 3 — dynamic video-streaming RTAs with online admission.

Paper: 54 RTAs over 10 minutes, 5 sessions with misses, worst 0.136%.
We run a compressed window; the acceptance bar is the same (worst
per-session miss ratio well under 1%).
"""

from repro.experiments.fig4_dynamic import run_fig4
from repro.simcore.time import sec

from .conftest import run_once


def test_fig4_dynamic_streaming(benchmark):
    result = run_once(benchmark, run_fig4, duration_ns=sec(120))
    print()
    print(result.summary())
    benchmark.extra_info["sessions"] = len(result.sessions)
    benchmark.extra_info["worst_miss_ratio"] = result.worst_miss_ratio
    assert result.worst_miss_ratio < 0.01
    assert result.total_released > 10_000
