"""Figure 3 — CPU bandwidth per RTA group: required / allocated / claimed.

Paper headlines: RT-Xen wastes ~0.7-1 CPU per group to CSA/DMPR
pessimism; RTVirt allocates ~7% less than RT-Xen's allocation and ~30-40%
less than its claim.
"""

from repro.experiments.fig3_bandwidth import run_fig3
from repro.metrics.bandwidth import (
    allocated_savings_percent,
    average_extra_cpu,
    claimed_savings_percent,
)

from .conftest import run_once


def test_fig3_bandwidth_requirements(benchmark):
    result = run_once(benchmark, run_fig3)
    print()
    print(result.summary())
    benchmark.extra_info["rtxen_wasted_cpus"] = average_extra_cpu(
        result.breakdowns, "rtxen"
    )
    benchmark.extra_info["allocated_savings_pct"] = allocated_savings_percent(
        result.breakdowns
    )
    benchmark.extra_info["claimed_savings_pct"] = claimed_savings_percent(
        result.breakdowns
    )
    for b in result.breakdowns:
        assert b.rta_required <= b.rtvirt < b.rtxen_allocated < b.rtxen_claimed
