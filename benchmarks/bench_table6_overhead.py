"""Tables 5-6 / §4.5 — scalability and scheduling overhead.

100 concurrent RTAs in the Multi-RTA (10 VMs x 10 RTAs, 20 VCPUs) and
Single-RTA (100 VMs, 100 VCPUs) shapes.  Paper: RTVirt runs both with
0.10% / 0.93% overhead and ≤0.007% misses; RT-Xen fits only 8 groups /
93 VMs on the same host.
"""

from repro.experiments.table6_overhead import run_table6
from repro.simcore.time import sec

from .conftest import run_once


def test_table6_scalability_overhead(benchmark):
    result = run_once(benchmark, run_table6, duration_ns=sec(5))
    print()
    print(result.summary())
    for run in result.runs:
        benchmark.extra_info[f"{run.scenario}_overhead_pct"] = run.overhead_percent
        benchmark.extra_info[f"{run.scenario}_miss_ratio"] = run.miss_ratio
        assert run.overhead_percent < 1.0
        assert run.miss_ratio < 0.001
    benchmark.extra_info["rtxen_multi_groups"] = result.rtxen_multi_capacity
    benchmark.extra_info["rtxen_single_vms"] = result.rtxen_single_capacity
    assert result.rtxen_multi_capacity < 10
    assert result.rtxen_single_capacity < 100
