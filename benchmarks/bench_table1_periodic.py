"""Table 1 / §4.2 — periodic RTA groups under RTVirt and RT-Xen.

The paper's result: both frameworks meet every deadline of every group.
"""

from repro.experiments.table1_periodic import run_table1
from repro.simcore.time import sec

from .conftest import run_once


def test_table1_periodic_groups(benchmark):
    result = run_once(benchmark, run_table1, duration_ns=sec(10))
    print()
    print(result.summary())
    benchmark.extra_info["total_missed"] = sum(r.missed for r in result.runs)
    assert result.all_deadlines_met()
