"""Ablation — the minimum global slice (paper §3.3: 250 µs).

DP-WRAP bounds overhead by refusing to cut slices shorter than a
minimum.  Sweeping it on a memcached-style workload (whose 500 µs
period is what drives slice frequency) shows the trade-off the paper
tuned: small minimums burn CPU on schedule() calls and context
switches; large minimums coarsen the partitioning until deadlines are
endangered.
"""

from repro.core.system import RTVirtSystem
from repro.simcore.rng import RandomStreams
from repro.simcore.time import sec, usec
from repro.workloads.background import add_background_vms
from repro.workloads.memcached import MemcachedService

from .conftest import run_once

MIN_SLICES_US = (50, 250, 1000, 5000)


def run_min_slice_sweep(duration_ns=sec(20)):
    rows = []
    for min_slice_us in MIN_SLICES_US:
        streams = RandomStreams(21)
        system = RTVirtSystem(
            pcpu_count=2, slack_ns=0, min_global_slice_ns=usec(min_slice_us)
        )
        vm = system.create_vm("mc", slack_ns=0)
        svc = MemcachedService(system.engine, vm, streams.stream("mc")).start()
        add_background_vms(system, 4)
        system.run(duration_ns)
        system.finalize()
        overhead = system.machine.metrics.overhead
        rows.append(
            {
                "min_slice_us": min_slice_us,
                "slices": system.scheduler.slices_computed,
                "overhead_pct": overhead.overhead_percent(
                    system.machine.total_cpu_time()
                ),
                "p999_us": svc.latency.p999_usec(),
            }
        )
    return rows


def test_ablation_min_global_slice(benchmark):
    rows = run_once(benchmark, run_min_slice_sweep)
    print()
    for row in rows:
        print(
            f"min slice {row['min_slice_us']:5d}µs: {row['slices']:7d} slices, "
            f"overhead {row['overhead_pct']:.3f}%, memcached p99.9 "
            f"{row['p999_us']:.1f}µs"
        )
        benchmark.extra_info[f"min_{row['min_slice_us']}us_overhead_pct"] = row[
            "overhead_pct"
        ]
    # Finer minimums mean more slices and more overhead.
    slices = [r["slices"] for r in rows]
    assert slices == sorted(slices, reverse=True)
    overheads = [r["overhead_pct"] for r in rows]
    assert overheads[0] >= overheads[-1]
    # All settings keep the lightly-loaded SLO in this scenario.
    assert all(r["p999_us"] < 500.0 for r in rows)
