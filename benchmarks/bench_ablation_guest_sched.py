"""Ablation — guest pEDF vs gEDF (paper §3.2's design argument).

The paper chose partitioned EDF in the guest because pinned tasks make
the VCPU parameters easy to derive and avoid intra-guest migration
overhead, claiming no efficiency loss since the host migrates VCPUs
anyway.  This ablation runs the same multi-task VM under both guest
schedulers: both meet all deadlines (supporting the "no sacrifice"
claim), while gEDF performs job migrations pEDF avoids.
"""

from repro.core.system import RTVirtSystem
from repro.guest.task import Task
from repro.simcore.time import msec, sec
from repro.workloads.periodic import PeriodicDriver

from .conftest import run_once

TASKS = [(4, 20), (6, 30), (5, 25), (9, 60), (3, 15)]  # ms; U ~ 0.965


def run_guest_comparison(duration_ns=sec(20)):
    rows = []
    for guest in ("pedf", "gedf"):
        system = RTVirtSystem(pcpu_count=2)
        vm = system.create_vm(f"{guest}-vm", vcpu_count=2, scheduler=guest)
        tasks = []
        for i, (s, p) in enumerate(TASKS):
            task = Task(f"{guest}.t{i}", msec(s), msec(p))
            vm.register_task(task)
            tasks.append(task)
            PeriodicDriver(system.engine, vm, task, phase_ns=i * msec(2)).start()
        system.run(duration_ns)
        system.finalize()
        report = system.miss_report()
        migrations = getattr(vm.guest_scheduler, "migrations", 0)
        rows.append(
            {
                "guest": guest,
                "missed": report.total_missed,
                "met": report.total_met,
                "job_migrations": migrations,
            }
        )
    return rows


def test_ablation_guest_scheduler(benchmark):
    rows = run_once(benchmark, run_guest_comparison)
    print()
    for row in rows:
        print(
            f"guest {row['guest']}: met {row['met']}, missed {row['missed']}, "
            f"intra-guest job migrations {row['job_migrations']}"
        )
        benchmark.extra_info[f"{row['guest']}_missed"] = row["missed"]
    by_guest = {r["guest"]: r for r in rows}
    assert by_guest["pedf"]["missed"] == 0
    assert by_guest["gedf"]["missed"] == 0
    assert by_guest["pedf"]["job_migrations"] == 0
    assert by_guest["gedf"]["job_migrations"] > 0
