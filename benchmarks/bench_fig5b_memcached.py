"""Figure 5b — 5 memcached VMs + 10 video-streaming VMs on 15 PCPUs.

Paper: RTVirt meets the SLO and the video deadlines with the least
bandwidth (7.44 CPUs allocated vs >8 for the others; RT-Xen's *claimed*
bandwidth is the whole host).  Known divergence (see EXPERIMENTS.md):
our idealized Credit model also meets the SLO in this underloaded
scenario, where the paper's Xen credit1 fails through placement
pathologies we do not model.
"""

from repro.experiments.fig5_memcached import run_fig5b
from repro.simcore.time import sec

from .conftest import run_once


def test_fig5b_periodic_contention(benchmark):
    result = run_once(benchmark, run_fig5b, duration_ns=sec(25))
    print()
    print(result.summary())
    for outcome in result.outcomes:
        benchmark.extra_info[f"{outcome.scheduler}_p999_us"] = outcome.p999_usec
        benchmark.extra_info[f"{outcome.scheduler}_reserved"] = outcome.reserved_cpus
    rtvirt = result.outcome("RTVirt")
    assert rtvirt.meets_slo
    assert max(rtvirt.video_misses.values()) <= 0.008  # paper: one VM at 0.8%
    # RTVirt allocates the least bandwidth (paper: 7.44 vs 8.03-8.27 CPUs).
    assert rtvirt.reserved_cpus < result.outcome("RT-Xen A").reserved_cpus
    assert rtvirt.reserved_cpus < result.outcome("RT-Xen B").reserved_cpus
    assert abs(rtvirt.reserved_cpus - 7.44) < 0.15
