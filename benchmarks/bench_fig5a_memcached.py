"""Figure 5a — memcached vs 19 non-RTA VMs on 2 PCPUs.

Paper verdicts at the 500 µs p99.9 SLO: RTVirt and RT-Xen A meet it
(RTVirt with 50.2% less CPU), Credit fails with a multi-millisecond
tail despite a low average.
"""

from repro.experiments.fig5_memcached import SLO_USEC, run_fig5a
from repro.simcore.time import sec

from .conftest import run_once


def test_fig5a_nonrta_contention(benchmark):
    result = run_once(benchmark, run_fig5a, duration_ns=sec(40))
    print()
    print(result.summary())
    for outcome in result.outcomes:
        benchmark.extra_info[f"{outcome.scheduler}_p999_us"] = outcome.p999_usec
    assert result.outcome("RTVirt").meets_slo
    assert result.outcome("RT-Xen A").meets_slo
    assert not result.outcome("Credit").meets_slo
    rtvirt = result.outcome("RTVirt").reserved_cpus
    rtxen_a = result.outcome("RT-Xen A").reserved_cpus
    benchmark.extra_info["rtvirt_bandwidth_saving_vs_rtxenA"] = 1 - rtvirt / rtxen_a
    assert abs((1 - rtvirt / rtxen_a) - 0.502) < 0.01  # the 50.2% headline
