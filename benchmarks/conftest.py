"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures.  The
benchmark *time* is the wall-clock cost of the simulation (useful for
tracking simulator performance); the reproduced numbers themselves are
attached to ``benchmark.extra_info`` and printed, so the bench output
doubles as the reproduction record.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark and return its result.

    Simulation experiments are deterministic and expensive; a single
    round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)
