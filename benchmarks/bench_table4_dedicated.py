"""Table 4 — memcached latency tail on a dedicated CPU per scheduler.

Paper (µs, p99.9): Credit 129.1, RT-Xen 65.7, RTVirt 57.5.  The shape
to reproduce: RTVirt ≈ RT-Xen << Credit, with Credit offset by its wake
path.
"""

from repro.experiments.table4_dedicated import run_table4
from repro.simcore.time import sec

from .conftest import run_once


def test_table4_dedicated_cpu(benchmark):
    result = run_once(benchmark, run_table4, duration_ns=sec(40))
    print()
    print(result.summary())
    for scheduler, tail in result.tails.items():
        benchmark.extra_info[f"{scheduler}_p999_us"] = tail[99.9]
    assert result.tails["Credit"][99.9] > 1.5 * result.tails["RTVirt"][99.9]
    assert result.tails["RTVirt"][99.9] < 70.0
