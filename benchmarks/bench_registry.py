#!/usr/bin/env python
"""Full-registry wall-time benchmark: serial vs parallel runner.

Runs every registry experiment twice through ``repro.runner`` with the
result cache disabled — once with one in-process job (the serial
reference) and once across ``--jobs`` worker processes — and reports
both wall times plus the speedup.  Run standalone to (re)generate
``BENCH_registry.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_registry.py
    PYTHONPATH=src python benchmarks/bench_registry.py --jobs 4 --out /tmp/b.json

``tools/check_perf.py`` compares a fresh parallel run against the
committed ``BENCH_registry.json`` and fails when the parallel
full-registry wall time regresses by more than 15%.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import registry  # noqa: E402
from repro.runner import run_experiments  # noqa: E402

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_registry.json")


def default_jobs() -> int:
    """4 workers when the host has them, else every core (min 2)."""
    return max(2, min(4, os.cpu_count() or 1))


def time_run(jobs: int) -> dict:
    """One cache-disabled full-registry run; returns wall + per-experiment
    and per-unit costs (the unit walls feed the slowest-unit gate)."""
    started = time.perf_counter()
    report = run_experiments(jobs=jobs)
    wall = time.perf_counter() - started
    return {
        "wall_s": round(wall, 2),
        "per_experiment_s": {
            r.experiment_id: round(r.unit_wall_s, 2) for r in report.reports
        },
        "per_unit_s": {
            unit_id: round(unit_wall, 2)
            for r in report.reports
            for unit_id, unit_wall in r.unit_walls.items()
        },
    }


def run_benchmark(jobs: int | None = None) -> dict:
    """Serial and parallel full-registry timings (cache disabled)."""
    jobs = jobs or default_jobs()
    print(f"[bench-registry] serial run (1 job) ...", flush=True)
    serial = time_run(1)
    print(f"[bench-registry]   {serial['wall_s']}s", flush=True)
    print(f"[bench-registry] parallel run ({jobs} jobs) ...", flush=True)
    parallel = time_run(jobs)
    print(f"[bench-registry]   {parallel['wall_s']}s", flush=True)
    slowest_id, slowest_s = max(
        serial["per_unit_s"].items(), key=lambda item: item[1]
    )
    return {
        "scenario": "full experiment registry, serial vs parallel runner",
        "experiments": registry.all_ids(),
        "serial_wall_s": serial["wall_s"],
        "parallel_wall_s": parallel["wall_s"],
        "speedup": round(serial["wall_s"] / parallel["wall_s"], 2),
        "jobs": jobs,
        "host_cpus": os.cpu_count(),
        "per_experiment_serial_s": serial["per_experiment_s"],
        "per_unit_serial_s": serial["per_unit_s"],
        "slowest_unit": [slowest_id, slowest_s],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=None, help="parallel worker count"
    )
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    args = parser.parse_args(argv)

    record = run_benchmark(args.jobs)
    print(json.dumps(record, indent=2, sort_keys=True))
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench-registry] written to {os.path.abspath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
