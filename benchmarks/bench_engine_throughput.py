#!/usr/bin/env python
"""Engine/host-scheduler throughput microbenchmark.

Drives the event-rate-limiting configuration the simulator has: a
16-PCPU host under the gEDF deferrable-server scheduler with 64 VCPU
servers, each hosting one periodic RTA, plus background VMs soaking up
slack.  Every wake/idle/replenish/exhaust event exercises the host
scheduler hot path, so events-per-second here is a direct measure of
how expensive one scheduling decision is.

Run standalone to (re)generate ``BENCH_engine.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --out /tmp/b.json

``tools/check_perf.py`` compares a fresh run against the committed
``BENCH_engine.json`` and fails on a >20% events/sec regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.baselines.rtxen import RTXenSystem  # noqa: E402
from repro.simcore.time import MSEC, sec  # noqa: E402
from repro.workloads.periodic import PeriodicDriver  # noqa: E402

#: Scenario shape (the acceptance scenario: 16 PCPUs, 64 VCPU servers).
PCPU_COUNT = 16
VCPU_COUNT = 64
DEFAULT_DURATION_NS = sec(4)

# Non-harmonic periods so releases rarely align and the event stream
# stays dense; (slice_ms, period_ms) per VCPU cycles through these.
_SPECS = [
    (2, 7),
    (3, 11),
    (2, 13),
    (5, 17),
    (4, 19),
    (6, 23),
    (3, 10),
    (5, 29),
]


def build_system() -> RTXenSystem:
    """16 PCPUs, 64 single-VCPU server VMs, 4 background VMs."""
    system = RTXenSystem(pcpu_count=PCPU_COUNT)
    from repro.guest.task import Task

    for i in range(VCPU_COUNT):
        slice_ms, period_ms = _SPECS[i % len(_SPECS)]
        budget_ns = slice_ms * MSEC
        period_ns = period_ms * MSEC
        vm = system.create_vm(f"vm{i:02d}", interfaces=[(budget_ns, period_ns)])
        task = Task(f"rta{i:02d}", slice_ms * MSEC, period_ns)
        system.register_rta(vm, task)
        # Staggered phases spread releases across the timeline.
        PeriodicDriver(
            system.engine, vm, task, phase_ns=(i * period_ns) // VCPU_COUNT
        ).start()
    for b in range(4):
        system.create_background_vm(f"bg{b}", processes=2)
    return system


def run_benchmark(duration_ns: int = DEFAULT_DURATION_NS, setup=None) -> dict:
    """Run the scenario and return the throughput record.

    *setup* is called with the built system before the timed run — the
    hook ``tools/check_perf.py`` uses to measure overhead shapes (e.g.
    a flight recorder attached and detached again) on the same workload.
    """
    system = build_system()
    if setup is not None:
        setup(system)
    started = time.perf_counter()
    system.run(duration_ns)
    wall_s = time.perf_counter() - started
    system.finalize()
    events = system.engine.events_processed
    return {
        "scenario": f"{PCPU_COUNT}-pcpu/{VCPU_COUNT}-vcpu gEDF-DS periodic",
        "pcpus": PCPU_COUNT,
        "vcpus": VCPU_COUNT,
        "sim_duration_s": duration_ns / 1e9,
        "events": events,
        "wall_s": round(wall_s, 3),
        "events_per_sec": round(events / wall_s, 1),
        "miss_ratio": system.miss_report().overall_miss_ratio,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    default_out = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")
    parser.add_argument("--out", default=default_out, help="output JSON path")
    parser.add_argument(
        "--duration-s", type=float, default=DEFAULT_DURATION_NS / 1e9,
        help="simulated seconds to run",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="take the best of N runs (reduces wall-clock noise)",
    )
    args = parser.parse_args(argv)

    best = None
    for _ in range(max(1, args.repeat)):
        record = run_benchmark(int(args.duration_s * 1e9))
        if best is None or record["events_per_sec"] > best["events_per_sec"]:
            best = record
    with open(args.out, "w") as fh:
        json.dump(best, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(best, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
