"""Extension benchmark — RT-Xen 2.0 configuration space.

The paper compares only against RT-Xen's best configuration (guest pEDF
+ host gEDF with deferrable server, §4.1).  This bench completes the
comparison with RT-Xen's partitioned host (pEDF-DS): both meet the
NH-Dec deadlines with CSA interfaces, but the partitioned host cannot
even *place* interface sets that fragment — the admission gap the
RT-Xen authors reported and the reason gEDF-DS is the best config.
"""

from repro.baselines.configs import rtxen_interfaces_for_group
from repro.guest.port import StaticPort
from repro.guest.task import Task
from repro.guest.vm import VM
from repro.host.base_system import BaseSystem
from repro.host.edf import EDFHostScheduler, PartitionedEDFHostScheduler
from repro.simcore.errors import ConfigurationError
from repro.simcore.time import MSEC, msec, sec
from repro.workloads.periodic import TABLE1_GROUPS, PeriodicDriver

from .conftest import run_once


def _run_config(host_scheduler_cls, group="NH-Dec", pcpus=3, duration_ns=sec(10)):
    specs = TABLE1_GROUPS[group]
    interfaces = rtxen_interfaces_for_group(specs, min_period=MSEC)
    system = BaseSystem(pcpus)
    sched = host_scheduler_cls()
    system.machine.set_host_scheduler(sched)
    tasks = []
    placed = 0
    for i, (spec, iface) in enumerate(zip(specs, interfaces)):
        vm = VM(f"vm{i}", slack_ns=0)
        vm.set_port(StaticPort())
        system._attach(vm)
        vm.configure_vcpu(0, iface.budget, iface.period)
        try:
            sched.add_vcpu(vm.vcpus[0])
        except ConfigurationError:
            continue
        placed += 1
        task = Task(f"{group}.rta{i}", spec.slice_ns, spec.period_ns)
        vm.register_task(task)
        tasks.append(task)
        PeriodicDriver(system.engine, vm, task).start()
    system.run(duration_ns)
    system.finalize()
    return {
        "placed": placed,
        "missed": sum(t.stats.missed for t in tasks),
        "met": sum(t.stats.met for t in tasks),
    }


def run_comparison():
    return {
        "gEDF-DS (paper's best)": _run_config(EDFHostScheduler),
        "pEDF-DS (partitioned)": _run_config(PartitionedEDFHostScheduler),
    }


def test_rtxen_config_space(benchmark):
    results = run_once(benchmark, run_comparison)
    print()
    for name, row in results.items():
        print(f"{name:24s} placed {row['placed']}/4, met {row['met']}, missed {row['missed']}")
        benchmark.extra_info[f"{name}_missed"] = row["missed"]
    gedf = results["gEDF-DS (paper's best)"]
    pedf = results["pEDF-DS (partitioned)"]
    assert gedf["placed"] == 4 and gedf["missed"] == 0
    assert pedf["missed"] == 0  # whatever it places, it schedules
    assert pedf["placed"] <= gedf["placed"]