"""Table 2 — VM configurations for NH-Dec (CSA vs slack derivation).

Our CSA pipeline reproduces the paper's published interfaces exactly.
"""

from repro.experiments.table2_config import run_table2

from .conftest import run_once


def test_table2_vm_configurations(benchmark):
    result = run_once(benchmark, run_table2)
    print()
    print(result.summary())
    benchmark.extra_info["rtxen_cpus"] = float(result.rtxen_bandwidth)
    benchmark.extra_info["rtvirt_cpus"] = float(result.rtvirt_bandwidth)
    rows = result.rows()
    assert [r["RT-Xen VM (s,p)"] for r in rows] == ["(4,5)", "(3,4)", "(2,3)", "(1,9)"]
