"""Ablation — CPU affinity for cache-sensitive VMs (paper §6).

§6: *"RTVirt can also support CPU affinity for VMs that are sensitive to
processor cache locality by simply excluding such VMs from the m-1 VMs
that the host-level scheduler considers to migrate."*  This ablation
pins the wrap-straddling VCPU of a migration-heavy mix: the pinned VCPU's
migration count drops to zero, deadlines stay met, and the flexible
peers absorb the (bounded) extra migrations.
"""

from repro.core.system import RTVirtSystem
from repro.guest.task import Task
from repro.simcore.time import msec, sec
from repro.simcore.trace import Trace
from repro.workloads.periodic import PeriodicDriver

from .conftest import run_once

MIX = {"a": (8, 10), "b": (8, 10), "c": (3, 10)}  # forces wrap splits


def run_variant(pin: bool, duration_ns=sec(10)):
    from repro.host.costs import ZERO_COSTS

    trace = Trace()
    # Exact reservations (no slack/costs): the mix sums to 1.9 CPUs and
    # the comparison isolates the migration behaviour.
    system = RTVirtSystem(pcpu_count=2, trace=trace, slack_ns=0, cost_model=ZERO_COSTS)
    vms = {}
    for name, (s, p) in MIX.items():
        vm = system.create_vm(f"{name}-vm")
        task = Task(name, msec(s), msec(p))
        vm.register_task(task)
        PeriodicDriver(system.engine, vm, task).start()
        vms[name] = vm
    if pin:
        system.scheduler.set_affinity(vms["b"].vcpus[0], 0)
    system.run(duration_ns)
    system.finalize()

    def migrations_of(vcpu_name):
        pcpus = [s.pcpu for s in trace.segments_for_vcpu(vcpu_name)]
        return sum(1 for x, y in zip(pcpus, pcpus[1:]) if x != y)

    return {
        "pinned": pin,
        "b_migrations": migrations_of("b-vm.vcpu0"),
        "total_missed": system.miss_report().total_missed,
    }


def run_ablation():
    return [run_variant(False), run_variant(True)]


def test_ablation_affinity(benchmark):
    rows = run_once(benchmark, run_ablation)
    print()
    for row in rows:
        mode = "pinned" if row["pinned"] else "free  "
        print(
            f"{mode}: VCPU-b migrations {row['b_migrations']}, "
            f"missed {row['total_missed']}"
        )
        benchmark.extra_info[f"{mode.strip()}_migrations"] = row["b_migrations"]
    free, pinned = rows
    assert pinned["b_migrations"] == 0
    assert free["b_migrations"] > 0
    assert pinned["total_missed"] == 0
