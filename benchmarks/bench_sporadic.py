"""§4.2 sporadic RTAs — externally triggered activations, no misses.

Runs two representative groups on both frameworks (the full six-group
sweep is the same code with more wall-clock).
"""

from repro.experiments.sporadic_rtas import run_sporadic

from .conftest import run_once


def test_sporadic_rtas(benchmark):
    result = run_once(
        benchmark, run_sporadic, requests_per_rta=25, groups=["H-Equiv", "NH-Dec"]
    )
    print()
    print(result.summary())
    benchmark.extra_info["total_missed"] = sum(r.missed for r in result.runs)
    assert result.all_deadlines_met()
