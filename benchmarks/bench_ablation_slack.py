"""Ablation — the per-VCPU budget slack (paper §3.3 / §6).

The paper adds 500 µs to every VCPU budget to absorb scheduling
overhead, and §6 notes misses "can be further reduced by increasing the
scheduling slack".  This ablation sweeps the slack on the tightest
Table 1 group (NH-Inc, non-harmonic, ~1.93 CPUs on 2 PCPUs) under the
realistic cost model: without slack the overhead charges eat into the
reservations and deadlines are missed; the paper's 500 µs eliminates
them at a small bandwidth premium.
"""

from fractions import Fraction

from repro.core.system import RTVirtSystem
from repro.guest.task import Task
from repro.simcore.time import sec, usec
from repro.workloads.periodic import TABLE1_GROUPS, PeriodicDriver

from .conftest import run_once

# 1 ms slack would push NH-Inc past the 2-CPU admission bound (its point
# is made by the 0..500 µs range anyway).
SLACKS_US = (0, 100, 250, 500)


def run_slack_sweep(duration_ns=sec(10)):
    rows = []
    for slack_us in SLACKS_US:
        system = RTVirtSystem(pcpu_count=2, slack_ns=usec(slack_us))
        tasks = []
        for i, spec in enumerate(TABLE1_GROUPS["NH-Inc"]):
            vm = system.create_vm(f"s{slack_us}-vm{i}")
            task = Task(f"s{slack_us}.rta{i}", spec.slice_ns, spec.period_ns)
            vm.register_task(task)
            tasks.append(task)
            PeriodicDriver(system.engine, vm, task).start()
        system.run(duration_ns)
        system.finalize()
        report = system.miss_report()
        rows.append(
            {
                "slack_us": slack_us,
                "bandwidth_cpus": float(system.total_rt_bandwidth),
                "missed": report.total_missed,
                "miss_ratio": report.overall_miss_ratio,
            }
        )
    return rows


def test_ablation_slack(benchmark):
    rows = run_once(benchmark, run_slack_sweep)
    print()
    for row in rows:
        print(
            f"slack {row['slack_us']:5d}µs: bandwidth {row['bandwidth_cpus']:.3f} "
            f"CPUs, missed {row['missed']} ({row['miss_ratio'] * 100:.3f}%)"
        )
        benchmark.extra_info[f"slack_{row['slack_us']}us_missed"] = row["missed"]
    by_slack = {r["slack_us"]: r for r in rows}
    # The paper's 500 µs slack removes all misses.
    assert by_slack[500]["missed"] == 0
    # Slack costs bandwidth, monotonically.
    bws = [r["bandwidth_cpus"] for r in rows]
    assert bws == sorted(bws)
