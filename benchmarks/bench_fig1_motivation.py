"""Figure 1 — the motivating example.

Regenerates both halves: two-level EDF without coordination (RTA2
misses every other deadline) and RTVirt (no misses).
"""

from repro.experiments.fig1_motivation import run_fig1
from repro.simcore.time import sec

from .conftest import run_once


def bench(duration_ns=sec(20)):
    return run_fig1(duration_ns)


def test_fig1_motivation(benchmark):
    results = run_once(benchmark, bench)
    uncoordinated = results["uncoordinated"]
    rtvirt = results["rtvirt"]
    print()
    print(uncoordinated.summary())
    print()
    print(rtvirt.summary())
    benchmark.extra_info["uncoordinated_rta2_miss"] = uncoordinated.miss_ratio("rta2")
    benchmark.extra_info["rtvirt_rta2_miss"] = rtvirt.miss_ratio("rta2")
    assert 0.45 < uncoordinated.miss_ratio("rta2") < 0.55  # "every other deadline"
    assert rtvirt.miss_ratio("rta2") == 0.0
