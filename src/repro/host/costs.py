"""Host overhead cost model.

The paper measures real overheads on a 2.4 GHz Xeon (hypercall ≈ 10 µs,
and Table 6's schedule()/context-switch totals); the simulator charges
equivalent costs as *overhead windows* on the PCPU timeline, during
which the incoming task makes no progress.  This is what the per-VCPU
500 µs slack compensates for, exactly as in the prototype.

``ZERO_COSTS`` turns all charging off for tests that verify exact
schedules; ``DEFAULT_COSTS`` approximates the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcore.errors import ConfigurationError
from ..simcore.time import USEC


@dataclass(frozen=True)
class CostModel:
    """Per-operation overhead charges, all in nanoseconds."""

    #: VCPU context switch on a PCPU.
    context_switch_ns: int = 2 * USEC
    #: Extra cost when the incoming VCPU last ran on a different PCPU
    #: (cache state migration).
    migration_ns: int = 3 * USEC
    #: Fixed cost of one host schedule() invocation.
    schedule_base_ns: int = 500
    #: Additional schedule() cost per element examined (VCPU or queue node).
    schedule_per_elem_ns: int = 50
    #: One guest->host hypercall (the paper measures ~10 µs).
    hypercall_ns: int = 10 * USEC
    #: Guest-level dispatch switch between jobs on one VCPU.
    guest_switch_ns: int = 0

    def __post_init__(self) -> None:
        for field_name in (
            "context_switch_ns",
            "migration_ns",
            "schedule_base_ns",
            "schedule_per_elem_ns",
            "hypercall_ns",
            "guest_switch_ns",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be non-negative")

    def schedule_cost(self, elements: int = 0) -> int:
        """Cost of a schedule() call that examined *elements* items."""
        if elements < 0:
            raise ConfigurationError(f"negative element count {elements}")
        return self.schedule_base_ns + elements * self.schedule_per_elem_ns


#: No overhead at all — exact-schedule unit tests use this.
ZERO_COSTS = CostModel(
    context_switch_ns=0,
    migration_ns=0,
    schedule_base_ns=0,
    schedule_per_elem_ns=0,
    hypercall_ns=0,
    guest_switch_ns=0,
)

#: Approximates the paper's testbed.
DEFAULT_COSTS = CostModel()
