"""The host (VMM-level) scheduler interface.

Concrete schedulers — DP-WRAP (:mod:`repro.core.dpwrap`), RT-Xen's
gEDF deferrable server (:mod:`repro.baselines.rtxen`), Xen Credit
(:mod:`repro.baselines.credit`) and plain host EDF
(:mod:`repro.host.edf`) — implement this interface.  The machine calls
the ``on_*`` hooks; the scheduler places VCPUs onto PCPUs through
:meth:`repro.host.machine.Machine.set_running` and schedules its own
timer events through the engine.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from ..guest.vcpu import VCPU
from ..simcore.errors import SchedulingError
from ..simcore.events import PRIORITY_DEFAULT
from ..simcore.time import MSEC
from ..telemetry import events as T


class HostScheduler(abc.ABC):
    """Base class for VMM-level CPU schedulers."""

    name = "abstract"

    #: Rotation quantum for background VCPUs sharing leftover time.
    bg_quantum_ns = MSEC

    def __init__(self) -> None:
        self.machine = None
        self._background: List[VCPU] = []
        self._bg_cursor = 0
        #: Optional (RandomSource, max_ns) pair injecting clock jitter
        #: into the scheduler's own timer arming (fault injection).
        self._jitter_source = None
        self._jitter_max = 0
        #: Cached "anyone listening for budget events?" flag; refreshed
        #: by the machine bus's watcher once attached.  Budget-based
        #: schedulers test it before constructing replenish/deplete
        #: events on their timer paths.
        self._t_budget = False

    # -- wiring ---------------------------------------------------------------

    def attach(self, machine) -> None:
        """Called by :meth:`Machine.set_host_scheduler`."""
        self.machine = machine
        machine.bus.watch(self._on_telemetry_change)

    def _on_telemetry_change(self, bus) -> None:
        """Refresh cached telemetry interest flags (bus watcher)."""
        self._t_budget = bus.has_subscribers(
            T.BUDGET_REPLENISH
        ) or bus.has_subscribers(T.BUDGET_DEPLETE)

    @property
    def engine(self):
        if self.machine is None:
            raise SchedulingError(f"{self.name} scheduler is not attached to a machine")
        return self.machine.engine

    # -- VCPU population --------------------------------------------------------

    @abc.abstractmethod
    def add_vcpu(self, vcpu: VCPU) -> None:
        """Start scheduling *vcpu* using its host-visible parameters."""

    @abc.abstractmethod
    def remove_vcpu(self, vcpu: VCPU) -> None:
        """Stop scheduling *vcpu*."""

    def update_vcpu(self, vcpu: VCPU) -> None:
        """React to a parameter change (default: remove + re-add)."""
        self.remove_vcpu(vcpu)
        self.add_vcpu(vcpu)

    def add_background_vcpu(self, vcpu: VCPU) -> None:
        """Register a best-effort VCPU that soaks up leftover CPU time.

        Background VCPUs receive the bandwidth not reserved by RT VCPUs
        (paper §3.4); schedulers hand them idle or unreserved time.
        """
        self._background.append(vcpu)

    def remove_background_vcpu(self, vcpu: VCPU) -> None:
        """Drop *vcpu* from the background pool (VM shutdown churn)."""
        if vcpu in self._background:
            self._background.remove(vcpu)
            self._bg_cursor = 0

    def next_background_vcpu(self, exclude=None) -> Optional[VCPU]:
        """Round-robin over background VCPUs with runnable work."""
        if not self._background:
            return None
        n = len(self._background)
        machine = self.machine
        for offset in range(n):
            vcpu = self._background[(self._bg_cursor + offset) % n]
            if exclude is not None and vcpu in exclude:
                continue
            if machine is not None and machine.pcpu_of(vcpu) is not None:
                continue
            if vcpu.vm.vcpu_has_work(vcpu):
                self._bg_cursor = (self._bg_cursor + offset + 1) % n
                return vcpu
        return None

    def fill_with_background(self, pcpu_index: int) -> None:
        """Give *pcpu_index* to a background VCPU (or idle it).

        Background VCPUs rotate every :attr:`bg_quantum_ns` so leftover
        bandwidth is shared equally among them (paper §3.4's proportional
        allocation, with equal proportions).  When every other background
        VCPU is already running (pool <= PCPUs), the current occupant
        keeps the PCPU instead of being evicted to idle.
        """
        if self.machine.pcpus[pcpu_index].failed:
            return
        vcpu = self.next_background_vcpu()
        occupant = self.machine.pcpus[pcpu_index].running_vcpu
        if (
            vcpu is None
            and occupant is not None
            and occupant in self._background
            and occupant.vm.vcpu_has_work(occupant)
        ):
            vcpu = occupant
        self.machine.set_running(pcpu_index, vcpu)
        if vcpu is not None and len(self._background) > 1:
            self.engine.after(
                self.bg_quantum_ns,
                self._rotate_background,
                pcpu_index,
                vcpu,
                priority=PRIORITY_DEFAULT,
                name="bg-rotate",
            )

    def fill_free_pcpus(self) -> None:
        """Hand every unoccupied PCPU to a background VCPU.

        Equivalent to calling :meth:`fill_with_background` on each free
        PCPU in index order, but stops scanning as soon as the pool has
        no placeable background VCPU left: a ``None`` answer cannot turn
        into a candidate by idling further PCPUs (nothing gains work and
        nothing is descheduled), and ``set_running(index, None)`` on an
        already-free PCPU is a no-op, so the remaining iterations of the
        naive loop do nothing.
        """
        machine = self.machine
        if len(machine._vcpu_pcpu) >= machine._available:
            # Every online PCPU is occupied — nothing to fill.  O(1)
            # escape for the common fully-loaded pass.
            return
        rotate = len(self._background) > 1
        for pcpu in machine.pcpus:
            if pcpu.running_vcpu is not None or pcpu.failed:
                continue
            vcpu = self.next_background_vcpu()
            if vcpu is None:
                return
            machine.set_running(pcpu.index, vcpu)
            if rotate:
                self.engine.after(
                    self.bg_quantum_ns,
                    self._rotate_background,
                    pcpu.index,
                    vcpu,
                    priority=PRIORITY_DEFAULT,
                    name="bg-rotate",
                )

    def _rotate_background(self, pcpu_index: int, vcpu: VCPU) -> None:
        if self.machine.pcpus[pcpu_index].running_vcpu is vcpu:
            self.fill_with_background(pcpu_index)

    # -- runtime notifications ------------------------------------------------------

    @abc.abstractmethod
    def on_vcpu_wake(self, vcpu: VCPU) -> None:
        """*vcpu* gained runnable work (a job was released)."""

    @abc.abstractmethod
    def on_vcpu_idle(self, vcpu: VCPU, pcpu_index: int) -> None:
        """*vcpu* holds a PCPU but has nothing to run."""

    def on_work_drained(self, vcpu: VCPU) -> None:
        """A job of running *vcpu* retired (its queue may now be empty).

        Fired synchronously at retirement, before the machine's idle
        report; schedulers tracking decision-input changes (e.g. for
        no-op pass elision) hook this.  Default: ignore.
        """

    def account(self, vcpu: VCPU, pcpu_index: int, elapsed: int) -> None:
        """*vcpu* occupied *pcpu_index* for *elapsed* ns (wall-clock).

        Budget- and credit-based schedulers override this to burn budget.
        """

    # -- fault hooks -----------------------------------------------------------------

    def on_pcpu_failed(self, pcpu_index: int, victim: Optional[VCPU]) -> None:
        """PCPU *pcpu_index* went offline; *victim* was evicted from it.

        The machine already vacated the PCPU.  Schedulers override this
        to migrate the victim / repartition; default: ignore (the next
        scheduling pass will simply find one PCPU fewer).
        """

    def on_pcpu_recovered(self, pcpu_index: int) -> None:
        """PCPU *pcpu_index* came back online.  Default: ignore."""

    # -- timer jitter (fault injection) ----------------------------------------------

    def set_timer_jitter(self, source, max_ns: int) -> None:
        """Inject up to *max_ns* of jitter into timer re-arming.

        *source* is a :class:`repro.simcore.rng.RandomSource`; pass
        ``max_ns=0`` (or ``source=None``) to disable.  Models a sloppy
        hypervisor clock on budget-replenishment timers.
        """
        self._jitter_source = source if max_ns > 0 else None
        self._jitter_max = max_ns if source is not None else 0

    def timer_jitter(self) -> int:
        """One jitter sample in ``[0, max_ns]`` (0 when disabled)."""
        if self._jitter_source is None or self._jitter_max <= 0:
            return 0
        return self._jitter_source.uniform_int(0, self._jitter_max)

    # -- lifecycle -------------------------------------------------------------------

    @abc.abstractmethod
    def start(self) -> None:
        """Begin scheduling: set up the initial assignment and timers."""
