"""Physical host model: PCPUs, cost model, machine driver, host schedulers."""

from .base_system import BaseSystem
from .costs import DEFAULT_COSTS, ZERO_COSTS, CostModel
from .edf import EDFHostScheduler, PartitionedEDFHostScheduler
from .machine import Machine
from .pcpu import PCPU
from .scheduler import HostScheduler

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "ZERO_COSTS",
    "PCPU",
    "Machine",
    "BaseSystem",
    "HostScheduler",
    "EDFHostScheduler",
    "PartitionedEDFHostScheduler",
]
