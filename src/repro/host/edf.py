"""Host-level (global) EDF scheduler with deferrable-server VCPUs.

Each RT VCPU is a *deferrable server* with a (budget, period) interface:
the budget is replenished to its full value at every period boundary,
the server's deadline is the end of the current period, and unused
budget is retained while the VCPU idles (but never carried across a
replenishment).  Among servers with budget and runnable work, the m
earliest deadlines run on the m PCPUs.

Two systems in the paper use exactly this scheduler:

- the **motivating example** (Figure 1): VMs scheduled by EDF according
  to their (slice, period), with no cross-layer information; and
- **RT-Xen 2.0's best configuration** (§4.1): gEDF with deferrable
  server at the host level, with the interfaces computed offline by CSA.

PCPUs not needed by RT servers run background VCPUs.

Hot-path structure (see DESIGN.md for the full argument):

- the eligible set is maintained **incrementally**: ``_ready`` indexes
  servers with budget left (updated on replenish and on the drain-to-
  zero crossing in :meth:`account`); selection sweeps only that index
  and sorts it at C level, so each decision costs O(ready log ready)
  comparisons over the ready set instead of every registered server;
- **exhaust timers are armed only when a target can have moved**: at
  placement, and on a replenish that lands on an already-placed server.
  While a server runs continuously its budget drains at wall rate, so
  ``now + remaining`` — the timer target — is invariant and the timer
  stays exact without per-pass re-arming;
- **same-instant no-op passes are skipped**: a (time, mutation-counter)
  stamp taken after each completed pass detects repeated ``_reschedule``
  requests at one instant with no intervening state change (e.g. an
  idle-report storm after the first pass already vacated every idle
  server); such a pass provably makes no placement, charge, or timer
  change, so it is elided.  Requests coalesce through a dirty flag that
  an :meth:`Engine.add_post_hook` hook re-checks once per event batch;
- budget timers use **targeted sync** (:meth:`Machine.sync_running` on
  the one PCPU whose accounting they touch) instead of ``sync_all``; a
  pass that actually runs still syncs every PCPU once per instant via
  the memoised :meth:`Machine.sync_all`.
"""

from __future__ import annotations

from fractions import Fraction
from operator import attrgetter
from typing import Dict, List, Optional, Set, Tuple

from ..guest.vcpu import VCPU
from ..simcore.errors import ConfigurationError, SchedulingError
from ..simcore.events import PRIORITY_BUDGET, Event
from ..telemetry import events as T
from .scheduler import HostScheduler


class _Server:
    """Deferrable-server state for one RT VCPU."""

    __slots__ = (
        "vcpu",
        "budget",
        "period",
        "remaining",
        "deadline",
        "key",
        "replenish_event",
        "exhaust_event",
        "replenish_name",
        "exhaust_name",
    )

    def __init__(self, vcpu: VCPU, budget: int, period: int) -> None:
        self.vcpu = vcpu
        self.budget = budget
        self.period = period
        self.remaining = 0
        self.deadline = 0
        #: Cached EDF sort key (deadline, vcpu uid); rebuilt on replenish
        #: so selection never constructs per-server tuples in a loop.
        self.key: Tuple[int, int] = (0, vcpu.uid)
        self.replenish_event: Optional[Event] = None
        self.exhaust_event: Optional[Event] = None
        #: Event names, formatted once instead of per timer arm.
        self.replenish_name = f"replenish:{vcpu.name}"
        self.exhaust_name = f"exhaust:{vcpu.name}"


_SERVER_KEY = attrgetter("key")


def _has_work(vcpu: VCPU) -> bool:
    """Inlined ``vcpu.vm.vcpu_has_work(vcpu)`` for the selection loops."""
    vm = vcpu.vm
    return (vm._pending_jobs if vm._is_gedf else vcpu._pending_jobs) > 0


class EDFHostScheduler(HostScheduler):
    """Global EDF over deferrable-server VCPUs."""

    name = "host-edf-ds"

    def __init__(self) -> None:
        super().__init__()
        self._servers: Dict[int, _Server] = {}  # vcpu uid -> server
        self._started = False
        #: Servers with remaining budget (the incrementally-maintained
        #: half of the eligibility predicate; the other half, "has
        #: runnable work", is an O(1) counter check at use time).
        self._ready: Dict[int, _Server] = {}
        #: Eligible count computed by the last :meth:`_choose` (equals
        #: ``_eligible_count()`` at that point); reused by the placement
        #: loop's schedule-cost charge instead of a second sweep.
        self._last_eligible = 0
        #: Bumped on every change that can alter the scheduling
        #: decision: replenish, exhaust, a VCPU gaining its first job,
        #: a VCPU draining its last job, idling, add/remove.  A pass
        #: requested while the counter still equals its value at the
        #: last completed pass is provably a no-op and is elided.
        self._mutations = 0
        self._pass_mutations = -1
        #: Dirty flag for reschedule requests coalesced at one instant;
        #: re-checked by the engine post-hook once per event batch.
        self._resched_pending = False
        #: Servers holding a live exhaust timer (uid -> server), so the
        #: disarm sweep in :meth:`_reschedule` visits at most m servers
        #: instead of every registered one.
        self._exhaust_armed: Dict[int, _Server] = {}
        #: Uids replenished while placed since the last pass: the only
        #: already-placed servers whose exhaust target moved, hence the
        #: only ones the pass must re-arm (placement arms the rest).
        self._rearm: Set[int] = set()
        #: Live exhaust-timer targets (time -> count), so "does a budget
        #: drain to zero at this very instant" — the probe both the
        #: elision test and the pre-decision sync ask — is one dict
        #: membership test instead of a sweep over the armed registry.
        self._exhaust_due: Dict[int, int] = {}

    # -- wiring ----------------------------------------------------------------

    def attach(self, machine) -> None:
        super().attach(machine)
        machine.engine.add_post_hook(self._flush_reschedule)

    # -- population ----------------------------------------------------------------

    def add_vcpu(self, vcpu: VCPU) -> None:
        """Schedule *vcpu* as a server using its (budget, period) params."""
        if vcpu.uid in self._servers:
            raise ConfigurationError(f"{vcpu.name} is already scheduled")
        if vcpu.period_ns <= 0 or vcpu.budget_ns <= 0:
            raise ConfigurationError(
                f"{vcpu.name} has no (budget, period) interface configured"
            )
        server = _Server(vcpu, vcpu.budget_ns, vcpu.period_ns)
        self._servers[vcpu.uid] = server
        vcpu.admitted = True
        if self._started:
            self._replenish(server)

    def remove_vcpu(self, vcpu: VCPU) -> None:
        server = self._servers.pop(vcpu.uid, None)
        if server is None:
            return
        self._ready.pop(vcpu.uid, None)
        self._rearm.discard(vcpu.uid)
        self._mutations += 1
        self.engine.cancel(server.replenish_event)
        self._disarm_exhaust(server)
        pcpu_index = self.machine.pcpu_of(vcpu)
        if pcpu_index is not None:
            self.machine.set_running(pcpu_index, None)
            self.fill_with_background(pcpu_index)

    # -- server lifecycle -----------------------------------------------------------

    def _replenish(self, server: _Server) -> None:
        # Sync first: time consumed before this instant must drain the old
        # budget, not the fresh one.  Only this server's PCPU needs the
        # sync — its budget is the only accounting the refill overwrites.
        self.machine.sync_running(server.vcpu)
        now = self.machine.engine._now
        server.remaining = server.budget
        server.deadline = now + server.period
        uid = server.vcpu.uid
        server.key = (server.deadline, uid)
        self._ready[uid] = server
        self._mutations += 1
        if uid in self.machine._vcpu_pcpu:
            # Refill landed on a placed server: its exhaust target just
            # moved, so the pass this replenish forces must re-arm it.
            self._rearm.add(uid)
        if self._t_budget:
            self.machine.bus.publish(
                T.BUDGET_REPLENISH,
                T.BudgetReplenishEvent(
                    now, server.vcpu.name, server.budget, server.remaining
                ),
            )
        # Fault injection: a sloppy hypervisor clock fires the next
        # replenishment late by up to the configured jitter.  The
        # deadline stays nominal — the server simply keeps its stale
        # budget/deadline for the jittered interval.
        delay = server.period
        if self._jitter_source is not None:
            delay += self.timer_jitter()
        server.replenish_event = self.machine.engine.after(
            delay,
            self._replenish,
            server,
            priority=PRIORITY_BUDGET,
            name=server.replenish_name,
        )
        self._request_reschedule()

    def _exhaust(self, server: _Server) -> None:
        self._drop_due(self.machine.engine._now)
        server.exhaust_event = None
        self._exhaust_armed.pop(server.vcpu.uid, None)
        # account() on the occupied PCPU drains the budget exactly (and
        # publishes the BUDGET_DEPLETE event at the crossing).
        self.machine.sync_running(server.vcpu)
        if server.remaining > 0:  # raced with a preemption; timer is stale
            if server.vcpu.uid in self.machine._vcpu_pcpu:
                # Defensive: a placed server must always hold a live
                # timer (placement and replenish-on-placed arm it, so
                # this re-arm is not expected to trigger).
                self._arm_exhaust(server)
            return
        self._mutations += 1
        self._request_reschedule()

    def account(self, vcpu: VCPU, pcpu_index: int, elapsed: int) -> None:
        server = self._servers.get(vcpu.uid)
        if server is not None and server.remaining > 0:
            server.remaining = max(0, server.remaining - elapsed)
            if server.remaining == 0:
                del self._ready[vcpu.uid]
                # Publish at the drain crossing itself, not in the
                # exhaust timer: a preemption-race drain (the timer sees
                # ``remaining > 0`` stale and bails) previously emitted
                # nothing, leaving depletion windows open-ended for
                # span/blame consumers.
                if self._t_budget:
                    self.machine.bus.publish(
                        T.BUDGET_DEPLETE,
                        T.BudgetDepleteEvent(self.engine.now, vcpu.name, 0),
                    )

    # -- notifications ------------------------------------------------------------------

    def on_vcpu_wake(self, vcpu: VCPU) -> None:
        server = self._servers.get(vcpu.uid)
        if server is not None:
            vm = vcpu.vm
            pending = vm._pending_jobs if vm._is_gedf else vcpu._pending_jobs
            if pending == 1:
                # First job after an empty queue: the server just became
                # eligible again — a decision-input change.  A wake on
                # top of existing work changes nothing the decision
                # reads — the drain-at-now probe in
                # :meth:`_request_reschedule` covers the one hidden
                # input (budget hitting zero at this very instant,
                # ahead of its exhaust timer).
                self._mutations += 1
            self._request_reschedule()
        elif vcpu in self._background:
            free = self._free_pcpus()
            if free:
                self.fill_with_background(free[0])

    def on_vcpu_idle(self, vcpu: VCPU, pcpu_index: int) -> None:
        # Deferrable behaviour: the server keeps its budget; the PCPU is
        # handed to the next eligible server or a background VCPU.
        self._mutations += 1
        self._request_reschedule()

    def on_work_drained(self, vcpu: VCPU) -> None:
        server = self._servers.get(vcpu.uid)
        if server is not None and not vcpu.vm.vcpu_has_work(vcpu):
            # The server's last job retired: it left the eligible set.
            self._mutations += 1

    # -- reschedule coalescing -----------------------------------------------------------

    def _request_reschedule(self) -> None:
        """Run a scheduling pass unless it would provably be a no-op.

        If no decision input changed since the last completed pass
        (mutation counter unchanged), the pass makes no placement, no
        vacate, no charge, and no timer change — the eligible set and
        its deadline order are exactly as the last pass left them, every
        chosen server is still placed, and every exhaust re-arm dedups
        because a *running* server's target ``now + remaining`` is
        invariant while it runs.  Such requests stay coalesced in the
        dirty flag; the engine post-hook clears (or, defensively,
        flushes) them once per batch.

        One decision input changes *without* a mutation bump: a running
        server's budget draining to exactly zero at the current instant.
        Its exhaust timer fires at the same instant but at BUDGET
        priority, *after* any RELEASE-priority wake — and the old
        eager-pass code observed the drain early through ``sync_all``'s
        accounting and vacated the server one event earlier.  Exhaust
        timers are exact while a server runs, so that case is precisely
        "some armed exhaust timer has ``time == now``"; probe for it and
        force the pass then.
        """
        self._resched_pending = True
        if self._mutations == self._pass_mutations:
            if self.machine.engine._now not in self._exhaust_due:
                return
            # else: a budget drains to zero right now — must pass.
        self._run_reschedule()

    def _run_reschedule(self) -> None:
        self._resched_pending = False
        self._reschedule()
        self._pass_mutations = self._mutations

    def _flush_reschedule(self) -> None:
        """Engine post-hook: settle requests coalesced during the batch.

        A request elided by :meth:`_request_reschedule` was a no-op *at
        request time*; every later decision-input change arrives with
        its own request (wake/replenish/exhaust/idle all request
        immediately, and a drained queue is followed by the machine's
        idle report).  So elided requests are simply retired here — the
        hook is the coalescing point, not a second decision site.
        """
        self._resched_pending = False

    # -- the scheduling decision -----------------------------------------------------------

    def _eligible(self) -> List[_Server]:
        """Eligible servers sorted by (deadline, uid).

        Iterates only the ready (budget-holding) index, not every
        server; used by the partitioned variant and diagnostics.  The
        global variant selects through the deadline heap instead.
        """
        servers = [s for s in self._ready.values() if _has_work(s.vcpu)]
        servers.sort(key=_SERVER_KEY)
        return servers

    def _eligible_count(self) -> int:
        count = 0
        for s in self._ready.values():
            vcpu = s.vcpu
            vm = vcpu.vm
            if (vm._pending_jobs if vm._is_gedf else vcpu._pending_jobs) > 0:
                count += 1
        return count

    def _choose(self) -> List[_Server]:
        """The m earliest-deadline eligible servers.

        One sweep over the ready (budget-holding) index filters for
        runnable work — the eligibility predicate inlined from
        ``_has_work`` — then a C-level sort picks the winners.
        Equivalent to ``self._eligible()[:m]``; also caches the eligible
        count for the placement loop's schedule-cost charge.
        """
        m = self.machine.available_count
        eligible = [
            server
            for server in self._ready.values()
            if (
                vm._pending_jobs
                if (vm := server.vcpu.vm)._is_gedf
                else server.vcpu._pending_jobs
            )
            > 0
        ]
        self._last_eligible = len(eligible)
        # Timsort + trim beats heapq.nsmallest at this size (~3x measured
        # at 48 servers / m=16); keys are unique so both agree exactly.
        eligible.sort(key=_SERVER_KEY)
        if len(eligible) > m:
            del eligible[m:]
        return eligible

    def _free_pcpus(self) -> List[int]:
        return [
            p.index
            for p in self.machine.pcpus
            if p.running_vcpu is None and not p.failed
        ]

    # -- fault hooks -----------------------------------------------------------------------

    def on_pcpu_failed(self, pcpu_index: int, victim: Optional[VCPU]) -> None:
        """The machine evicted *victim*; re-run selection over the
        surviving PCPUs so the victim migrates if it still wins."""
        self._mutations += 1
        self._request_reschedule()

    def on_pcpu_recovered(self, pcpu_index: int) -> None:
        self._mutations += 1
        self._request_reschedule()

    def _sync_if_boundary(self) -> None:
        """Full pre-decision sync, only at instants where it can matter.

        The decision (:meth:`_choose`) reads the ready index and the
        pending-job counters.  Both are maintained exactly by targeted
        syncs *except* at two kinds of instant, where the old
        unconditional ``sync_all`` observed a change ahead of the event
        that reports it:

        - a running server's budget drains to exactly zero now — its
          BUDGET-priority exhaust timer has not fired yet, but
          ``account()``'s zero-crossing must drop it from the ready
          index before the decision; and
        - a running job's work reaches exactly zero now — its
          COMPLETION-priority event has not fired yet, but the sweep's
          charge retires it, draining the queue before the decision.

        Exhaust and completion timers are exact while their target runs
        (the target ``now + remaining`` is invariant under wall-rate
        draining), so "can matter" is precisely "some armed timer is due
        at this very instant" — and only the PCPU hosting that timer can
        cross.  Charging on every other PCPU is additive (splitting an
        execution span at an extra instant charges the same totals), so
        instead of a full ``sync_all`` sweep only the due PCPUs are
        synced, in ascending index order like the sweep they replace.
        """
        machine = self.machine
        now = machine.engine._now
        exhaust_due = now in self._exhaust_due
        completion_due = now in machine._completions_due
        if not exhaust_due and not completion_due:
            return
        pcpus = machine.pcpus
        due_indices = []
        if exhaust_due:
            locations = machine._vcpu_pcpu
            for uid, server in self._exhaust_armed.items():
                event = server.exhaust_event
                if event is not None and event.time == now:
                    index = locations.get(uid)
                    if index is not None:
                        due_indices.append(index)
        if completion_due:
            for pcpu in pcpus:
                event = pcpu.completion_event
                if event is not None and event.time == now:
                    due_indices.append(pcpu.index)
        due_indices.sort()
        for index in due_indices:
            machine.sync_pcpu(pcpus[index])

    def _reschedule(self) -> None:
        """Run the m earliest-deadline eligible servers; fill the rest."""
        machine = self.machine
        self._sync_if_boundary()
        chosen = self._choose()
        chosen_uids: Set[int] = {s.vcpu.uid for s in chosen}

        # Vacate PCPUs whose RT occupant is no longer chosen.  The
        # placement map is iterated instead of the PCPU array: it lists
        # exactly the occupied PCPUs, and the snapshot makes the vacating
        # mutation safe.
        locations = machine._vcpu_pcpu
        servers = self._servers
        vacate = [
            index
            for uid, index in locations.items()
            if uid in servers and uid not in chosen_uids
        ]
        for index in vacate:
            machine.set_running(index, None)

        # Place chosen servers, preferring their current PCPU (no migration).
        pending_uids: Set[int] = set()
        pending = [s for s in chosen if s.vcpu.uid not in locations]
        if pending:
            elements = self._last_eligible
            for server in pending:
                pending_uids.add(server.vcpu.uid)
                target = self._pick_pcpu_for(server, chosen_uids)
                if target is None:
                    raise SchedulingError(
                        f"no PCPU available for chosen server {server.vcpu.name}"
                    )
                machine.charge_schedule(target, elements=elements)
                machine.set_running(target, server.vcpu)
                self._arm_exhaust(server)

        # Servers that kept their PCPU keep an exact timer for free —
        # while a server runs, budget drains at wall rate, so its target
        # ``now + remaining`` never moves.  The one exception is a
        # replenish that landed on a placed server (tracked in
        # ``_rearm``): its remaining jumped, so re-arm it here, in
        # chosen order, exactly where the old arm-every-pass sweep
        # would have pushed the fresh timer.
        rearm = self._rearm
        if rearm:
            for server in chosen:
                uid = server.vcpu.uid
                if uid in rearm and uid not in pending_uids:
                    self._arm_exhaust(server)
            rearm.clear()
        # Only servers in the armed registry can hold a live timer, so
        # de-scheduled servers outside it need no visit.
        stale = [s for u, s in self._exhaust_armed.items() if u not in chosen_uids]
        for server in stale:
            self._disarm_exhaust(server)

        self.fill_free_pcpus()

    def _pick_pcpu_for(self, server: _Server, chosen_uids: Set[int]) -> Optional[int]:
        free = self._free_pcpus()
        if free:
            return free[0]
        # Preempt a background VCPU if one holds a PCPU.
        for pcpu in self.machine.pcpus:
            occupant = pcpu.running_vcpu
            if occupant is not None and occupant.uid not in self._servers:
                return pcpu.index
        return None

    def _arm_exhaust(self, server: _Server) -> None:
        engine = self.machine.engine
        target = engine._now + server.remaining
        event = server.exhaust_event
        if (
            event is not None
            and not event.cancelled
            and not event.consumed
            and event.time == target
        ):
            return
        self._disarm_exhaust(server)
        if server.remaining <= 0:
            return
        server.exhaust_event = engine.at(
            target,
            self._exhaust,
            server,
            priority=PRIORITY_BUDGET,
            name=server.exhaust_name,
        )
        self._exhaust_armed[server.vcpu.uid] = server
        due = self._exhaust_due
        due[target] = due.get(target, 0) + 1

    def _drop_due(self, time: int) -> None:
        due = self._exhaust_due
        count = due.get(time, 0)
        if count <= 1:
            due.pop(time, None)
        else:
            due[time] = count - 1

    def _disarm_exhaust(self, server: _Server) -> None:
        event = server.exhaust_event
        if event is not None:
            if not event.cancelled and not event.consumed:
                self._drop_due(event.time)
            self.machine.engine.cancel(event)
            server.exhaust_event = None
        self._exhaust_armed.pop(server.vcpu.uid, None)

    # -- lifecycle ------------------------------------------------------------------------

    def start(self) -> None:
        self._started = True
        for server in self._servers.values():
            self._replenish(server)
        if not self._servers:
            for index in self._free_pcpus():
                self.fill_with_background(index)


class PartitionedEDFHostScheduler(EDFHostScheduler):
    """RT-Xen's partitioned configuration: pEDF + deferrable server.

    Each VCPU server is statically bound to one PCPU — first-fit
    **decreasing** by bandwidth when a batch is placed via
    :meth:`add_vcpus` (or explicitly via *pcpu*); single additions
    through :meth:`add_vcpu` first-fit in arrival order, which is only
    FFD when callers add VCPUs in decreasing-bandwidth order.  Each PCPU
    runs EDF over its own servers with no migration.  The paper compares
    against RT-Xen's *best* configuration (gEDF); this variant completes
    the RT-Xen 2.0 design space for ablations.
    """

    name = "host-pedf-ds"

    def __init__(self) -> None:
        super().__init__()
        self._home: Dict[int, int] = {}  # vcpu uid -> pcpu index
        # Exact rational loads: no float drift across add/remove cycles.
        self._loads: Dict[int, Fraction] = {}

    def add_vcpu(self, vcpu: VCPU, pcpu: Optional[int] = None) -> None:
        """Bind *vcpu* to a PCPU (first-fit by current load when unspecified)."""
        if pcpu is None:
            bw = vcpu.bandwidth
            pcpu = self._first_fit(bw)
            if pcpu is None:
                raise ConfigurationError(
                    f"no PCPU has {float(bw):.3f} bandwidth free for {vcpu.name} "
                    "(partitioned placement)"
                )
        elif not 0 <= pcpu < self.machine.pcpu_count:
            raise ConfigurationError(f"no PCPU {pcpu}")
        super().add_vcpu(vcpu)
        self._home[vcpu.uid] = pcpu
        self._loads[pcpu] = self._loads.get(pcpu, Fraction(0)) + vcpu.bandwidth

    def add_vcpus(self, vcpus: List[VCPU]) -> None:
        """Place a batch first-fit **decreasing** by bandwidth.

        Sorting the batch by decreasing bandwidth (ties broken by uid
        for determinism) before first-fit is the classic FFD bin-packing
        heuristic the docstring promises; arrival-order packing can
        strand large servers that FFD would fit.
        """
        for vcpu in sorted(vcpus, key=lambda v: (-v.bandwidth, v.uid)):
            self.add_vcpu(vcpu)

    def _first_fit(self, bw: Fraction) -> Optional[int]:
        for pcpu in self.machine.pcpus:
            if pcpu.failed:
                continue
            index = pcpu.index
            if self._loads.get(index, Fraction(0)) + bw <= 1:
                return index
        return None

    def remove_vcpu(self, vcpu: VCPU) -> None:
        home = self._home.pop(vcpu.uid, None)
        if home is not None:
            load = self._loads.get(home, Fraction(0)) - vcpu.bandwidth
            # Exact arithmetic cannot go negative unless bookkeeping is
            # broken elsewhere; clamp defensively all the same.
            self._loads[home] = load if load > 0 else Fraction(0)
        super().remove_vcpu(vcpu)

    def _reschedule(self) -> None:
        """Per-PCPU EDF: each PCPU independently runs its earliest server."""
        machine = self.machine
        self._sync_if_boundary()
        # The per-PCPU sweep below re-arms every chosen server, so the
        # global variant's placed-replenish re-arm set is moot here.
        self._rearm.clear()
        eligible = self._eligible()
        for pcpu in machine.pcpus:
            if pcpu.failed:
                # Servers still homed here are parked until recovery.
                continue
            local = [s for s in eligible if self._home.get(s.vcpu.uid) == pcpu.index]
            chosen = local[0] if local else None
            occupant = pcpu.running_vcpu
            occupant_is_rt = occupant is not None and occupant.uid in self._servers
            if chosen is None:
                if occupant_is_rt:
                    machine.set_running(pcpu.index, None)
                if pcpu.running_vcpu is None:
                    self.fill_with_background(pcpu.index)
                continue
            if occupant is not chosen.vcpu:
                machine.charge_schedule(pcpu.index, elements=len(local))
                if occupant is not None:
                    machine.set_running(pcpu.index, None)
                machine.set_running(pcpu.index, chosen.vcpu)
            self._arm_exhaust(chosen)
            for server in local[1:]:
                self._disarm_exhaust(server)

    # -- fault hooks -----------------------------------------------------------------------

    def on_pcpu_failed(self, pcpu_index: int, victim: Optional[VCPU]) -> None:
        """Re-home the failed PCPU's servers first-fit onto survivors.

        Servers that fit nowhere stay homed on the failed PCPU (parked:
        the per-PCPU pass skips failed PCPUs, so they simply do not run)
        and resume when it recovers.  Re-homing iterates uid order so
        the outcome is deterministic.
        """
        displaced = sorted(
            uid for uid, home in self._home.items() if home == pcpu_index
        )
        for uid in displaced:
            server = self._servers.get(uid)
            if server is None:
                continue
            bw = server.vcpu.bandwidth
            target = self._first_fit(bw)
            if target is None:
                continue  # parked on the failed PCPU
            self._home[uid] = target
            load = self._loads.get(pcpu_index, Fraction(0)) - bw
            self._loads[pcpu_index] = load if load > 0 else Fraction(0)
            self._loads[target] = self._loads.get(target, Fraction(0)) + bw
        super().on_pcpu_failed(pcpu_index, victim)
