"""Host-level (global) EDF scheduler with deferrable-server VCPUs.

Each RT VCPU is a *deferrable server* with a (budget, period) interface:
the budget is replenished to its full value at every period boundary,
the server's deadline is the end of the current period, and unused
budget is retained while the VCPU idles (but never carried across a
replenishment).  Among servers with budget and runnable work, the m
earliest deadlines run on the m PCPUs.

Two systems in the paper use exactly this scheduler:

- the **motivating example** (Figure 1): VMs scheduled by EDF according
  to their (slice, period), with no cross-layer information; and
- **RT-Xen 2.0's best configuration** (§4.1): gEDF with deferrable
  server at the host level, with the interfaces computed offline by CSA.

PCPUs not needed by RT servers run background VCPUs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..guest.vcpu import VCPU
from ..simcore.errors import ConfigurationError, SchedulingError
from ..simcore.events import PRIORITY_BUDGET, PRIORITY_SCHEDULE, Event
from .scheduler import HostScheduler


class _Server:
    """Deferrable-server state for one RT VCPU."""

    __slots__ = ("vcpu", "budget", "period", "remaining", "deadline", "replenish_event", "exhaust_event")

    def __init__(self, vcpu: VCPU, budget: int, period: int) -> None:
        self.vcpu = vcpu
        self.budget = budget
        self.period = period
        self.remaining = 0
        self.deadline = 0
        self.replenish_event: Optional[Event] = None
        self.exhaust_event: Optional[Event] = None


class EDFHostScheduler(HostScheduler):
    """Global EDF over deferrable-server VCPUs."""

    name = "host-edf-ds"

    def __init__(self) -> None:
        super().__init__()
        self._servers: Dict[int, _Server] = {}  # vcpu uid -> server
        self._started = False

    # -- population ----------------------------------------------------------------

    def add_vcpu(self, vcpu: VCPU) -> None:
        """Schedule *vcpu* as a server using its (budget, period) params."""
        if vcpu.uid in self._servers:
            raise ConfigurationError(f"{vcpu.name} is already scheduled")
        if vcpu.period_ns <= 0 or vcpu.budget_ns <= 0:
            raise ConfigurationError(
                f"{vcpu.name} has no (budget, period) interface configured"
            )
        server = _Server(vcpu, vcpu.budget_ns, vcpu.period_ns)
        self._servers[vcpu.uid] = server
        vcpu.admitted = True
        if self._started:
            self._replenish(server)

    def remove_vcpu(self, vcpu: VCPU) -> None:
        server = self._servers.pop(vcpu.uid, None)
        if server is None:
            return
        self.engine.cancel(server.replenish_event)
        self.engine.cancel(server.exhaust_event)
        pcpu_index = self.machine.pcpu_of(vcpu)
        if pcpu_index is not None:
            self.machine.set_running(pcpu_index, None)
            self.fill_with_background(pcpu_index)

    # -- server lifecycle -----------------------------------------------------------

    def _replenish(self, server: _Server) -> None:
        # Sync first: time consumed before this instant must drain the old
        # budget, not the fresh one.
        self.machine.sync_all()
        now = self.engine.now
        server.remaining = server.budget
        server.deadline = now + server.period
        server.replenish_event = self.engine.after(
            server.period,
            self._replenish,
            server,
            priority=PRIORITY_BUDGET,
            name=f"replenish:{server.vcpu.name}",
        )
        self._reschedule()

    def _exhaust(self, server: _Server) -> None:
        server.exhaust_event = None
        self.machine.sync_all()  # account() drains the budget exactly
        if server.remaining > 0:  # raced with a preemption; timer is stale
            return
        self._reschedule()

    def account(self, vcpu: VCPU, pcpu_index: int, elapsed: int) -> None:
        server = self._servers.get(vcpu.uid)
        if server is not None:
            server.remaining = max(0, server.remaining - elapsed)

    # -- notifications ------------------------------------------------------------------

    def on_vcpu_wake(self, vcpu: VCPU) -> None:
        if vcpu.uid in self._servers:
            self._reschedule()
        elif vcpu in self._background:
            free = self._free_pcpus()
            if free:
                self.fill_with_background(free[0])

    def on_vcpu_idle(self, vcpu: VCPU, pcpu_index: int) -> None:
        # Deferrable behaviour: the server keeps its budget; the PCPU is
        # handed to the next eligible server or a background VCPU.
        self._reschedule()

    # -- the scheduling decision -----------------------------------------------------------

    def _eligible(self) -> List[_Server]:
        servers = [
            s
            for s in self._servers.values()
            if s.remaining > 0 and s.vcpu.vm.vcpu_has_work(s.vcpu)
        ]
        servers.sort(key=lambda s: (s.deadline, s.vcpu.uid))
        return servers

    def _free_pcpus(self) -> List[int]:
        return [p.index for p in self.machine.pcpus if p.running_vcpu is None]

    def _reschedule(self) -> None:
        """Run the m earliest-deadline eligible servers; fill the rest."""
        machine = self.machine
        machine.sync_all()
        eligible = self._eligible()
        chosen = eligible[: machine.pcpu_count]
        chosen_uids: Set[int] = {s.vcpu.uid for s in chosen}
        locations = machine.vcpu_locations()

        # Vacate PCPUs whose RT occupant is no longer chosen.
        for pcpu in machine.pcpus:
            occupant = pcpu.running_vcpu
            if occupant is None:
                continue
            if occupant.uid in self._servers and occupant.uid not in chosen_uids:
                machine.set_running(pcpu.index, None)

        # Place chosen servers, preferring their current PCPU (no migration).
        pending = [s for s in chosen if machine.pcpu_of(s.vcpu) is None]
        for server in pending:
            target = self._pick_pcpu_for(server, chosen_uids)
            if target is None:
                raise SchedulingError(
                    f"no PCPU available for chosen server {server.vcpu.name}"
                )
            machine.charge_schedule(target, elements=len(eligible))
            machine.set_running(target, server.vcpu)
            self._arm_exhaust(server)

        # Maintain exhaust timers for servers that kept their PCPU.
        for server in chosen:
            if server not in pending:
                self._arm_exhaust(server)
        for server in self._servers.values():
            if server.vcpu.uid not in chosen_uids:
                self._disarm_exhaust(server)

        for index in self._free_pcpus():
            self.fill_with_background(index)

    def _pick_pcpu_for(self, server: _Server, chosen_uids: Set[int]) -> Optional[int]:
        free = self._free_pcpus()
        if free:
            return free[0]
        # Preempt a background VCPU if one holds a PCPU.
        for pcpu in self.machine.pcpus:
            occupant = pcpu.running_vcpu
            if occupant is not None and occupant.uid not in self._servers:
                return pcpu.index
        return None

    def _arm_exhaust(self, server: _Server) -> None:
        target = self.engine.now + server.remaining
        event = server.exhaust_event
        if event is not None and event.active and event.time == target:
            return
        self._disarm_exhaust(server)
        if server.remaining <= 0:
            return
        server.exhaust_event = self.engine.at(
            target,
            self._exhaust,
            server,
            priority=PRIORITY_BUDGET,
            name=f"exhaust:{server.vcpu.name}",
        )

    def _disarm_exhaust(self, server: _Server) -> None:
        if server.exhaust_event is not None:
            self.engine.cancel(server.exhaust_event)
            server.exhaust_event = None

    # -- lifecycle ------------------------------------------------------------------------

    def start(self) -> None:
        self._started = True
        for server in self._servers.values():
            self._replenish(server)
        if not self._servers:
            for index in self._free_pcpus():
                self.fill_with_background(index)


class PartitionedEDFHostScheduler(EDFHostScheduler):
    """RT-Xen's partitioned configuration: pEDF + deferrable server.

    Each VCPU server is statically bound to one PCPU (first-fit
    decreasing by bandwidth at add time, or explicitly via *pcpu*); each
    PCPU runs EDF over its own servers with no migration.  The paper
    compares against RT-Xen's *best* configuration (gEDF); this variant
    completes the RT-Xen 2.0 design space for ablations.
    """

    name = "host-pedf-ds"

    def __init__(self) -> None:
        super().__init__()
        self._home: Dict[int, int] = {}  # vcpu uid -> pcpu index
        self._loads: Dict[int, float] = {}

    def add_vcpu(self, vcpu: VCPU, pcpu: Optional[int] = None) -> None:
        """Bind *vcpu* to a PCPU (first-fit decreasing when unspecified)."""
        if pcpu is None:
            bw = float(vcpu.bandwidth)
            pcpu = self._first_fit(bw)
            if pcpu is None:
                raise ConfigurationError(
                    f"no PCPU has {bw:.3f} bandwidth free for {vcpu.name} "
                    "(partitioned placement)"
                )
        elif not 0 <= pcpu < self.machine.pcpu_count:
            raise ConfigurationError(f"no PCPU {pcpu}")
        super().add_vcpu(vcpu)
        self._home[vcpu.uid] = pcpu
        self._loads[pcpu] = self._loads.get(pcpu, 0.0) + float(vcpu.bandwidth)

    def _first_fit(self, bw: float) -> Optional[int]:
        for index in range(self.machine.pcpu_count):
            if self._loads.get(index, 0.0) + bw <= 1.0 + 1e-12:
                return index
        return None

    def remove_vcpu(self, vcpu: VCPU) -> None:
        home = self._home.pop(vcpu.uid, None)
        if home is not None:
            self._loads[home] = self._loads.get(home, 0.0) - float(vcpu.bandwidth)
        super().remove_vcpu(vcpu)

    def _reschedule(self) -> None:
        """Per-PCPU EDF: each PCPU independently runs its earliest server."""
        machine = self.machine
        machine.sync_all()
        eligible = self._eligible()
        for pcpu in machine.pcpus:
            local = [s for s in eligible if self._home.get(s.vcpu.uid) == pcpu.index]
            chosen = local[0] if local else None
            occupant = pcpu.running_vcpu
            occupant_is_rt = occupant is not None and occupant.uid in self._servers
            if chosen is None:
                if occupant_is_rt:
                    machine.set_running(pcpu.index, None)
                if pcpu.running_vcpu is None:
                    self.fill_with_background(pcpu.index)
                continue
            if occupant is not chosen.vcpu:
                machine.charge_schedule(pcpu.index, elements=len(local))
                if occupant is not None:
                    machine.set_running(pcpu.index, None)
                machine.set_running(pcpu.index, chosen.vcpu)
            self._arm_exhaust(chosen)
            for server in local[1:]:
                self._disarm_exhaust(server)
