"""The physical host model and simulation driver.

The machine owns the PCPUs and enforces the two-level execution
discipline:

- the **host scheduler** decides which VCPU occupies each PCPU, through
  :meth:`set_running`;
- the **guest scheduler** of the occupying VM decides which job that
  VCPU executes, re-evaluated by the machine's refresh pass after every
  event batch;
- the machine charges elapsed CPU time to the running job between
  events, maintains overhead windows from the :class:`CostModel`, and
  fires exact job-completion events.

Invariant: the (PCPU → VCPU → job) mapping only changes inside event
handlers, and every handler that changes it synchronizes charged work
first.  Work charging is exact integer arithmetic, so completion events
land precisely when the job's remaining work reaches zero.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..guest.task import Job
from ..guest.vcpu import VCPU
from ..guest.vm import VM
from ..metrics.overhead import HostMetrics
from ..simcore.engine import Engine
from ..simcore.errors import ConfigurationError, SchedulingError
from ..simcore.events import PRIORITY_COMPLETION, PRIORITY_SCHEDULE
from ..simcore.trace import NullTrace, Trace
from ..telemetry import events as T
from ..telemetry.bus import TelemetryBus
from .costs import DEFAULT_COSTS, CostModel
from .pcpu import PCPU


def _noop() -> None:
    """Placeholder callback for refresh-kick events."""


class Machine:
    """A multiprocessor host executing VMs under a host scheduler."""

    def __init__(
        self,
        engine: Engine,
        pcpu_count: int,
        cost_model: CostModel = DEFAULT_COSTS,
        trace: Optional[Trace] = None,
    ) -> None:
        if pcpu_count < 1:
            raise ConfigurationError("a machine needs at least one PCPU")
        self.engine = engine
        self.pcpus: List[PCPU] = [PCPU(i) for i in range(pcpu_count)]
        self.costs = cost_model
        #: Every producer on this host publishes typed events here; the
        #: watcher below caches per-kind interest flags so the hot paths
        #: pay one attribute test when nothing subscribes.
        self.bus = TelemetryBus()
        self.bus.watch(self._on_telemetry_change)
        self.trace = trace if trace is not None else NullTrace()
        self.metrics = HostMetrics()
        #: The owning system's actuation port (set by ``BaseSystem``):
        #: guest schedulers reach the control plane through the machine
        #: they are attached to, the same way they reach the bus.
        self.control = None
        self.vms: List[VM] = []
        self.host_scheduler = None
        self._vcpu_pcpu: Dict[int, int] = {}  # vcpu uid -> pcpu index
        self._vcpu_last_pcpu: Dict[int, int] = {}  # for migration detection
        self._started = False
        self._kick = None
        #: PCPUs whose guest dispatch must be re-evaluated by the next
        #: refresh pass.  Every state change that can alter a PCPU's
        #: pick_job() answer, its completion target, or its idleness
        #: marks it here; untouched PCPUs are skipped entirely.
        self._dirty_pcpus: set = set(range(pcpu_count))
        #: gEDF guests couple their VCPUs through the claim table, so a
        #: refresh of one PCPU can change another's pick; fall back to
        #: scanning every occupied PCPU when such a VM is attached.
        self._has_gedf_vm = False
        #: Timestamp of the last full sync sweep (sync_all memoisation:
        #: a second sweep at the same instant is always a no-op).
        self._all_synced_at = -1
        #: Online-PCPU count, maintained by fail/recover instead of
        #: being recounted on every scheduling decision.
        self._available = pcpu_count
        #: Live completion-event targets (time -> count): host
        #: schedulers probe "does a running job finish at this very
        #: instant" with one membership test when deciding whether a
        #: pre-decision charge sweep can be skipped.
        self._completions_due: Dict[int, int] = {}
        engine.add_post_hook(self._refresh)

    @property
    def trace(self) -> Trace:
        return self._trace

    @trace.setter
    def trace(self, value: Trace) -> None:
        # The trace is a bus subscriber like any other consumer: a real
        # trace connects (raising the relevant interest flags), a
        # NullTrace leaves the bus silent.  ``_tracing`` is kept for
        # callers that still ask "is a real trace installed?".
        old = getattr(self, "_trace", None)
        if old is not None:
            old.disconnect()
        self._trace = value
        self._tracing = not isinstance(value, NullTrace)
        if self._tracing:
            value.connect(self.bus)

    def _on_telemetry_change(self, bus: TelemetryBus) -> None:
        """Refresh the cached per-kind interest flags (bus watcher)."""
        has = bus.has_subscribers
        self._t_segment = has(T.SEGMENT_END)
        self._t_switch = has(T.CONTEXT_SWITCH) or has(T.MIGRATION)
        self._t_complete = has(T.JOB_COMPLETE)
        self._t_deadline = (
            has(T.DEADLINE_HIT) or has(T.DEADLINE_MISS) or has(T.JOB_LATENCY)
        )
        self._t_fault = has(T.FAULT_INJECTED) or has(T.FAULT_RECOVERED)
        self._t_account = has(T.CPU_ACCOUNT)

    def _request_refresh(self) -> None:
        """Guarantee a refresh pass runs at the current instant.

        State changes made outside event handlers (e.g. a scheduler's
        synchronous start-up) would otherwise wait for the next event.
        Inside a batch no event is needed: the post-event refresh hook
        runs when the batch drains.
        """
        if self.engine.in_batch:
            return
        if self._kick is None or not self._kick.active:
            self._kick = self.engine.at(
                self.engine.now, _noop, priority=PRIORITY_SCHEDULE, name="refresh-kick"
            )

    # -- wiring -----------------------------------------------------------------

    @property
    def pcpu_count(self) -> int:
        return len(self.pcpus)

    @property
    def available_pcpus(self) -> List[PCPU]:
        """The PCPUs currently online (not failed)."""
        return [p for p in self.pcpus if not p.failed]

    @property
    def available_count(self) -> int:
        """Number of online PCPUs (cached; updated on fail/recover)."""
        return self._available

    def set_host_scheduler(self, scheduler) -> None:
        """Install the VMM-level scheduler."""
        self.host_scheduler = scheduler
        scheduler.attach(self)

    def attach_vm(self, vm: VM) -> None:
        """Bring *vm* under this machine's control."""
        if vm.machine is not None:
            raise ConfigurationError(f"VM {vm.name} is already attached")
        vm.machine = self
        for vcpu in vm.vcpus:
            # Replace the provisional process-global uid with a dense
            # engine-scoped one (stable across re-attach on migration).
            if not vcpu.uid_final:
                vcpu.uid = self.engine.next_uid()
                vcpu.uid_final = True
        self.vms.append(vm)
        vm.guest_scheduler.bind_telemetry(self.bus)
        if vm._is_gedf:
            self._has_gedf_vm = True

    def vcpu_locations(self) -> Dict[int, int]:
        """Mapping of running VCPU uid -> PCPU index."""
        return dict(self._vcpu_pcpu)

    def pcpu_of(self, vcpu: VCPU) -> Optional[int]:
        """PCPU currently running *vcpu*, or None."""
        return self._vcpu_pcpu.get(vcpu.uid)

    # -- work charging -------------------------------------------------------------

    def sync_pcpu(self, pcpu: PCPU) -> None:
        """Charge execution on *pcpu* from its last sync point to now."""
        now = self.engine._now
        last = pcpu.last_sync
        if last == now:
            return
        elapsed = now - last
        if elapsed < 0:  # pragma: no cover - engine invariant
            raise SchedulingError(f"PCPU {pcpu.index} synced into the past")
        until = pcpu.overhead_until
        if until > last:
            overhead = (until if until < now else now) - last
        else:
            overhead = 0
        effective = elapsed - overhead
        usage = pcpu.usage
        if usage is None:
            usage = pcpu.usage = self.metrics.pcpu(pcpu.index)
        usage.overhead += overhead
        vcpu = pcpu.running_vcpu
        job = pcpu.current_job
        if vcpu is not None and job is not None and effective > 0:
            job.charge(effective)
            usage.busy += effective
            if self._t_segment:
                self.bus.publish(
                    T.SEGMENT_END,
                    T.SegmentEndEvent(
                        now,
                        pcpu.index,
                        vcpu.name,
                        job.task.name,
                        max(last, now - effective),
                        now,
                    ),
                )
            if job.remaining == 0:
                # Retire immediately: a preemption at this exact instant
                # would otherwise cancel the pending completion event and
                # leave the finished job clogging the guest queue.
                self._retire(pcpu, job)
        if vcpu is not None and self.host_scheduler is not None:
            if self._t_account:
                self.bus.publish(
                    T.CPU_ACCOUNT,
                    T.CpuAccountEvent(now, vcpu.name, vcpu.uid, pcpu.index, elapsed),
                )
            self.host_scheduler.account(vcpu, pcpu.index, elapsed)
        pcpu.last_sync = now

    def sync_all(self) -> None:
        """Charge execution on every PCPU up to now.

        Memoised per instant: once every PCPU has been synced at the
        current time a repeat sweep is a no-op (``sync_pcpu`` with zero
        elapsed does nothing), so callers on the hot path can invoke
        this freely without paying O(pcpus) more than once per batch.
        """
        now = self.engine._now
        if self._all_synced_at == now:
            return
        for pcpu in self.pcpus:
            if pcpu.last_sync != now:
                self.sync_pcpu(pcpu)
        self._all_synced_at = now

    def sync_running(self, vcpu: VCPU) -> None:
        """Sync only the PCPU occupied by *vcpu* (no-op when not running).

        Targeted alternative to :meth:`sync_all` for scheduler paths that
        touch a single VCPU's accounting (budget replenish/exhaust).
        """
        index = self._vcpu_pcpu.get(vcpu.uid)
        if index is not None:
            self.sync_pcpu(self.pcpus[index])

    # -- overhead windows -------------------------------------------------------------

    def _extend_overhead(self, pcpu: PCPU, cost: int) -> None:
        if cost <= 0:
            return
        now = self.engine._now
        pcpu.overhead_until = max(pcpu.overhead_until, now) + cost
        # The overhead window pushes the PCPU's effective start, so any
        # armed completion target is stale until the next refresh.
        self._dirty_pcpus.add(pcpu.index)

    def charge_schedule(self, pcpu_index: int, elements: int = 0) -> None:
        """Charge one host schedule() invocation on *pcpu_index*.

        Host schedulers call this at every decision point; the cost both
        extends the PCPU's overhead window and feeds Table 6's accounting.
        """
        cost = self.costs.schedule_cost(elements)
        pcpu = self.pcpus[pcpu_index]
        if pcpu.last_sync != self.engine._now:
            self.sync_pcpu(pcpu)
        self._extend_overhead(pcpu, cost)
        self.metrics.overhead.record_schedule(cost)

    def charge_extra(self, pcpu_index: int, cost: int) -> None:
        """Charge an arbitrary scheduler-specific overhead (wake path etc.).

        Recorded under schedule() time in the overhead accounting.
        """
        if cost <= 0:
            return
        pcpu = self.pcpus[pcpu_index]
        self.sync_pcpu(pcpu)
        self._extend_overhead(pcpu, cost)
        self.metrics.overhead.record_schedule(cost)

    def charge_hypercall(self, pcpu_index: int = 0) -> None:
        """Charge one guest->host hypercall."""
        cost = self.costs.hypercall_ns
        pcpu = self.pcpus[pcpu_index]
        self.sync_pcpu(pcpu)
        self._extend_overhead(pcpu, cost)
        self.metrics.overhead.record_hypercall(cost)

    # -- host scheduler actions ----------------------------------------------------------

    def set_running(self, pcpu_index: int, vcpu: Optional[VCPU]) -> None:
        """Place *vcpu* (or nothing) on PCPU *pcpu_index*.

        Charges context-switch (and migration) overhead when the occupant
        changes.  A VCPU may occupy at most one PCPU; schedulers must
        vacate it first when moving it.
        """
        pcpu = self.pcpus[pcpu_index]
        old = pcpu.running_vcpu
        if old is vcpu:
            return
        if pcpu.last_sync != self.engine._now:
            self.sync_pcpu(pcpu)
        if old is not None:
            del self._vcpu_pcpu[old.uid]
            self._vcpu_last_pcpu[old.uid] = pcpu_index
            old.vm.on_vcpu_descheduled(old)
        if vcpu is not None:
            if pcpu.failed:
                raise SchedulingError(
                    f"cannot place {vcpu.name} on failed PCPU {pcpu_index}"
                )
            holder = self._vcpu_pcpu.get(vcpu.uid)
            if holder is not None:
                raise SchedulingError(
                    f"{vcpu.name} is already running on PCPU {holder}, "
                    f"cannot also run on {pcpu_index}"
                )
            self._vcpu_pcpu[vcpu.uid] = pcpu_index
            cost = self.costs.context_switch_ns
            migrated = (
                vcpu.uid in self._vcpu_last_pcpu
                and self._vcpu_last_pcpu[vcpu.uid] != pcpu_index
            )
            if cost > 0:
                self.metrics.overhead.record_context_switch(cost)
            if migrated and self.costs.migration_ns > 0:
                self.metrics.overhead.record_migration(self.costs.migration_ns)
                cost += self.costs.migration_ns
            self._extend_overhead(pcpu, cost)
            if self._t_switch:
                now = self.engine.now
                self.bus.publish(
                    T.CONTEXT_SWITCH,
                    T.ContextSwitchEvent(now, pcpu_index, vcpu.name, migrated),
                )
                if migrated:
                    self.bus.publish(
                        T.MIGRATION,
                        T.MigrationEvent(
                            now,
                            vcpu.name,
                            self._vcpu_last_pcpu[vcpu.uid],
                            pcpu_index,
                        ),
                    )
        elif self._t_switch:
            self.bus.publish(
                T.CONTEXT_SWITCH,
                T.ContextSwitchEvent(self.engine.now, pcpu_index, None, False),
            )
        pcpu.running_vcpu = vcpu
        pcpu.current_job = None
        pcpu.idle_notified = False
        self._cancel_completion(pcpu)
        self._dirty_pcpus.add(pcpu_index)
        self._request_refresh()

    # -- fault injection ------------------------------------------------------------------

    def fail_pcpu(self, pcpu_index: int) -> Optional[VCPU]:
        """Take PCPU *pcpu_index* offline (fault injection).

        Charges work up to now, evicts the current occupant (the victim
        is returned so callers/schedulers can migrate it), marks the
        PCPU failed and notifies the host scheduler.  Idempotent: failing
        an already-failed PCPU returns None and changes nothing.
        """
        pcpu = self.pcpus[pcpu_index]
        if pcpu.failed:
            return None
        victim = pcpu.running_vcpu
        if victim is not None:
            self.set_running(pcpu_index, None)
        pcpu.failed = True
        self._available -= 1
        # The eviction above already synced; an idle PCPU needs it still.
        self.sync_pcpu(pcpu)
        self._cancel_completion(pcpu)
        self._dirty_pcpus.discard(pcpu_index)
        if self._t_fault:
            self.bus.publish(
                T.FAULT_INJECTED,
                T.FaultInjectedEvent(
                    self.engine.now,
                    "pcpu_fail",
                    (pcpu_index, victim.name if victim is not None else None),
                ),
            )
        if self.host_scheduler is not None:
            self.host_scheduler.on_pcpu_failed(pcpu_index, victim)
        self._request_refresh()
        return victim

    def recover_pcpu(self, pcpu_index: int) -> None:
        """Bring a failed PCPU back online.  Idempotent."""
        pcpu = self.pcpus[pcpu_index]
        if not pcpu.failed:
            return
        pcpu.failed = False
        self._available += 1
        pcpu.last_sync = self.engine.now
        pcpu.overhead_until = self.engine.now
        pcpu.idle_notified = False
        self._dirty_pcpus.add(pcpu_index)
        if self._t_fault:
            self.bus.publish(
                T.FAULT_RECOVERED,
                T.FaultRecoveredEvent(
                    self.engine.now, "pcpu_recover", (pcpu_index, None)
                ),
            )
        if self.host_scheduler is not None:
            self.host_scheduler.on_pcpu_recovered(pcpu_index)
        self._request_refresh()

    def detach_vm(self, vm: VM) -> None:
        """Remove *vm* from this machine (VM shutdown churn).

        The caller (``BaseSystem.shutdown_vm``) is responsible for first
        unregistering the VM's tasks and removing its VCPUs from the
        host scheduler; this only severs the machine link.
        """
        if vm.machine is not self:
            raise ConfigurationError(f"VM {vm.name} is not attached to this machine")
        vm.machine = None
        self.vms.remove(vm)
        vm.guest_scheduler.unbind_telemetry()
        self._has_gedf_vm = any(v._is_gedf for v in self.vms)

    # -- notifications --------------------------------------------------------------------

    def notify_wake(self, vcpu: VCPU) -> None:
        """A job was released that *vcpu* may run (called by the VM)."""
        pcpu_index = self._vcpu_pcpu.get(vcpu.uid)
        if pcpu_index is not None:
            self.pcpus[pcpu_index].idle_notified = False
            # A running VCPU's guest pick may change with the new job.
            self._dirty_pcpus.add(pcpu_index)
        if self.host_scheduler is not None:
            self.host_scheduler.on_vcpu_wake(vcpu)

    def notify_dispatch_change(self, vm: VM) -> None:
        """Task churn in *vm* (register/adjust/unregister) may change the
        guest pick of any of its running VCPUs; re-evaluate them."""
        for pcpu in self.pcpus:
            occupant = pcpu.running_vcpu
            if occupant is not None and occupant.vm is vm:
                self._dirty_pcpus.add(pcpu.index)
        self._request_refresh()

    # -- completion management ----------------------------------------------------------------

    def _drop_completion_due(self, time: int) -> None:
        due = self._completions_due
        count = due.get(time, 0)
        if count <= 1:
            due.pop(time, None)
        else:
            due[time] = count - 1

    def _cancel_completion(self, pcpu: PCPU) -> None:
        event = pcpu.completion_event
        if event is not None:
            if not event.cancelled and not event.consumed:
                self._drop_completion_due(event.time)
            self.engine.cancel(event)
            pcpu.completion_event = None

    def _schedule_completion(self, pcpu: PCPU, job: Job) -> None:
        target = pcpu.effective_start(self.engine._now) + job.remaining
        event = pcpu.completion_event
        if event is not None and event.active and event.time == target and event.args[1] is job:
            return
        self._cancel_completion(pcpu)
        pcpu.completion_event = self.engine.at(
            target,
            self._on_completion,
            pcpu,
            job,
            priority=PRIORITY_COMPLETION,
            name=job.task.completion_name,
        )
        due = self._completions_due
        due[target] = due.get(target, 0) + 1

    def _on_completion(self, pcpu: PCPU, job: Job) -> None:
        self._drop_completion_due(self.engine.now)
        pcpu.completion_event = None
        self.sync_pcpu(pcpu)  # retires the job as a side effect
        if job.completed_at is None:
            raise SchedulingError(
                f"completion event fired for {job!r} with work remaining "
                f"on PCPU {pcpu.index}"
            )

    def _retire(self, pcpu: PCPU, job: Job) -> None:
        now = self.engine.now
        job.task.retire_job(job, now)
        if pcpu.current_job is job:
            pcpu.current_job = None
        self._cancel_completion(pcpu)
        self._dirty_pcpus.add(pcpu.index)
        vcpu = pcpu.running_vcpu
        if vcpu is not None and self.host_scheduler is not None:
            self.host_scheduler.on_work_drained(vcpu)
        if self._t_complete:
            self.bus.publish(
                T.JOB_COMPLETE, T.JobCompleteEvent(now, job.task.name, job.index)
            )
        if self._t_deadline and job.deadline is not None:
            # Same outcome rule as DeadlineStats.record_completion.
            if now <= job.deadline:
                self.bus.publish(
                    T.DEADLINE_HIT,
                    T.DeadlineHitEvent(
                        now, job.task.name, job.index, job.release, job.deadline
                    ),
                )
            else:
                self.bus.publish(
                    T.DEADLINE_MISS,
                    T.DeadlineMissEvent(
                        now,
                        job.task.name,
                        job.index,
                        job.release,
                        job.deadline,
                        now - job.deadline,
                    ),
                )
            self.bus.publish(
                T.JOB_LATENCY,
                T.JobLatencyEvent(now, job.task.name, job.index, now - job.release),
            )

    # -- the refresh pass ----------------------------------------------------------------------

    def _refresh(self) -> None:
        """Re-evaluate guest dispatch after every event batch.

        Only PCPUs in the dirty set are touched: a PCPU whose dispatch
        inputs did not change since its last refresh picks the same job,
        keeps the same completion target (the target is invariant under
        elapsed time while the job runs), and reports no new idleness —
        so skipping it is an exact no-op.  The scan runs in ascending
        PCPU order; marks added *behind* the scan position during the
        pass are deferred to a kicked follow-up batch at the same
        instant, which is precisely when the former full scan would have
        handled them.

        gEDF guests couple VCPUs through the claim table (one VCPU's
        pick can change another's), so while such a VM is attached we
        fall back to the full scan.
        """
        if self.host_scheduler is None:
            return
        now = self.engine._now
        if self._has_gedf_vm:
            self.sync_all()
            self._dirty_pcpus.clear()
            for pcpu in self.pcpus:
                self._refresh_pcpu(pcpu, now)
            return
        dirty = self._dirty_pcpus
        if not dirty:
            return
        last = -1
        while True:
            # Min of the marks ahead of the scan front, in one pass and
            # without a scratch list (this runs after every event batch).
            index = -1
            for i in dirty:
                if i > last and (index < 0 or i < index):
                    index = i
            if index < 0:
                break
            dirty.discard(index)
            last = index
            self._refresh_pcpu(self.pcpus[index], now)
            # Marks the processing itself put on this PCPU (a retire
            # during its sync, a guest-switch overhead extension) are
            # consumed by the pick/re-arm that follows them; drop them
            # so they do not trigger a pointless kicked follow-up.
            dirty.discard(index)
        if dirty:
            # Marks at or behind the scan front: handle next batch.
            self._request_refresh()

    def _refresh_pcpu(self, pcpu: PCPU, now: int) -> None:
        """Re-evaluate guest dispatch on one PCPU (see :meth:`_refresh`)."""
        if pcpu.last_sync != now:
            self.sync_pcpu(pcpu)
        vcpu = pcpu.running_vcpu
        if vcpu is None:
            return
        job = vcpu.vm.pick_job(vcpu, now)
        if job is not None and job.done:
            job = None
        if job is not pcpu.current_job:
            if (
                pcpu.current_job is not None
                and job is not None
                and self.costs.guest_switch_ns > 0
            ):
                self._extend_overhead(pcpu, self.costs.guest_switch_ns)
            pcpu.current_job = job
        if job is not None:
            pcpu.idle_notified = False
            self._schedule_completion(pcpu, job)
        else:
            self._cancel_completion(pcpu)
            if not pcpu.idle_notified:
                pcpu.idle_notified = True
                self.engine.at(
                    now,
                    self._report_idle,
                    pcpu,
                    vcpu,
                    priority=PRIORITY_SCHEDULE,
                    name=vcpu.idle_name,
                )

    def _report_idle(self, pcpu: PCPU, vcpu: VCPU) -> None:
        if pcpu.running_vcpu is not vcpu:
            return  # assignment changed in the meantime
        if vcpu.vm.vcpu_has_work(vcpu):
            return  # work arrived at the same instant
        self.host_scheduler.on_vcpu_idle(vcpu, pcpu.index)

    # -- run ------------------------------------------------------------------------------------

    def start(self) -> None:
        """Start the host scheduler (idempotent)."""
        if self.host_scheduler is None:
            raise ConfigurationError("no host scheduler installed")
        if not self._started:
            self._started = True
            self.host_scheduler.start()

    def run(self, until: int) -> None:
        """Run the simulation up to absolute time *until*."""
        self.start()
        self.engine.run_until(until)
        self.sync_all()

    def finalize(self) -> None:
        """Close out end-of-run accounting on every VM."""
        self.sync_all()
        for vm in self.vms:
            vm.finalize(self.engine.now)

    def total_cpu_time(self) -> int:
        """Wall time elapsed times the number of PCPUs (Table 6 denominator)."""
        return self.engine.now * len(self.pcpus)
