"""Shared plumbing for complete simulated systems.

``RTVirtSystem``, ``RTXenSystem`` and ``CreditSystem`` all wrap a
machine, an engine and a set of VMs; this base class holds the common
lifecycle and reporting so each system only describes its scheduler
wiring.
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..control import actions as A
from ..control.port import ActuationPort
from ..guest.vm import VM
from ..metrics.deadlines import MissReport, collect_miss_report
from ..simcore.engine import Engine
from ..simcore.trace import Trace
from .costs import DEFAULT_COSTS, CostModel
from .machine import Machine


class BaseSystem:
    """A machine plus VM bookkeeping and run/report helpers."""

    def __init__(
        self,
        pcpu_count: int,
        engine: Optional[Engine] = None,
        cost_model: CostModel = DEFAULT_COSTS,
        trace: Optional[Trace] = None,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.machine = Machine(self.engine, pcpu_count, cost_model, trace)
        #: The actuation port every bandwidth/placement mutation flows
        #: through.  The base system executes the generic mechanisms
        #: (cross-layer port calls, PCPU faults); subclasses register
        #: their own (host admission, scheduler renegotiation).
        self.control = ActuationPort()
        #: REPRO_DIRECT_ACTUATION=1 leaves the machine's port detached:
        #: every call site falls back to its direct mechanism call (the
        #: pre-refactor shape).  Only ``tools/check_perf.py`` uses this,
        #: as the in-session baseline for the port-overhead A/B gate;
        #: policies cannot attach while it is set.
        if os.environ.get("REPRO_DIRECT_ACTUATION") == "1":
            self.machine.control = None
        else:
            self.machine.control = self.control
        self.control.register(
            A.IncBandwidth.kind, lambda a: a.port.request_increase(a.updates)
        )
        self.control.register(
            A.DecBandwidth.kind, lambda a: a.port.notify_decrease(a.updates)
        )
        self.control.register(
            A.FailPcpu.kind, lambda a: a.system._do_fail_pcpu(a.pcpu_index)
        )
        self.control.register(
            A.RecoverPcpu.kind, lambda a: a.system._do_recover_pcpu(a.pcpu_index)
        )
        self.vms: List[VM] = []
        #: Tasks of VMs shut down mid-run (VM churn); kept so the miss
        #: report still covers their jobs.
        self._retired_tasks: List = []

    def _attach(self, vm: VM) -> VM:
        self.machine.attach_vm(vm)
        self.vms.append(vm)
        return vm

    # -- dynamic VM lifecycle (fault injection / churn) ---------------------------

    def shutdown_vm(self, vm: VM) -> None:
        """Tear *vm* down mid-run: abandon its pending jobs, release its
        bandwidth, free its VCPUs and detach it from the machine."""
        now = self.engine.now
        for task in list(vm.rt_tasks):
            task.finalize(now)  # pending jobs count as abandoned
            self._retired_tasks.append(task)
            vm.unregister_task(task)
        scheduler = self.machine.host_scheduler
        for vcpu in vm.vcpus:
            scheduler.remove_vcpu(vcpu)
            scheduler.remove_background_vcpu(vcpu)
            pcpu_index = self.machine.pcpu_of(vcpu)
            if pcpu_index is not None:
                self.machine.set_running(pcpu_index, None)
        self.machine.detach_vm(vm)
        self.vms.remove(vm)

    # -- live migration hooks ------------------------------------------------------

    def extract_vm(self, vm: VM) -> None:
        """Pause *vm* for a live migration's stop-and-copy blackout.

        Unlike :meth:`shutdown_vm` this is non-destructive: tasks keep
        their state, and jobs released during the blackout stay queued
        in the guest scheduler (clients pass explicit release times), so
        they simply receive no CPU until a destination host
        :meth:`adopt_vm`\\ s the VM.
        """
        scheduler = self.machine.host_scheduler
        for vcpu in vm.vcpus:
            pcpu_index = self.machine.pcpu_of(vcpu)
            if pcpu_index is not None:
                self.machine.set_running(pcpu_index, None)
            scheduler.remove_vcpu(vcpu)
            scheduler.remove_background_vcpu(vcpu)
        self.machine.detach_vm(vm)
        self.vms.remove(vm)

    def adopt_vm(self, vm: VM) -> None:
        """Resume a migrated *vm* on this host (end of stop-and-copy).

        The machine attach rebinds guest telemetry to this host's bus;
        VCPUs with a live reservation re-enter the host scheduler, and
        queued-up jobs wake their VCPUs so the blackout backlog drains.
        """
        self.machine.attach_vm(vm)
        self.vms.append(vm)
        self._enter_host_scheduler(vm)
        self._wake_backlog(vm)

    def _enter_host_scheduler(self, vm: VM) -> None:
        """Scheduler-specific half of :meth:`adopt_vm`."""
        for vcpu in vm.vcpus:
            if vcpu.budget_ns > 0 and vcpu.period_ns > 0:
                self.machine.host_scheduler.add_vcpu(vcpu)

    def _wake_backlog(self, vm: VM) -> None:
        """Notify the host scheduler about jobs queued while paused."""
        woken = set()
        for task in vm.rt_tasks:
            if not task.has_work:
                continue
            for vcpu in vm.wake_targets(task):
                if vcpu.uid not in woken:
                    woken.add(vcpu.uid)
                    self.machine.notify_wake(vcpu)

    # -- fault entry points --------------------------------------------------------

    def fail_pcpu(self, pcpu_index: int) -> None:
        """Take a PCPU offline, routed through the actuation port."""
        self.control.submit(A.FailPcpu(system=self, pcpu_index=pcpu_index))

    def recover_pcpu(self, pcpu_index: int) -> None:
        """Bring a failed PCPU back online, through the actuation port."""
        self.control.submit(A.RecoverPcpu(system=self, pcpu_index=pcpu_index))

    def _do_fail_pcpu(self, pcpu_index: int) -> None:
        """Mechanism half of :meth:`fail_pcpu` (subclasses renegotiate)."""
        self.machine.fail_pcpu(pcpu_index)

    def _do_recover_pcpu(self, pcpu_index: int) -> None:
        """Mechanism half of :meth:`recover_pcpu`."""
        self.machine.recover_pcpu(pcpu_index)

    # -- run ------------------------------------------------------------------

    def run(self, duration_ns: int) -> None:
        """Run the simulation for *duration_ns* from the current time."""
        self.machine.run(self.engine.now + duration_ns)

    def run_until(self, time_ns: int) -> None:
        """Run the simulation up to the absolute time *time_ns*."""
        self.machine.run(time_ns)

    def finalize(self) -> None:
        """Close out end-of-run accounting (unfinished jobs, syncs)."""
        self.machine.finalize()

    # -- reporting ----------------------------------------------------------------

    def miss_report(self) -> MissReport:
        """Deadline outcomes over every RT task in every VM, including
        tasks of VMs shut down mid-run."""
        tasks = [t for vm in self.vms for t in vm.rt_tasks]
        tasks.extend(self._retired_tasks)
        return collect_miss_report(tasks)

    def overhead_percent(self) -> float:
        """Accounted scheduler overhead as a percent of total CPU time."""
        return self.machine.metrics.overhead.overhead_percent(self.machine.total_cpu_time())
