"""Physical CPU state.

A PCPU runs at most one VCPU at a time; within the VCPU, the guest
scheduler selects the current job.  All bookkeeping (work charging,
overhead windows, tentative completion events) is driven by the
:class:`repro.host.machine.Machine`; this class only holds the state.
"""

from __future__ import annotations

from typing import Optional

from ..guest.task import Job
from ..guest.vcpu import VCPU
from ..simcore.events import Event


class PCPU:
    """One physical processor of the simulated host."""

    __slots__ = (
        "index",
        "running_vcpu",
        "current_job",
        "last_sync",
        "overhead_until",
        "completion_event",
        "idle_notified",
        "usage",
        "failed",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.running_vcpu: Optional[VCPU] = None
        self.current_job: Optional[Job] = None
        #: Time up to which execution has been charged.
        self.last_sync: int = 0
        #: End of the pending overhead window (context switch etc.).
        self.overhead_until: int = 0
        #: Tentative job-completion event currently scheduled, if any.
        self.completion_event: Optional[Event] = None
        #: Guard so an idle VCPU is reported to the host scheduler once.
        self.idle_notified: bool = False
        #: Cached :class:`PcpuUsage` record (bound on first charge).
        self.usage = None
        #: True while the PCPU is offline (fault injection).  A failed
        #: PCPU runs nothing and schedulers must not place VCPUs on it.
        self.failed: bool = False

    @property
    def busy(self) -> bool:
        """True when a VCPU currently occupies this PCPU."""
        return self.running_vcpu is not None

    def effective_start(self, now: int) -> int:
        """Earliest instant from which real work can proceed."""
        return max(now, self.overhead_until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = self.running_vcpu.name if self.running_vcpu else "idle"
        return f"<PCPU {self.index} {who} job={self.current_job!r}>"
