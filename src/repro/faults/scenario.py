"""Deprecated alias of :mod:`repro.faults.timeline`.

``repro.faults.scenario`` collided with the top-level
:mod:`repro.scenario` (the declarative experiment runner): the same
trailing module name meant two unrelated "scenario" concepts, and a
relative-vs-absolute import slip silently picked the wrong one.  The
fault-timeline DSL now lives in :mod:`repro.faults.timeline`; this shim
re-exports it and warns.  Import from ``repro.faults`` (the public
path) or ``repro.faults.timeline`` instead.
"""

from __future__ import annotations

import warnings

from . import timeline as _timeline
from .timeline import At, Every, Scenario  # noqa: F401

# Warn once per *process*, not once per import: the parallel runner's
# worker warm-up (and anything else that pops this shim from
# ``sys.modules`` and re-imports it) would otherwise repeat the warning.
# The flag lives on the stable timeline module, which stays cached even
# when the shim module object itself is recreated.
if not getattr(_timeline, "_SCENARIO_SHIM_WARNED", False):
    _timeline._SCENARIO_SHIM_WARNED = True
    warnings.warn(
        "repro.faults.scenario is deprecated; use repro.faults.timeline "
        "(or the repro.faults package exports)",
        DeprecationWarning,
        stacklevel=2,
    )

__all__ = ["At", "Every", "Scenario"]
