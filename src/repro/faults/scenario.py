"""Deprecated alias of :mod:`repro.faults.timeline`.

``repro.faults.scenario`` collided with the top-level
:mod:`repro.scenario` (the declarative experiment runner): the same
trailing module name meant two unrelated "scenario" concepts, and a
relative-vs-absolute import slip silently picked the wrong one.  The
fault-timeline DSL now lives in :mod:`repro.faults.timeline`; this shim
re-exports it and warns.  Import from ``repro.faults`` (the public
path) or ``repro.faults.timeline`` instead.
"""

from __future__ import annotations

import warnings

from .timeline import At, Every, Scenario  # noqa: F401

warnings.warn(
    "repro.faults.scenario is deprecated; use repro.faults.timeline "
    "(or the repro.faults package exports)",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["At", "Every", "Scenario"]
