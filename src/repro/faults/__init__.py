"""Deterministic fault injection and dynamic scenarios.

The subsystem has three parts (DESIGN.md §8):

- :mod:`injectors` — fault classes applied as first-class simulation
  events: PCPU fail/recover, VM boot/shutdown churn, hypercall
  delay/drop, workload surge, and clock jitter on budget replenishment;
- :mod:`timeline` — a declarative timeline DSL
  (``Scenario([At(t, PcpuFail(2)), Every(p, VmChurn())])``) that
  installs injectors onto a system's event engine.  The DSL lives in
  ``src/repro/faults/timeline.py``; it was formerly named
  ``repro.faults.scenario``, renamed to stop colliding with the
  top-level :mod:`repro.scenario` experiment runner.  Importing the
  old name still works through a shim that raises exactly one
  :class:`DeprecationWarning` per process and re-exports the timeline
  symbols;
- :mod:`invariants` — an online checker hooked into the engine that
  validates scheduling invariants after every event batch and raises
  :class:`~repro.simcore.errors.InvariantViolation` with the offending
  decision window attached.

Everything is seedable through
:class:`~repro.simcore.rng.RandomStreams`, so fault programs replay
bit-identically — including across the parallel runner.
"""

from ..simcore.errors import InvariantViolation
from .injectors import (
    ClockJitter,
    Fault,
    FaultContext,
    HostFail,
    HostRecover,
    HypercallDelay,
    HypercallDrop,
    PcpuFail,
    PcpuRecover,
    VmChurn,
    WorkloadSurge,
)
from .invariants import InvariantChecker
from .timeline import At, Every, Scenario

__all__ = [
    "At",
    "ClockJitter",
    "Every",
    "Fault",
    "FaultContext",
    "HostFail",
    "HostRecover",
    "HypercallDelay",
    "HypercallDrop",
    "InvariantChecker",
    "InvariantViolation",
    "PcpuFail",
    "PcpuRecover",
    "Scenario",
    "VmChurn",
    "WorkloadSurge",
]
