"""Fault injectors — hostile events applied to a running system.

Each :class:`Fault` subclass is a frozen, declarative description of one
fault; :meth:`Fault.apply` performs it against a
:class:`FaultContext` from inside a simulation event (the scenario DSL
schedules the events).  All randomness comes from the context's named
:class:`~repro.simcore.rng.RandomStreams`, so a fault program replays
bit-identically for the same seed.

Supported fault classes:

- :class:`PcpuFail` / :class:`PcpuRecover` — take a PCPU offline (the
  machine evicts the victim VCPU; the host scheduler migrates it and,
  under RTVirt, admission sheds and later re-admits displaced
  bandwidth) and bring it back;
- :class:`VmChurn` — boot a short-lived RTA VM and shut it down after
  its lifetime, exercising online (de)registration on every system;
- :class:`HypercallDelay` / :class:`HypercallDrop` — the cross-layer
  channel delivers late, or not at all (the shared-memory page also
  freezes: the host schedules on stale deadlines);
- :class:`WorkloadSurge` — a mode change scales every RTA's slice in
  one VM for a window, then reverts;
- :class:`ClockJitter` — budget-replenishment timers fire late by a
  seeded random amount.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..guest.task import Task
from ..simcore.errors import AdmissionError, ConfigurationError
from ..simcore.events import PRIORITY_FAULT
from ..simcore.rng import RandomStreams
from ..simcore.time import MSEC
from ..telemetry import events as T
from ..workloads.periodic import PeriodicDriver

#: Trailing detail words that mark a fault application as the *end* of a
#: fault window rather than a fresh injection (classified as
#: :data:`~repro.telemetry.events.FAULT_RECOVERED`).
_RECOVERY_MARKERS = ("end", "revert", "shutdown")


class FaultContext:
    """Shared state for one installed fault scenario.

    Holds the target system, the seeded random streams, the fault log
    (``(time_ns, kind, detail)`` tuples, also mirrored into the
    machine's trace as ``"fault"`` events), and per-kind counters used
    to mint deterministic names for booted VMs.
    """

    def __init__(self, system, streams: Optional[RandomStreams] = None) -> None:
        self.system = system
        self.engine = system.engine
        self.machine = system.machine
        self.streams = streams if streams is not None else RandomStreams(0)
        #: (time_ns, kind, detail-tuple) in application order.
        self.log: List[Tuple[int, str, tuple]] = []
        self._counters: Dict[str, int] = {}
        #: Live drivers started by churn faults, so shutdown can stop them.
        self._drivers: Dict[str, List[PeriodicDriver]] = {}

    def record(self, kind: str, *detail, trace: bool = True) -> None:
        """Log one applied fault and publish it on the telemetry bus.

        Pass ``trace=False`` when another layer (the machine) already
        published the event — the local log is still appended.  Faults
        whose detail ends in a recovery marker ("end"/"revert"/
        "shutdown"), and ``pcpu_recover``, publish as
        :data:`~repro.telemetry.events.FAULT_RECOVERED`; everything else
        as :data:`~repro.telemetry.events.FAULT_INJECTED`.  The machine
        trace (when enabled) receives them through its bus subscription,
        preserving the legacy ``"fault"`` trace records.
        """
        now = self.engine.now
        self.log.append((now, kind, detail))
        if not trace:
            return
        recovered = kind == "pcpu_recover" or (
            detail and detail[-1] in _RECOVERY_MARKERS
        )
        bus = self.machine.bus
        if recovered:
            if bus.has_subscribers(T.FAULT_RECOVERED):
                bus.publish(
                    T.FAULT_RECOVERED, T.FaultRecoveredEvent(now, kind, detail)
                )
        elif bus.has_subscribers(T.FAULT_INJECTED):
            bus.publish(T.FAULT_INJECTED, T.FaultInjectedEvent(now, kind, detail))

    def next_index(self, key: str) -> int:
        """Deterministic per-kind counter (names for churned VMs)."""
        value = self._counters.get(key, 0)
        self._counters[key] = value + 1
        return value

    def fault_times(self, kind: Optional[str] = None) -> List[int]:
        """Times at which faults (of *kind*, or any) were applied."""
        return [t for t, k, _ in self.log if kind is None or k == kind]

    def first_fault_time(self, kind: Optional[str] = None) -> Optional[int]:
        times = self.fault_times(kind)
        return times[0] if times else None


class Fault(abc.ABC):
    """One injectable fault.  Subclasses are frozen dataclasses."""

    kind = "abstract"

    @abc.abstractmethod
    def apply(self, ctx: FaultContext) -> None:
        """Perform the fault against *ctx* (called inside an event)."""


def _rtvirt_ports(system) -> list:
    """Every distinct RTVirt hypercall port of *system*'s VMs."""
    from ..core.hypercall import RTVirtHypercall

    ports = []
    for vm in system.vms:
        port = getattr(vm, "port", None)
        if isinstance(port, RTVirtHypercall) and port not in ports:
            ports.append(port)
    return ports


@dataclass(frozen=True)
class PcpuFail(Fault):
    """Take PCPU *pcpu* offline.

    The machine evicts the occupant (forced migration via the host
    scheduler's fault hook); systems with admission control additionally
    shrink capacity and shed displaced bandwidth
    (:meth:`repro.core.system.RTVirtSystem.fail_pcpu`).
    """

    pcpu: int

    kind = "pcpu_fail"

    def apply(self, ctx: FaultContext) -> None:
        # The system-level entry point layers admission shedding on top
        # of the machine's eviction; the machine records the trace event.
        ctx.system.fail_pcpu(self.pcpu)
        ctx.record(self.kind, self.pcpu, trace=False)


@dataclass(frozen=True)
class PcpuRecover(Fault):
    """Bring PCPU *pcpu* back online (re-admitting shed bandwidth)."""

    pcpu: int

    kind = "pcpu_recover"

    def apply(self, ctx: FaultContext) -> None:
        ctx.system.recover_pcpu(self.pcpu)
        ctx.record(self.kind, self.pcpu, trace=False)


@dataclass(frozen=True)
class HostFail(Fault):
    """Fail a whole cluster host; its VMs evacuate by live migration.

    Targets a :class:`repro.cluster.Cluster` (the scenario's "system"):
    every PCPU of host *host* goes offline and the cluster migrates each
    resident VM to the alive host with the most headroom.  VMs that fit
    nowhere are logged as stranded and stay on the dead host.
    """

    host: str

    kind = "host_fail"

    def apply(self, ctx: FaultContext) -> None:
        ctx.system.fail_host(self.host)
        ctx.record(self.kind, self.host, trace=False)


@dataclass(frozen=True)
class HostRecover(Fault):
    """Bring a failed cluster host's PCPUs back online.

    Evacuated VMs do not migrate back; the recovered host simply
    becomes a placement candidate again (and any stranded VM resumes
    getting CPU time).
    """

    host: str

    kind = "host_recover"

    def apply(self, ctx: FaultContext) -> None:
        ctx.system.recover_host(self.host)
        ctx.record(self.kind, self.host, trace=False)


@dataclass(frozen=True)
class VmChurn(Fault):
    """Boot a short-lived RTA VM; shut it down after *lifetime_ns*.

    Each application mints a fresh ``{prefix}{n}`` VM hosting one
    periodic RTA of (*slice_ns*, *period_ns*).  Registration may be
    rejected (host admission under RTVirt, guest admission under
    RT-Xen); rejections are logged and the stillborn VM is torn down.
    On shutdown the driver stops, pending jobs are abandoned into the
    miss accounting, and bandwidth/VCPUs are released.
    """

    prefix: str = "churn"
    slice_ns: int = 2 * MSEC
    period_ns: int = 20 * MSEC
    lifetime_ns: int = 100 * MSEC

    kind = "vm_churn"

    def apply(self, ctx: FaultContext) -> None:
        name = f"{self.prefix}{ctx.next_index(self.kind)}"
        system = ctx.system
        task = Task(f"{name}.rta", self.slice_ns, self.period_ns)
        try:
            vm = self._boot(system, name, task)
        except (AdmissionError, ConfigurationError) as exc:
            ctx.record(self.kind, name, "rejected", str(exc), *self._params())
            return
        if vm is None:
            ctx.record(self.kind, name, "rejected", "admission", *self._params())
            return
        driver = PeriodicDriver(ctx.engine, vm, task).start()
        ctx._drivers[name] = [driver]
        ctx.record(self.kind, name, "boot", *self._params())
        ctx.engine.after(
            self.lifetime_ns,
            self._shutdown,
            ctx,
            name,
            vm,
            priority=PRIORITY_FAULT,
            name=f"fault:{self.kind}:shutdown",
        )

    def _params(self) -> tuple:
        """Reconstruction parameters appended to every boot/reject record.

        Trace replay rebuilds the churn fault from its telemetry record
        alone; appending (never reordering) keeps older positional
        consumers and the ``_RECOVERY_MARKERS`` tail check intact.
        """
        return (self.slice_ns, self.period_ns, self.lifetime_ns)

    def _boot(self, system, name: str, task: Task):
        """System-appropriate VM boot + task registration."""
        if hasattr(system, "register_rta"):  # RT-Xen: static interfaces
            budget = min(self.period_ns, self.slice_ns * 2)
            vm = system.create_vm(name, interfaces=[(budget, self.period_ns)])
            try:
                system.register_rta(vm, task)
            except AdmissionError:
                system.shutdown_vm(vm)
                return None
            return vm
        if hasattr(system, "admission"):  # RTVirt: online negotiation
            vm = system.create_vm(name)
            try:
                vm.register_task(task)
            except AdmissionError:
                system.shutdown_vm(vm)
                return None
            return vm
        # Credit: weight-scheduled, no admission at all.
        vm = system.create_vm(name)
        vm.register_task(task)
        return vm

    def _shutdown(self, ctx: FaultContext, name: str, vm) -> None:
        if vm.machine is not ctx.machine:
            return  # already gone
        for driver in ctx._drivers.pop(name, ()):
            driver.stop()
        ctx.system.shutdown_vm(vm)
        ctx.record(self.kind, name, "shutdown")


@dataclass(frozen=True)
class HypercallDelay(Fault):
    """Deliver hypercall effects *delay_ns* late for *duration_ns*.

    Admission is still decided at call time, but the host-side parameter
    installation (and hence the re-partition) lands late.  Only affects
    systems with a live cross-layer channel (RTVirt); a no-op elsewhere.
    """

    delay_ns: int = MSEC
    duration_ns: int = 100 * MSEC

    kind = "hypercall_delay"

    def apply(self, ctx: FaultContext) -> None:
        until = ctx.engine.now + self.duration_ns
        ports = _rtvirt_ports(ctx.system)
        for port in ports:
            port.inject_delay(until, self.delay_ns)
        ctx.record(self.kind, self.delay_ns, self.duration_ns, len(ports))


@dataclass(frozen=True)
class HypercallDrop(Fault):
    """Lose every hypercall for *duration_ns*; freeze the shared page.

    Guests see their requests rejected; the host keeps scheduling on
    the deadlines published *before* the drop window began (a stale
    shared-memory page).  Only affects RTVirt systems.
    """

    duration_ns: int = 100 * MSEC

    kind = "hypercall_drop"

    def apply(self, ctx: FaultContext) -> None:
        now = ctx.engine.now
        until = now + self.duration_ns
        ports = _rtvirt_ports(ctx.system)
        for port in ports:
            port.inject_drop(until)
        shared = getattr(ctx.system, "shared_memory", None)
        if shared is not None:
            shared.freeze(now, until)
        ctx.record(self.kind, self.duration_ns, len(ports))


@dataclass(frozen=True)
class WorkloadSurge(Fault):
    """Scale every RTA slice in VM *vm_name* by *num/den* for a window.

    A mode change: each task asks for ``slice * num // den`` (clamped
    to its period) via the guest's adjust path — under RTVirt this
    renegotiates bandwidth online; under the baselines the guest simply
    overruns its fixed interface.  Reverts after *duration_ns*.
    Rejected adjustments (host admission refuses the increase) are
    logged and the task keeps its old requirement.
    """

    vm_name: str
    num: int = 2
    den: int = 1
    duration_ns: int = 100 * MSEC

    kind = "workload_surge"

    def apply(self, ctx: FaultContext) -> None:
        vm = next((v for v in ctx.system.vms if v.name == self.vm_name), None)
        if vm is None:
            # num/den/duration appended for trace-replay reconstruction
            ctx.record(
                self.kind, self.vm_name, "no-such-vm",
                self.num, self.den, self.duration_ns,
            )
            return
        reverts = []
        applied = rejected = 0
        for task in list(vm.rt_tasks):
            old_slice = task.slice_ns
            new_slice = min(task.period_ns, old_slice * self.num // self.den)
            if new_slice == old_slice:
                continue
            try:
                vm.adjust_task(task, new_slice, task.period_ns)
            except AdmissionError:
                rejected += 1
                continue
            applied += 1
            reverts.append((task, old_slice, task.period_ns))
        ctx.record(
            self.kind, self.vm_name, applied, rejected,
            self.num, self.den, self.duration_ns,
        )
        if reverts:
            ctx.engine.after(
                self.duration_ns,
                self._revert,
                ctx,
                vm,
                reverts,
                priority=PRIORITY_FAULT,
                name=f"fault:{self.kind}:revert",
            )

    def _revert(self, ctx: FaultContext, vm, reverts) -> None:
        if vm.machine is not ctx.machine:
            return  # the VM was shut down mid-surge
        for task, old_slice, old_period in reverts:
            if task.vm is not vm:
                continue
            try:
                vm.adjust_task(task, old_slice, old_period)
            except AdmissionError:  # pragma: no cover - decreases succeed
                pass
        ctx.record(self.kind, self.vm_name, "revert")


@dataclass(frozen=True)
class ClockJitter(Fault):
    """Budget-replenishment timers fire up to *max_ns* late.

    Every host scheduler re-arms its replenishment/tick timers with a
    seeded uniform jitter drawn from the ``fault.jitter`` stream.  Pass
    *duration_ns* to restore exact timers afterwards; ``None`` leaves
    jitter on for the rest of the run.
    """

    max_ns: int = MSEC
    duration_ns: Optional[int] = None

    kind = "clock_jitter"

    def apply(self, ctx: FaultContext) -> None:
        scheduler = ctx.machine.host_scheduler
        scheduler.set_timer_jitter(ctx.streams.stream("fault.jitter"), self.max_ns)
        ctx.record(self.kind, self.max_ns, self.duration_ns)
        if self.duration_ns is not None:
            ctx.engine.after(
                self.duration_ns,
                self._disable,
                ctx,
                priority=PRIORITY_FAULT,
                name=f"fault:{self.kind}:end",
            )

    def _disable(self, ctx: FaultContext) -> None:
        ctx.machine.host_scheduler.set_timer_jitter(None, 0)
        ctx.record(self.kind, "end")
