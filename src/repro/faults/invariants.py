"""Online scheduling-invariant checking.

:class:`InvariantChecker` hooks into the engine as a post-event hook —
it runs after every same-instant event batch, once the machine has
synced charges and the host scheduler has flushed its pending pass, so
it observes exactly the committed scheduling decisions.  Rules are
selected by introspecting the system under test:

- ``placement`` (every system): no PCPU runs two VCPUs, the machine's
  location index agrees with PCPU occupancy, nothing runs on a failed
  PCPU;
- ``budget`` (deferrable-server schedulers): no server's remaining
  budget is negative or above its replenishment budget, and a placed
  server still holds budget;
- ``edf_order`` (deferrable-server schedulers): no eligible waiting
  server has an earlier (deadline, uid) key than a placed competing
  server that still has work and budget (compared per-home under
  partitioned EDF);
- ``capacity`` (systems with admission control): total granted
  bandwidth never exceeds the surviving capacity.

A violated rule raises :class:`InvariantViolation` carrying the rule
name, the simulated time, and the trailing window of placement
snapshots so the offending decision sequence is attached to the error.

The checker is opt-in (nothing attaches it by default), so benchmark
and experiment hot paths pay nothing unless a robustness run asks for
it.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from ..host.edf import EDFHostScheduler, PartitionedEDFHostScheduler
from ..simcore.errors import InvariantViolation
from ..telemetry import events as T


class InvariantChecker:
    """Validate scheduling invariants after every event batch."""

    def __init__(self, system, window: int = 32) -> None:
        self.system = system
        self.machine = system.machine
        self.engine = system.engine
        #: Flip off to suspend checking without detaching the hook.
        self.enabled = True
        #: Number of batch checks performed.
        self.checks = 0
        self._window: deque = deque(maxlen=window)
        #: (time, "injected"/"recovered", fault-kind) observed via the
        #: telemetry bus, so a violation can be correlated with the
        #: fault activity that preceded it.
        self.fault_log: List[Tuple[int, str, str]] = []
        self._unsubscribe = None

    def attach(self) -> "InvariantChecker":
        """Register with the engine and the machine's telemetry bus.

        Call after the system is fully constructed: post hooks run in
        registration order, so attaching last means the machine refresh
        and the scheduler's pass have settled before the check.  Bus
        subscriptions add (a) a fault log correlated with violations and
        (b) an *eager* capacity check on every granted host admission
        decision, catching over-commitment at the decision instant
        instead of the end of the batch.
        """
        self.engine.add_post_hook(self._check)
        bus = self.machine.bus
        cancels = [
            bus.subscribe(T.FAULT_INJECTED, self._on_fault_injected),
            bus.subscribe(T.FAULT_RECOVERED, self._on_fault_recovered),
            bus.subscribe(T.ADMISSION_DECISION, self._on_admission),
        ]

        def unsubscribe() -> None:
            for cancel in cancels:
                cancel()

        self._unsubscribe = unsubscribe
        return self

    def detach_telemetry(self) -> None:
        """Drop the bus subscriptions (the post hook stays registered)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- bus subscribers ----------------------------------------------------------

    def _on_fault_injected(self, event: T.FaultInjectedEvent) -> None:
        self.fault_log.append((event.time, "injected", event.fault))

    def _on_fault_recovered(self, event: T.FaultRecoveredEvent) -> None:
        self.fault_log.append((event.time, "recovered", event.fault))

    def _on_admission(self, event: T.AdmissionDecisionEvent) -> None:
        if not self.enabled or not event.granted or event.level != "host":
            return
        admission = getattr(self.system, "admission", None)
        if admission is not None:
            self._check_capacity(admission)

    # -- snapshotting -------------------------------------------------------------

    def _snapshot(self) -> Tuple:
        return tuple(
            (p.index, p.running_vcpu.name if p.running_vcpu else None, p.failed)
            for p in self.machine.pcpus
        )

    @property
    def window(self) -> List[Tuple[int, Tuple]]:
        """The retained (time, placement-snapshot) history."""
        return list(self._window)

    def _fail(self, rule: str, message: str) -> None:
        raise InvariantViolation(rule, self.engine.now, message, window=self.window)

    # -- the hook -------------------------------------------------------------

    def _check(self) -> None:
        if not self.enabled:
            return
        self.checks += 1
        self._window.append((self.engine.now, self._snapshot()))
        self._check_placement()
        scheduler = self.machine.host_scheduler
        if isinstance(scheduler, EDFHostScheduler):
            self._check_budget(scheduler)
            self._check_edf_order(scheduler)
        admission = getattr(self.system, "admission", None)
        if admission is not None:
            self._check_capacity(admission)

    # -- rules -------------------------------------------------------------

    def _check_placement(self) -> None:
        seen = {}
        for pcpu in self.machine.pcpus:
            vcpu = pcpu.running_vcpu
            if vcpu is None:
                continue
            if pcpu.failed:
                self._fail(
                    "placement", f"{vcpu.name} is running on failed PCPU {pcpu.index}"
                )
            if vcpu.uid in seen:
                self._fail(
                    "placement",
                    f"{vcpu.name} runs on PCPUs {seen[vcpu.uid]} and {pcpu.index}",
                )
            seen[vcpu.uid] = pcpu.index
        locations = self.machine.vcpu_locations()
        if locations != seen:
            self._fail(
                "placement",
                f"location index {locations} disagrees with occupancy {seen}",
            )

    def _check_budget(self, scheduler: EDFHostScheduler) -> None:
        placed = self.machine.vcpu_locations()
        for uid, server in scheduler._servers.items():
            if server.remaining < 0:
                self._fail(
                    "budget",
                    f"{server.vcpu.name} overdrew its budget "
                    f"(remaining={server.remaining})",
                )
            if server.remaining > server.budget:
                self._fail(
                    "budget",
                    f"{server.vcpu.name} holds {server.remaining} > "
                    f"budget {server.budget}",
                )
            if uid in placed and server.remaining == 0:
                self._fail(
                    "budget",
                    f"{server.vcpu.name} is placed on PCPU {placed[uid]} "
                    "with no remaining budget",
                )

    @staticmethod
    def _competing(server) -> bool:
        """A placed server a waiting one can legitimately be beaten by."""
        vcpu = server.vcpu
        vm = vcpu.vm
        pending = vm._pending_jobs if vm._is_gedf else vcpu._pending_jobs
        return pending > 0 and server.remaining > 0

    def _check_edf_order(self, scheduler: EDFHostScheduler) -> None:
        placed = self.machine.vcpu_locations()
        partitioned = isinstance(scheduler, PartitionedEDFHostScheduler)
        # Latest-deadline competing placed server (global), or per-PCPU map.
        placed_keys = {}
        worst: Optional[Tuple[int, int]] = None
        worst_name = ""
        for uid, pcpu_index in placed.items():
            server = scheduler._servers.get(uid)
            if server is None or not self._competing(server):
                continue  # background fill / idle deferrable server
            placed_keys[pcpu_index] = (server.key, server.vcpu.name)
            if worst is None or server.key > worst:
                worst = server.key
                worst_name = server.vcpu.name
        for uid, server in scheduler._ready.items():
            if uid in placed or not self._competing(server):
                continue
            if partitioned:
                home = scheduler._home.get(uid)
                if home is None or self.machine.pcpus[home].failed:
                    continue  # parked until recovery
                entry = placed_keys.get(home)
                if entry is not None and server.key < entry[0]:
                    self._fail(
                        "edf_order",
                        f"{server.vcpu.name} (deadline {server.deadline}) waits on "
                        f"PCPU {home} while {entry[1]} with a later deadline runs",
                    )
            elif worst is not None and server.key < worst:
                self._fail(
                    "edf_order",
                    f"{server.vcpu.name} (deadline {server.deadline}) waits while "
                    f"{worst_name} with a later deadline runs",
                )

    def _check_capacity(self, admission) -> None:
        granted = admission.total_granted
        if granted > admission.capacity:
            self._fail(
                "capacity",
                f"admitted bandwidth {granted} exceeds capacity "
                f"{admission.capacity}",
            )
