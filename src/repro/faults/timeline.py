"""Declarative fault timelines.

A :class:`Scenario` is a list of directives placing faults on the
simulated clock:

    scenario = Scenario([
        At(sec(2), PcpuFail(2)),
        At(sec(4), PcpuRecover(2)),
        Every(msec(500), VmChurn(lifetime_ns=msec(300)), count=8),
    ])
    ctx = scenario.install(system, streams=RandomStreams(seed))

``install`` schedules plain engine events at ``PRIORITY_FAULT`` (after
budget accounting, before the scheduling pass of the same instant), so
faults interleave deterministically with the rest of the simulation and
replay bit-identically for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..simcore.errors import ConfigurationError
from ..simcore.events import PRIORITY_FAULT
from ..simcore.rng import RandomStreams
from .injectors import Fault, FaultContext


@dataclass(frozen=True)
class At:
    """Apply *fault* once, at absolute *time_ns*."""

    time_ns: int
    fault: Fault


@dataclass(frozen=True)
class Every:
    """Apply *fault* every *period_ns*, starting at *start_ns*.

    The first application lands at ``start_ns`` (defaults to one period
    in); *count* bounds the number of applications (``None`` = until the
    run ends).
    """

    period_ns: int
    fault: Fault
    start_ns: Optional[int] = None
    count: Optional[int] = None


Directive = Union[At, Every]


class Scenario:
    """An ordered set of fault directives, installable onto a system."""

    def __init__(self, directives: Sequence[Directive]) -> None:
        for d in directives:
            if not isinstance(d, (At, Every)):
                raise ConfigurationError(f"not a scenario directive: {d!r}")
            if isinstance(d, At) and d.time_ns < 0:
                raise ConfigurationError(f"directive before t=0: {d!r}")
            if isinstance(d, Every) and d.period_ns <= 0:
                raise ConfigurationError(f"non-positive period: {d!r}")
        self.directives = tuple(directives)

    def install(self, system, streams: Optional[RandomStreams] = None) -> FaultContext:
        """Schedule every directive on *system*'s engine.

        Returns the :class:`FaultContext` the injectors share — its
        ``log`` is the authoritative record of what was applied when.
        """
        ctx = FaultContext(system, streams)
        engine = system.engine
        for d in self.directives:
            if isinstance(d, At):
                engine.at(
                    d.time_ns,
                    d.fault.apply,
                    ctx,
                    priority=PRIORITY_FAULT,
                    name=f"fault:{d.fault.kind}",
                )
            else:
                start = d.start_ns if d.start_ns is not None else d.period_ns
                engine.at(
                    max(start, engine.now),
                    self._tick,
                    ctx,
                    d,
                    1,
                    priority=PRIORITY_FAULT,
                    name=f"fault:{d.fault.kind}:every",
                )
        return ctx

    @staticmethod
    def _tick(ctx: FaultContext, directive: Every, applied: int) -> None:
        directive.fault.apply(ctx)
        if directive.count is not None and applied >= directive.count:
            return
        ctx.engine.after(
            directive.period_ns,
            Scenario._tick,
            ctx,
            directive,
            applied + 1,
            priority=PRIORITY_FAULT,
            name=f"fault:{directive.fault.kind}:every",
        )
