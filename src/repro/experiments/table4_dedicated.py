"""Table 4 — memcached tail latency on a dedicated CPU (paper §4.4).

The paper first runs the memcached VM alone on a dedicated CPU under
each scheduler and measures the request-latency tail; those numbers
size the VM reservations used in Figure 5 (58 µs for RTVirt, 66 µs for
RT-Xen, 130 µs for Credit).

In the simulation the per-request service demand distribution is shared
across schedulers (calibrated to the RTVirt row); the differences
between rows come from each scheduler's wake path and tick machinery:
Credit's longer wake-up code path is modelled with its calibrated
``wake_overhead_ns`` and its 10 ms tick; RT-Xen adds deferrable-server
replenishment jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..baselines.configs import (
    CREDIT_GLOBAL_TIMESLICE_NS,
    CREDIT_RATELIMIT_NS,
    MEMCACHED_RTVIRT_PARAMS,
)
from ..baselines.credit import CreditSystem
from ..baselines.rtxen import RTXenSystem
from ..core.system import RTVirtSystem
from ..metrics.latency import LatencyRecorder
from ..simcore.rng import RandomStreams
from ..simcore.time import USEC, sec, usec
from ..workloads.memcached import MemcachedService
from .common import format_table

#: Credit's wake-path cost, calibrated to Table 4's ~60 µs offset between
#: the Credit and RTVirt rows.
CREDIT_WAKE_OVERHEAD_NS = 62 * USEC

#: The paper's Table 4, µs, for comparison in reports.
PAPER_TABLE4 = {
    "Credit": {90.0: 113.3, 95.0: 114.4, 99.0: 120.6, 99.9: 129.1},
    "RT-Xen": {90.0: 49.6, 95.0: 50.7, 99.0: 54.6, 99.9: 65.7},
    "RTVirt": {90.0: 51.3, 95.0: 52.2, 99.0: 54.5, 99.9: 57.5},
}


@dataclass
class Table4Result:
    tails: Dict[str, Dict[float, float]]

    def rows(self) -> List[Dict[str, object]]:
        out = []
        for scheduler in ("Credit", "RT-Xen", "RTVirt"):
            if scheduler not in self.tails:
                continue
            tail = self.tails[scheduler]
            out.append(
                {
                    "scheduler": scheduler,
                    "p90_us": tail[90.0],
                    "p95_us": tail[95.0],
                    "p99_us": tail[99.0],
                    "p99.9_us": tail[99.9],
                    "paper_p99.9_us": PAPER_TABLE4[scheduler][99.9],
                }
            )
        return out

    def summary(self) -> str:
        return format_table(
            self.rows(), title="Table 4 — memcached tails on a dedicated CPU (µs)"
        )

    def slice_for(self, scheduler: str) -> int:
        """The reservation Table 4 implies: ceil of the p99.9 latency, ns."""
        return round(self.tails[scheduler][99.9] * 1000)


def _measure(system, vm, rng, register=None) -> LatencyRecorder:
    svc = MemcachedService(system.engine, vm, rng, register=register is None)
    if register is not None:
        register(vm, svc.task)
    svc.start()
    return svc


#: Canonical Table 4 row order; also the experiment's shard ids for the
#: parallel runner (each scheduler's run is fully independent: a fresh
#: RandomStreams(seed) per scheduler, so shards reproduce the serial run).
TABLE4_SCHEDULERS = ("Credit", "RT-Xen", "RTVirt")


def run_table4_scheduler(
    scheduler: str, duration_ns: int = sec(60), seed: int = 3
) -> Dict[float, float]:
    """One Table 4 row: the dedicated-CPU latency tail under *scheduler*."""
    streams = RandomStreams(seed)
    if scheduler == "Credit":
        system = CreditSystem(
            pcpu_count=1,
            timeslice_ns=CREDIT_GLOBAL_TIMESLICE_NS,
            ratelimit_ns=CREDIT_RATELIMIT_NS,
            wake_overhead_ns=CREDIT_WAKE_OVERHEAD_NS,
        )
        vm = system.create_vm("mc")
        svc = _measure(system, vm, streams.stream("mc"))
    elif scheduler == "RT-Xen":
        system = RTXenSystem(pcpu_count=1)
        # Dedicated CPU: a full-bandwidth server (Θ = Π).
        vm = system.create_vm("mc", interfaces=[(usec(500), usec(500))])
        svc = _measure(system, vm, streams.stream("mc"), register=system.register_rta)
    elif scheduler == "RTVirt":
        system = RTVirtSystem(pcpu_count=1, slack_ns=0)
        vm = system.create_vm("mc", slack_ns=0)
        budget, period = MEMCACHED_RTVIRT_PARAMS
        svc = MemcachedService(
            system.engine, vm, streams.stream("mc"), period_ns=period, slice_ns=budget
        ).start()
    else:
        raise KeyError(f"unknown Table 4 scheduler {scheduler!r}")
    system.run(duration_ns)
    system.finalize()
    return svc.latency.tail_usec()


def run_table4(duration_ns: int = sec(60), seed: int = 3) -> Table4Result:
    """Measure the dedicated-CPU latency tail under all three schedulers."""
    return Table4Result(
        {
            scheduler: run_table4_scheduler(scheduler, duration_ns, seed)
            for scheduler in TABLE4_SCHEDULERS
        }
    )
