"""§4.2 periodic RTAs — Table 1 groups under RTVirt and RT-Xen.

Each group's four RTAs run concurrently, one per VM, for the configured
duration.  The paper's result: *both* frameworks meet all deadlines of
all periodic RTAs; the difference (Figure 3) is how much bandwidth each
needs — measured by :mod:`repro.experiments.fig3_bandwidth`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.utilization import minimum_cpus_dpwrap
from ..analysis.dbf import AnalysisTask
from ..baselines.configs import rtxen_interfaces_for_group
from ..baselines.rtxen import RTXenSystem
from ..core.system import RTVirtSystem
from ..guest.task import Task
from ..simcore.time import MSEC, msec, sec
from ..workloads.periodic import TABLE1_GROUPS, PeriodicDriver, RTASpec
from .common import format_table


@dataclass
class GroupRun:
    """Deadline outcomes of one RTA group under one framework."""

    framework: str
    group: str
    released: int
    met: int
    missed: int

    @property
    def miss_ratio(self) -> float:
        decided = self.met + self.missed
        return self.missed / decided if decided else 0.0

    def row(self) -> Dict[str, object]:
        return {
            "framework": self.framework,
            "group": self.group,
            "released": self.released,
            "met": self.met,
            "missed": self.missed,
            "miss_ratio": self.miss_ratio,
        }


@dataclass
class Table1Result:
    runs: List[GroupRun]

    def rows(self) -> List[Dict[str, object]]:
        return [r.row() for r in self.runs]

    def summary(self) -> str:
        return format_table(self.rows(), title="Table 1 groups — deadline outcomes")

    def all_deadlines_met(self) -> bool:
        return all(r.missed == 0 for r in self.runs)


def _pcpus_for(specs: Sequence[RTASpec], slack_ns: int) -> int:
    tasks = [
        AnalysisTask(s.slice_ns + slack_ns, s.period_ns) for s in specs
    ]
    return minimum_cpus_dpwrap(tasks)


def run_group_rtvirt(
    group: str,
    duration_ns: int = sec(100),
    slack_ns: int = 500_000,
    pcpu_count: Optional[int] = None,
) -> GroupRun:
    """One Table 1 group under RTVirt (one RTA per VM)."""
    specs = TABLE1_GROUPS[group]
    if pcpu_count is None:
        pcpu_count = _pcpus_for(specs, slack_ns)
    system = RTVirtSystem(pcpu_count=pcpu_count, slack_ns=slack_ns)
    tasks: List[Task] = []
    for i, spec in enumerate(specs):
        vm = system.create_vm(f"{group}-vm{i + 1}")
        task = Task(f"{group}.rta{i + 1}", spec.slice_ns, spec.period_ns)
        vm.register_task(task)
        tasks.append(task)
        PeriodicDriver(system.engine, vm, task).start()
    system.run(duration_ns)
    system.finalize()
    return GroupRun(
        framework="RTVirt",
        group=group,
        released=sum(t.stats.released for t in tasks),
        met=sum(t.stats.met for t in tasks),
        missed=sum(t.stats.missed for t in tasks),
    )


def run_group_rtxen(
    group: str,
    duration_ns: int = sec(100),
    pcpu_count: Optional[int] = None,
) -> GroupRun:
    """One Table 1 group under RT-Xen with CSA interfaces."""
    specs = TABLE1_GROUPS[group]
    interfaces = rtxen_interfaces_for_group(specs, min_period=MSEC)
    if pcpu_count is None:
        # RT-Xen needs at least its claimed CPUs; give it the DMPR claim.
        from ..analysis.dmpr import claim_for_group

        pcpu_count, _ = claim_for_group(interfaces)
    system = RTXenSystem(pcpu_count=pcpu_count)
    tasks: List[Task] = []
    for i, (spec, iface) in enumerate(zip(specs, interfaces)):
        vm = system.create_vm(
            f"{group}-vm{i + 1}", interfaces=[(iface.budget, iface.period)]
        )
        task = Task(f"{group}.rta{i + 1}", spec.slice_ns, spec.period_ns)
        system.register_rta(vm, task)
        tasks.append(task)
        PeriodicDriver(system.engine, vm, task).start()
    system.run(duration_ns)
    system.finalize()
    return GroupRun(
        framework="RT-Xen",
        group=group,
        released=sum(t.stats.released for t in tasks),
        met=sum(t.stats.met for t in tasks),
        missed=sum(t.stats.missed for t in tasks),
    )


def run_table1(
    duration_ns: int = sec(100), groups: Optional[Sequence[str]] = None
) -> Table1Result:
    """All groups under both frameworks (the §4.2 periodic experiment)."""
    if groups is None:
        groups = list(TABLE1_GROUPS)
    runs: List[GroupRun] = []
    for group in groups:
        runs.append(run_group_rtvirt(group, duration_ns))
        runs.append(run_group_rtxen(group, duration_ns))
    return Table1Result(runs)
