"""Adaptive control-plane experiments — feedback policies head-to-head.

Three scenarios pit the blame-driven :class:`~repro.control.controller.
FeedbackController` (and the credit shed policy of
:mod:`repro.control.tenants`) against static bandwidth management:

- ``feedback_overrun`` — a VM under-declares a short-period RTA's cost
  (declared 2 ms / 5 ms, actual 3.5 ms per job), so every offline sizing
  is wrong.  Static RTVirt reserves for the declared load; DP-WRAP's
  idle donations arrive too late for the 5 ms deadlines (the honest
  long-period VMs are busy early in every window), so the VM misses
  persistently.  RT-Xen's CSA margin (1.5× summed slices) is bigger
  but still short *and* pays that margin for every honest VM.  The
  adaptive controller classifies ``budget_exhaustion`` and grows only
  the starved VCPU's guaranteed reservation until the misses stop —
  beating CSA's miss ratio at lower total bandwidth.
- ``feedback_migrate`` — two RTVirt hosts; a PCPU failure on h0 sheds
  the newest VM's bandwidth.  Statically the VM stays displaced for the
  rest of the run; the controller classifies ``admission_throttle``,
  fails to re-admit locally and evacuates the VM by live migration to
  the idle host, where the reservation is restored at adopt time.
- ``tenant_shed`` — three single-RTA VMs owned by bronze/silver/gold
  tenants (SLO weights 1/2/3).  Two PCPU failures force one grant to be
  revoked: the historical arrival policy sheds the *newest* VCPU (gold,
  the most valuable tenant), the credit policy sheds the cheapest
  tenant (bronze) instead.

Every scenario is a fixed deterministic timeline (no random draws; the
seed only parameterises the credit ledger's tail aggregator), so the
per-policy cells shard cleanly for the parallel runner and the serial
rows reproduce byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.rtxen import RTXenSystem
from ..cluster import Cluster, default_specs
from ..control import (
    CreditLedger,
    FeedbackController,
    TenantSLO,
    default_task_owner,
)
from ..core.system import RTVirtSystem
from ..faults import InvariantChecker
from ..guest.task import Task
from ..metrics.deadlines import collect_miss_report
from ..placement.migration import safe_migration_params
from ..simcore.events import PRIORITY_FAULT, PRIORITY_RELEASE
from ..simcore.time import MSEC, sec
from ..telemetry import events as T
from ..workloads.periodic import PeriodicDriver
from .common import format_table

#: experiment id -> (scenario, policy cells in row order).
FEEDBACK_CELLS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "feedback_overrun": ("overrun", ("static", "csa", "adaptive")),
    "feedback_migrate": ("migrate", ("static", "adaptive")),
    "tenant_shed": ("tenant", ("arrival", "credit")),
}

#: Controller tick: several RTA periods, a fraction of the run length.
CONTROL_PERIOD_NS = 50 * MSEC

# -- overrun scenario -------------------------------------------------------------

OVERRUN_PCPUS = 2
#: The stealthy RTA declares 2 ms / 5 ms (0.4 bandwidth, 0.5 reserved)…
OVERRUN_RTA = (2 * MSEC, 5 * MSEC)
#: …but every job actually needs slice × 7/4 (3.5 ms): true demand 0.7,
#: within reach of the controller's ×5/4 bump ladder (0.5 → 0.625 →
#: 0.781) inside the host's remaining capacity.
OVERRUN_WORK = (7, 4)
#: Two honest long-period VMs (15 ms / 30 ms each).  Their busy phase
#: occupies the early half of every 30 ms window, so DP-WRAP's idle
#: donations only reach the starved short-period VCPU *late* — too late
#: for its 5 ms deadlines.  Only a larger guaranteed reservation
#: (evenly laid-out entitlement) fixes the miss pattern, which is what
#: separates the adaptive INC_BW loop from plain work conservation.
OVERRUN_FILLER = ((15 * MSEC, 30 * MSEC),)
OVERRUN_FILLER_VMS = 2

# -- migrate scenario -------------------------------------------------------------

MIGRATE_HOSTS = 2
MIGRATE_PCPUS = 2
#: Two meaty VMs pack h0 (0.6 declared each → 0.625 reservations); the
#: heavy third VM only fits h1, leaving h1 with headroom for exactly
#: one evacuee.
MIGRATE_BIG_RTAS = ((6 * MSEC, 20 * MSEC), (6 * MSEC, 20 * MSEC))
MIGRATE_HEAVY_RTAS = ((16 * MSEC, 20 * MSEC),)
#: 64 MiB VM, 250 MB/s dirty rate, 10 GbE: short pre-copy, ~11 ms stop.
MIGRATE_PARAMS = safe_migration_params(
    64 * 1024 * 1024, 250_000_000, 1_250_000_000
)

# -- tenant scenario --------------------------------------------------------------

TENANT_PCPUS = 3
#: One RTA per tenant VM: 8 ms / 20 ms → 0.425 reservations each.
TENANT_RTA = (8 * MSEC, 20 * MSEC)
#: (tenant, SLO weight) in VM-creation order: the arrival shed policy
#: revokes newest-first, i.e. the *highest*-weight tenant.
TENANT_TIERS: Tuple[Tuple[str, int], ...] = (
    ("bronze", 1),
    ("silver", 2),
    ("gold", 3),
)
TENANT_TARGET_P99_USEC = 20_000.0


class StealthyDriver(PeriodicDriver):
    """A periodic driver whose jobs need more work than declared.

    Models an RTA that under-declared its WCET at ``sched_setattr()``
    time: every release carries ``slice × num/den`` of actual work, so
    reservations derived from the declared slice are systematically
    short — the situation only online feedback can correct.
    """

    def __init__(self, engine, vm, task, num: int, den: int, **kwargs) -> None:
        super().__init__(engine, vm, task, **kwargs)
        self.num = num
        self.den = den

    def _release(self) -> None:
        if self._stopped:
            return
        now = self.engine.now
        if self.until is not None and now >= self.until:
            return
        self.vm.release_job(
            self.task, now=now, work=self.task.slice_ns * self.num // self.den
        )
        self._event = self.engine.after(
            self.task.period_ns,
            self._release,
            priority=PRIORITY_RELEASE,
            name=f"release:{self.task.name}",
        )


class GrantIntegrator:
    """Time-weighted granted bandwidth from VCPU_PARAMS events.

    Subscribes before any VM exists, so it sees every reservation from
    the initial ``set_params`` on: bandwidth-efficiency comparisons use
    the *time-averaged* total grant (∑ bw·dt / T), which charges the
    adaptive policy for exactly the bandwidth it held, when it held it.
    """

    def __init__(self, bus) -> None:
        self._bw: Dict[int, Fraction] = {}
        self._since: Dict[int, int] = {}
        self._area = Fraction(0)
        self._cancel = bus.subscribe(T.VCPU_PARAMS, self._on_params)

    def _on_params(self, event) -> None:
        uid = event.vcpu_uid
        previous = self._bw.get(uid)
        if previous is not None:
            self._area += previous * (event.time - self._since[uid])
        bw = Fraction(0)
        if event.period_ns > 0 and event.budget_ns > 0:
            bw = Fraction(event.budget_ns, event.period_ns)
        self._bw[uid] = bw
        self._since[uid] = event.time

    def current_total(self) -> Fraction:
        return sum(self._bw.values(), Fraction(0))

    def average(self, end_ns: int) -> Fraction:
        """Average total granted bandwidth over [0, end_ns], in CPUs."""
        if end_ns <= 0:
            return Fraction(0)
        area = self._area
        for uid, bw in self._bw.items():
            area += bw * (end_ns - self._since[uid])
        return area / end_ns


def _csa_interface(specs: Sequence[Tuple[int, int]]) -> Tuple[int, int]:
    """RT-Xen's offline sizing: 1.5× summed slices at the min period."""
    period_ns = min(p for _, p in specs)
    budget_ns = min(period_ns, sum(s * period_ns // p for s, p in specs) * 3 // 2)
    return budget_ns, period_ns


def _overrun_workload() -> List[Tuple[str, Tuple[Tuple[int, int], ...], bool]]:
    """(vm name, RTA specs, stealthy?) in creation order."""
    return [("vm0", (OVERRUN_RTA,), True)] + [
        (f"vm{i + 1}", OVERRUN_FILLER, False)
        for i in range(OVERRUN_FILLER_VMS)
    ]


def _run_overrun(
    policy: str, duration_ns: int, seed: int, attach=None
) -> List[Dict[str, object]]:
    """One (overrun, policy) cell: 3 VMs × 2 RTAs, vm0.rta0 stealthy."""
    if policy == "csa":
        system = RTXenSystem(pcpu_count=OVERRUN_PCPUS, host="gedf")
    else:
        system = RTVirtSystem(pcpu_count=OVERRUN_PCPUS)
    grants = GrantIntegrator(system.machine.bus)
    checker = InvariantChecker(system).attach()
    controller = None
    if policy == "adaptive":
        controller = FeedbackController(
            system, period_ns=CONTROL_PERIOD_NS
        ).attach()
    if attach is not None:
        attach(system)
    for name, specs, stealthy in _overrun_workload():
        if policy == "csa":
            vm = system.create_vm(name, interfaces=[_csa_interface(specs)])
        else:
            vm = system.create_vm(name)
        for j, (slice_ns, period_ns) in enumerate(specs):
            task = Task(f"{name}.rta{j}", slice_ns, period_ns)
            if policy == "csa":
                system.register_rta(vm, task)
            else:
                vm.register_task(task)
            if stealthy:
                StealthyDriver(
                    system.engine, vm, task, *OVERRUN_WORK
                ).start()
            else:
                PeriodicDriver(system.engine, vm, task).start()
    system.run(duration_ns)
    report = system.miss_report()
    decided = report.total_met + report.total_missed
    return [
        {
            "scenario": "overrun",
            "policy": policy,
            "released": report.total_released,
            "missed": report.total_missed,
            "miss_pct": round(100.0 * report.total_missed / decided, 3)
            if decided
            else 0.0,
            "avg_bw": round(float(grants.average(duration_ns)), 4),
            "end_bw": round(float(grants.current_total()), 4),
            "inc_bw": controller.action_counts().get("inc_bw", 0)
            if controller
            else 0,
            "checks": checker.checks,
        }
    ]


def _run_migrate(
    policy: str, duration_ns: int, seed: int, attach=None
) -> List[Dict[str, object]]:
    """One (migrate, policy) cell: PCPU loss on h0 displaces vm_b."""
    cluster = Cluster(
        default_specs(MIGRATE_HOSTS, pcpu_count=MIGRATE_PCPUS),
        scheduler="RTVirt",
        policy="first_fit",
        migration=MIGRATE_PARAMS,
    )
    h0 = cluster.host("h0")
    controller = None
    if policy == "adaptive":
        controller = FeedbackController(
            h0.system,
            period_ns=CONTROL_PERIOD_NS,
            migration_hook=lambda name: cluster.migrate(name, "h1") is not None,
        ).attach()
    if attach is not None:
        attach(h0.system)
    # First-fit packs vm_a/vm_b onto h0 (0.625 each); the heavy vm_c
    # (0.825) no longer fits there and lands on h1.
    cluster.seed([("vm_a", MIGRATE_BIG_RTAS), ("vm_b", MIGRATE_BIG_RTAS)])
    cluster.add_vm("vm_c", MIGRATE_HEAVY_RTAS)
    for vm_name, tasks in cluster.rt_tasks.items():
        for task in tasks:
            PeriodicDriver(cluster.engine, cluster.vms[vm_name], task).start()
    cluster.engine.at(
        duration_ns * 25 // 100,
        lambda: h0.system.fail_pcpu(MIGRATE_PCPUS - 1),
        priority=PRIORITY_FAULT,
        name="feedback:pcpu_fail",
    )
    cluster.run(duration_ns)
    cluster.finalize()
    report = collect_miss_report(
        [task for tasks in cluster.rt_tasks.values() for task in tasks]
    )
    decided = report.total_met + report.total_missed
    migrations = [m for m in cluster.migrations if m.done]
    return [
        {
            "scenario": "migrate",
            "policy": policy,
            "released": report.total_released,
            "missed": report.total_missed,
            "miss_pct": round(100.0 * report.total_missed / decided, 3)
            if decided
            else 0.0,
            "migrations": len(migrations),
            "downtime_ms": round(
                sum(m.downtime_ns for m in migrations) / MSEC, 3
            ),
            "ctl_migrates": controller.action_counts().get("migrate", 0)
            if controller
            else 0,
        }
    ]


def _tenant_slos() -> List[TenantSLO]:
    return [
        TenantSLO(name, TENANT_TARGET_P99_USEC, weight=weight)
        for name, weight in TENANT_TIERS
    ]


def _run_tenant(
    policy: str, duration_ns: int, seed: int, attach=None
) -> List[Dict[str, object]]:
    """One (tenant, policy) cell: a forced shed under either policy."""
    system = RTVirtSystem(pcpu_count=TENANT_PCPUS)
    ledger = CreditLedger(
        _tenant_slos(),
        {f"{name}0": name for name, _ in TENANT_TIERS},
        seed=seed,
    ).attach(system.machine.bus)
    system.admission.bind_tenants(ledger.tenant_of_vm)
    if policy == "credit":
        system.admission.set_shed_policy(ledger.shed_order)
    checker = InvariantChecker(system).attach()
    if attach is not None:
        attach(system)
    for name, _ in TENANT_TIERS:  # creation order: bronze, silver, gold
        vm = system.create_vm(f"{name}0")
        task = Task(f"{name}0.rta0", *TENANT_RTA)
        vm.register_task(task)
        PeriodicDriver(system.engine, vm, task).start()
    # Two PCPU failures leave capacity 1 against 1.275 granted: exactly
    # one grant must be revoked — *which* one is the policy under test.
    for index in (TENANT_PCPUS - 1, TENANT_PCPUS - 2):
        system.engine.at(
            duration_ns * 25 // 100,
            lambda index=index: system.fail_pcpu(index),
            priority=PRIORITY_FAULT,
            name="feedback:pcpu_fail",
        )
    system.run(duration_ns)
    report = system.miss_report()
    rows: List[Dict[str, object]] = []
    for name, weight in TENANT_TIERS:
        stats = report.per_task[f"{name}0.rta0"]
        decided = stats.met + stats.missed
        ledger_stats = ledger.stats(name)
        rows.append(
            {
                "scenario": "tenant",
                "policy": policy,
                "tenant": name,
                "weight": weight,
                "released": stats.released,
                "missed": stats.missed,
                "miss_pct": round(100.0 * stats.missed / decided, 3)
                if decided
                else 0.0,
                "sheds": ledger_stats["violations"],
                "credit": round(ledger.credit(name), 4),
                "checks": checker.checks,
            }
        )
    return rows


_SCENARIO_RUNNERS = {
    "overrun": _run_overrun,
    "migrate": _run_migrate,
    "tenant": _run_tenant,
}


def run_feedback_case(
    scenario: str,
    policy: str,
    duration_ns: int,
    seed: int,
    attach=None,
) -> List[Dict[str, object]]:
    """One (scenario, policy) cell — the parallel-runner shard.

    *attach*, when given, is called with the observed host system right
    after construction (before any VM exists), so subscribers see every
    event from the initial reservations on.  Returns the cell's rows
    (one per policy for overrun/migrate, one per tenant for tenant).
    """
    runner = _SCENARIO_RUNNERS.get(scenario)
    if runner is None:
        raise ValueError(f"unknown feedback scenario {scenario!r}")
    return runner(policy, duration_ns, seed, attach)


def feedback_unit_specs(
    experiment_id: str,
) -> List[Tuple[str, Dict[str, object]]]:
    """(unit label, shard kwargs) pairs of one experiment, in row order."""
    scenario, policies = FEEDBACK_CELLS[experiment_id]
    return [
        (policy, {"scenario": scenario, "policy": policy})
        for policy in policies
    ]


@dataclass
class FeedbackResult:
    """Per-policy rows of one adaptive-control scenario."""

    scenario: str
    cases: List[Dict[str, object]]

    def rows(self) -> List[Dict[str, object]]:
        return list(self.cases)

    def summary(self) -> str:
        return format_table(
            self.rows(), title=f"Adaptive control — scenario {self.scenario!r}"
        )


def assemble_feedback(parts: Sequence[List[Dict[str, object]]]) -> FeedbackResult:
    """Parallel-runner assembly: parts arrive in unit (= policy) order."""
    cases = [row for part in parts for row in part]
    scenario = cases[0]["scenario"] if cases else "?"
    return FeedbackResult(scenario, cases)


def run_feedback(
    experiment_id: str,
    duration_ns: int = sec(4),
    seed: int = 31,
) -> FeedbackResult:
    """Serial runner: every policy cell of one experiment, in order."""
    return assemble_feedback(
        [
            run_feedback_case(duration_ns=duration_ns, seed=seed, **kwargs)
            for _label, kwargs in feedback_unit_specs(experiment_id)
        ]
    )


# -- explain support (`python -m repro explain feedback_*`) -----------------------


def _explain_slos(scenario: str) -> Tuple[List[TenantSLO], Dict[str, str]]:
    """The tenant grouping `explain` attributes blame/credit against.

    The tenant scenario has a real tier mapping; the other scenarios get
    one tenant per VM (equal weight), so their tables read as per-VM.
    """
    if scenario == "tenant":
        return _tenant_slos(), {f"{name}0": name for name, _ in TENANT_TIERS}
    if scenario == "overrun":
        vms = [name for name, _, _ in _overrun_workload()]
    else:  # migrate
        vms = ["vm_a", "vm_b", "vm_c"]
    slos = [TenantSLO(vm, TENANT_TARGET_P99_USEC) for vm in vms]
    return slos, {vm: vm for vm in vms}


def explain_feedback(
    experiment_id: str, duration_ns: int, seed: int
) -> List[Dict[str, object]]:
    """Re-run every policy cell with span + credit observers attached.

    Returns one record per policy: the cell's result rows, the blame
    report snapshot, and a per-tenant table joining credit scores with
    the primary blame causes of that tenant's misses.  For the migrate
    scenario the observers sit on h0's bus (the host the controller
    watches), so its tables are that host's view.
    """
    from ..telemetry.blame import analyze_spans
    from ..telemetry.spans import SpanBuilder

    scenario, policies = FEEDBACK_CELLS[experiment_id]
    slos, vm_tenant = _explain_slos(scenario)
    cells: List[Dict[str, object]] = []
    for policy in policies:
        holder: Dict[str, object] = {}

        def attach(system, holder=holder) -> None:
            holder["ledger"] = CreditLedger(
                slos, vm_tenant, seed=seed
            ).attach(system.machine.bus)
            holder["spans"] = SpanBuilder().attach(system.machine)

        rows = run_feedback_case(
            scenario, policy, duration_ns, seed, attach=attach
        )
        builder = holder["spans"].finalize(duration_ns)
        report, misses = analyze_spans(builder)
        ledger = holder["ledger"]
        causes: Dict[str, Dict[str, int]] = {name: {} for name in ledger.slos}
        for miss in misses:
            tenant = ledger.tenant_of_vm(default_task_owner(miss["task"]))
            if tenant:
                per = causes[tenant]
                per[miss["primary"]] = per.get(miss["primary"], 0) + 1
        tenants: List[Dict[str, object]] = []
        for name in sorted(ledger.slos):
            stats = ledger.stats(name)
            blame = ", ".join(
                f"{cause}:{count}"
                for cause, count in sorted(
                    causes[name].items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
            tenants.append(
                {
                    "tenant": name,
                    "credit": round(ledger.credit(name), 4),
                    "met": stats["met"],
                    "missed": stats["missed"],
                    "violations": stats["violations"],
                    "blame": blame or "-",
                }
            )
        cells.append(
            {
                "policy": policy,
                "rows": rows,
                "blame": report.snapshot(),
                "tenants": tenants,
            }
        )
    return cells
