"""Figure 3 — total CPU bandwidth per RTA group under RT-Xen and RTVirt.

Four bars per group:

- **RTA-Req**: the task set's mathematical requirement Σ s/p;
- **RT-Xen: Allocated**: Σ of the CSA interfaces' bandwidths;
- **RT-Xen: Claimed**: the whole CPUs DMPR sets aside (unusable for any
  further RTA — the pessimism cost);
- **RTVirt**: Σ of derived VCPU bandwidths (requirement + per-VCPU slack).

All values are computed exactly (rational arithmetic), then reported in
percent of one CPU for the figure's y-axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from ..analysis.dmpr import claim_for_group
from ..baselines.configs import rtxen_interfaces_for_group
from ..guest.params import derive_vcpu_params
from ..guest.task import Task
from ..metrics.bandwidth import (
    BandwidthBreakdown,
    allocated_savings_percent,
    average_extra_cpu,
    claimed_savings_percent,
)
from ..simcore.time import MSEC
from ..workloads.periodic import TABLE1_GROUPS, RTASpec
from .common import format_table

#: The paper's per-VCPU slack (500 µs).
DEFAULT_SLACK_NS = 500_000


def rtvirt_group_bandwidth(specs: Sequence[RTASpec], slack_ns: int) -> Fraction:
    """Σ of RTVirt's derived VCPU bandwidths for one-RTA-per-VM VMs."""
    total = Fraction(0)
    for spec in specs:
        task = Task(f"tmp-{id(spec)}-{spec.slice_ms}", spec.slice_ns, spec.period_ns)
        params = derive_vcpu_params([task], slack_ns)
        total += params.bandwidth
    return total


def breakdown_for_group(
    group: str, slack_ns: int = DEFAULT_SLACK_NS
) -> BandwidthBreakdown:
    """One bar cluster of Figure 3."""
    specs = TABLE1_GROUPS[group]
    interfaces = rtxen_interfaces_for_group(specs, min_period=MSEC)
    claimed, allocated = claim_for_group(interfaces)
    required = sum(
        (Fraction(s.slice_ns, s.period_ns) for s in specs), Fraction(0)
    )
    return BandwidthBreakdown(
        group=group,
        rta_required=required,
        rtxen_allocated=allocated,
        rtxen_claimed=Fraction(claimed),
        rtvirt=rtvirt_group_bandwidth(specs, slack_ns),
    )


@dataclass
class Fig3Result:
    breakdowns: List[BandwidthBreakdown]

    def rows(self) -> List[Dict[str, object]]:
        rows = []
        for b in self.breakdowns:
            row: Dict[str, object] = {"group": b.group}
            row.update(b.as_percent())
            rows.append(row)
        return rows

    def summary(self) -> str:
        lines = [format_table(self.rows(), title="Figure 3 — CPU bandwidth (% of one CPU)")]
        lines.append("")
        lines.append(
            f"RT-Xen wasted CPU (claimed - required), average: "
            f"{average_extra_cpu(self.breakdowns, 'rtxen'):.3f} CPUs "
            f"(paper: 0.736)"
        )
        lines.append(
            f"RTVirt allocated savings vs RT-Xen allocated: "
            f"{allocated_savings_percent(self.breakdowns):.1f}% (paper: 6.8%)"
        )
        lines.append(
            f"RTVirt savings vs RT-Xen claimed: "
            f"{claimed_savings_percent(self.breakdowns):.1f}% (paper: 39.4%)"
        )
        return "\n".join(lines)


def run_fig3(
    groups: Optional[Sequence[str]] = None, slack_ns: int = DEFAULT_SLACK_NS
) -> Fig3Result:
    """All six bar clusters of Figure 3."""
    if groups is None:
        groups = list(TABLE1_GROUPS)
    return Fig3Result([breakdown_for_group(g, slack_ns) for g in groups])
