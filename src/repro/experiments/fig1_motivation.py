"""Figure 1 — the motivating example (paper §2).

Three VMs share one CPU under a host-level EDF scheduler with no
cross-layer information: VM1 (5,15), VM2 (5,10), VM3 (5,30) — exactly
100% utilization, so the VMs themselves are schedulable.  Inside VM1, a
guest EDF scheduler runs RTA1 (1,15) and RTA2 (4,15); VM1's allocation
(5/15) equals their combined demand.  Yet RTA2, whose releases are
phase-shifted relative to VM1's CPU slots, misses every other deadline —
the paper's demonstration that real-time schedulers at both levels are
not sufficient without coordination.

The companion function runs the same task set under RTVirt, where the
cross-layer deadline information removes all misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.system import RTVirtSystem
from ..guest.port import StaticPort
from ..guest.task import Task
from ..guest.vm import VM
from ..host.base_system import BaseSystem
from ..host.costs import ZERO_COSTS
from ..host.edf import EDFHostScheduler
from ..simcore.engine import Engine
from ..simcore.time import msec, sec
from ..simcore.trace import Trace
from ..workloads.periodic import PeriodicDriver
from .common import format_table

#: (slice_ms, period_ms) of the three VMs in Figure 1a.
FIG1_VMS = {"vm1": (5, 15), "vm2": (5, 10), "vm3": (5, 30)}
#: (slice_ms, period_ms) of the two RTAs inside VM1 (Figure 1b).
FIG1_RTAS = {"rta1": (1, 15), "rta2": (4, 15)}
#: Phase of RTA2's releases relative to RTA1 (the figure's offset
#: arrivals: RTA2 arrives after VM1's slot has already passed).  With
#: this phase RTA2 misses exactly every other deadline, as in Figure 1b.
RTA2_PHASE_MS = 5


@dataclass
class Fig1Result:
    """Outcomes of the motivation experiment."""

    system_name: str
    rta_stats: Dict[str, Dict[str, float]]
    trace: Trace = field(repr=False, default=None)

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "system": self.system_name,
                "rta": name,
                "released": s["released"],
                "met": s["met"],
                "missed": s["missed"],
                "miss_ratio": s["miss_ratio"],
            }
            for name, s in sorted(self.rta_stats.items())
        ]

    def summary(self) -> str:
        return format_table(self.rows(), title=f"Figure 1 — {self.system_name}")

    def miss_ratio(self, rta: str) -> float:
        return self.rta_stats[rta]["miss_ratio"]


def _stats_dict(task: Task) -> Dict[str, float]:
    return {
        "released": task.stats.released,
        "met": task.stats.met,
        "missed": task.stats.missed,
        "miss_ratio": task.stats.miss_ratio,
    }


def run_uncoordinated(duration_ns: int = sec(30), trace: bool = False) -> Fig1Result:
    """The Figure 1 scenario: two-level EDF without coordination."""
    engine = Engine()
    tr = Trace() if trace else None
    machine_system = BaseSystem(pcpu_count=1, engine=engine, cost_model=ZERO_COSTS, trace=tr)
    scheduler = EDFHostScheduler()
    machine_system.machine.set_host_scheduler(scheduler)

    vms: Dict[str, VM] = {}
    for name, (s_ms, p_ms) in FIG1_VMS.items():
        vm = VM(name, vcpu_count=1, slack_ns=0)
        vm.set_port(StaticPort())
        machine_system._attach(vm)
        vm.configure_vcpu(0, msec(s_ms), msec(p_ms))
        scheduler.add_vcpu(vm.vcpus[0])
        vms[name] = vm

    tasks: Dict[str, Task] = {}
    drivers = []
    for name, (s_ms, p_ms) in FIG1_RTAS.items():
        task = Task(name, msec(s_ms), msec(p_ms))
        vms["vm1"].register_task(task)
        tasks[name] = task
        phase = msec(RTA2_PHASE_MS) if name == "rta2" else 0
        drivers.append(
            PeriodicDriver(engine, vms["vm1"], task, phase_ns=phase).start()
        )
    # VM2 and VM3 run their own periodic RTAs consuming their full slices,
    # so the host EDF schedule matches Figure 1a.
    for name in ("vm2", "vm3"):
        s_ms, p_ms = FIG1_VMS[name]
        task = Task(f"{name}.rta", msec(s_ms), msec(p_ms))
        vms[name].register_task(task)
        tasks[f"{name}.rta"] = task
        drivers.append(PeriodicDriver(engine, vms[name], task).start())
    # Each guest OS always has something to run (idle housekeeping), so the
    # host sees the VMs as permanently runnable — Figure 1a's fixed EDF
    # slots.  Without this, the deferrable servers would retain budget
    # while idle and partially hide the coordination problem.
    for vm in vms.values():
        vm.add_background_process()

    machine_system.run(duration_ns)
    machine_system.finalize()
    return Fig1Result(
        system_name="two-level EDF (no coordination)",
        rta_stats={name: _stats_dict(t) for name, t in tasks.items()},
        trace=tr,
    )


def run_rtvirt(duration_ns: int = sec(30), trace: bool = False) -> Fig1Result:
    """The same task set under RTVirt's cross-layer scheduling."""
    tr = Trace() if trace else None
    system = RTVirtSystem(pcpu_count=1, cost_model=ZERO_COSTS, slack_ns=0, trace=tr)
    vm1 = system.create_vm("vm1")
    tasks: Dict[str, Task] = {}
    for name, (s_ms, p_ms) in FIG1_RTAS.items():
        task = Task(name, msec(s_ms), msec(p_ms))
        vm1.register_task(task)
        tasks[name] = task
        phase = msec(RTA2_PHASE_MS) if name == "rta2" else 0
        PeriodicDriver(system.engine, vm1, task, phase_ns=phase).start()
    for name in ("vm2", "vm3"):
        s_ms, p_ms = FIG1_VMS[name]
        vm = system.create_vm(name)
        task = Task(f"{name}.rta", msec(s_ms), msec(p_ms))
        vm.register_task(task)
        tasks[f"{name}.rta"] = task
        PeriodicDriver(system.engine, vm, task).start()
    system.run(duration_ns)
    system.finalize()
    return Fig1Result(
        system_name="RTVirt (cross-layer)",
        rta_stats={name: _stats_dict(t) for name, t in tasks.items()},
        trace=tr,
    )


def run_fig1(duration_ns: int = sec(30)) -> Dict[str, Fig1Result]:
    """Both halves of the motivation comparison."""
    return {
        "uncoordinated": run_uncoordinated(duration_ns),
        "rtvirt": run_rtvirt(duration_ns),
    }


class Fig1Combined:
    """Both halves of Figure 1 as one printable result."""

    def __init__(self, results: Dict[str, Fig1Result]) -> None:
        self.results = results

    def rows(self) -> List[dict]:
        return [row for r in self.results.values() for row in r.rows()]

    def summary(self) -> str:
        return "\n\n".join(r.summary() for r in self.results.values())


def run_fig1_combined(duration_ns: int = sec(30)) -> Fig1Combined:
    """The registry-facing runner: both halves, one result object."""
    return Fig1Combined(run_fig1(duration_ns=duration_ns))
