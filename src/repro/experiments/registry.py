"""Index of every reproduced table and figure.

Maps each experiment id to its runner, so the EXPERIMENTS.md generator,
the benchmarks and ad-hoc exploration all share one catalogue:

    from repro.experiments import registry
    result = registry.run("fig3")
    print(result.summary())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..simcore.time import sec
from . import (
    cluster_scale,
    feedback_adaptive,
    fig1_motivation,
    fig3_bandwidth,
    fig4_dynamic,
    fig5_memcached,
    robustness,
    sporadic_rtas,
    table1_periodic,
    table2_config,
    table4_dedicated,
    table6_overhead,
)


# Full-length run parameters.  The serial runners below and the parallel
# runner's work-unit plans (repro.runner.workunits) both read these, so
# the two paths cannot drift apart.
FIG1_DURATION_NS = sec(30)
TABLE1_DURATION_NS = sec(20)
SPORADIC_REQUESTS = 30
SPORADIC_SEED = 7
FIG4_DURATION_NS = sec(120)
FIG4_SEED = 11
TABLE4_DURATION_NS = sec(40)
TABLE4_SEED = 3
FIG5A_DURATION_NS = sec(40)
FIG5A_SEED = 17
FIG5B_DURATION_NS = sec(20)
FIG5B_SEED = 23
TABLE6_DURATION_NS = sec(5)
TABLE6_PCPUS = 15
ROBUSTNESS_DURATION_NS = sec(5)
ROBUSTNESS_SMOKE_DURATION_NS = sec(1)
ROBUSTNESS_SEED = 11
CLUSTER_DURATION_NS = sec(2)
CLUSTER_SMOKE_DURATION_NS = sec(1)
CLUSTER_SEED = 29
FEEDBACK_DURATION_NS = sec(4)
FEEDBACK_SMOKE_DURATION_NS = sec(1)
FEEDBACK_SEED = 31


@dataclass(frozen=True)
class ExperimentEntry:
    """One table/figure of the paper's evaluation.

    ``runner`` regenerates the full-length result; ``smoke`` runs a
    sharply shortened variant of the same harness (seconds, not minutes)
    so the whole catalogue can be exercised in the test suite.
    """

    experiment_id: str
    paper_ref: str
    description: str
    runner: Callable[[], object]
    smoke: Callable[[], object]


REGISTRY: Dict[str, ExperimentEntry] = {
    "fig1": ExperimentEntry(
        "fig1",
        "Figure 1",
        "Motivation: uncoordinated two-level EDF misses RTA deadlines; RTVirt does not",
        lambda: fig1_motivation.run_fig1_combined(duration_ns=FIG1_DURATION_NS),
        smoke=lambda: fig1_motivation.run_fig1_combined(duration_ns=sec(2)),
    ),
    "table1": ExperimentEntry(
        "table1",
        "Table 1 / §4.2",
        "Periodic RTA groups: all deadlines met under RTVirt and RT-Xen",
        lambda: table1_periodic.run_table1(duration_ns=TABLE1_DURATION_NS),
        smoke=lambda: table1_periodic.run_table1(
            duration_ns=sec(2), groups=["H-Equiv"]
        ),
    ),
    "table2": ExperimentEntry(
        "table2",
        "Table 2",
        "NH-Dec VM configurations under CSA (RT-Xen) and slack derivation (RTVirt)",
        table2_config.run_table2,
        smoke=table2_config.run_table2,
    ),
    "fig3": ExperimentEntry(
        "fig3",
        "Figure 3",
        "CPU bandwidth requirement per group: required / allocated / claimed / RTVirt",
        fig3_bandwidth.run_fig3,
        smoke=fig3_bandwidth.run_fig3,
    ),
    "sporadic": ExperimentEntry(
        "sporadic",
        "§4.2 sporadic",
        "Sporadic RTAs: 100 externally triggered requests per RTA, no misses",
        lambda: sporadic_rtas.run_sporadic(
            requests_per_rta=SPORADIC_REQUESTS, seed=SPORADIC_SEED
        ),
        smoke=lambda: sporadic_rtas.run_sporadic(
            requests_per_rta=2, groups=["H-Equiv"]
        ),
    ),
    "fig4": ExperimentEntry(
        "fig4",
        "Figure 4 / Table 3",
        "Dynamic video-streaming RTAs with online admission",
        lambda: fig4_dynamic.run_fig4(duration_ns=FIG4_DURATION_NS, seed=FIG4_SEED),
        smoke=lambda: fig4_dynamic.run_fig4(duration_ns=sec(20), seed=FIG4_SEED),
    ),
    "table4": ExperimentEntry(
        "table4",
        "Table 4",
        "memcached latency tail on a dedicated CPU per scheduler",
        lambda: table4_dedicated.run_table4(
            duration_ns=TABLE4_DURATION_NS, seed=TABLE4_SEED
        ),
        smoke=lambda: table4_dedicated.run_table4(duration_ns=sec(2)),
    ),
    "fig5a": ExperimentEntry(
        "fig5a",
        "Figure 5a",
        "memcached vs 19 non-RTA VMs on 2 PCPUs (SLO 500 µs p99.9)",
        lambda: fig5_memcached.run_fig5a(
            duration_ns=FIG5A_DURATION_NS, seed=FIG5A_SEED
        ),
        smoke=lambda: fig5_memcached.run_fig5a(duration_ns=sec(2)),
    ),
    "fig5b": ExperimentEntry(
        "fig5b",
        "Figure 5b",
        "5 memcached VMs + 10 video VMs on 15 PCPUs (SLO 500 µs p99.9)",
        lambda: fig5_memcached.run_fig5b(
            duration_ns=FIG5B_DURATION_NS, seed=FIG5B_SEED
        ),
        smoke=lambda: fig5_memcached.run_fig5b(duration_ns=sec(2)),
    ),
    "table6": ExperimentEntry(
        "table6",
        "Tables 5-6 / §4.5",
        "Scalability: 100 RTAs, overhead of schedule() and context switches",
        lambda: table6_overhead.run_table6(
            duration_ns=TABLE6_DURATION_NS, pcpu_count=TABLE6_PCPUS
        ),
        smoke=lambda: table6_overhead.run_table6(
            duration_ns=sec(1), analyze_rtxen=False
        ),
    ),
}

# Robustness suite: one entry per fault family, all driven by the same
# harness.  Closures bind the family id by value via the default arg.
for _fault in robustness.ROBUSTNESS_FAULTS:
    REGISTRY[f"robustness_{_fault}"] = ExperimentEntry(
        f"robustness_{_fault}",
        "§5 robustness",
        f"Fault injection ({_fault.replace('_', ' ')}): miss ratio and "
        "recovery latency per scheduler",
        runner=lambda f=_fault: robustness.run_robustness(
            f, duration_ns=ROBUSTNESS_DURATION_NS, seed=ROBUSTNESS_SEED
        ),
        smoke=lambda f=_fault: robustness.run_robustness(
            f, duration_ns=ROBUSTNESS_SMOKE_DURATION_NS, seed=ROBUSTNESS_SEED
        ),
    )
del _fault

# Cluster suite: one entry per management-plane mode, all on the same
# multi-host harness (per-host work units in the parallel runner).
for _mode in cluster_scale.CLUSTER_MODES:
    REGISTRY[f"cluster_{_mode}"] = ExperimentEntry(
        f"cluster_{_mode}",
        "§6 cluster",
        f"Multi-host cluster ({_mode}): planner placement, live migration "
        "and cross-host deadline audit per scheduler",
        runner=lambda m=_mode: cluster_scale.run_cluster(
            m, duration_ns=CLUSTER_DURATION_NS, seed=CLUSTER_SEED
        ),
        smoke=lambda m=_mode: cluster_scale.run_cluster(
            m, duration_ns=CLUSTER_SMOKE_DURATION_NS, seed=CLUSTER_SEED, smoke=True
        ),
    )
del _mode

# Control-plane suite: the blame-driven feedback controller and the
# credit-ranked tenant shed, head-to-head against their static policies.
for _fid in feedback_adaptive.FEEDBACK_CELLS:
    _scenario = feedback_adaptive.FEEDBACK_CELLS[_fid][0]
    REGISTRY[_fid] = ExperimentEntry(
        _fid,
        "§7 control plane",
        f"Adaptive control plane ({_scenario}): policy head-to-head "
        "miss ratio, granted bandwidth and controller actions",
        runner=lambda f=_fid: feedback_adaptive.run_feedback(
            f, duration_ns=FEEDBACK_DURATION_NS, seed=FEEDBACK_SEED
        ),
        smoke=lambda f=_fid: feedback_adaptive.run_feedback(
            f, duration_ns=FEEDBACK_SMOKE_DURATION_NS, seed=FEEDBACK_SEED
        ),
    )
del _fid, _scenario


def run(experiment_id: str):
    """Run one experiment by id and return its result object."""
    return REGISTRY[experiment_id].runner()


def run_smoke(experiment_id: str):
    """Run the shortened (smoke) variant of one experiment."""
    return REGISTRY[experiment_id].smoke()


def all_ids() -> List[str]:
    """All experiment ids in paper order."""
    return list(REGISTRY)


def expand_ids(patterns: List[str]) -> List[str]:
    """Expand ids and ``fnmatch`` globs (``robustness_*``) in paper order.

    Plain ids pass through untouched; a pattern with glob characters
    expands to every matching registry id.  Raises :class:`KeyError` on
    an unknown id or a glob matching nothing.
    """
    from fnmatch import fnmatch

    order = all_ids()
    selected: List[str] = []
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            matches = [i for i in order if fnmatch(i, pattern)]
            if not matches:
                raise KeyError(f"no experiment id matches {pattern!r}")
            selected.extend(m for m in matches if m not in selected)
        else:
            if pattern not in REGISTRY:
                raise KeyError(f"unknown experiment id {pattern!r}")
            if pattern not in selected:
                selected.append(pattern)
    return selected
