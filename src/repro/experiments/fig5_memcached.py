"""Figure 5 — memcached tail latency under contention (paper §4.4).

Two scenarios, four schedulers each:

**(a) Non-RTA contention** — one memcached VM plus 19 CPU-bound non-RTA
VMs share two PCPUs.  VM configurations follow the paper: Credit gets a
26% weight share (timeslice 1 ms, ratelimit 500 µs); RTVirt reserves
(s=58 µs, p=500 µs); RT-Xen uses the two cheapest runnable CSA
interfaces, A = (66, 283) µs and B = (33, 177) µs.

**(b) Periodic contention** — five memcached VMs (independent Mutilate
clients) plus ten emulated video-streaming VMs (3×24, 3×30, 2×48,
2×60 fps) on 15 PCPUs.

The SLO is a 500 µs 99.9th-percentile NIC-to-NIC latency.  The paper's
verdicts: RTVirt meets the SLO in both scenarios with the least
bandwidth (50.2% less than RT-Xen A in (a)); Credit fails both with a
long tail; each RT-Xen configuration fails at least one scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..baselines.configs import (
    CREDIT_GLOBAL_TIMESLICE_NS,
    CREDIT_RATELIMIT_NS,
    MEMCACHED_CREDIT_SHARE,
    MEMCACHED_RTVIRT_PARAMS,
    MEMCACHED_RTXEN_A,
    MEMCACHED_RTXEN_B,
    MEMCACHED_SLO_NS,
    credit_weight_for_share,
)
from ..baselines.credit import CreditSystem
from ..baselines.rtxen import RTXenSystem
from ..core.system import RTVirtSystem
from ..guest.task import Task
from ..metrics.latency import LatencyRecorder, merge_recorders
from ..simcore.rng import RandomStreams
from ..simcore.time import MSEC, USEC, sec
from ..workloads.background import add_background_vms
from ..workloads.arrivals import ArrivalMux
from ..workloads.memcached import MemcachedService
from ..workloads.periodic import PeriodicDriver
from ..workloads.video import TABLE3_PROFILES
from .common import format_table
from .table4_dedicated import CREDIT_WAKE_OVERHEAD_NS

SLO_USEC = MEMCACHED_SLO_NS / 1000.0

#: Figure 5b streaming mix: (fps, count).
FIG5B_STREAM_MIX: List[Tuple[int, int]] = [(24, 3), (30, 3), (48, 2), (60, 2)]


@dataclass
class SchedulerOutcome:
    scheduler: str
    latency: LatencyRecorder
    reserved_cpus: float
    video_misses: Dict[str, float] = field(default_factory=dict)

    @property
    def p999_usec(self) -> float:
        return self.latency.p999_usec()

    @property
    def meets_slo(self) -> bool:
        return self.p999_usec <= SLO_USEC

    def row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "scheduler": self.scheduler,
            "p99.9_us": self.p999_usec,
            "mean_us": self.latency.mean_usec(),
            "meets_SLO": self.meets_slo,
            "reserved_cpus": self.reserved_cpus,
        }
        if self.video_misses:
            row["worst_video_miss"] = max(self.video_misses.values())
        return row


@dataclass
class Fig5Result:
    scenario: str
    outcomes: List[SchedulerOutcome]

    def rows(self) -> List[Dict[str, object]]:
        return [o.row() for o in self.outcomes]

    def summary(self) -> str:
        return format_table(
            self.rows(),
            title=f"Figure 5{self.scenario} — memcached 99.9th-percentile latency "
            f"(SLO {SLO_USEC:.0f} µs)",
        )

    def outcome(self, scheduler: str) -> SchedulerOutcome:
        for o in self.outcomes:
            if o.scheduler == scheduler:
                return o
        raise KeyError(scheduler)

    def cdf(self, scheduler: str) -> List[Tuple[float, float]]:
        """The Figure 5 CDF series for one scheduler, µs."""
        return self.outcome(scheduler).latency.cdf_usec()


# -- scenario (a): 19 non-RTA VMs, 2 PCPUs -----------------------------------------


def _run_5a_rtvirt(duration_ns: int, seed: int) -> SchedulerOutcome:
    streams = RandomStreams(seed)
    system = RTVirtSystem(pcpu_count=2, slack_ns=0)
    vm = system.create_vm("mc", slack_ns=0)
    budget, period = MEMCACHED_RTVIRT_PARAMS
    svc = MemcachedService(
        system.engine, vm, streams.stream("mc"), period_ns=period, slice_ns=budget
    ).start()
    add_background_vms(system, 19)
    system.run(duration_ns)
    system.finalize()
    return SchedulerOutcome("RTVirt", svc.latency, budget / period)


def _run_5a_rtxen(duration_ns: int, seed: int, variant: str) -> SchedulerOutcome:
    iface = MEMCACHED_RTXEN_A if variant == "A" else MEMCACHED_RTXEN_B
    streams = RandomStreams(seed)
    system = RTXenSystem(pcpu_count=2)
    vm = system.create_vm("mc", interfaces=[(iface.budget, iface.period)])
    svc = MemcachedService(system.engine, vm, streams.stream("mc"), register=False)
    system.register_rta(vm, svc.task)
    svc.start()
    add_background_vms(system, 19)
    system.run(duration_ns)
    system.finalize()
    return SchedulerOutcome(f"RT-Xen {variant}", svc.latency, iface.bandwidth)


def _run_5a_credit(duration_ns: int, seed: int) -> SchedulerOutcome:
    streams = RandomStreams(seed)
    system = CreditSystem(
        pcpu_count=2,
        timeslice_ns=CREDIT_GLOBAL_TIMESLICE_NS,
        ratelimit_ns=CREDIT_RATELIMIT_NS,
        wake_overhead_ns=CREDIT_WAKE_OVERHEAD_NS,
    )
    weight = credit_weight_for_share(MEMCACHED_CREDIT_SHARE, peers=19)
    vm = system.create_vm("mc", weight=weight)
    svc = MemcachedService(system.engine, vm, streams.stream("mc")).start()
    add_background_vms(system, 19)
    system.run(duration_ns)
    system.finalize()
    return SchedulerOutcome("Credit", svc.latency, MEMCACHED_CREDIT_SHARE)


#: Canonical Figure 5 scheduler order; also the per-scheduler shard ids
#: used by the parallel runner.  Every scheduler run builds its own
#: system and RandomStreams(seed), so shards reproduce the serial run.
FIG5_SCHEDULERS = ("Credit", "RT-Xen A", "RT-Xen B", "RTVirt")


def run_fig5a_scheduler(
    scheduler: str, duration_ns: int = sec(60), seed: int = 17
) -> SchedulerOutcome:
    """One scheduler's outcome in scenario (a)."""
    if scheduler == "Credit":
        return _run_5a_credit(duration_ns, seed)
    if scheduler == "RT-Xen A":
        return _run_5a_rtxen(duration_ns, seed, "A")
    if scheduler == "RT-Xen B":
        return _run_5a_rtxen(duration_ns, seed, "B")
    if scheduler == "RTVirt":
        return _run_5a_rtvirt(duration_ns, seed)
    raise KeyError(f"unknown Figure 5 scheduler {scheduler!r}")


def run_fig5a(duration_ns: int = sec(60), seed: int = 17) -> Fig5Result:
    """Scenario (a): memcached vs 19 non-RTA CPU-bound VMs on 2 PCPUs."""
    return Fig5Result(
        scenario="a",
        outcomes=[
            run_fig5a_scheduler(s, duration_ns, seed) for s in FIG5_SCHEDULERS
        ],
    )


# -- scenario (b): 5 memcached + 10 video VMs, 15 PCPUs ------------------------------


def _video_tasks() -> List[Tuple[str, int]]:
    names = []
    for fps, count in FIG5B_STREAM_MIX:
        for i in range(count):
            names.append((f"video-{fps}fps-{i + 1}", fps))
    return names


def _run_5b_rtvirt(duration_ns: int, seed: int) -> SchedulerOutcome:
    streams = RandomStreams(seed)
    system = RTVirtSystem(pcpu_count=15)
    mux = ArrivalMux(system.engine, name="mc-5b")
    services: List[MemcachedService] = []
    budget, period = MEMCACHED_RTVIRT_PARAMS
    reserved = Fraction(0)
    for i in range(5):
        vm = system.create_vm(f"mc{i + 1}", slack_ns=0)
        svc = MemcachedService(
            system.engine,
            vm,
            streams.stream(f"mc{i}"),
            name=f"memcached{i + 1}",
            period_ns=period,
            slice_ns=budget,
            mux=mux,
        ).start()
        services.append(svc)
        reserved += Fraction(budget, period)
    video: List[Task] = []
    for name, fps in _video_tasks():
        profile = TABLE3_PROFILES[fps]
        vm = system.create_vm(f"{name}-vm")
        task = Task(name, profile.spec.slice_ns, profile.spec.period_ns)
        vm.register_task(task)
        video.append(task)
        PeriodicDriver(system.engine, vm, task).start()
        reserved += vm.vcpus[0].bandwidth
    system.run(duration_ns)
    system.finalize()
    return SchedulerOutcome(
        "RTVirt",
        merge_recorders([s.latency for s in services], name="rtvirt-5b"),
        float(reserved),
        video_misses={t.name: t.stats.miss_ratio for t in video},
    )


def _run_5b_rtxen(duration_ns: int, seed: int, variant: str) -> SchedulerOutcome:
    from ..baselines.configs import rtxen_interface_for_rta

    iface = MEMCACHED_RTXEN_A if variant == "A" else MEMCACHED_RTXEN_B
    streams = RandomStreams(seed)
    system = RTXenSystem(pcpu_count=15)
    mux = ArrivalMux(system.engine, name="mc-5b")
    services: List[MemcachedService] = []
    reserved = Fraction(0)
    for i in range(5):
        vm = system.create_vm(f"mc{i + 1}", interfaces=[(iface.budget, iface.period)])
        svc = MemcachedService(
            system.engine,
            vm,
            streams.stream(f"mc{i}"),
            name=f"memcached{i + 1}",
            register=False,
            mux=mux,
        )
        system.register_rta(vm, svc.task)
        svc.start()
        services.append(svc)
        reserved += iface.bandwidth
    video: List[Task] = []
    for name, fps in _video_tasks():
        profile = TABLE3_PROFILES[fps]
        viface = rtxen_interface_for_rta(profile.spec, min_period=MSEC)
        vm = system.create_vm(f"{name}-vm", interfaces=[(viface.budget, viface.period)])
        task = Task(name, profile.spec.slice_ns, profile.spec.period_ns)
        system.register_rta(vm, task)
        video.append(task)
        PeriodicDriver(system.engine, vm, task).start()
        reserved += viface.bandwidth
    system.run(duration_ns)
    system.finalize()
    return SchedulerOutcome(
        f"RT-Xen {variant}",
        merge_recorders([s.latency for s in services], name=f"rtxen{variant}-5b"),
        float(reserved),
        video_misses={t.name: t.stats.miss_ratio for t in video},
    )


def _run_5b_credit(duration_ns: int, seed: int) -> SchedulerOutcome:
    streams = RandomStreams(seed)
    system = CreditSystem(
        pcpu_count=15,
        timeslice_ns=CREDIT_GLOBAL_TIMESLICE_NS,
        ratelimit_ns=CREDIT_RATELIMIT_NS,
        wake_overhead_ns=CREDIT_WAKE_OVERHEAD_NS,
    )
    mux = ArrivalMux(system.engine, name="mc-5b")
    services: List[MemcachedService] = []
    # Weights proportional to each VM's CPU need, as a Credit operator
    # would configure them.
    for i in range(5):
        vm = system.create_vm(f"mc{i + 1}", weight=credit_weight_for_share(0.26, peers=14))
        svc = MemcachedService(
            system.engine,
            vm,
            streams.stream(f"mc{i}"),
            name=f"memcached{i + 1}",
            mux=mux,
        ).start()
        services.append(svc)
    video: List[Task] = []
    for name, fps in _video_tasks():
        profile = TABLE3_PROFILES[fps]
        vm = system.create_vm(f"{name}-vm", weight=256)
        task = Task(name, profile.spec.slice_ns, profile.spec.period_ns)
        vm.register_task(task)
        video.append(task)
        PeriodicDriver(system.engine, vm, task).start()
    system.run(duration_ns)
    system.finalize()
    return SchedulerOutcome(
        "Credit",
        merge_recorders([s.latency for s in services], name="credit-5b"),
        5 * 0.26,
        video_misses={t.name: t.stats.miss_ratio for t in video},
    )


def run_fig5b_scheduler(
    scheduler: str, duration_ns: int = sec(60), seed: int = 23
) -> SchedulerOutcome:
    """One scheduler's outcome in scenario (b)."""
    if scheduler == "Credit":
        return _run_5b_credit(duration_ns, seed)
    if scheduler == "RT-Xen A":
        return _run_5b_rtxen(duration_ns, seed, "A")
    if scheduler == "RT-Xen B":
        return _run_5b_rtxen(duration_ns, seed, "B")
    if scheduler == "RTVirt":
        return _run_5b_rtvirt(duration_ns, seed)
    raise KeyError(f"unknown Figure 5 scheduler {scheduler!r}")


def run_fig5b(duration_ns: int = sec(60), seed: int = 23) -> Fig5Result:
    """Scenario (b): 5 memcached VMs + 10 video VMs on 15 PCPUs."""
    return Fig5Result(
        scenario="b",
        outcomes=[
            run_fig5b_scheduler(s, duration_ns, seed) for s in FIG5_SCHEDULERS
        ],
    )
