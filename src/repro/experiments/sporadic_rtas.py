"""§4.2 sporadic RTAs.

Same parameters as the periodic groups (Table 1), but each RTA is
activated by an external request with uniformly distributed inter-
arrival times between 100 ms and 1 s; every activation runs one job of
one slice with a deadline one period later.  The paper generates 100
requests per RTA and observes **no deadline misses on either
framework**, with RTVirt claiming ~39.4% less bandwidth (the same
Figure 3 accounting as the periodic case, since the reservations are
identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.configs import rtxen_interfaces_for_group
from ..core.system import RTVirtSystem
from ..baselines.rtxen import RTXenSystem
from ..guest.task import Task, TaskKind
from ..simcore.rng import RandomStreams
from ..simcore.time import MSEC, SEC, sec
from ..workloads.arrivals import ArrivalMux
from ..workloads.periodic import TABLE1_GROUPS, RTASpec
from ..workloads.sporadic import SporadicDriver
from .common import format_table
from .table1_periodic import GroupRun, Table1Result, _pcpus_for


def _run_requests(system, drivers: Sequence[SporadicDriver], max_requests: int) -> None:
    """Run until every driver has issued and drained its requests."""
    # Mean inter-arrival is 550 ms; allow generous time plus drain slack.
    horizon = system.engine.now + (max_requests + 5) * SEC
    while (
        any(d.requests_sent < max_requests for d in drivers)
        and system.engine.now < horizon
    ):
        system.run(10 * SEC)
    system.run(2 * SEC)  # drain in-flight jobs
    system.finalize()


def run_group_sporadic_rtvirt(
    group: str,
    requests_per_rta: int = 100,
    seed: int = 7,
    slack_ns: int = 500_000,
    pcpu_count: Optional[int] = None,
) -> GroupRun:
    """One Table 1 group as sporadic RTAs under RTVirt."""
    specs = TABLE1_GROUPS[group]
    if pcpu_count is None:
        pcpu_count = _pcpus_for(specs, slack_ns)
    streams = RandomStreams(seed)
    system = RTVirtSystem(pcpu_count=pcpu_count, slack_ns=slack_ns)
    mux = ArrivalMux(system.engine, name=f"{group}-sporadic")
    tasks: List[Task] = []
    drivers: List[SporadicDriver] = []
    for i, spec in enumerate(specs):
        vm = system.create_vm(f"{group}-svm{i + 1}")
        task = Task(
            f"{group}.sp{i + 1}", spec.slice_ns, spec.period_ns, TaskKind.SPORADIC
        )
        vm.register_task(task)
        tasks.append(task)
        drivers.append(
            SporadicDriver(
                system.engine,
                vm,
                task,
                streams.stream(f"{group}.sp{i}"),
                max_requests=requests_per_rta,
                mux=mux,
            ).start()
        )
    _run_requests(system, drivers, requests_per_rta)
    return GroupRun(
        framework="RTVirt",
        group=group,
        released=sum(t.stats.released for t in tasks),
        met=sum(t.stats.met for t in tasks),
        missed=sum(t.stats.missed for t in tasks),
    )


def run_group_sporadic_rtxen(
    group: str,
    requests_per_rta: int = 100,
    seed: int = 7,
    pcpu_count: Optional[int] = None,
) -> GroupRun:
    """One Table 1 group as sporadic RTAs under RT-Xen (CSA interfaces)."""
    specs = TABLE1_GROUPS[group]
    interfaces = rtxen_interfaces_for_group(specs, min_period=MSEC)
    if pcpu_count is None:
        from ..analysis.dmpr import claim_for_group

        pcpu_count, _ = claim_for_group(interfaces)
    streams = RandomStreams(seed)
    system = RTXenSystem(pcpu_count=pcpu_count)
    mux = ArrivalMux(system.engine, name=f"{group}-sporadic")
    tasks: List[Task] = []
    drivers: List[SporadicDriver] = []
    for i, (spec, iface) in enumerate(zip(specs, interfaces)):
        vm = system.create_vm(
            f"{group}-svm{i + 1}", interfaces=[(iface.budget, iface.period)]
        )
        task = Task(
            f"{group}.sp{i + 1}", spec.slice_ns, spec.period_ns, TaskKind.SPORADIC
        )
        system.register_rta(vm, task)
        tasks.append(task)
        drivers.append(
            SporadicDriver(
                system.engine,
                vm,
                task,
                streams.stream(f"{group}.sp{i}"),
                max_requests=requests_per_rta,
                mux=mux,
            ).start()
        )
    _run_requests(system, drivers, requests_per_rta)
    return GroupRun(
        framework="RT-Xen",
        group=group,
        released=sum(t.stats.released for t in tasks),
        met=sum(t.stats.met for t in tasks),
        missed=sum(t.stats.missed for t in tasks),
    )


def run_sporadic(
    requests_per_rta: int = 100,
    groups: Optional[Sequence[str]] = None,
    seed: int = 7,
) -> Table1Result:
    """The full §4.2 sporadic experiment."""
    if groups is None:
        groups = list(TABLE1_GROUPS)
    runs: List[GroupRun] = []
    for group in groups:
        runs.append(run_group_sporadic_rtvirt(group, requests_per_rta, seed))
        runs.append(run_group_sporadic_rtxen(group, requests_per_rta, seed))
    return Table1Result(runs)
