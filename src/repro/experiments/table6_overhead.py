"""Tables 5 & 6 — scalability and overhead (paper §4.5).

100 RTAs with the Table 5 parameters run concurrently on a 15-PCPU host
in two configurations:

- **Multi-RTA VMs**: 10 VMs, each hosting all 10 RTAs of one group; the
  guest pEDF packs them onto as few VCPUs as possible (CPU hotplug adds
  VCPUs on demand).  The paper lands on 20 VCPUs total.
- **Single-RTA VMs**: 100 single-VCPU VMs, one RTA each (100 VCPUs).

For each configuration we record the time spent in the host scheduler's
``schedule()`` path and in context switches/migrations, plus the
combined overhead as a percentage of total CPU time (the Table 6
columns), and the deadline outcomes (the paper: no misses for Multi-RTA,
0.007% for Single-RTA).

RT-Xen's capacity limits are reproduced analytically: with CSA
interfaces and DMPR claims, only 8 of the 10 groups (80 RTAs) fit 15
CPUs in the Multi-RTA configuration, and 93 of the 100 single-RTA VMs —
matching the paper's counts of what it could run.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..analysis.csa import csa_best_interface, csa_interface
from ..analysis.dbf import AnalysisTask
from ..analysis.dmpr import claim_for_group
from ..analysis.sbf import PeriodicResource
from ..core.system import RTVirtSystem
from ..guest.task import Task
from ..simcore.time import MSEC, SEC, sec
from ..workloads.periodic import TABLE5_GROUPS, PeriodicDriver, RTASpec
from .common import format_table


@dataclass
class OverheadRun:
    scenario: str
    framework: str
    rtas: int
    vcpus: int
    schedule_us: float
    context_switch_us: float
    overhead_percent: float
    miss_ratio: float
    duration_s: float

    def row(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "framework": self.framework,
            "RTAs": self.rtas,
            "VCPUs": self.vcpus,
            "schedule_us": self.schedule_us,
            "ctx_switch_us": self.context_switch_us,
            "overhead_%": self.overhead_percent,
            "miss_ratio": self.miss_ratio,
        }


@dataclass
class Table6Result:
    runs: List[OverheadRun]
    rtxen_multi_capacity: int
    rtxen_single_capacity: int

    def rows(self) -> List[Dict[str, object]]:
        return [r.row() for r in self.runs]

    def summary(self) -> str:
        lines = [format_table(self.rows(), title="Table 6 — scheduling overhead")]
        lines.append(
            f"RT-Xen capacity on 15 CPUs (analytical): "
            f"{self.rtxen_multi_capacity} of 10 groups in Multi-RTA form "
            f"(paper: 8), {self.rtxen_single_capacity} of 100 single-RTA VMs "
            f"(paper: 93)"
        )
        return "\n".join(lines)


def _build_multi_rta(system: RTVirtSystem) -> List[Task]:
    """10 VMs x 10 RTAs, guest pEDF packing with CPU hotplug.

    Release phases are staggered within each group, as sequentially
    launched rt-app processes would be; simultaneous release of identical
    tasks sharing one VCPU would otherwise concentrate all scheduling
    overhead on the last EDF tie-breaker.
    """
    tasks: List[Task] = []
    for g, spec in enumerate(TABLE5_GROUPS):
        vm = system.create_vm(f"grp{g + 1}", vcpu_count=1, max_vcpus=8)
        for i in range(10):
            task = Task(f"g{g + 1}.rta{i + 1}", spec.slice_ns, spec.period_ns)
            vm.register_task(task)
            tasks.append(task)
            PeriodicDriver(
                system.engine, vm, task, phase_ns=i * (spec.period_ns // 10)
            ).start()
    return tasks


def _build_single_rta(system: RTVirtSystem) -> List[Task]:
    """100 single-VCPU VMs, one RTA each (staggered launches)."""
    tasks: List[Task] = []
    for g, spec in enumerate(TABLE5_GROUPS):
        for i in range(10):
            vm = system.create_vm(f"vm{g + 1}-{i + 1}")
            task = Task(f"s{g + 1}.rta{i + 1}", spec.slice_ns, spec.period_ns)
            vm.register_task(task)
            tasks.append(task)
            PeriodicDriver(
                system.engine, vm, task, phase_ns=i * (spec.period_ns // 10)
            ).start()
    return tasks


def _run_rtvirt(scenario: str, duration_ns: int, pcpu_count: int) -> OverheadRun:
    system = RTVirtSystem(pcpu_count=pcpu_count)
    if scenario == "Multi-RTA":
        tasks = _build_multi_rta(system)
    else:
        tasks = _build_single_rta(system)
    system.run(duration_ns)
    system.finalize()
    overhead = system.machine.metrics.overhead
    report = system.miss_report()
    vcpus = sum(len(vm.vcpus) for vm in system.vms)
    return OverheadRun(
        scenario=scenario,
        framework="RTVirt",
        rtas=len(tasks),
        vcpus=vcpus,
        schedule_us=overhead.schedule_time / 1000.0,
        context_switch_us=overhead.switch_and_migration_time / 1000.0,
        overhead_percent=overhead.overhead_percent(system.machine.total_cpu_time()),
        miss_ratio=report.overall_miss_ratio,
        duration_s=duration_ns / SEC,
    )


# -- RT-Xen capacity analysis ---------------------------------------------------------


def _group_interfaces(spec: RTASpec, count: int) -> List[PeriodicResource]:
    """CSA interfaces for one group's RTAs packed onto VCPU servers.

    Mirrors the practical configuration flow: pEDF-pack the RTAs onto
    VCPUs (utilization first-fit), then compute one CSA interface per
    VCPU server.
    """
    per_vcpu: List[List[AnalysisTask]] = []
    loads: List[Fraction] = []
    bw = Fraction(spec.slice_ns, spec.period_ns)
    for _ in range(count):
        placed = False
        for idx in range(len(per_vcpu)):
            if loads[idx] + bw <= 1:
                per_vcpu[idx].append(AnalysisTask(spec.slice_ns, spec.period_ns))
                loads[idx] += bw
                placed = True
                break
        if not placed:
            per_vcpu.append([AnalysisTask(spec.slice_ns, spec.period_ns)])
            loads.append(bw)
    return [
        csa_best_interface(tasks, min_period=MSEC, budget_granularity=MSEC)
        for tasks in per_vcpu
    ]


def rtxen_multi_rta_capacity(pcpu_count: int = 15) -> int:
    """How many whole groups (of 10 RTAs) fit under DMPR on the host."""
    interfaces: List[PeriodicResource] = []
    fitted = 0
    for spec in TABLE5_GROUPS:
        candidate = interfaces + _group_interfaces(spec, 10)
        claimed, _ = claim_for_group(candidate)
        if claimed > pcpu_count:
            break
        interfaces = candidate
        fitted += 1
    return fitted


def rtxen_single_rta_capacity(pcpu_count: int = 15) -> int:
    """How many single-RTA VMs fit under DMPR on the host."""
    interfaces: List[PeriodicResource] = []
    fitted = 0
    # Round-robin across groups, as the paper adds 10 per group then trims.
    cache: Dict[Tuple[int, int], PeriodicResource] = {}
    for i in range(10):
        for spec in TABLE5_GROUPS:
            key = (spec.slice_ns, spec.period_ns)
            if key not in cache:
                cache[key] = csa_best_interface(
                    [AnalysisTask(spec.slice_ns, spec.period_ns)],
                    min_period=MSEC,
                    budget_granularity=MSEC,
                )
            candidate = interfaces + [cache[key]]
            claimed, _ = claim_for_group(candidate)
            if claimed > pcpu_count:
                return fitted
            interfaces = candidate
            fitted += 1
    return fitted


#: The two simulated scenarios, in Table 6 row order (shard ids for the
#: parallel runner; each builds an independent RTVirtSystem).
TABLE6_SCENARIOS = ("Multi-RTA", "Single-RTA")


def run_table6_scenario(
    scenario: str, duration_ns: int = sec(30), pcpu_count: int = 15
) -> OverheadRun:
    """One Table 6 scenario under RTVirt."""
    if scenario not in TABLE6_SCENARIOS:
        raise KeyError(f"unknown Table 6 scenario {scenario!r}")
    return _run_rtvirt(scenario, duration_ns, pcpu_count)


def rtxen_capacities(
    pcpu_count: int = 15, analyze_rtxen: bool = True
) -> Tuple[int, int]:
    """The analytical RT-Xen capacity pair (multi-RTA groups, single-RTA VMs)."""
    if not analyze_rtxen:
        return (0, 0)
    return (
        rtxen_multi_rta_capacity(pcpu_count),
        rtxen_single_rta_capacity(pcpu_count),
    )


def run_table6(
    duration_ns: int = sec(30), pcpu_count: int = 15, analyze_rtxen: bool = True
) -> Table6Result:
    """Both scenarios under RTVirt plus the RT-Xen capacity analysis."""
    runs = [
        run_table6_scenario(s, duration_ns, pcpu_count) for s in TABLE6_SCENARIOS
    ]
    multi_cap, single_cap = rtxen_capacities(pcpu_count, analyze_rtxen)
    return Table6Result(runs, multi_cap, single_cap)
