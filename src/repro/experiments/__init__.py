"""Experiment harnesses — one module per table/figure of the paper."""

from . import (
    fig1_motivation,
    fig3_bandwidth,
    fig4_dynamic,
    fig5_memcached,
    registry,
    sporadic_rtas,
    table1_periodic,
    table2_config,
    table4_dedicated,
    table6_overhead,
)
from .common import format_table

__all__ = [
    "fig1_motivation",
    "table1_periodic",
    "table2_config",
    "fig3_bandwidth",
    "sporadic_rtas",
    "fig4_dynamic",
    "table4_dedicated",
    "fig5_memcached",
    "table6_overhead",
    "registry",
    "format_table",
]
