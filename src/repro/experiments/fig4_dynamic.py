"""Figure 4 — dynamic video-streaming RTAs (paper §4.3).

Four VMs with four VCPUs each host rt-app RTAs parameterized from VLC
(Table 3).  RTAs arrive and leave dynamically for the whole experiment;
RTVirt admits them online through the hypercall and re-partitions.

The paper's findings, which this harness reports:

- out of the 54 RTAs run over 10 minutes, only five had deadline misses
  and the worst per-RTA miss percentage was 0.136%;
- CPU allocation tracks the demand over time (the Figure 4 curves),
  saving substantial bandwidth versus statically provisioning each VM
  for its peak load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.system import RTVirtSystem
from ..simcore.rng import RandomStreams
from ..simcore.time import SEC, sec
from ..simcore.trace import Trace
from ..workloads.video import TABLE3_PROFILES, DynamicStreamingWorkload, SessionRecord
from .common import format_table


@dataclass
class Fig4Result:
    duration_ns: int
    sessions: List[SessionRecord]
    worst_miss_ratio: float
    total_released: int
    total_missed: int
    #: (vm name -> [(bucket_start_ns, cpu_allocation_fraction)]) — the curves.
    allocation_series: Dict[str, List[Tuple[int, float]]]
    #: Mean dynamic allocation vs static peak-provisioned allocation, CPUs.
    mean_dynamic_cpus: float
    static_peak_cpus: float

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "session": s.name,
                "fps": s.fps,
                "start_s": s.start_ns / SEC,
                "end_s": s.planned_end_ns / SEC,
                "released": s.stats.released,
                "missed": s.stats.missed,
                "miss_ratio": s.stats.miss_ratio,
            }
            for s in self.sessions
            if s.admitted
        ]

    def summary(self) -> str:
        admitted = [s for s in self.sessions if s.admitted]
        with_misses = [s for s in admitted if s.stats.missed > 0]
        lines = [
            f"Figure 4 — dynamic streaming RTAs over {self.duration_ns / SEC:.0f}s",
            f"sessions run: {len(admitted)} (paper: 54 over 600s)",
            f"sessions with misses: {len(with_misses)} (paper: 5)",
            f"worst per-session miss ratio: {self.worst_miss_ratio * 100:.3f}% "
            f"(paper: 0.136%)",
            f"total jobs: {self.total_released}, missed: {self.total_missed}",
            f"mean dynamic allocation: {self.mean_dynamic_cpus:.2f} CPUs vs "
            f"static peak provisioning: {self.static_peak_cpus:.2f} CPUs "
            f"({100 * (1 - self.mean_dynamic_cpus / self.static_peak_cpus):.1f}% saved)",
        ]
        return "\n".join(lines)


def run_fig4(
    duration_ns: int = sec(600),
    pcpu_count: int = 15,
    seed: int = 11,
    vm_count: int = 4,
    vcpus_per_vm: int = 4,
    bucket_ns: int = sec(5),
) -> Fig4Result:
    """Run the dynamic streaming experiment under RTVirt."""
    streams = RandomStreams(seed)
    trace = Trace()
    system = RTVirtSystem(pcpu_count=pcpu_count, trace=trace)
    workload = DynamicStreamingWorkload(
        system,
        streams.stream("churn"),
        vm_count=vm_count,
        vcpus_per_vm=vcpus_per_vm,
        duration_ns=duration_ns,
    ).start()
    system.run(duration_ns)
    system.finalize()

    series: Dict[str, List[Tuple[int, float]]] = {}
    for vm in workload.vms:
        merged: Dict[int, int] = {}
        for vcpu in vm.vcpus:
            for start, usage in trace.usage_series(vcpu.name, 0, duration_ns, bucket_ns):
                merged[start] = merged.get(start, 0) + usage
        series[vm.name] = [
            (start, merged[start] / bucket_ns) for start in sorted(merged)
        ]

    # Static provisioning: each VM permanently reserves its peak concurrent
    # demand; dynamic: the time-average of what RTVirt actually allocated.
    peak = 0.0
    for vm in workload.vms:
        vm_sessions = [s for s in workload.sessions if s.name.startswith(vm.name)]
        peak += _peak_demand(vm_sessions)
    mean_dynamic = (
        sum(u for pts in series.values() for _, u in pts) * bucket_ns / duration_ns
        if duration_ns
        else 0.0
    )

    admitted = workload.admitted_sessions()
    return Fig4Result(
        duration_ns=duration_ns,
        sessions=workload.sessions,
        worst_miss_ratio=workload.worst_miss_ratio(),
        total_released=sum(s.stats.released for s in admitted),
        total_missed=sum(s.stats.missed for s in admitted),
        allocation_series=series,
        mean_dynamic_cpus=mean_dynamic,
        static_peak_cpus=peak,
    )


def _peak_demand(sessions: List[SessionRecord]) -> float:
    """Peak concurrent bandwidth demand of a VM's sessions."""
    events: List[Tuple[int, float]] = []
    for s in sessions:
        if not s.admitted:
            continue
        bw = TABLE3_PROFILES[s.fps].bandwidth_percent / 100.0
        events.append((s.start_ns, bw))
        events.append((s.planned_end_ns, -bw))
    events.sort()
    level = peak = 0.0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak
