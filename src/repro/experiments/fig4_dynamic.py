"""Figure 4 — dynamic video-streaming RTAs (paper §4.3).

Four VMs with four VCPUs each host rt-app RTAs parameterized from VLC
(Table 3).  RTAs arrive and leave dynamically for the whole experiment;
RTVirt admits them online through the hypercall and re-partitions.

The experiment is defined as a *partitioned* host: each VM runs on its
own ``ceil(pcpu_count / vm_count)``-PCPU partition with its own derived
churn RNG stream (``churn-vm{i}``), so the VMs are independent by
construction.  :func:`run_fig4` composes :func:`run_fig4_vm` over the
partitions and :func:`assemble_fig4` merges the parts — the exact same
code path the parallel runner uses, which makes the sharded run
byte-identical to the serial one by construction rather than by
bookkeeping.

The paper's findings, which this harness reports:

- out of the 54 RTAs run over 10 minutes, only five had deadline misses
  and the worst per-RTA miss percentage was 0.136%;
- CPU allocation tracks the demand over time (the Figure 4 curves),
  saving substantial bandwidth versus statically provisioning each VM
  for its peak load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.system import RTVirtSystem
from ..simcore.rng import RandomStreams
from ..simcore.time import SEC, sec
from ..simcore.trace import Trace
from ..workloads.video import TABLE3_PROFILES, DynamicStreamingWorkload, SessionRecord
from .common import format_table

#: VM partitions of the Figure 4 host (the paper's four streaming VMs).
#: The work-unit plan shards along this axis.
FIG4_VM_COUNT = 4


@dataclass
class Fig4Result:
    duration_ns: int
    sessions: List[SessionRecord]
    worst_miss_ratio: float
    total_released: int
    total_missed: int
    #: (vm name -> [(bucket_start_ns, cpu_allocation_fraction)]) — the curves.
    allocation_series: Dict[str, List[Tuple[int, float]]]
    #: Mean dynamic allocation vs static peak-provisioned allocation, CPUs.
    mean_dynamic_cpus: float
    static_peak_cpus: float

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "session": s.name,
                "fps": s.fps,
                "start_s": s.start_ns / SEC,
                "end_s": s.planned_end_ns / SEC,
                "released": s.stats.released,
                "missed": s.stats.missed,
                "miss_ratio": s.stats.miss_ratio,
            }
            for s in self.sessions
            if s.admitted
        ]

    def summary(self) -> str:
        admitted = [s for s in self.sessions if s.admitted]
        with_misses = [s for s in admitted if s.stats.missed > 0]
        lines = [
            f"Figure 4 — dynamic streaming RTAs over {self.duration_ns / SEC:.0f}s",
            f"sessions run: {len(admitted)} (paper: 54 over 600s)",
            f"sessions with misses: {len(with_misses)} (paper: 5)",
            f"worst per-session miss ratio: {self.worst_miss_ratio * 100:.3f}% "
            f"(paper: 0.136%)",
            f"total jobs: {self.total_released}, missed: {self.total_missed}",
            f"mean dynamic allocation: {self.mean_dynamic_cpus:.2f} CPUs vs "
            f"static peak provisioning: {self.static_peak_cpus:.2f} CPUs "
            f"({100 * (1 - self.mean_dynamic_cpus / self.static_peak_cpus):.1f}% saved)",
        ]
        return "\n".join(lines)


@dataclass
class Fig4VmPart:
    """One VM partition's outcome — the picklable unit of the fig4 plan."""

    vm_name: str
    duration_ns: int
    bucket_ns: int
    sessions: List[SessionRecord]
    #: [(bucket_start_ns, cpu_allocation_fraction)] for this VM.
    series: List[Tuple[int, float]]
    #: Peak concurrent bandwidth demand (static-provisioning baseline).
    peak: float


def run_fig4_vm(
    vm_index: int,
    duration_ns: int = sec(600),
    pcpu_count: int = 15,
    seed: int = 11,
    vm_count: int = 4,
    vcpus_per_vm: int = 4,
    bucket_ns: int = sec(5),
) -> Fig4VmPart:
    """Run one VM's partition of the dynamic streaming experiment.

    The VM gets ``ceil(pcpu_count / vm_count)`` PCPUs of its own and the
    churn stream ``churn-vm{vm_index+1}`` derived from *seed* — both
    functions of the partition only, so the parts compose identically
    whether executed in one process or many.
    """
    if not 0 <= vm_index < vm_count:
        raise ValueError(f"vm_index {vm_index} outside [0, {vm_count})")
    partition_pcpus = -(-pcpu_count // vm_count)  # ceil
    streams = RandomStreams(seed)
    trace = Trace()
    system = RTVirtSystem(pcpu_count=partition_pcpus, trace=trace)
    workload = DynamicStreamingWorkload(
        system,
        streams.stream(f"churn-vm{vm_index + 1}"),
        vm_count=1,
        vcpus_per_vm=vcpus_per_vm,
        duration_ns=duration_ns,
        vm_start=vm_index,
    ).start()
    system.run(duration_ns)
    system.finalize()

    (vm,) = workload.vms
    merged: Dict[int, int] = {}
    for vcpu in vm.vcpus:
        for start, usage in trace.usage_series(vcpu.name, 0, duration_ns, bucket_ns):
            merged[start] = merged.get(start, 0) + usage
    series = [(start, merged[start] / bucket_ns) for start in sorted(merged)]

    return Fig4VmPart(
        vm_name=vm.name,
        duration_ns=duration_ns,
        bucket_ns=bucket_ns,
        sessions=workload.sessions,
        series=series,
        peak=_peak_demand(workload.sessions),
    )


def assemble_fig4(parts: List[Fig4VmPart]) -> Fig4Result:
    """Rebuild the serial :class:`Fig4Result` from per-VM parts.

    The serial runner itself goes through here, so the parallel runner's
    reassembly is the same code producing the same bytes.
    """
    duration_ns = parts[0].duration_ns if parts else 0
    bucket_ns = parts[0].bucket_ns if parts else 1
    sessions = [s for part in parts for s in part.sessions]
    admitted = [s for s in sessions if s.admitted]
    ratios = [s.stats.miss_ratio for s in admitted if s.stats.decided]
    series = {part.vm_name: part.series for part in parts}
    mean_dynamic = (
        sum(u for part in parts for _, u in part.series) * bucket_ns / duration_ns
        if duration_ns
        else 0.0
    )
    peak = 0.0
    for part in parts:
        peak += part.peak
    return Fig4Result(
        duration_ns=duration_ns,
        sessions=sessions,
        worst_miss_ratio=max(ratios) if ratios else 0.0,
        total_released=sum(s.stats.released for s in admitted),
        total_missed=sum(s.stats.missed for s in admitted),
        allocation_series=series,
        mean_dynamic_cpus=mean_dynamic,
        static_peak_cpus=peak,
    )


def run_fig4(
    duration_ns: int = sec(600),
    pcpu_count: int = 15,
    seed: int = 11,
    vm_count: int = 4,
    vcpus_per_vm: int = 4,
    bucket_ns: int = sec(5),
) -> Fig4Result:
    """Run the dynamic streaming experiment under RTVirt (all partitions)."""
    return assemble_fig4(
        [
            run_fig4_vm(
                vm_index,
                duration_ns=duration_ns,
                pcpu_count=pcpu_count,
                seed=seed,
                vm_count=vm_count,
                vcpus_per_vm=vcpus_per_vm,
                bucket_ns=bucket_ns,
            )
            for vm_index in range(vm_count)
        ]
    )


def _peak_demand(sessions: List[SessionRecord]) -> float:
    """Peak concurrent bandwidth demand of a VM's sessions."""
    events: List[Tuple[int, float]] = []
    for s in sessions:
        if not s.admitted:
            continue
        bw = TABLE3_PROFILES[s.fps].bandwidth_percent / 100.0
        events.append((s.start_ns, bw))
        events.append((s.planned_end_ns, -bw))
    events.sort()
    level = peak = 0.0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak
