"""Shared helpers for the experiment harnesses.

Every experiment module exposes a ``run_*`` function returning a result
dataclass with a ``rows()`` method (list of dicts — one per table row or
figure series point) and a ``summary()`` string; the benchmarks and the
EXPERIMENTS.md generator consume both.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render rows as a fixed-width text table (the bench output format).

    Columns are the ordered union of every row's keys (first-seen order),
    so heterogeneous rows — e.g. a summary row carrying an extra metric —
    render every field instead of silently dropping columns the first
    row happens to lack.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    seen = set()
    for row in rows:
        for key in row.keys():
            if key not in seen:
                seen.add(key)
                columns.append(key)
    rendered: List[List[str]] = [[_cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def percent(value: float) -> str:
    """Format a ratio as a percent string."""
    return f"{100.0 * value:.3f}%"
