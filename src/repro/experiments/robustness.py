"""Robustness suite — schedulers under injected faults.

The paper evaluates RTVirt on well-behaved hosts; this suite asks what
the cross-layer design buys when the host itself misbehaves.  Each
experiment subjects the same baseline workload to one fault family from
:mod:`repro.faults` — PCPU fail/recover, VM boot/shutdown churn,
workload surges, hypercall loss/delay, or replenishment clock jitter —
under RTVirt, RT-Xen (gEDF) and Xen Credit, and reports the
deadline-miss ratio plus the recovery latency (time from the first
fault to the last deadline miss it can explain).

Runs are deterministic for a given seed: every random draw goes through
a named :class:`~repro.simcore.rng.RandomStreams` stream, so the
parallel runner's per-scheduler shards reproduce the serial rows
byte-for-byte.  The online :class:`~repro.faults.InvariantChecker` is
attached for every case, so each robustness run doubles as a soak test
of the scheduling invariants under faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.credit import CreditSystem
from ..baselines.rtxen import RTXenSystem
from ..core.system import RTVirtSystem
from ..faults import (
    At,
    ClockJitter,
    Every,
    HypercallDelay,
    HypercallDrop,
    InvariantChecker,
    PcpuFail,
    PcpuRecover,
    Scenario,
    VmChurn,
    WorkloadSurge,
)
from ..guest.task import Task
from ..simcore.rng import RandomStreams
from ..simcore.time import MSEC, sec
from ..workloads.periodic import PeriodicDriver
from .common import format_table

#: Schedulers compared, in row order.
ROBUSTNESS_SCHEDULERS: Tuple[str, ...] = ("RTVirt", "RT-Xen", "Credit")
#: Fault families; ``robustness_<family>`` are the registry ids.
ROBUSTNESS_FAULTS: Tuple[str, ...] = (
    "pcpu_fail",
    "vm_churn",
    "surge",
    "hypercall",
    "jitter",
)

PCPU_COUNT = 4
#: Baseline workload: per-VM RTA (slice, period) pairs, ns.  Three VMs
#: of two periodic RTAs each, total utilization 1.85 with two heavy
#: (0.8 / 0.7) tasks: a fault-free run meets every deadline on all
#: three schedulers, but losing two of the four PCPUs leaves only
#: optimal scheduling (DP-WRAP) able to fit the load — gEDF suffers
#: the Dhall-style penalty of the heavy tasks and Credit's fair shares
#: ignore their deadlines entirely.
WORKLOAD: Tuple[Tuple[Tuple[int, int], ...], ...] = (
    ((8 * MSEC, 10 * MSEC), (2 * MSEC, 40 * MSEC)),
    ((7 * MSEC, 10 * MSEC), (2 * MSEC, 40 * MSEC)),
    ((4 * MSEC, 20 * MSEC), (2 * MSEC, 40 * MSEC)),
)


def build_system(
    scheduler: str, pcpu_count: int = PCPU_COUNT, start_drivers: bool = True
):
    """The baseline three-VM workload under *scheduler*; drivers started.

    ``start_drivers=False`` builds the same VMs and tasks but leaves the
    release sources to the caller — trace replay substitutes recorded
    release timelines for the periodic drivers.
    """
    if scheduler == "RTVirt":
        system = RTVirtSystem(pcpu_count=pcpu_count)
    elif scheduler == "RT-Xen":
        system = RTXenSystem(pcpu_count=pcpu_count, host="gedf")
    elif scheduler == "Credit":
        system = CreditSystem(pcpu_count=pcpu_count)
    else:
        raise ValueError(f"unknown scheduler {scheduler!r}")
    for i, specs in enumerate(WORKLOAD):
        name = f"vm{i}"
        if scheduler == "RT-Xen":
            # Static interface sized like RT-Xen's CSA: summed slices
            # with headroom, at the shortest period.
            period = min(p for _, p in specs)
            budget = min(period, sum(s * period // p for s, p in specs) * 3 // 2)
            vm = system.create_vm(name, interfaces=[(budget, period)])
        else:
            vm = system.create_vm(name)
        for j, (slice_ns, period_ns) in enumerate(specs):
            task = Task(f"{name}.rta{j}", slice_ns, period_ns)
            if scheduler == "RT-Xen":
                system.register_rta(vm, task)
            else:
                vm.register_task(task)
            if start_drivers:
                PeriodicDriver(system.engine, vm, task).start()
    return system


def case_row(
    fault: str,
    scheduler: str,
    system,
    ctx,
    checker: Optional[InvariantChecker],
) -> Dict[str, object]:
    """The metric row of one finished (fault, scheduler) run.

    Shared by :func:`run_robustness_case` and trace replay so a replayed
    run computes its row through the exact same code path — the
    round-trip exactness tests compare these rows byte for byte.
    """
    report = system.miss_report()
    fault_time = ctx.first_fault_time()
    recovery_ns = (
        report.recovery_latency_ns(fault_time) if fault_time is not None else 0
    )
    decided = report.total_met + report.total_missed
    return {
        "fault": fault,
        "scheduler": scheduler,
        "released": report.total_released,
        "missed": report.total_missed,
        "miss_pct": round(100.0 * report.total_missed / decided, 3) if decided else 0.0,
        "recovery_ms": round(recovery_ns / MSEC, 3),
        "faults": len(ctx.log),
        "checks": checker.checks if checker else 0,
    }


def build_scenario(fault: str, duration_ns: int) -> Scenario:
    """The fault timeline of one family, scaled to the run length."""
    d = duration_ns
    if fault == "pcpu_fail":
        return Scenario(
            [
                At(d * 2 // 10, PcpuFail(PCPU_COUNT - 1)),
                At(d * 3 // 10, PcpuFail(PCPU_COUNT - 2)),
                At(d * 6 // 10, PcpuRecover(PCPU_COUNT - 2)),
                At(d * 7 // 10, PcpuRecover(PCPU_COUNT - 1)),
            ]
        )
    if fault == "vm_churn":
        return Scenario(
            [
                Every(
                    d // 8,
                    VmChurn(
                        slice_ns=4 * MSEC,
                        period_ns=20 * MSEC,
                        lifetime_ns=d // 10,
                    ),
                    count=6,
                )
            ]
        )
    if fault == "surge":
        return Scenario(
            [
                Every(
                    d // 5,
                    WorkloadSurge("vm0", num=2, den=1, duration_ns=d // 10),
                    count=3,
                )
            ]
        )
    if fault == "hypercall":
        return Scenario(
            [
                Every(d // 6, HypercallDrop(duration_ns=d // 12), count=2),
                At(d // 2, HypercallDelay(delay_ns=2 * MSEC, duration_ns=d // 6)),
            ]
        )
    if fault == "jitter":
        return Scenario([At(d // 10, ClockJitter(max_ns=3 * MSEC))])
    raise ValueError(f"unknown fault family {fault!r}")


def run_robustness_case(
    fault: str,
    scheduler: str,
    duration_ns: int,
    seed: int,
    check_invariants: bool = True,
    attach=None,
) -> Dict[str, object]:
    """One (fault family, scheduler) cell — the parallel-runner shard.

    *attach*, when given, is called with the built system before the
    fault timeline is installed — the hook observability consumers
    (span builders, extra aggregators) use to subscribe to the bus.
    """
    system = build_system(scheduler)
    checker = InvariantChecker(system).attach() if check_invariants else None
    if attach is not None:
        attach(system)
    ctx = build_scenario(fault, duration_ns).install(
        system, RandomStreams(seed)
    )
    system.run(duration_ns)
    return case_row(fault, scheduler, system, ctx, checker)


@dataclass
class RobustnessResult:
    """Per-scheduler outcomes of one fault family."""

    cases: List[Dict[str, object]]

    def rows(self) -> List[Dict[str, object]]:
        return list(self.cases)

    def summary(self) -> str:
        fault = self.cases[0]["fault"] if self.cases else "?"
        return format_table(
            self.rows(), title=f"Robustness — fault family {fault!r}"
        )


def run_robustness(
    fault: str,
    duration_ns: int = sec(5),
    seed: int = 11,
    schedulers: Sequence[str] = ROBUSTNESS_SCHEDULERS,
) -> RobustnessResult:
    """Serial runner: every scheduler under one fault family."""
    return RobustnessResult(
        [
            run_robustness_case(fault, scheduler, duration_ns, seed)
            for scheduler in schedulers
        ]
    )
