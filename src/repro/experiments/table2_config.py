"""Table 2 — VM configurations for the NH-Dec group.

The table shows, for each RTA of NH-Dec, the bandwidth requirement and
the VM configuration each framework uses: RT-Xen's CSA interface and
RTVirt's derived VCPU parameters (slice + 500 µs slack, same period).
Our CSA reproduces the paper's published interfaces exactly: (4,5),
(3,4), (2,3), (1,9) ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

from ..baselines.configs import rtxen_interfaces_for_group
from ..guest.params import derive_vcpu_params
from ..guest.task import Task
from ..simcore.time import MSEC
from ..workloads.periodic import TABLE1_GROUPS, RTASpec
from .common import format_table

#: The paper's per-VCPU slack (500 µs).
SLACK_NS = 500_000


@dataclass
class Table2Row:
    rta: str
    rta_slice_ms: float
    rta_period_ms: float
    rtxen_slice_ms: float
    rtxen_period_ms: float
    rtvirt_slice_ms: float
    rtvirt_period_ms: float

    def row(self) -> Dict[str, object]:
        return {
            "RTA (s,p)": f"({self.rta_slice_ms:g},{self.rta_period_ms:g})",
            "RT-Xen VM (s,p)": f"({self.rtxen_slice_ms:g},{self.rtxen_period_ms:g})",
            "RTVirt VM (s,p)": f"({self.rtvirt_slice_ms:g},{self.rtvirt_period_ms:g})",
        }


@dataclass
class Table2Result:
    entries: List[Table2Row]

    def rows(self) -> List[Dict[str, object]]:
        return [e.row() for e in self.entries]

    @property
    def rta_bandwidth(self) -> Fraction:
        return sum(
            (Fraction(round(e.rta_slice_ms * 1000), round(e.rta_period_ms * 1000)) for e in self.entries),
            Fraction(0),
        )

    @property
    def rtxen_bandwidth(self) -> Fraction:
        return sum(
            (
                Fraction(round(e.rtxen_slice_ms * 1000), round(e.rtxen_period_ms * 1000))
                for e in self.entries
            ),
            Fraction(0),
        )

    @property
    def rtvirt_bandwidth(self) -> Fraction:
        return sum(
            (
                Fraction(round(e.rtvirt_slice_ms * 1000), round(e.rtvirt_period_ms * 1000))
                for e in self.entries
            ),
            Fraction(0),
        )

    def summary(self) -> str:
        lines = [format_table(self.rows(), title="Table 2 — NH-Dec VM configurations")]
        lines.append(
            f"Total bandwidth: RTAs {float(self.rta_bandwidth):.2f} CPUs "
            f"(paper: 2.02), RT-Xen {float(self.rtxen_bandwidth):.2f} "
            f"(paper: 2.33), RTVirt {float(self.rtvirt_bandwidth):.2f} (paper: 2.11)"
        )
        return "\n".join(lines)


def run_table2(group: str = "NH-Dec", slack_ns: int = SLACK_NS) -> Table2Result:
    """Regenerate Table 2 from the analysis pipeline."""
    specs = TABLE1_GROUPS[group]
    interfaces = rtxen_interfaces_for_group(specs, min_period=MSEC)
    entries: List[Table2Row] = []
    for i, (spec, iface) in enumerate(zip(specs, interfaces)):
        task = Task(f"t2-{group}-{i}", spec.slice_ns, spec.period_ns)
        params = derive_vcpu_params([task], slack_ns)
        entries.append(
            Table2Row(
                rta=f"rta{i + 1}",
                rta_slice_ms=spec.slice_ms,
                rta_period_ms=spec.period_ms,
                rtxen_slice_ms=iface.budget / MSEC,
                rtxen_period_ms=iface.period / MSEC,
                rtvirt_slice_ms=params.budget_ns / MSEC,
                rtvirt_period_ms=params.period_ns / MSEC,
            )
        )
    return Table2Result(entries)
