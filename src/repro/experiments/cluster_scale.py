"""Cluster experiments — multi-host RTVirt with live migration (§6).

The paper's single-host evaluation extends to a cluster: N hosts, each
its own complete system on one shared engine, VMs placed by the
:class:`~repro.placement.cluster.ClusterPlanner` and moved by in-sim
pre-copy live migrations.  Four experiment modes probe the management
plane:

- ``consolidate`` — first-fit packing under VM churn, no rebalancing:
  the cheapest policy, all load crowds the first hosts;
- ``rebalance`` — same workload, but the operator runs
  :func:`repro.placement.migration.plan_rebalancing` mid-run and
  executes the proposed live migrations;
- ``hostfail`` — a whole host fails (via the fault DSL's
  :class:`~repro.faults.HostFail`) and its VMs evacuate by live
  migration to the surviving hosts;
- ``clockskew`` — two RTVirt hosts whose clocks disagree; a VM
  ping-pongs between them, and jobs straddling a blackout are stamped
  on one clock and checked on the other.  With synchronized clocks the
  cross-host audit matches the engine's own accounting; with offset it
  measurably diverges.

Every mode shards **per host** for the parallel runner: one work unit
re-runs the full (deterministic) cluster simulation with telemetry
attached only to the observed host's bus and returns that host's row +
mergeable snapshot.  The serial runner executes the identical units in
order, so parallel output is byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import At, FaultContext, HostFail, HostRecover, Scenario
from ..placement.migration import MigrationParams, safe_migration_params
from ..simcore.events import PRIORITY_FAULT
from ..simcore.rng import RandomStreams
from ..simcore.time import MSEC, USEC, sec
from ..telemetry.aggregate import StandardTelemetry
from ..cluster import Cluster, default_specs
from .common import format_table

#: Schedulers compared, in row order.
CLUSTER_SCHEDULERS: Tuple[str, ...] = ("RTVirt", "RT-Xen", "Credit")
#: Experiment modes; ``cluster_<mode>`` are the registry ids.
CLUSTER_MODES: Tuple[str, ...] = (
    "consolidate",
    "rebalance",
    "hostfail",
    "clockskew",
)
#: Host-count grid per mode (first entry doubles as the smoke grid).
CLUSTER_HOST_COUNTS: Dict[str, Tuple[int, ...]] = {
    "consolidate": (2, 4),
    "rebalance": (2, 4),
    "hostfail": (3,),
    "clockskew": (2,),
}
#: Clock-offset step sweep of the clockskew mode (host i gets i×step).
CLOCKSKEW_OFFSETS_NS: Tuple[int, ...] = (0, 25 * MSEC)

PCPUS_PER_HOST = 2
#: Baseline per-host clock offset step: real clusters are never
#: perfectly synchronized, so every mode runs with a small skew.
CLUSTER_OFFSET_STEP_NS = 200 * USEC
LINK_BASE_NS = 20 * USEC
LINK_JITTER_NS = 10 * USEC

#: Pre-copy parameters: 128 MiB VM over a 10 GbE link against a
#: 250 MB/s dirty rate — one iterative round, ~21.5 ms stop-and-copy.
CLUSTER_MIGRATION: Optional[MigrationParams] = safe_migration_params(
    128 * 1024 * 1024, 250_000_000, 1_250_000_000
)
#: The clockskew VM is bigger (256 MiB → ~43 ms blackout) so several
#: sporadic releases straddle each stop-and-copy window.
CLOCKSKEW_MIGRATION: Optional[MigrationParams] = safe_migration_params(
    256 * 1024 * 1024, 250_000_000, 1_250_000_000
)
#: Relative deadline of the clockskew VM's requests: wide enough to
#: absorb the blackout on synchronized clocks, so every extra miss is
#: attributable to the clock offset alone.
CLOCKSKEW_DEADLINE_NS = 48 * MSEC

#: RTA presets cycled over the initial VM population: (slice, period).
VM_PRESETS: Tuple[Tuple[Tuple[int, int], ...], ...] = (
    ((3 * MSEC, 10 * MSEC),),
    ((3 * MSEC, 10 * MSEC), (8 * MSEC, 40 * MSEC)),
    ((2 * MSEC, 20 * MSEC),),
    ((4 * MSEC, 16 * MSEC),),
)


def _attach_clients(
    cluster: Cluster,
    vm_name: str,
    streams: RandomStreams,
    lo_periods: int = 2,
    hi_periods: int = 6,
    deadline_ns: Optional[int] = None,
) -> None:
    for j, task in enumerate(cluster.rt_tasks[vm_name]):
        cluster.attach_client(
            vm_name,
            j,
            streams.stream(f"cluster:{vm_name}.rta{j}"),
            task.period_ns * lo_periods,
            task.period_ns * hi_periods,
            deadline_ns=deadline_ns,
        )


def build_cluster(
    mode: str,
    scheduler: str,
    host_count: int,
    duration_ns: int,
    seed: int,
    clock_offset_step_ns: Optional[int] = None,
    policy: Optional[str] = None,
) -> Cluster:
    """One mode's full cluster scenario, ready to ``run(duration_ns)``.

    All management actions (churn, rebalancing, migrations, host
    faults) are installed as engine events up front, so the timeline is
    fixed regardless of which host a shard later observes.
    """
    if mode not in CLUSTER_MODES:
        raise ValueError(f"unknown cluster mode {mode!r}")
    offset_step = (
        CLUSTER_OFFSET_STEP_NS if clock_offset_step_ns is None else clock_offset_step_ns
    )
    if policy is None:
        policy = "first_fit" if mode in ("consolidate", "rebalance") else "worst_fit"
    params = CLOCKSKEW_MIGRATION if mode == "clockskew" else CLUSTER_MIGRATION
    specs = default_specs(
        host_count,
        pcpu_count=PCPUS_PER_HOST,
        clock_offset_step_ns=offset_step,
        link_base_ns=LINK_BASE_NS,
        link_jitter_ns=LINK_JITTER_NS,
    )
    cluster = Cluster(specs, scheduler=scheduler, policy=policy, migration=params)
    streams = RandomStreams(seed)
    d = duration_ns
    engine = cluster.engine

    if mode == "clockskew":
        cluster.seed([("vm0", VM_PRESETS[0]), ("vm1", VM_PRESETS[2])])
        _attach_clients(
            cluster, "vm0", streams, 1, 2, deadline_ns=CLOCKSKEW_DEADLINE_NS
        )
        _attach_clients(cluster, "vm1", streams)
        # Ping-pong vm0 between the hosts; each h0→h1 leg carries
        # blackout-straddling jobs into the skewed clock domain.
        for k, frac in enumerate((2, 4, 6, 8)):
            dest = "h1" if k % 2 == 0 else "h0"
            engine.at(
                d * frac // 10,
                lambda dest=dest: cluster.migrate("vm0", dest),
                priority=PRIORITY_FAULT,
                name="cluster:migrate",
            )
        return cluster

    vm_count = 2 * host_count - 1 if mode != "hostfail" else host_count + 1
    cluster.seed(
        [
            (f"vm{i}", VM_PRESETS[i % len(VM_PRESETS)])
            for i in range(vm_count)
        ]
    )
    for i in range(vm_count):
        _attach_clients(cluster, f"vm{i}", streams)

    if mode == "hostfail":
        scenario = Scenario(
            [
                At(d * 35 // 100, HostFail("h0")),
                At(d * 75 // 100, HostRecover("h0")),
            ]
        )
        scenario.install(cluster, streams)
        return cluster

    # consolidate / rebalance: shared churn timeline.
    def boot(name: str, preset_index: int) -> None:
        cluster.add_vm(name, VM_PRESETS[preset_index % len(VM_PRESETS)])
        _attach_clients(cluster, name, streams)

    engine.at(
        d * 30 // 100,
        lambda: boot("churn0", 3),
        priority=PRIORITY_FAULT,
        name="cluster:boot",
    )
    engine.at(
        d * 45 // 100,
        lambda: boot("churn1", 0),
        priority=PRIORITY_FAULT,
        name="cluster:boot",
    )
    engine.at(
        d * 70 // 100,
        lambda: cluster.shutdown_vm("churn0"),
        priority=PRIORITY_FAULT,
        name="cluster:shutdown",
    )
    if mode == "rebalance":
        for frac in (55, 80):
            engine.at(
                d * frac // 100,
                lambda: cluster.rebalance(target_imbalance=0.25),
                priority=PRIORITY_FAULT,
                name="cluster:rebalance",
            )
    return cluster


def run_cluster_host(
    mode: str,
    scheduler: str,
    host_count: int,
    host_index: int,
    duration_ns: int,
    seed: int,
    clock_offset_step_ns: Optional[int] = None,
    policy: Optional[str] = None,
    attach=None,
) -> Dict[str, object]:
    """One per-host shard: full cluster sim, one host's telemetry.

    *attach*, when given, is called with ``(cluster, host)`` after
    construction — the hook observability consumers (span builders)
    use to subscribe before the run.
    """
    cluster = build_cluster(
        mode, scheduler, host_count, duration_ns, seed, clock_offset_step_ns, policy
    )
    host = cluster.hosts[host_index]
    telemetry = StandardTelemetry(host.machine.bus)
    if attach is not None:
        attach(cluster, host)
    cluster.run(duration_ns)
    cluster.finalize()

    snapshot = telemetry.snapshot()
    misses = telemetry.misses
    decided = misses.decided()
    missed = decided and sum(x for _, x in misses.per_task.values())
    audit = cluster.audit
    cross_decided = audit.decided(host.name)
    cross_missed = audit.missed(host.name)
    xhost_decided, xhost_missed = audit.cross_pairs(host.name)
    inbound_downtime = sum(
        m.downtime_ns for m in cluster.migrations if m.done and m.dest is host
    )
    offset_step = (
        CLUSTER_OFFSET_STEP_NS if clock_offset_step_ns is None else clock_offset_step_ns
    )
    row = {
        "mode": mode,
        "scheduler": scheduler,
        "hosts": host_count,
        "host": host.name,
        "offset_ms": round(offset_step / MSEC, 3),
        "vms_end": sum(1 for h in cluster._vm_hosts.values() if h is host),
        "migr_in": host.migrations_in,
        "migr_out": host.migrations_out,
        "downtime_ms": round(inbound_downtime / MSEC, 3),
        "decided": decided,
        "missed": int(missed),
        "miss_pct": round(100.0 * misses.miss_ratio(), 3),
        "cross_decided": cross_decided,
        "cross_missed": cross_missed,
        "cross_miss_pct": round(100.0 * audit.miss_ratio(host.name), 3),
        "xhost_decided": xhost_decided,
        "xhost_missed": xhost_missed,
        "stranded": sum(1 for _, kind, _ in cluster.log if kind == "vm_stranded"),
    }
    return {"row": row, "snapshot": snapshot}


def cluster_unit_specs(
    mode: str, smoke: bool = False
) -> List[Tuple[str, Dict[str, object]]]:
    """(unit label, shard kwargs) pairs of one mode, in canonical order.

    The label is the work-unit id suffix; the kwargs (minus duration
    and seed, which the caller owns) fully determine the shard.
    """
    specs: List[Tuple[str, Dict[str, object]]] = []
    if mode == "clockskew":
        for offset_ns in CLOCKSKEW_OFFSETS_NS:
            for i in range(2):
                specs.append(
                    (
                        f"off{offset_ns // MSEC}ms/h{i}",
                        {
                            "mode": mode,
                            "scheduler": "RTVirt",
                            "host_count": 2,
                            "host_index": i,
                            "clock_offset_step_ns": offset_ns,
                        },
                    )
                )
        return specs
    counts = CLUSTER_HOST_COUNTS[mode]
    if smoke:
        counts = counts[:1]
    for scheduler in CLUSTER_SCHEDULERS:
        for host_count in counts:
            for i in range(host_count):
                specs.append(
                    (
                        f"{scheduler}-{host_count}h/h{i}",
                        {
                            "mode": mode,
                            "scheduler": scheduler,
                            "host_count": host_count,
                            "host_index": i,
                        },
                    )
                )
    return specs


def _config_key(row: Dict[str, object]) -> Tuple:
    return (row["scheduler"], row["hosts"], row["offset_ms"])


@dataclass
class ClusterResult:
    """Per-host shard rows plus per-configuration merged summaries."""

    mode: str
    cases: List[Dict[str, object]]

    def rows(self) -> List[Dict[str, object]]:
        """Host rows in shard order, then one ``cluster`` row per config."""
        rows = [dict(part["row"]) for part in self.cases]
        merged: List[Dict[str, object]] = []
        by_config: Dict[Tuple, List[Dict[str, object]]] = {}
        for part in self.cases:
            by_config.setdefault(_config_key(part["row"]), []).append(part)
        for key, parts in by_config.items():
            snap = StandardTelemetry.merge_snapshots([p["snapshot"] for p in parts])
            counts = snap["misses"]["per_task"].values()
            met = sum(c["met"] for c in counts)
            missed = sum(c["missed"] for c in counts)
            decided = met + missed
            cross_decided = sum(p["row"]["cross_decided"] for p in parts)
            cross_missed = sum(p["row"]["cross_missed"] for p in parts)
            first = parts[0]["row"]
            merged.append(
                {
                    "mode": self.mode,
                    "scheduler": first["scheduler"],
                    "hosts": first["hosts"],
                    "host": "cluster",
                    "offset_ms": first["offset_ms"],
                    "vms_end": sum(p["row"]["vms_end"] for p in parts),
                    "migr_in": sum(p["row"]["migr_in"] for p in parts),
                    "migr_out": sum(p["row"]["migr_out"] for p in parts),
                    "downtime_ms": round(
                        sum(p["row"]["downtime_ms"] for p in parts), 3
                    ),
                    "decided": decided,
                    "missed": missed,
                    "miss_pct": round(100.0 * missed / decided, 3) if decided else 0.0,
                    "cross_decided": cross_decided,
                    "cross_missed": cross_missed,
                    "cross_miss_pct": round(
                        100.0 * cross_missed / cross_decided, 3
                    )
                    if cross_decided
                    else 0.0,
                    "xhost_decided": sum(p["row"]["xhost_decided"] for p in parts),
                    "xhost_missed": sum(p["row"]["xhost_missed"] for p in parts),
                    "stranded": max(p["row"]["stranded"] for p in parts),
                }
            )
        return rows + merged

    def summary(self) -> str:
        return format_table(
            self.rows(), title=f"Cluster — mode {self.mode!r}"
        )


def assemble_cluster(parts: Sequence[Dict[str, object]]) -> ClusterResult:
    """Parallel-runner assembly: parts arrive in unit (= spec) order."""
    mode = parts[0]["row"]["mode"] if parts else "?"
    return ClusterResult(mode, list(parts))


def run_cluster(
    mode: str,
    duration_ns: int = sec(2),
    seed: int = 29,
    smoke: bool = False,
) -> ClusterResult:
    """Serial runner: every shard of one mode, in canonical order."""
    return assemble_cluster(
        [
            run_cluster_host(duration_ns=duration_ns, seed=seed, **kwargs)
            for _label, kwargs in cluster_unit_specs(mode, smoke=smoke)
        ]
    )
