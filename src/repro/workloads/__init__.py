"""Workload generators: periodic (rt-app), sporadic, video, memcached, background."""

from .arrivals import ArrivalMux
from .background import add_background_vms
from .memcached import (
    MEMCACHED_PERIOD_NS,
    MEMCACHED_SLICE_NS,
    MemcachedService,
)
from .netdelay import NetLink
from .periodic import TABLE1_GROUPS, TABLE5_GROUPS, PeriodicDriver, RTASpec, build_group_vms
from .rtapp import (
    RTAppConfig,
    RTAppTask,
    deploy_rtapp,
    load_rtapp_file,
    parse_rtapp_config,
    table1_group_as_rtapp,
)
from .sporadic import SporadicDriver
from .video import (
    TABLE3_PROFILES,
    DynamicStreamingWorkload,
    SessionRecord,
    StreamingSession,
    StreamProfile,
)

__all__ = [
    "ArrivalMux",
    "NetLink",
    "RTASpec",
    "TABLE1_GROUPS",
    "TABLE5_GROUPS",
    "PeriodicDriver",
    "build_group_vms",
    "SporadicDriver",
    "StreamProfile",
    "TABLE3_PROFILES",
    "StreamingSession",
    "DynamicStreamingWorkload",
    "SessionRecord",
    "MemcachedService",
    "MEMCACHED_PERIOD_NS",
    "MEMCACHED_SLICE_NS",
    "add_background_vms",
    "RTAppConfig",
    "RTAppTask",
    "parse_rtapp_config",
    "load_rtapp_file",
    "deploy_rtapp",
    "table1_group_as_rtapp",
]
