"""Sporadic RTA workloads (paper §4.2).

The paper triggers sporadic RTAs with TCP requests from a client on a
separate host, with inter-arrival times uniformly distributed between
100 ms and 1 s; each request starts a one-shot CPU-bound job that runs
for the task's slice with a deadline one period after arrival.  The
minimum inter-arrival is the task's period (the sporadic task model).

The measured network delay (99.9th percentile 19 µs) was declared
insignificant and excluded from the paper's measurements; we expose it
as an optional constant added to the release time, or — for cluster
experiments where the client genuinely sits across a network — as a
per-request draw from a :class:`~repro.workloads.netdelay.NetLink`
latency distribution.
"""

from __future__ import annotations

from typing import Optional

from ..guest.task import Task, TaskKind
from ..guest.vm import VM
from ..simcore.engine import Engine
from ..simcore.errors import ConfigurationError
from ..simcore.events import PRIORITY_RELEASE
from ..simcore.rng import RandomSource
from ..simcore.time import MSEC, SEC
from .arrivals import ArrivalMux
from .netdelay import NetLink


class SporadicDriver:
    """Triggers one-shot jobs with random inter-arrival times.

    Pass an :class:`~repro.workloads.arrivals.ArrivalMux` shared by the
    experiment's clients to aggregate their request streams into one
    engine event stream (exact — see the mux's module docstring).
    """

    def __init__(
        self,
        engine: Engine,
        vm: VM,
        task: Task,
        rng: RandomSource,
        min_interarrival_ns: int = 100 * MSEC,
        max_interarrival_ns: int = SEC,
        max_requests: Optional[int] = None,
        network_delay_ns: int = 0,
        mux: Optional[ArrivalMux] = None,
        link: Optional[NetLink] = None,
    ) -> None:
        if task.kind is not TaskKind.SPORADIC:
            raise ConfigurationError(f"{task.name} is not a sporadic task")
        if min_interarrival_ns < task.period_ns:
            raise ConfigurationError(
                "client inter-arrival below the task's minimum inter-arrival "
                f"({min_interarrival_ns} < {task.period_ns})"
            )
        if max_interarrival_ns < min_interarrival_ns:
            raise ConfigurationError("max inter-arrival below min")
        self.engine = engine
        self.vm = vm
        self.task = task
        self.rng = rng
        self.min_interarrival_ns = min_interarrival_ns
        self.max_interarrival_ns = max_interarrival_ns
        self.max_requests = max_requests
        self.network_delay_ns = network_delay_ns
        self.mux = mux
        self.link = link if link is not None and not link.zero else None
        self.requests_sent = 0
        self._stopped = False

    def start(self) -> "SporadicDriver":
        """Schedule the first request after one inter-arrival draw."""
        self._schedule_next()
        return self

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self) -> None:
        gap = self.rng.uniform_int(self.min_interarrival_ns, self.max_interarrival_ns)
        delay = self.network_delay_ns
        if self.link is not None:
            delay += self.link.sample(self.rng)
        if self.mux is not None:
            self.mux.after(gap + delay, self._arrive)
            return
        self.engine.after(
            gap + delay,
            self._arrive,
            priority=PRIORITY_RELEASE,
            name=f"sporadic:{self.task.name}",
        )

    def _arrive(self) -> None:
        if self._stopped:
            return
        if self.max_requests is not None and self.requests_sent >= self.max_requests:
            return
        self.vm.release_job(self.task, now=self.engine.now)
        self.requests_sent += 1
        if self.max_requests is None or self.requests_sent < self.max_requests:
            self._schedule_next()
