"""memcached + Mutilate workload model (paper §4.4).

The paper drives memcached VMs with Mutilate generating the Facebook
ETC-style query mix: GET requests for 200 B values over 30 B keys,
normally distributed inter-arrival times at an average rate of 100
queries per second.  Latency is measured NIC-to-NIC — from request
arrival at the host to response ready — excluding client network delay
(99.9th percentile 19 µs, declared insignificant).

Since we have no Xeon to run memcached on, per-request service demand is
drawn from a log-normal distribution calibrated so that a dedicated-CPU
run reproduces Table 4's RTVirt row (p90 ≈ 51 µs, p99.9 ≈ 57 µs); the
Credit and RT-Xen rows then emerge from each scheduler's own wake-path
and tick behaviour.  The calibration constants are module-level and
documented.
"""

from __future__ import annotations

from typing import Optional

from ..guest.task import Task, TaskKind
from ..guest.vm import VM
from ..metrics.latency import LatencyRecorder
from ..simcore.engine import Engine
from ..simcore.errors import ConfigurationError
from ..simcore.events import PRIORITY_RELEASE
from ..simcore.rng import RandomSource
from ..simcore.time import MSEC, USEC
from .arrivals import ArrivalMux
from .netdelay import NetLink

#: Mean inter-arrival: 100 queries/second.
DEFAULT_MEAN_INTERARRIVAL_NS = 10 * MSEC
#: Normal-distribution spread of inter-arrival times (Mutilate-style).
DEFAULT_INTERARRIVAL_SIGMA_NS = int(2.5 * MSEC)

#: Log-normal service-demand parameters, calibrated to Table 4's RTVirt
#: row: median exp(mu) ~= 45 µs, sigma 0.05 puts the 99.9th percentile of
#: pure service time near 52 µs.
SERVICE_MU = 10.714  # ln(45_000 ns)
SERVICE_SIGMA = 0.05

#: The paper's SLO: 99.9th-percentile NIC-to-NIC latency within 500 µs,
#: which also serves as the memcached RTA's period/deadline.
MEMCACHED_PERIOD_NS = 500 * USEC
#: The slice RTVirt reserves for the memcached VM (from Table 4).
MEMCACHED_SLICE_NS = 58 * USEC


class MemcachedService:
    """A memcached VM plus its Mutilate-style client."""

    def __init__(
        self,
        engine: Engine,
        vm: VM,
        rng: RandomSource,
        name: str = "memcached",
        period_ns: int = MEMCACHED_PERIOD_NS,
        slice_ns: int = MEMCACHED_SLICE_NS,
        mean_interarrival_ns: int = DEFAULT_MEAN_INTERARRIVAL_NS,
        interarrival_sigma_ns: int = DEFAULT_INTERARRIVAL_SIGMA_NS,
        service_mu: float = SERVICE_MU,
        service_sigma: float = SERVICE_SIGMA,
        register: bool = True,
        mux: Optional[ArrivalMux] = None,
        link: Optional[NetLink] = None,
    ) -> None:
        if mean_interarrival_ns <= period_ns:
            raise ConfigurationError(
                "mean inter-arrival must exceed the task period "
                f"({mean_interarrival_ns} <= {period_ns})"
            )
        self.engine = engine
        self.vm = vm
        self.rng = rng
        self.task = Task(name, slice_ns, period_ns, TaskKind.SPORADIC)
        if register:
            vm.register_task(self.task)
        self.mean_interarrival_ns = mean_interarrival_ns
        self.interarrival_sigma_ns = interarrival_sigma_ns
        self.service_mu = service_mu
        self.service_sigma = service_sigma
        self.latency = LatencyRecorder(name=name)
        self.mux = mux
        self.link = link if link is not None and not link.zero else None
        self.requests_sent = 0
        self._stopped = False

    def register_with(self, register_fn) -> None:
        """Alternative registration hook (e.g. RT-Xen's static path)."""
        register_fn(self.vm, self.task)

    def start(self) -> "MemcachedService":
        self._schedule_next()
        return self

    def stop(self) -> None:
        self._stopped = True

    def _draw_gap(self) -> int:
        gap = round(
            self.rng.normal_positive(
                float(self.mean_interarrival_ns), float(self.interarrival_sigma_ns)
            )
        )
        # The sporadic task model needs a minimum inter-arrival of one period.
        return max(gap, self.task.period_ns)

    def _draw_service(self) -> int:
        return max(1, round(self.rng.lognormal(self.service_mu, self.service_sigma)))

    def _schedule_next(self) -> None:
        gap = self._draw_gap()
        # One request's network cost is drawn up front (request and reply
        # directions, in that order) so the stream's draw sequence per
        # cycle is fixed: gap, [request delay, reply delay], service.
        request_delay_ns = reply_delay_ns = 0
        if self.link is not None:
            request_delay_ns = self.link.sample(self.rng)
            reply_delay_ns = self.link.sample(self.rng)
        arrive = lambda: self._request(request_delay_ns, reply_delay_ns)
        if self.mux is not None:
            self.mux.after(gap + request_delay_ns, arrive)
            return
        self.engine.after(
            gap + request_delay_ns,
            arrive,
            priority=PRIORITY_RELEASE,
            name=f"request:{self.task.name}",
        )

    def _request(self, request_delay_ns: int = 0, reply_delay_ns: int = 0) -> None:
        if self._stopped:
            return
        now = self.engine.now
        network_ns = request_delay_ns + reply_delay_ns
        self.vm.release_job(
            self.task,
            now=now,
            work=self._draw_service(),
            relative_deadline=self.task.period_ns,
            on_complete=lambda job: self._record(job, network_ns),
        )
        self.requests_sent += 1
        self._schedule_next()

    def _record(self, job, network_ns: int = 0) -> None:
        # End-to-end as the client sees it: host response time plus both
        # network directions.  With no link this is NIC-to-NIC, as the
        # paper measures.
        self.latency.record(job.completed_at - job.release + network_ns)
