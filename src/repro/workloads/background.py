"""Non-RTA background workloads.

The Figure 5a contention experiment runs the memcached VM "alongside 19
VMs containing non-RTA CPU-bound processes"; these helpers build such
populations for any of the three systems.
"""

from __future__ import annotations

from typing import List

from ..guest.vm import VM


def add_background_vms(system, count: int, prefix: str = "bg", **kwargs) -> List[VM]:
    """Create *count* CPU-bound non-RTA VMs on *system*.

    Works with any system exposing ``create_background_vm`` (RTVirt,
    RT-Xen, Credit); extra keyword arguments (e.g. Credit weights) are
    forwarded.
    """
    return [
        system.create_background_vm(f"{prefix}{i + 1}", **kwargs) for i in range(count)
    ]
