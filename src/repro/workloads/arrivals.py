"""Aggregated open-loop arrival processes.

High-rate open-loop clients (sporadic RTA triggers, Mutilate-style
memcached query streams) used to cost one engine event per simulated
request per client: an experiment with N clients paid N heap pushes and
N event dispatches per mean inter-arrival, so the simulated *client
count* — not the amount of scheduling work — dominated the event count.

:class:`ArrivalMux` compresses every client sharing an engine into one
arrival process.  Clients enqueue their next arrival into the mux's own
heap, ordered by ``(time, mux_seq)``; the mux keeps exactly one engine
event armed at the earliest pending arrival and drains every arrival due
at that instant when it fires.  The engine's event count then scales
with *distinct arrival instants*, not with client count.

Exactness
---------

The multiplexer is byte-identical to per-client engine events:

- Each client's arrival times are untouched — same RNG stream, same
  draws, same accumulation.  The mux only changes *how* the callback is
  dispatched, never *when*.
- Arrivals colliding at one instant dispatch in ``mux_seq`` order.
  ``mux_seq`` increments per ``schedule`` call exactly as the engine's
  event seq increments per push, and both worlds execute the callbacks
  that issue those calls in the same order, so ``mux_seq`` order equals
  the engine-seq order the per-client events would have had.
- The mux's engine event fires at ``PRIORITY_RELEASE`` like the
  per-client events it replaces, so arrivals keep their priority
  relative to completion/budget/scheduler events at the same instant.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, List, Tuple

from ..simcore.engine import Engine
from ..simcore.errors import SimulationError
from ..simcore.events import PRIORITY_RELEASE


class ArrivalMux:
    """Multiplexes many open-loop arrival streams onto one event stream.

    Clients call :meth:`after` (or :meth:`at`) instead of the engine's
    methods; cancellation is not offered because open-loop drivers stop
    by flag, not by revoking in-flight requests (a drained arrival for a
    stopped client is a no-op in the driver).
    """

    __slots__ = (
        "engine",
        "name",
        "_heap",
        "_seq",
        "_event",
        "_draining",
        "scheduled",
        "fires",
    )

    def __init__(self, engine: Engine, name: str = "arrivals") -> None:
        self.engine = engine
        self.name = f"mux:{name}"
        #: Pending arrivals as ``(time, mux_seq, callback)``.
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._event = None
        self._draining = False
        #: Total arrivals multiplexed through this mux.
        self.scheduled = 0
        #: Engine events actually consumed — ``scheduled - fires`` is
        #: the number of engine events the aggregation saved.
        self.fires = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def events_saved(self) -> int:
        """Engine events avoided so far by batching same-instant arrivals."""
        return self.scheduled - self.fires

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule *callback* to run *delay* ns from now."""
        self.at(self.engine.now + delay, callback)

    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule *callback* to run at absolute *time*."""
        if time < self.engine.now:
            raise SimulationError(
                f"{self.name}: arrival scheduled in the past "
                f"({time} < {self.engine.now})"
            )
        heappush(self._heap, (time, self._seq, callback))
        self._seq += 1
        self.scheduled += 1
        if not self._draining:
            self._arm()

    # -- internal --------------------------------------------------------------

    def _arm(self) -> None:
        """Keep exactly one engine event armed at the earliest arrival."""
        if not self._heap:
            return
        head = self._heap[0][0]
        event = self._event
        if event is not None and event.active and event.time <= head:
            return
        if event is not None:
            self.engine.cancel(event)
        self._event = self.engine.at(
            head, self._fire, priority=PRIORITY_RELEASE, name=self.name
        )

    def _fire(self) -> None:
        self._event = None
        self.fires += 1
        heap = self._heap
        now = self.engine.now
        # Callbacks re-schedule their next arrival from inside the
        # drain; _draining defers re-arming so a burst costs one arming
        # instead of one per drained client.  A callback scheduling at
        # *now* (zero inter-arrival) lands behind the current head by
        # seq order and is picked up by this same loop.
        self._draining = True
        try:
            while heap and heap[0][0] == now:
                callback = heappop(heap)[2]
                callback()
        finally:
            self._draining = False
        self._arm()
