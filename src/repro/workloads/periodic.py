"""Periodic RTA workloads (the paper's rt-app model, §4.2).

``rt-app`` takes a time slice and period and simulates a periodic load:
every period a job is released that needs exactly the slice of CPU time
and must finish by the end of the period.  :class:`PeriodicDriver`
reproduces that behaviour; :data:`TABLE1_GROUPS` holds the six RTA
groups of Table 1 used throughout §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..guest.task import Task
from ..guest.vm import VM
from ..simcore.engine import Engine
from ..simcore.errors import ConfigurationError
from ..simcore.events import PRIORITY_RELEASE
from ..simcore.time import MSEC


@dataclass(frozen=True)
class RTASpec:
    """(slice, period) in milliseconds, as Table 1 lists them."""

    slice_ms: float
    period_ms: float

    @property
    def slice_ns(self) -> int:
        return round(self.slice_ms * MSEC)

    @property
    def period_ns(self) -> int:
        return round(self.period_ms * MSEC)

    @property
    def utilization(self) -> float:
        return self.slice_ms / self.period_ms


#: Table 1 — parameters (ms) of the periodic RTA groups.
TABLE1_GROUPS: Dict[str, List[RTASpec]] = {
    "H-Equiv": [RTASpec(13, 20), RTASpec(25, 40), RTASpec(49, 80), RTASpec(19, 100)],
    "H-Dec": [RTASpec(7, 10), RTASpec(13, 20), RTASpec(18, 40), RTASpec(13, 100)],
    "H-Inc": [RTASpec(5, 10), RTASpec(13, 20), RTASpec(31, 40), RTASpec(10, 100)],
    "NH-Equiv": [RTASpec(13, 20), RTASpec(26, 40), RTASpec(39, 60), RTASpec(13, 100)],
    "NH-Dec": [RTASpec(23, 30), RTASpec(13, 20), RTASpec(5, 10), RTASpec(10, 100)],
    "NH-Inc": [RTASpec(11, 21), RTASpec(26, 43), RTASpec(40, 60), RTASpec(13, 100)],
}

#: Table 5 — groups of RTAs used in the scalability experiments (ms).
TABLE5_GROUPS: List[RTASpec] = [
    RTASpec(6, 75),
    RTASpec(7, 92),
    RTASpec(46, 188),
    RTASpec(12, 102),
    RTASpec(19, 139),
    RTASpec(13, 124),
    RTASpec(36, 260),
    RTASpec(21, 159),
    RTASpec(9, 103),
    RTASpec(62, 208),
]


class PeriodicDriver:
    """Releases a job of *task* every period, like rt-app.

    The driver stops either at :attr:`until` (absolute time) or when
    :meth:`stop` is called (used by the dynamic-RTA churn of Figure 4).
    """

    def __init__(
        self,
        engine: Engine,
        vm: VM,
        task: Task,
        start_at: int = 0,
        until: Optional[int] = None,
        phase_ns: int = 0,
    ) -> None:
        if phase_ns < 0:
            raise ConfigurationError("phase must be non-negative")
        self.engine = engine
        self.vm = vm
        self.task = task
        self.start_at = start_at + phase_ns
        self.until = until
        self._stopped = False
        self._event = None

    def start(self) -> "PeriodicDriver":
        """Schedule the first release; returns self for chaining."""
        self._event = self.engine.at(
            max(self.start_at, self.engine.now),
            self._release,
            priority=PRIORITY_RELEASE,
            name=f"release:{self.task.name}",
        )
        return self

    def stop(self) -> None:
        """Stop releasing jobs (already-released jobs still run)."""
        self._stopped = True
        self.engine.cancel(self._event)

    def _release(self) -> None:
        if self._stopped:
            return
        now = self.engine.now
        if self.until is not None and now >= self.until:
            return
        self.vm.release_job(self.task, now=now)
        self._event = self.engine.after(
            self.task.period_ns,
            self._release,
            priority=PRIORITY_RELEASE,
            name=f"release:{self.task.name}",
        )


def build_group_vms(
    system,
    group: str,
    specs: Optional[Sequence[RTASpec]] = None,
    name_prefix: str = "vm",
) -> List[Tuple[VM, Task]]:
    """One RTA per VM for a Table 1 group (the §4.2 setup).

    *system* is an :class:`~repro.core.system.RTVirtSystem`-like object
    exposing ``create_vm``; returns (vm, task) pairs with the tasks
    registered but with no drivers started yet.
    """
    if specs is None:
        if group not in TABLE1_GROUPS:
            raise ConfigurationError(f"unknown Table 1 group {group!r}")
        specs = TABLE1_GROUPS[group]
    pairs: List[Tuple[VM, Task]] = []
    for i, spec in enumerate(specs):
        vm = system.create_vm(f"{name_prefix}{i + 1}")
        task = Task(f"{group}.rta{i + 1}", spec.slice_ns, spec.period_ns)
        vm.register_task(task)
        pairs.append((vm, task))
    return pairs
