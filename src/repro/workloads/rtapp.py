"""rt-app configuration loader.

The paper generates its periodic RTAs with `rt-app`, which is driven by
JSON configuration files of the form::

    {
      "tasks": {
        "thread0": {"policy": "SCHED_DEADLINE",
                     "runtime": 13000, "period": 20000, "deadline": 20000},
        "thread1": {"policy": "SCHED_DEADLINE",
                     "runtime": 25000, "period": 40000, "delay": 5000}
      },
      "global": {"duration": 10}
    }

(times in microseconds, duration in seconds — rt-app's conventions).
This loader accepts that shape, so real rt-app configs can be replayed
against the simulator: each task becomes an RTA registered through the
``sched_setattr`` path and driven periodically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..guest.task import Task, TaskKind
from ..guest.vm import VM
from ..simcore.errors import ConfigurationError
from ..simcore.time import SEC, sec, usec
from .periodic import PeriodicDriver
from .sporadic import SporadicDriver

SUPPORTED_POLICIES = ("SCHED_DEADLINE", "SCHED_FIFO", "SCHED_RR")


@dataclass(frozen=True)
class RTAppTask:
    """One thread of an rt-app configuration."""

    name: str
    runtime_us: int
    period_us: int
    deadline_us: int
    delay_us: int = 0
    sporadic: bool = False

    @property
    def runtime_ns(self) -> int:
        return usec(self.runtime_us)

    @property
    def period_ns(self) -> int:
        return usec(self.period_us)


@dataclass(frozen=True)
class RTAppConfig:
    """A parsed rt-app configuration."""

    tasks: List[RTAppTask]
    duration_s: float

    @property
    def duration_ns(self) -> int:
        return round(self.duration_s * SEC)

    @property
    def total_utilization(self) -> float:
        return sum(t.runtime_us / t.period_us for t in self.tasks)


def parse_rtapp_config(config: Dict[str, Any]) -> RTAppConfig:
    """Parse an rt-app JSON dict into an :class:`RTAppConfig`.

    Accepts the fields the paper's workloads use; unknown per-task keys
    are ignored (rt-app has many), but structural problems raise.
    """
    tasks_section = config.get("tasks")
    if not isinstance(tasks_section, dict) or not tasks_section:
        raise ConfigurationError("rt-app config needs a non-empty 'tasks' object")
    tasks: List[RTAppTask] = []
    for name, body in tasks_section.items():
        if not isinstance(body, dict):
            raise ConfigurationError(f"rt-app task {name!r}: not an object")
        policy = body.get("policy", "SCHED_DEADLINE")
        if policy not in SUPPORTED_POLICIES:
            raise ConfigurationError(
                f"rt-app task {name!r}: unsupported policy {policy!r}"
            )
        runtime = body.get("runtime")
        period = body.get("period")
        if runtime is None or period is None:
            raise ConfigurationError(
                f"rt-app task {name!r}: needs 'runtime' and 'period' (µs)"
            )
        if runtime <= 0 or period <= 0 or runtime > period:
            raise ConfigurationError(
                f"rt-app task {name!r}: invalid runtime/period ({runtime}, {period})"
            )
        deadline = body.get("deadline", period)
        tasks.append(
            RTAppTask(
                name=name,
                runtime_us=int(runtime),
                period_us=int(period),
                deadline_us=int(deadline),
                delay_us=int(body.get("delay", 0)),
                sporadic=bool(body.get("sporadic", False)),
            )
        )
    global_section = config.get("global", {})
    duration = float(global_section.get("duration", 10))
    if duration <= 0:
        raise ConfigurationError("rt-app duration must be positive")
    return RTAppConfig(tasks=tasks, duration_s=duration)


def load_rtapp_file(path: str) -> RTAppConfig:
    """Parse an rt-app JSON file."""
    with open(path) as handle:
        return parse_rtapp_config(json.load(handle))


def deploy_rtapp(
    config: RTAppConfig,
    vm: VM,
    rng=None,
    mux=None,
) -> List[Task]:
    """Register and drive *config*'s threads inside *vm*.

    Returns the created tasks; the VM must already be attached to a
    system (its engine schedules the drivers).  Sporadic threads need
    *rng* (a :class:`~repro.simcore.rng.RandomSource`).  Pass *mux*
    (an :class:`~repro.workloads.arrivals.ArrivalMux`) to aggregate the
    sporadic threads' request streams with the experiment's other
    open-loop clients.
    """
    if vm.machine is None:
        raise ConfigurationError("attach the VM to a system before deploying rt-app")
    engine = vm.machine.engine
    created: List[Task] = []
    for spec in config.tasks:
        kind = TaskKind.SPORADIC if spec.sporadic else TaskKind.PERIODIC
        task = Task(spec.name, spec.runtime_ns, spec.period_ns, kind)
        vm.register_task(task)
        created.append(task)
        until = engine.now + config.duration_ns
        if spec.sporadic:
            if rng is None:
                raise ConfigurationError(
                    f"sporadic rt-app task {spec.name!r} needs an rng"
                )
            SporadicDriver(engine, vm, task, rng, mux=mux).start()
        else:
            PeriodicDriver(
                engine, vm, task, phase_ns=usec(spec.delay_us), until=until
            ).start()
    return created


def table1_group_as_rtapp(group: str) -> Dict[str, Any]:
    """Render a Table 1 group as an rt-app JSON config (round-trip aid)."""
    from .periodic import TABLE1_GROUPS

    if group not in TABLE1_GROUPS:
        raise ConfigurationError(f"unknown Table 1 group {group!r}")
    tasks = {}
    for i, spec in enumerate(TABLE1_GROUPS[group]):
        tasks[f"thread{i}"] = {
            "policy": "SCHED_DEADLINE",
            "runtime": round(spec.slice_ms * 1000),
            "period": round(spec.period_ms * 1000),
            "deadline": round(spec.period_ms * 1000),
        }
    return {"tasks": tasks, "global": {"duration": 100}}
