"""Client-to-host network latency model.

Requests from open-loop clients (sporadic RTAs, memcached front-ends)
do not materialise at the host the instant the client issues them: they
cross a network link whose latency has a base propagation component and
a jitter component.  :class:`NetLink` models one such link with a
configurable distribution; drivers add a sampled delivery delay to each
request's arrival (through the :class:`~repro.workloads.arrivals.ArrivalMux`)
and a second sampled delay to the reply, so *end-to-end* response times
seen by the client include both directions while the host-side deadline
accounting still runs on arrival times.

Delays are integer nanoseconds drawn from a named
:class:`~repro.simcore.rng.RandomSource`, so a link is exactly
reproducible per seed and never perturbs other streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simcore.errors import ConfigurationError
from ..simcore.rng import RandomSource


@dataclass(frozen=True)
class NetLink:
    """One client-to-host link's latency distribution.

    ``uniform`` (default): integer-uniform in
    ``[base_ns - jitter_ns, base_ns + jitter_ns]``, clamped at 0.
    ``lognormal``: heavy-tailed around *base_ns* with sigma scaled by
    ``jitter_ns / base_ns`` — the classic datacenter RTT shape where the
    p99 is several times the median.
    """

    base_ns: int = 0
    jitter_ns: int = 0
    shape: str = "uniform"

    SHAPES = ("uniform", "lognormal")

    def __post_init__(self) -> None:
        if self.base_ns < 0 or self.jitter_ns < 0:
            raise ConfigurationError("link latency must be non-negative")
        if self.shape not in self.SHAPES:
            raise ConfigurationError(
                f"unknown link shape {self.shape!r}; choose from {self.SHAPES}"
            )
        if self.shape == "lognormal" and self.jitter_ns > 0 and self.base_ns == 0:
            raise ConfigurationError("lognormal link needs base_ns > 0")

    @property
    def zero(self) -> bool:
        """True for the no-network degenerate link (every delay is 0)."""
        return self.base_ns == 0 and self.jitter_ns == 0

    def sample(self, rng: RandomSource) -> int:
        """Draw one direction's delay in integer nanoseconds.

        A zero link never touches *rng*, so wiring a link into a driver
        with ``base_ns == jitter_ns == 0`` leaves the driver's random
        stream — and therefore every downstream metric — byte-identical
        to the linkless configuration.
        """
        if self.zero:
            return 0
        if self.shape == "uniform":
            if self.jitter_ns == 0:
                return self.base_ns
            return rng.uniform_int(
                max(0, self.base_ns - self.jitter_ns),
                self.base_ns + self.jitter_ns,
            )
        import math

        sigma = self.jitter_ns / self.base_ns if self.jitter_ns else 0.0
        if sigma == 0.0:
            return self.base_ns
        # mu chosen so the *median* is base_ns; the mean sits above it.
        return max(0, round(rng.lognormal(math.log(self.base_ns), sigma)))
