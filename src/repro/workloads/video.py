"""Video-streaming workloads (paper §4.3, Table 3 and Figure 4).

The paper models VLC transcoding threads with rt-app using parameters
measured from the real application: the period comes from the frame
rate (floor of 1000/fps ms) and the slice from observed CPU usage.
Table 3's four configurations are reproduced verbatim.

:class:`DynamicStreamingWorkload` recreates the Figure 4 churn: VMs
whose VCPUs alternate between randomly parameterized streaming RTAs and
idle intervals (with a 10% bandwidth reserve), each lasting 10 s – 6 min,
exercising RTVirt's dynamic register/adjust/unregister path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..guest.task import Task, TaskKind
from ..guest.vm import VM
from ..metrics.deadlines import DeadlineStats
from ..simcore.engine import Engine
from ..simcore.errors import AdmissionError
from ..simcore.events import PRIORITY_DEFAULT
from ..simcore.rng import RandomSource
from ..simcore.time import MSEC, SEC
from .periodic import PeriodicDriver, RTASpec


@dataclass(frozen=True)
class StreamProfile:
    """One row of Table 3."""

    fps: int
    bandwidth_percent: float
    slice_ms: int
    period_ms: int

    @property
    def spec(self) -> RTASpec:
        return RTASpec(self.slice_ms, self.period_ms)


#: Table 3 — timeliness characteristics of VLC streaming at each frame rate.
TABLE3_PROFILES: Dict[int, StreamProfile] = {
    24: StreamProfile(24, 44.5, 19, 41),
    30: StreamProfile(30, 54.1, 18, 33),
    48: StreamProfile(48, 84.5, 17, 20),
    60: StreamProfile(60, 93.6, 15, 16),
}


@dataclass
class SessionRecord:
    """Outcome of one dynamic streaming session (for Figure 4's report)."""

    name: str
    fps: int
    start_ns: int
    planned_end_ns: int
    stats: DeadlineStats
    admitted: bool = True


class StreamingSession:
    """One transcoding thread: a periodic RTA alive for a bounded time."""

    def __init__(
        self,
        engine: Engine,
        vm: VM,
        name: str,
        profile: StreamProfile,
        end_ns: int,
    ) -> None:
        self.engine = engine
        self.vm = vm
        self.profile = profile
        self.task = Task(name, profile.spec.slice_ns, profile.spec.period_ns)
        self.end_ns = end_ns
        self._driver: Optional[PeriodicDriver] = None

    def start(self) -> bool:
        """Register and start streaming; False when admission rejects."""
        try:
            self.vm.register_task(self.task)
        except AdmissionError:
            return False
        self._driver = PeriodicDriver(
            self.engine, self.vm, self.task, until=self.end_ns
        ).start()
        self.engine.at(
            self.end_ns, self._teardown, priority=PRIORITY_DEFAULT, name="session-end"
        )
        return True

    def _teardown(self) -> None:
        if self._driver is not None:
            self._driver.stop()
        if self.task.vm is self.vm:
            # Drop any still-pending job from accounting noise: jobs whose
            # deadline already passed count as misses via finalize later;
            # in-flight ones are abandoned by the unregister, as a real
            # thread teardown would.
            self.vm.unregister_task(self.task)


class DynamicStreamingWorkload:
    """The Figure 4 churn generator.

    For each VCPU slot of each VM it builds a sequential timeline of
    streaming sessions and idle intervals; during idle intervals a 10%
    placeholder reservation is registered (the paper reserves 10% of
    bandwidth for idle VCPUs).
    """

    #: 10% reservation used during idle intervals: 1 ms every 10 ms.
    IDLE_RESERVE_SPEC = RTASpec(1, 10)

    def __init__(
        self,
        system,
        rng: RandomSource,
        vm_count: int = 4,
        vcpus_per_vm: int = 4,
        duration_ns: int = 600 * SEC,
        min_interval_ns: int = 10 * SEC,
        max_interval_ns: int = 360 * SEC,
        vm_start: int = 0,
    ) -> None:
        """*vm_start* offsets the VM numbering (``stream-vm{vm_start+1}``
        onward), so a decomposed run — one single-VM workload per system —
        reproduces the names the combined workload would have used."""
        self.system = system
        self.engine: Engine = system.engine
        self.rng = rng
        self.duration_ns = duration_ns
        self.min_interval_ns = min_interval_ns
        self.max_interval_ns = max_interval_ns
        self.vms: List[VM] = [
            system.create_vm(f"stream-vm{vm_start + i + 1}", vcpu_count=vcpus_per_vm)
            for i in range(vm_count)
        ]
        self.vcpus_per_vm = vcpus_per_vm
        self.sessions: List[SessionRecord] = []
        self._counter = 0

    def start(self) -> "DynamicStreamingWorkload":
        """Schedule the per-slot timelines."""
        for vm in self.vms:
            for slot in range(self.vcpus_per_vm):
                # Half the slots start with a session, half idle, chosen
                # randomly like the paper's random assignment.
                start_busy = self.rng.random() < 0.5
                self._schedule_segment(vm, slot, at=0, busy=start_busy)
        return self

    def _random_interval(self) -> int:
        return self.rng.uniform_int(self.min_interval_ns, self.max_interval_ns)

    def _schedule_segment(self, vm: VM, slot: int, at: int, busy: bool) -> None:
        if at >= self.duration_ns:
            return
        length = min(self._random_interval(), self.duration_ns - at)
        if busy:
            self.engine.at(
                at,
                self._start_session,
                vm,
                slot,
                at + length,
                priority=PRIORITY_DEFAULT,
                name="session-start",
            )
        else:
            self.engine.at(
                at,
                self._start_idle_reserve,
                vm,
                at + length,
                priority=PRIORITY_DEFAULT,
                name="idle-start",
            )
        self._schedule_segment(vm, slot, at + length, not busy)

    def _start_session(self, vm: VM, slot: int, end_ns: int) -> None:
        profile = TABLE3_PROFILES[self.rng.choice(sorted(TABLE3_PROFILES))]
        self._counter += 1
        name = f"{vm.name}.stream{self._counter}@{profile.fps}fps"
        session = StreamingSession(self.engine, vm, name, profile, end_ns)
        admitted = session.start()
        self.sessions.append(
            SessionRecord(
                name=name,
                fps=profile.fps,
                start_ns=self.engine.now,
                planned_end_ns=end_ns,
                stats=session.task.stats,
                admitted=admitted,
            )
        )

    def _start_idle_reserve(self, vm: VM, end_ns: int) -> None:
        spec = self.IDLE_RESERVE_SPEC
        task = Task(
            f"{vm.name}.idle{self._counter}", spec.slice_ns, spec.period_ns
        )
        self._counter += 1
        try:
            vm.register_task(task)
        except AdmissionError:
            return
        self.engine.at(
            end_ns,
            self._end_idle_reserve,
            vm,
            task,
            priority=PRIORITY_DEFAULT,
            name="idle-end",
        )

    def _end_idle_reserve(self, vm: VM, task: Task) -> None:
        if task.vm is vm:
            vm.unregister_task(task)

    # -- reporting ----------------------------------------------------------------

    def admitted_sessions(self) -> List[SessionRecord]:
        return [s for s in self.sessions if s.admitted]

    def sessions_with_misses(self) -> List[SessionRecord]:
        return [s for s in self.admitted_sessions() if s.stats.missed > 0]

    def worst_miss_ratio(self) -> float:
        """Worst per-session miss ratio (the paper reports 0.136%)."""
        ratios = [s.stats.miss_ratio for s in self.admitted_sessions() if s.stats.decided]
        return max(ratios) if ratios else 0.0
