"""Usage monitoring and the idle-CPU tax (paper §6 extensions)."""

from .tax import IdleCpuTax, TaxAssessment
from .usage import UsageMonitor, UsageSample

__all__ = ["UsageMonitor", "UsageSample", "IdleCpuTax", "TaxAssessment"]
