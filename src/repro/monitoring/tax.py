"""The idle-CPU tax (paper §6).

Modelled after the idle-memory tax VMware ESX uses for memory
reclamation (which the paper cites as the inspiration): when the
system's RT bandwidth is oversubscribed, each VCPU's grant is reduced
in proportion to its observed idle ratio, reclaiming bandwidth from
over-claimers while leaving honest reservations intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

from ..guest.vcpu import VCPU
from ..simcore.errors import ConfigurationError
from .usage import UsageMonitor


@dataclass(frozen=True)
class TaxAssessment:
    """A proposed grant reduction for one VCPU."""

    vcpu: VCPU
    idle_ratio: float
    current_budget_ns: int
    taxed_budget_ns: int

    @property
    def reclaimed_bw(self) -> Fraction:
        return Fraction(
            self.current_budget_ns - self.taxed_budget_ns, self.vcpu.period_ns
        )


class IdleCpuTax:
    """Computes and applies idle-ratio-proportional grant deductions."""

    def __init__(self, tax_rate: float = 0.75, protect_ratio: float = 0.1) -> None:
        """*tax_rate* is the fraction of observed idle bandwidth reclaimed;
        *protect_ratio* is the idle fraction always tolerated (bursty RTAs
        legitimately idle part of their reservation)."""
        if not 0 <= tax_rate <= 1:
            raise ConfigurationError(f"tax rate must be in [0,1], got {tax_rate}")
        if not 0 <= protect_ratio < 1:
            raise ConfigurationError(f"protect ratio must be in [0,1), got {protect_ratio}")
        self.tax_rate = tax_rate
        self.protect_ratio = protect_ratio

    def assess(self, monitor: UsageMonitor, windows: int = 5) -> List[TaxAssessment]:
        """Assessments for every monitored VCPU with a taxable idle share."""
        out: List[TaxAssessment] = []
        for vm in monitor.system.vms:
            for vcpu in vm.vcpus:
                if vcpu.budget_ns <= 0:
                    continue
                idle = monitor.idle_ratio(vcpu, windows)
                taxable = max(0.0, idle - self.protect_ratio)
                if taxable <= 0:
                    continue
                deduction = round(vcpu.budget_ns * taxable * self.tax_rate)
                if deduction <= 0:
                    continue
                out.append(
                    TaxAssessment(
                        vcpu=vcpu,
                        idle_ratio=idle,
                        current_budget_ns=vcpu.budget_ns,
                        taxed_budget_ns=vcpu.budget_ns - deduction,
                    )
                )
        return out

    def apply(self, system, assessments: List[TaxAssessment]) -> Fraction:
        """Apply the deductions through the host's DEC_BW path.

        Returns the total bandwidth reclaimed.  Only used when the host is
        oversubscribed; the paper notes public-cloud billing already
        disincentivises over-claiming in the common case.
        """
        reclaimed = Fraction(0)
        for assessment in assessments:
            vcpu = assessment.vcpu
            vcpu.vm.port.notify_decrease(
                [(vcpu, assessment.taxed_budget_ns, vcpu.period_ns)]
            )
            reclaimed += assessment.reclaimed_bw
        return reclaimed
