"""Per-VCPU usage monitoring (paper §6, the security discussion).

The paper's mitigation for untrustworthy guests that over-claim CPU:
*"the schedulers can monitor the applications'/VMs' actual CPU usages,
and tax the applications/VMs if they claim more than what they need.
The tax rate ... can be determined based on the observed idle CPU
ratio."*

:class:`UsageMonitor` samples granted-versus-consumed bandwidth for
every RT VCPU over fixed windows; :mod:`repro.monitoring.tax` turns the
observed idle ratios into grant deductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from ..guest.vcpu import VCPU
from ..simcore.errors import ConfigurationError
from ..simcore.events import PRIORITY_METRICS
from ..simcore.time import SEC
from ..telemetry import events as T


@dataclass
class UsageSample:
    """One monitoring window's observation for one VCPU."""

    window_start: int
    window_end: int
    granted_bw: float
    consumed_bw: float

    @property
    def idle_ratio(self) -> float:
        """Fraction of the grant that went unused (0 when nothing granted)."""
        if self.granted_bw <= 0:
            return 0.0
        return max(0.0, 1.0 - self.consumed_bw / self.granted_bw)


class UsageMonitor:
    """Samples each RT VCPU's granted vs consumed CPU bandwidth.

    Attach to a running system; each window it compares the VCPU's
    admitted bandwidth with the host scheduler's accounted occupancy,
    observed as :data:`~repro.telemetry.events.CPU_ACCOUNT` events on
    the machine's telemetry bus (the machine publishes one per sync
    point with exactly the elapsed time it charges the scheduler).
    """

    def __init__(self, system, window_ns: int = SEC) -> None:
        if window_ns <= 0:
            raise ConfigurationError("window must be positive")
        self.system = system
        self.window_ns = window_ns
        self.samples: Dict[int, List[UsageSample]] = {}  # vcpu uid -> samples
        self._consumed: Dict[int, int] = {}
        self._window_start = 0
        self._unsubscribe = None
        self._started = False

    def start(self) -> "UsageMonitor":
        """Begin monitoring (subscribes to CPU accounting telemetry)."""
        if self._started:
            return self
        self._started = True
        bus = self.system.machine.bus
        self._unsubscribe = bus.subscribe(T.CPU_ACCOUNT, self._on_account)
        self._window_start = self.system.engine.now
        self.system.engine.after(
            self.window_ns, self._close_window, priority=PRIORITY_METRICS, name="usage-window"
        )
        return self

    def stop(self) -> None:
        """Detach from the bus and stop the window timer chain."""
        if not self._started:
            return
        self._started = False
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _on_account(self, event: T.CpuAccountEvent) -> None:
        self._consumed[event.vcpu_uid] = (
            self._consumed.get(event.vcpu_uid, 0) + event.elapsed
        )

    def _close_window(self) -> None:
        if not self._started:
            return
        self.system.machine.sync_all()
        now = self.system.engine.now
        window = now - self._window_start
        for vm in self.system.vms:
            for vcpu in vm.vcpus:
                granted = float(vcpu.bandwidth)
                if granted <= 0 and vcpu.uid not in self._consumed:
                    continue
                consumed = self._consumed.get(vcpu.uid, 0) / window
                self.samples.setdefault(vcpu.uid, []).append(
                    UsageSample(self._window_start, now, granted, consumed)
                )
        self._consumed.clear()
        self._window_start = now
        self.system.engine.after(
            self.window_ns, self._close_window, priority=PRIORITY_METRICS, name="usage-window"
        )

    # -- queries -----------------------------------------------------------------

    def idle_ratio(self, vcpu: VCPU, windows: Optional[int] = None) -> float:
        """Mean idle ratio of *vcpu* over the last *windows* samples."""
        samples = self.samples.get(vcpu.uid, [])
        if windows is not None:
            samples = samples[-windows:]
        if not samples:
            return 0.0
        return sum(s.idle_ratio for s in samples) / len(samples)

    def over_claimers(self, threshold: float = 0.5) -> List[int]:
        """VCPU uids whose average idle ratio exceeds *threshold*."""
        return sorted(
            uid
            for uid in self.samples
            if self.samples[uid]
            and sum(s.idle_ratio for s in self.samples[uid]) / len(self.samples[uid])
            > threshold
        )
