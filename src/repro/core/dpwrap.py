"""The DP-WRAP host-level scheduler (paper §3.3).

DP-WRAP (Levin et al., ECRTS'10) is an optimal multiprocessor scheduler
based on *deadline partitioning*: time is divided into global slices at
the union of all tasks' deadlines, and within each slice every task
receives CPU time proportional to its bandwidth, laid out across the
processors with McNaughton's wrap-around rule (at most m−1 migrations
per slice).

RTVirt applies DP-WRAP at VCPU granularity: the guest publishes each
VCPU's total bandwidth (via the hypercall) and next earliest deadline
(via shared memory); the host computes the next global deadline as the
minimum over all published deadlines, clamped to the minimum global
slice (250 µs in the paper) to bound overhead.

Work conservation (paper §3.4): reserved time a VCPU does not use is
donated — first to RT VCPUs with pending work that are not running
(this is what gives sporadic RTAs their low wake-up latency), then to
background VCPUs round-robin.  A reservation owner that wakes during
its own piece always reclaims it.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Tuple

from ..guest.task import TaskKind
from ..guest.vcpu import VCPU
from ..host.scheduler import HostScheduler
from ..simcore.errors import ConfigurationError, SchedulingError
from ..simcore.events import PRIORITY_SCHEDULE, Event
from ..simcore.time import MSEC, USEC
from ..telemetry import events as T
from .shared_memory import SharedMemoryPage

#: A reservation piece: the interval [start, end) on one PCPU.
Piece = Tuple[int, int, VCPU]


class DPWrapScheduler(HostScheduler):
    """Deadline-partitioned wrap-around scheduling of VCPUs."""

    name = "dp-wrap"

    def __init__(
        self,
        shared_memory: Optional[SharedMemoryPage] = None,
        min_global_slice_ns: int = 250 * USEC,
        idle_slice_ns: int = 10 * MSEC,
        repartition_on_wake: bool = True,
    ) -> None:
        super().__init__()
        #: Re-partition immediately when a wake-up publishes a deadline
        #: earlier than the current slice end.  Disabled only by the
        #: sporadic-reservation ablation.
        self.repartition_on_wake = repartition_on_wake
        if min_global_slice_ns <= 0:
            raise ConfigurationError("minimum global slice must be positive")
        if idle_slice_ns < min_global_slice_ns:
            raise ConfigurationError("idle slice must be >= the minimum global slice")
        self.shared_memory = shared_memory if shared_memory is not None else SharedMemoryPage()
        self.min_global_slice_ns = min_global_slice_ns
        self.idle_slice_ns = idle_slice_ns
        self._active: Dict[int, VCPU] = {}  # uid -> RT VCPU
        # The active VCPUs sorted by uid, rebuilt lazily after population
        # changes.  Every slice and every donation scan walks this list;
        # caching it removes a sorted() + dict-lookup pass per call.
        self._sorted_vcpus: Optional[List[VCPU]] = None
        # CPU affinity (paper §6): uid -> pinned PCPU; these VCPUs are
        # excluded from wrap-around migration.
        self._affinity: Dict[int, int] = {}
        # Fractional nanoseconds of entitlement carried between slices so
        # cumulative allocation tracks cumulative entitlement within 1 ns.
        # Stored as exact (numerator, denominator) integer pairs with a
        # positive denominator — same values a Fraction would hold, without
        # the per-operation normalization cost on the slice hot path.
        self._carry: Dict[int, Tuple[int, int]] = {}
        # Wall-clock instant up to which each VCPU's entitlement has been
        # accrued.  Re-partitions refund unexecuted pieces and accrue only
        # the *new* window, so no interval is ever granted twice.
        self._granted_until: Dict[int, int] = {}
        # Budget preservation for sleeping (sporadic) VCPUs: allocation
        # laid out minus CPU time actually received.  A positive balance
        # (the VCPU idled through its pieces and they were donated) can be
        # redeemed on wake-up, capped at one VCPU budget.
        self._laid: Dict[int, int] = {}
        self._received: Dict[int, int] = {}
        self._owner: Dict[int, Tuple[Optional[VCPU], int]] = {}  # pcpu -> (reserved vcpu, end)
        self._slice_end = 0
        self._slice_events: List[Event] = []
        self._reslice_event: Optional[Event] = None
        # The current slice's planned pieces (start, end, vcpu uid), kept so
        # a mid-slice re-partition can refund unexecuted entitlement.
        self._piece_plan: List[Tuple[int, int, int]] = []
        self._started = False
        #: Number of global slices computed (diagnostics).
        self.slices_computed = 0

    # -- population -------------------------------------------------------------

    def add_vcpu(self, vcpu: VCPU) -> None:
        """Start scheduling *vcpu*; its bandwidth comes from its params."""
        self._active[vcpu.uid] = vcpu
        self._sorted_vcpus = None
        self.shared_memory.map_vcpu(vcpu)
        vcpu.admitted = True
        if self._started:
            self._new_slice()

    def remove_vcpu(self, vcpu: VCPU) -> None:
        self._active.pop(vcpu.uid, None)
        self._sorted_vcpus = None
        self._carry.pop(vcpu.uid, None)
        self._granted_until.pop(vcpu.uid, None)
        self._laid.pop(vcpu.uid, None)
        self._received.pop(vcpu.uid, None)
        self._affinity.pop(vcpu.uid, None)
        self.shared_memory.unmap_vcpu(vcpu)
        if self._started:
            self._new_slice()

    def set_affinity(self, vcpu: VCPU, pcpu_index: int) -> None:
        """Pin *vcpu*'s reservation to one PCPU (paper §6).

        The VCPU is excluded from wrap-around migration: its allocation
        is placed unsplit on *pcpu_index* every slice.  Useful for VMs
        sensitive to processor cache locality.
        """
        if not 0 <= pcpu_index < self.machine.pcpu_count:
            raise ConfigurationError(f"no PCPU {pcpu_index}")
        self._affinity[vcpu.uid] = pcpu_index
        if self._started:
            self._new_slice()

    def clear_affinity(self, vcpu: VCPU) -> None:
        """Allow *vcpu* to migrate again."""
        self._affinity.pop(vcpu.uid, None)
        if self._started:
            self._new_slice()

    def update_vcpu(self, vcpu: VCPU) -> None:
        """A hypercall changed *vcpu*'s bandwidth: re-partition now."""
        if vcpu.uid not in self._active:
            self.add_vcpu(vcpu)
            return
        if self._started:
            self._new_slice()

    # -- the deadline-partitioning step ----------------------------------------------

    def _active_sorted(self) -> List[VCPU]:
        """All active RT VCPUs in uid order (cached between population changes)."""
        vcpus = self._sorted_vcpus
        if vcpus is None:
            active = self._active
            vcpus = self._sorted_vcpus = [active[uid] for uid in sorted(active)]
        return vcpus

    def _carry_add(self, uid: int, amount: int) -> None:
        """Add *amount* whole nanoseconds to a VCPU's fractional carry."""
        num, den = self._carry.get(uid, (0, 1))
        self._carry[uid] = (num + amount * den, den)

    def _rt_entries(self) -> List[VCPU]:
        """RT VCPUs with a positive bandwidth grant, in deterministic order."""
        return [
            v for v in self._active_sorted() if v.period_ns > 0 and v.budget_ns > 0
        ]

    def _next_global_deadline(self, now: int) -> int:
        """min over shared-memory deadlines, clamped to the slice bounds."""
        earliest = self.shared_memory.earliest(now)
        if earliest is None:
            deadline = now + self.idle_slice_ns
        else:
            deadline = min(earliest, now + self.idle_slice_ns)
            deadline = max(deadline, now + self.min_global_slice_ns)
        if self._jitter_source is not None:
            # Fault injection: the slice-boundary timer (DP-WRAP's budget
            # replenishment point) fires late by up to the jitter bound.
            deadline += self.timer_jitter()
        return deadline

    def _new_slice(self) -> None:
        """Compute the next global deadline and wrap allocations (one DP step)."""
        now = self.engine.now
        if now < self._slice_end:
            # Mid-slice re-partition (parameter change or an earlier
            # boundary appeared): refund the part of each planned piece
            # that will no longer execute, so cumulative allocation still
            # tracks cumulative entitlement.
            for start, end, uid in self._piece_plan:
                if uid in self._active:
                    lost = end - max(start, now)
                    if lost > 0:
                        self._carry_add(uid, lost)
                        self._laid[uid] = self._laid.get(uid, 0) - lost
        for event in self._slice_events:
            self.engine.cancel(event)
        self._slice_events.clear()
        self._owner.clear()
        self._piece_plan = []

        entries = self._rt_entries()
        machine = self.machine
        # Failed PCPUs are excluded from the layout: slot k of the wrap
        # maps to the k-th *available* PCPU.
        avail = [p.index for p in machine.pcpus if not p.failed]
        if not avail:
            # Total outage: nothing to lay out; retry at the idle horizon.
            self._slice_end = now + self.idle_slice_ns
            self._slice_events.append(
                self.engine.at(
                    self._slice_end,
                    self._new_slice,
                    priority=PRIORITY_SCHEDULE,
                    name="global-deadline",
                )
            )
            return
        # The paper: one PCPU computes the global deadline (O(log n)) and
        # the per-VCPU partitions (O(n) over all PCPUs).
        machine.charge_schedule(avail[0], elements=len(entries))
        deadline = self._next_global_deadline(now)
        self._slice_end = deadline
        slice_len = deadline - now
        self.slices_computed += 1

        if self._affinity:
            pieces = self._layout_with_affinity(entries, now, slice_len, avail)
        else:
            pieces = self._layout_wrap(entries, now, slice_len, avail)

        for slot, plist in enumerate(pieces):
            k = avail[slot]
            cursor = now
            for start, end, vcpu in plist:
                if start > cursor:
                    # A gap before this piece: donate it.
                    self._slice_events.append(
                        self.engine.at(
                            cursor,
                            self._start_tail,
                            k,
                            priority=PRIORITY_SCHEDULE,
                            name="tail",
                        )
                    )
                self._slice_events.append(
                    self.engine.at(
                        start,
                        self._start_piece,
                        k,
                        vcpu,
                        end,
                        priority=PRIORITY_SCHEDULE,
                        name=vcpu.piece_name,
                    )
                )
                cursor = end
            if cursor < deadline:
                self._slice_events.append(
                    self.engine.at(
                        cursor,
                        self._start_tail,
                        k,
                        priority=PRIORITY_SCHEDULE,
                        name="tail",
                    )
                )
        self._slice_events.append(
            self.engine.at(
                deadline,
                self._new_slice,
                priority=PRIORITY_SCHEDULE,
                name="global-deadline",
            )
        )

    # -- layout strategies ----------------------------------------------------------------

    def _allocation_for(
        self, vcpu: VCPU, now: int, deadline: int, slice_len: int, available: int
    ) -> int:
        """This slice's allocation with wall-clock-keyed carry bookkeeping.

        Entitlement accrues exactly once per wall-clock interval: the new
        grant covers only the window beyond ``granted_until`` (which may
        be negative when a re-partition shortens the horizon), and the
        carry absorbs every rounding/clipping/refund correction.

        The arithmetic is exact rational math over integer pairs —
        value-for-value what ``Fraction`` computes, with the same floor
        (floor of a rational is representation-independent for positive
        denominators), minus the normalization cost.  In the steady state
        the carry's denominator equals the VCPU's period, so one slice
        costs two multiplications and one floor division per VCPU.
        """
        uid = vcpu.uid
        granted_until = self._granted_until.get(uid, now)
        self._granted_until[uid] = deadline
        span = deadline - granted_until
        period = vcpu.period_ns
        cnum, cden = self._carry.get(uid, (0, 1))
        # entitlement = budget/period * span + cnum/cden
        if period <= 0:
            ent_num, ent_den = cnum, cden
        elif cden == period:
            ent_num = vcpu.budget_ns * span + cnum
            ent_den = period
        elif period % cden == 0:
            ent_num = vcpu.budget_ns * span + cnum * (period // cden)
            ent_den = period
        else:
            ent_num = vcpu.budget_ns * span * cden + cnum * period
            ent_den = period * cden
        alloc = ent_num // ent_den
        alloc = min(alloc, slice_len)  # one VCPU never exceeds one PCPU
        # Carried remainders can push the total a few ns past capacity;
        # clip and keep the shortfall owed for the next slice.
        alloc = max(0, min(alloc, available))
        carry_num = ent_num - alloc * ent_den
        if ent_den != period and ent_den > 1:
            # Off the steady-state path (a parameter change mixed two
            # denominators): reduce, as Fraction normalization would.
            g = gcd(carry_num, ent_den)
            if g > 1:
                carry_num //= g
                ent_den //= g
        self._carry[uid] = (carry_num, ent_den)
        self._laid[uid] = self._laid.get(uid, 0) + alloc
        if self._t_budget and alloc > 0:
            # DP-WRAP has no deplete moment: entitlement is laid out per
            # slice and unused pieces are donated, so only grants exist.
            self.machine.bus.publish(
                T.BUDGET_REPLENISH,
                T.BudgetReplenishEvent(
                    now,
                    vcpu.name,
                    alloc,
                    self._laid[vcpu.uid] - self._received.get(vcpu.uid, 0),
                ),
            )
        return alloc

    def account(self, vcpu: VCPU, pcpu_index: int, elapsed: int) -> None:
        if vcpu.uid in self._active:
            self._received[vcpu.uid] = self._received.get(vcpu.uid, 0) + elapsed

    def _layout_wrap(
        self, entries: List[VCPU], now: int, slice_len: int, avail: List[int]
    ) -> List[List[Piece]]:
        """McNaughton wrap-around: contiguous fill across the PCPUs.

        *avail* lists the online PCPU indices; the returned piece lists
        are slot-indexed (slot k -> PCPU ``avail[k]``).
        """
        m = len(avail)
        pieces: List[List[Piece]] = [[] for _ in avail]
        offset = 0
        for vcpu in entries:
            alloc = self._allocation_for(
                vcpu, now, now + slice_len, slice_len, m * slice_len - offset
            )
            while alloc > 0:
                k = offset // slice_len
                if k >= m:  # pragma: no cover - guarded by the clip above
                    raise SchedulingError("DP-WRAP overload")
                local = offset - k * slice_len
                take = min(alloc, slice_len - local)
                pieces[k].append((now + local, now + local + take, vcpu))
                self._piece_plan.append((now + local, now + local + take, vcpu.uid))
                offset += take
                alloc -= take
        return pieces

    def _layout_with_affinity(
        self, entries: List[VCPU], now: int, slice_len: int, avail: List[int]
    ) -> List[List[Piece]]:
        """Affinity-aware layout (paper §6).

        Affine VCPUs are stacked unsplit at the start of their pinned
        PCPU's slice — they never migrate.  Flexible VCPUs then wrap
        over the remaining free windows; a split that would make a VCPU's
        two parts overlap in time is avoided by skipping to the next
        PCPU, leaving a donated gap.  Allocation that finds no room
        (affine overload of one PCPU, or a pin to a failed PCPU) is
        refunded to the VCPU's carry.  Slot k maps to PCPU ``avail[k]``.
        """
        m = len(avail)
        slot_of = {index: slot for slot, index in enumerate(avail)}
        pieces: List[List[Piece]] = [[] for _ in avail]
        fill = [0] * m

        def place(k: int, start_local: int, length: int, vcpu: VCPU) -> None:
            pieces[k].append((now + start_local, now + start_local + length, vcpu))
            self._piece_plan.append(
                (now + start_local, now + start_local + length, vcpu.uid)
            )

        flexible: List[Tuple[VCPU, int]] = []
        for vcpu in entries:
            alloc = self._allocation_for(
                vcpu, now, now + slice_len, slice_len, m * slice_len - sum(fill)
            )
            if alloc <= 0:
                continue
            target = self._affinity.get(vcpu.uid)
            if target is None:
                flexible.append((vcpu, alloc))
                continue
            slot = slot_of.get(target)
            if slot is None:  # pinned to a failed PCPU: owe it all
                self._carry_add(vcpu.uid, alloc)
                continue
            take = min(alloc, slice_len - fill[slot])
            if take > 0:
                place(slot, fill[slot], take, vcpu)
                fill[slot] += take
            if take < alloc:  # affine PCPU full: owe the rest
                self._carry_add(vcpu.uid, alloc - take)

        k = 0
        pos = fill[0] if m else 0
        for vcpu, alloc in flexible:
            while alloc > 0 and k < m:
                avail = slice_len - pos
                if avail <= 0:
                    k += 1
                    pos = fill[k] if k < m else 0
                    continue
                take = min(alloc, avail)
                rest = alloc - take
                if rest > 0 and k + 1 < m:
                    # Split safety: the continuation must finish before
                    # this part starts, or the VCPU would run twice.
                    if fill[k + 1] + rest > pos:
                        k += 1
                        pos = fill[k]
                        continue
                place(k, pos, take, vcpu)
                pos += take
                alloc = rest
                if alloc > 0:
                    k += 1
                    pos = fill[k] if k < m else 0
            if alloc > 0:  # no room left: refund
                self._carry_add(vcpu.uid, alloc)
        for plist in pieces:
            plist.sort()
        return pieces

    # -- piece execution ------------------------------------------------------------------

    def _start_piece(self, pcpu_index: int, vcpu: VCPU, end: int) -> None:
        """A VCPU's reserved piece begins on *pcpu_index*."""
        self._owner[pcpu_index] = (vcpu, end)
        machine = self.machine
        machine.charge_schedule(pcpu_index, elements=0)  # O(1) pick-next
        displaced = machine.pcpus[pcpu_index].running_vcpu
        if vcpu.vm.vcpu_has_work(vcpu):
            current = machine.pcpu_of(vcpu)
            if current is not None and current != pcpu_index:
                # The owner was borrowing slack elsewhere; bring it home.
                machine.set_running(current, None)
                self._backfill(current)
            if machine.pcpu_of(vcpu) is None:
                machine.set_running(pcpu_index, vcpu)
        else:
            self._donate(pcpu_index, exclude=vcpu)
        # An RT borrower bumped off this PCPU looks for slack elsewhere.
        if (
            displaced is not None
            and displaced is not vcpu
            and displaced.uid in self._active
            and machine.pcpu_of(displaced) is None
            and displaced.vm.vcpu_has_work(displaced)
        ):
            self.on_vcpu_wake(displaced)

    def _start_tail(self, pcpu_index: int) -> None:
        """Unreserved time at the end of a PCPU's slice begins."""
        self._owner[pcpu_index] = (None, self._slice_end)
        self._donate(pcpu_index, exclude=None)

    # -- donation / work conservation --------------------------------------------------------

    def _waiting_rt_vcpu(
        self, exclude: Optional[VCPU], pcpu_index: Optional[int] = None
    ) -> Optional[VCPU]:
        """The earliest-deadline RT VCPU with work that is not running.

        Affine VCPUs are only eligible for their pinned PCPU.
        """
        now = self.engine.now
        best = None
        best_key = None
        # Read the machine's placement map in place (no copy): this scan
        # runs on every donation decision and only tests membership.
        locations = self.machine._vcpu_pcpu
        affinity = self._affinity
        shared_memory = self.shared_memory
        for vcpu in self._active_sorted():
            uid = vcpu.uid
            if vcpu is exclude or uid in locations:
                continue
            if affinity:
                pinned = affinity.get(uid)
                if (
                    pinned is not None
                    and pcpu_index is not None
                    and pinned != pcpu_index
                ):
                    continue
            if not vcpu.vm.vcpu_has_work(vcpu):
                continue
            deadline = shared_memory.read(vcpu, now)
            key = (deadline if deadline is not None else 2**63, uid)
            if best_key is None or key < best_key:
                best = vcpu
                best_key = key
        return best

    def _donate(self, pcpu_index: int, exclude: Optional[VCPU]) -> None:
        """Hand *pcpu_index* to a waiting RT VCPU, else to background.

        An RT occupant that is still working keeps the PCPU: donated or
        unreserved time serves time-sensitive work before background VMs
        (paper §3.4 — RT requirements are satisfied first, the remainder
        goes to the guests' non-time-sensitive processes).
        """
        occupant = self.machine.pcpus[pcpu_index].running_vcpu
        if (
            occupant is not None
            and occupant is not exclude
            and occupant.uid in self._active
            and occupant.vm.vcpu_has_work(occupant)
        ):
            return
        loaner = self._waiting_rt_vcpu(exclude, pcpu_index)
        if loaner is not None:
            self.machine.set_running(pcpu_index, loaner)
            return
        self.fill_with_background(pcpu_index)

    def _backfill(self, pcpu_index: int) -> None:
        """Re-populate a PCPU vacated mid-piece (owner pulled home)."""
        owner, end = self._owner.get(pcpu_index, (None, self._slice_end))
        if owner is not None and self.engine.now < end:
            if (
                owner.vm.vcpu_has_work(owner)
                and self.machine.pcpu_of(owner) is None
            ):
                self.machine.set_running(pcpu_index, owner)
                return
        self._donate(pcpu_index, exclude=owner)

    # -- notifications ----------------------------------------------------------------------------

    def on_vcpu_wake(self, vcpu: VCPU) -> None:
        machine = self.machine
        if machine.pcpu_of(vcpu) is not None:
            return  # already running somewhere
        now = self.engine.now
        is_rt = vcpu.uid in self._active
        if is_rt:
            # A release that creates a boundary before the planned slice
            # end (a late first release, or a sporadic arrival whose
            # deadline precedes another VCPU's) forces a re-partition so
            # the slice aligns with it.  Only a *future* deadline is a
            # boundary: a tardy VCPU publishes its oldest pending (past)
            # deadline, which no slice end can align with — repartitioning
            # on it would churn the plan on every wake for as long as the
            # backlog persists (each re-laid piece displaces a borrower,
            # whose wake repartitions again), with the overhead of each
            # switch consuming the very capacity the backlog needs.
            published = self.shared_memory.read(vcpu, now)
            if (
                self.repartition_on_wake
                and published is not None
                and now < published < self._slice_end
            ):
                self._new_slice()
            # Reclaim the VCPU's own active reservation piece, if any.
            for pcpu_index, (owner, end) in self._owner.items():
                if owner is vcpu and now < end:
                    machine.set_running(pcpu_index, vcpu)
                    return
        # Borrow slack: a PCPU whose current time is donated or unreserved.
        # RT wakers may preempt background occupants; background wakers
        # only take idle PCPUs.  Affine VCPUs borrow only on their pin.
        pinned = self._affinity.get(vcpu.uid)
        for pcpu_index, (owner, end) in sorted(self._owner.items()):
            if pinned is not None and pcpu_index != pinned:
                continue
            if now >= end:
                continue
            occupant = machine.pcpus[pcpu_index].running_vcpu
            if occupant is None:
                machine.set_running(pcpu_index, vcpu)
                return
            occupant_is_rt = occupant.uid in self._active
            if occupant_is_rt or not is_rt:
                continue
            machine.set_running(pcpu_index, vcpu)
            return
        if is_rt and self.repartition_on_wake and vcpu.vm.vcpu_has_work(vcpu):
            # If the VCPU still has a reservation piece coming in the
            # current plan, its supply is already on the way: wait for it
            # (repartitioning here would churn everyone else's pieces).
            upcoming = any(
                uid == vcpu.uid and end > now
                for _, end, uid in self._piece_plan
            )
            if upcoming:
                return
            # Otherwise the piece already passed — donated while the VCPU
            # idled — and there is no slack to borrow.  For VCPUs hosting
            # sporadic RTAs (whose arrivals the plan cannot anticipate),
            # redeem the reservation slept through: the positive balance
            # between allocation laid out and CPU actually received,
            # capped at one VCPU budget (the sporadic-server budget
            # preservation DP-Fair prescribes), returns to the carry, and
            # a re-partition aligns supply with the arrival — "allocating
            # CPU bandwidth to the VM when the tasks actually need it"
            # (§3.3).  Periodic-only VCPUs never redeem: their releases
            # coincide with slice boundaries, so the next plan already
            # serves them exactly.  The re-partition is deferred to the
            # end of the current instant so a batch of simultaneous
            # releases is planned exactly once.
            if not any(
                t.kind is TaskKind.SPORADIC for t in vcpu.rt_tasks()
            ):
                return
            self.machine.sync_all()  # bring `received` up to date
            bank = self._laid.get(vcpu.uid, 0) - self._received.get(vcpu.uid, 0)
            bank = max(0, min(bank, vcpu.budget_ns))
            if bank > 0:
                self._carry_add(vcpu.uid, bank)
                self._laid[vcpu.uid] = self._laid.get(vcpu.uid, 0) - bank
                self._request_repartition()

    def _request_repartition(self) -> None:
        """Schedule one re-partition at the end of the current instant."""
        now = self.engine.now
        # One repartition per instant: suppress when one is pending at
        # `now` *or already ran* at `now` (a consumed event still counts —
        # re-running the partition step would double-charge schedule()).
        if (
            self._reslice_event is not None
            and not self._reslice_event.cancelled
            and self._reslice_event.time == now
        ):
            return
        self._reslice_event = self.engine.at(
            now,
            self._new_slice,
            priority=PRIORITY_SCHEDULE + 5,
            name="repartition",
        )

    def on_vcpu_idle(self, vcpu: VCPU, pcpu_index: int) -> None:
        owner, end = self._owner.get(pcpu_index, (None, self._slice_end))
        if (
            owner is not None
            and owner is not vcpu
            and self.engine.now < end
            and owner.vm.vcpu_has_work(owner)
            and self.machine.pcpu_of(owner) is None
        ):
            self.machine.set_running(pcpu_index, owner)
            return
        self._donate(pcpu_index, exclude=vcpu)

    # -- fault hooks --------------------------------------------------------------------------------

    def on_pcpu_failed(self, pcpu_index: int, victim: Optional[VCPU]) -> None:
        """Re-partition over the surviving PCPUs (forced migration).

        The mid-slice refund in :meth:`_new_slice` returns the victim's
        (and everyone's) unexecuted entitlement to their carries, and the
        fresh wrap lays it back out over the online PCPUs only — the
        victim's reservation migrates in the same instant.
        """
        if self._started:
            self._new_slice()
        if victim is not None and victim.vm.vcpu_has_work(victim):
            self.on_vcpu_wake(victim)

    def on_pcpu_recovered(self, pcpu_index: int) -> None:
        if self._started:
            self._new_slice()

    # -- lifecycle ----------------------------------------------------------------------------------

    def start(self) -> None:
        self._started = True
        self._new_slice()
