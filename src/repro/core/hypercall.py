"""The ``sched_rtvirt()`` hypercall — the host side of the cross-layer port.

Guest schedulers call this channel when RTAs register, change their
requirements, or unregister (paper §3.2).  The host charges the
hypercall cost (~10 µs measured in the prototype), runs admission
control over the batch, and on success installs the new VCPU parameters
and informs the DP-WRAP scheduler, which re-partitions.
"""

from __future__ import annotations

from typing import List

from ..guest.port import CrossLayerPort, ParamUpdate
from ..guest.vcpu import VCPU
from ..host.machine import Machine
from .admission import UtilizationAdmission
from .flags import SchedRTVirtFlag
from .shared_memory import SharedMemoryPage


class RTVirtHypercall(CrossLayerPort):
    """Concrete cross-layer port backed by the RTVirt host scheduler."""

    def __init__(
        self,
        machine: Machine,
        scheduler,
        admission: UtilizationAdmission,
        shared_memory: SharedMemoryPage,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.admission = admission
        self.shared_memory = shared_memory
        #: (flag, granted) log for diagnostics and tests.
        self.log: List[tuple] = []

    def _charge(self) -> None:
        self.machine.charge_hypercall(pcpu_index=0)

    def request_increase(self, updates: List[ParamUpdate]) -> bool:
        """INC_BW / INC_DEC_BW: atomic admission over the batch."""
        flag = (
            SchedRTVirtFlag.INC_BW if len(updates) == 1 else SchedRTVirtFlag.INC_DEC_BW
        )
        self._charge()
        if not self.admission.try_commit(updates):
            self.log.append((flag, False))
            return False
        for vcpu, budget_ns, period_ns in updates:
            vcpu.set_params(budget_ns, period_ns)
            self.scheduler.update_vcpu(vcpu)
        self.log.append((flag, True))
        return True

    def notify_decrease(self, updates: List[ParamUpdate]) -> None:
        """DEC_BW: apply reduced requirements; never rejected."""
        self._charge()
        self.admission.commit_decrease(updates)
        for vcpu, budget_ns, period_ns in updates:
            vcpu.set_params(budget_ns, period_ns)
            self.scheduler.update_vcpu(vcpu)
        self.log.append((SchedRTVirtFlag.DEC_BW, True))

    def vcpu_added(self, vcpu: VCPU) -> None:
        """CPU hotplug: the new VCPU becomes visible to the host.

        It carries no bandwidth yet; the INC_BW that follows placement
        installs its parameters.
        """
        self.shared_memory.map_vcpu(vcpu)
