"""The ``sched_rtvirt()`` hypercall — the host side of the cross-layer port.

Guest schedulers call this channel when RTAs register, change their
requirements, or unregister (paper §3.2).  The host charges the
hypercall cost (~10 µs measured in the prototype), runs admission
control over the batch, and on success installs the new VCPU parameters
and informs the DP-WRAP scheduler, which re-partitions.
"""

from __future__ import annotations

from typing import List

from ..control.actions import AdmitDecrease, AdmitRequest
from ..guest.port import CrossLayerPort, ParamUpdate
from ..guest.vcpu import VCPU
from ..host.machine import Machine
from ..telemetry import events as T
from .admission import UtilizationAdmission
from .flags import SchedRTVirtFlag
from .shared_memory import SharedMemoryPage


class RTVirtHypercall(CrossLayerPort):
    """Concrete cross-layer port backed by the RTVirt host scheduler."""

    def __init__(
        self,
        machine: Machine,
        scheduler,
        admission: UtilizationAdmission,
        shared_memory: SharedMemoryPage,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.admission = admission
        self.shared_memory = shared_memory
        #: (flag, granted) log for diagnostics and tests.
        self.log: List[tuple] = []
        #: Fault-injection windows.  While ``now < _drop_until`` every
        #: hypercall is lost (the guest sees a rejection, the host state
        #: never changes); while ``now < _delay_until`` the host-side
        #: effect of a granted call lands ``_delay_ns`` late.
        self._drop_until = -1
        self._delay_until = -1
        self._delay_ns = 0
        #: Dropped/delayed call counters (diagnostics).
        self.dropped = 0
        self.delayed = 0

    def inject_drop(self, until_ns: int) -> None:
        """Drop every hypercall until absolute time *until_ns*."""
        self._drop_until = until_ns

    def inject_delay(self, until_ns: int, delay_ns: int) -> None:
        """Delay the host-side effect of hypercalls by *delay_ns* until
        absolute time *until_ns*."""
        self._delay_until = until_ns
        self._delay_ns = max(0, delay_ns)

    def _charge(self) -> None:
        self.machine.charge_hypercall(pcpu_index=0)

    def _admit_increase(self, updates: List[ParamUpdate]) -> bool:
        """Run host admission through the actuation port when wired.

        Standalone ports (unit tests build them without a system) fall
        back to the direct call — same mechanism, no observer tap.
        """
        control = self.machine.control
        if control is not None and control.executes(AdmitRequest.kind):
            return control.submit(AdmitRequest(self.admission, tuple(updates)))
        return self.admission.try_commit(updates)

    def _admit_decrease(self, updates: List[ParamUpdate]) -> None:
        control = self.machine.control
        if control is not None and control.executes(AdmitDecrease.kind):
            control.submit(AdmitDecrease(self.admission, tuple(updates)))
            return
        self.admission.commit_decrease(updates)

    def _emit(
        self, updates: List[ParamUpdate], outcome: str, flag: SchedRTVirtFlag
    ) -> None:
        """Publish one :class:`HypercallEvent` per affected VCPU.

        Hypercalls are rare (registration/mode changes), so the direct
        ``has_subscribers`` test is cheap enough without a cached flag.
        """
        bus = self.machine.bus
        if not bus.has_subscribers(T.HYPERCALL):
            return
        now = self.machine.engine.now
        for vcpu, budget_ns, period_ns in updates:
            bus.publish(
                T.HYPERCALL,
                T.HypercallEvent(
                    now, vcpu.name, flag.name.lower(), outcome,
                    flag.value, budget_ns, period_ns,
                ),
            )

    def _apply(self, updates: List[ParamUpdate]) -> None:
        """Install new VCPU parameters host-side (possibly deferred)."""
        for vcpu, budget_ns, period_ns in updates:
            vcpu.set_params(budget_ns, period_ns)
            self.scheduler.update_vcpu(vcpu)

    def _apply_late(self, updates: List[ParamUpdate], flag: SchedRTVirtFlag) -> None:
        """A deferred application landing: install, then mark the event
        stream so span consumers can see *when* the parameters finally
        took effect (the ``delayed`` event marks when they should have)."""
        self._apply(updates)
        self._emit(updates, "applied_late", flag)

    def _deliver(self, updates: List[ParamUpdate], flag: SchedRTVirtFlag) -> bool:
        """Apply now, or schedule the delayed application.  Returns True
        when the effect was deferred."""
        now = self.machine.engine.now
        if now < self._delay_until and self._delay_ns > 0:
            self.delayed += 1
            self.machine.engine.after(
                self._delay_ns, self._apply_late, updates, flag,
                name="hypercall-delayed",
            )
            return True
        self._apply(updates)
        return False

    def request_increase(self, updates: List[ParamUpdate]) -> bool:
        """INC_BW / INC_DEC_BW: atomic admission over the batch."""
        flag = (
            SchedRTVirtFlag.INC_BW if len(updates) == 1 else SchedRTVirtFlag.INC_DEC_BW
        )
        self._charge()
        if self.machine.engine.now < self._drop_until:
            # The call is lost in transit: the guest observes a failure,
            # the host commits nothing.
            self.dropped += 1
            self.log.append((flag, False))
            self._emit(updates, "dropped", flag)
            return False
        if not self._admit_increase(updates):
            self.log.append((flag, False))
            self._emit(updates, "rejected", flag)
            return False
        deferred = self._deliver(updates, flag)
        self.log.append((flag, True))
        self._emit(updates, "delayed" if deferred else "granted", flag)
        return True

    def notify_decrease(self, updates: List[ParamUpdate]) -> None:
        """DEC_BW: apply reduced requirements; never rejected."""
        self._charge()
        if self.machine.engine.now < self._drop_until:
            # Lost notification: the host keeps the old (larger) grant.
            self.dropped += 1
            self.log.append((SchedRTVirtFlag.DEC_BW, False))
            self._emit(updates, "dropped", SchedRTVirtFlag.DEC_BW)
            return
        self._admit_decrease(updates)
        deferred = self._deliver(updates, SchedRTVirtFlag.DEC_BW)
        self.log.append((SchedRTVirtFlag.DEC_BW, True))
        self._emit(
            updates, "delayed" if deferred else "applied", SchedRTVirtFlag.DEC_BW
        )

    def vcpu_added(self, vcpu: VCPU) -> None:
        """CPU hotplug: the new VCPU becomes visible to the host.

        It carries no bandwidth yet; the INC_BW that follows placement
        installs its parameters.
        """
        self.shared_memory.map_vcpu(vcpu)
        bus = self.machine.bus
        if bus.has_subscribers(T.HYPERCALL):
            bus.publish(
                T.HYPERCALL,
                T.HypercallEvent(
                    self.machine.engine.now, vcpu.name, "attach", "granted", 0, 0, 0
                ),
            )
