"""RTVirt — the paper's primary contribution.

Cross-layer scheduling: guest pEDF + host DP-WRAP, connected by the
``sched_rtvirt()`` hypercall and a shared-memory deadline page.
"""

from .admission import UtilizationAdmission
from .dpwrap import DPWrapScheduler
from .flags import SchedRTVirtFlag
from .hypercall import RTVirtHypercall
from .shared_memory import SharedMemoryPage
from .system import DEFAULT_MIN_GLOBAL_SLICE_NS, DEFAULT_SLACK_NS, RTVirtSystem

__all__ = [
    "RTVirtSystem",
    "DPWrapScheduler",
    "RTVirtHypercall",
    "SharedMemoryPage",
    "UtilizationAdmission",
    "SchedRTVirtFlag",
    "DEFAULT_SLACK_NS",
    "DEFAULT_MIN_GLOBAL_SLICE_NS",
]
