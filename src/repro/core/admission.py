"""Host-level admission control (paper §3.1/§3.3).

DP-WRAP is optimal: any VCPU set whose total bandwidth does not exceed
the processors' capacity is schedulable.  Host admission is therefore a
pure utilization test over the *requested* (budget/period) bandwidths —
no pessimistic compositional analysis, which is precisely where RTVirt's
bandwidth efficiency in Figure 3 comes from.

A share of the machine can be set aside for non-time-sensitive work
(paper §3.4's starvation avoidance); admission then tests against the
remaining capacity.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..guest.vcpu import VCPU
from ..simcore.errors import ConfigurationError
from ..telemetry import events as T
from ..telemetry.bus import TelemetryBus


class UtilizationAdmission:
    """Exact utilization-based admission over VCPU bandwidth requests."""

    def __init__(self, pcpu_count: int, background_reserve: Fraction = Fraction(0)) -> None:
        if pcpu_count < 1:
            raise ConfigurationError("need at least one PCPU")
        if not 0 <= background_reserve < pcpu_count:
            raise ConfigurationError(
                f"background reserve {background_reserve} must be in [0, {pcpu_count})"
            )
        self.pcpu_count = pcpu_count
        self.background_reserve = Fraction(background_reserve)
        self._granted: Dict[int, Fraction] = {}  # vcpu uid -> bandwidth
        self._names: Dict[int, str] = {}  # vcpu uid -> last-known name
        self._owners: Dict[int, str] = {}  # vcpu uid -> owning VM name
        self._bus: Optional[TelemetryBus] = None
        self._clock: Optional[Callable[[], int]] = None
        #: Optional VM-name -> tenant-name resolver (the tenant layer
        #: binds one); emitted events then carry the tenant directly.
        self._tenant_of: Optional[Callable[[str], str]] = None
        #: Optional shed-order policy: ``fn(uids, owners) -> uids``.
        #: ``None`` keeps the historical newest-VCPU-first order
        #: byte-identical.
        self._shed_order: Optional[
            Callable[[List[int], Dict[int, str]], List[int]]
        ] = None

    # -- telemetry ---------------------------------------------------------------

    def bind_telemetry(self, bus: TelemetryBus, clock: Callable[[], int]) -> None:
        """Publish :data:`~repro.telemetry.events.ADMISSION_DECISION`
        events on *bus*, timestamped by the 0-ary *clock* (the admission
        test itself is pure and holds no engine reference)."""
        self._bus = bus
        self._clock = clock

    def bind_tenants(self, tenant_of: Callable[[str], str]) -> None:
        """Resolve VM names to tenants in emitted decisions (0-cost when
        unbound; the resolver must be pure and deterministic)."""
        self._tenant_of = tenant_of

    def set_shed_policy(
        self,
        order: Optional[Callable[[List[int], Dict[int, str]], List[int]]],
    ) -> None:
        """Install a shed-order policy (``None`` restores newest-first).

        The policy receives the candidate uids (newest first) and a
        uid -> VM-name owner map, and returns the uids in revocation
        order; the credit-ranked policy in
        :mod:`repro.control.tenants` sheds the cheapest tenants first.
        """
        self._shed_order = order

    def owner(self, uid: int) -> str:
        """Owning VM name of a granted uid ("" when never learned)."""
        return self._owners.get(uid, "")

    def _emit(self, op: str, subject: str, granted: bool, detail: str, vm: str = "") -> None:
        bus = self._bus
        if bus is None or not bus.has_subscribers(T.ADMISSION_DECISION):
            return
        tenant = self._tenant_of(vm) if (self._tenant_of is not None and vm) else ""
        bus.publish(
            T.ADMISSION_DECISION,
            T.AdmissionDecisionEvent(
                self._clock(), "host", op, subject, granted, detail, vm, tenant
            ),
        )

    @staticmethod
    def _vm_name(vcpu: VCPU) -> str:
        vm = getattr(vcpu, "vm", None)
        return vm.name if vm is not None else ""

    @property
    def capacity(self) -> Fraction:
        """Bandwidth available to RT VCPUs, in CPUs."""
        return max(Fraction(self.pcpu_count) - self.background_reserve, Fraction(0))

    @property
    def total_granted(self) -> Fraction:
        """Currently admitted RT bandwidth, in CPUs."""
        return sum(self._granted.values(), Fraction(0))

    @property
    def remaining(self) -> Fraction:
        return self.capacity - self.total_granted

    def granted(self, vcpu: VCPU) -> Fraction:
        """Bandwidth currently held by *vcpu* (0 when unknown)."""
        return self._granted.get(vcpu.uid, Fraction(0))

    def try_commit(self, updates: Iterable[Tuple[VCPU, int, int]]) -> bool:
        """Atomically test-and-commit a batch of (vcpu, budget, period).

        Each VCPU's bandwidth must fit in one CPU and the new total must
        fit in the capacity.  On success the grants are recorded and True
        is returned; on failure nothing changes.
        """
        updates = list(updates)
        ok, reason = self._test_and_commit(updates)
        for vcpu, budget_ns, period_ns in updates:
            if ok:
                self._names[vcpu.uid] = vcpu.name
                self._owners[vcpu.uid] = self._vm_name(vcpu)
            self._emit(
                "commit",
                vcpu.name,
                ok,
                reason or f"{budget_ns}/{period_ns}",
                vm=self._vm_name(vcpu),
            )
        return ok

    def _test_and_commit(
        self, updates: List[Tuple[VCPU, int, int]]
    ) -> Tuple[bool, str]:
        """The atomic test; returns (ok, rejection-reason)."""
        new_grants: Dict[int, Fraction] = {}
        for vcpu, budget_ns, period_ns in updates:
            if period_ns <= 0 or budget_ns < 0:
                return False, "invalid-params"
            bw = Fraction(budget_ns, period_ns)
            if bw > 1:
                return False, "exceeds-one-pcpu"
            new_grants[vcpu.uid] = bw
        total = self.total_granted
        for uid, bw in new_grants.items():
            total += bw - self._granted.get(uid, Fraction(0))
        if total > self.capacity:
            return False, "over-capacity"
        self._granted.update(new_grants)
        return True, ""

    def commit_decrease(self, updates: Iterable[Tuple[VCPU, int, int]]) -> None:
        """Apply DEC_BW updates (never rejected)."""
        for vcpu, budget_ns, period_ns in updates:
            if period_ns <= 0:
                raise ConfigurationError(f"{vcpu.name}: invalid period {period_ns}")
            self._granted[vcpu.uid] = Fraction(budget_ns, period_ns)
            self._names[vcpu.uid] = vcpu.name
            self._owners[vcpu.uid] = self._vm_name(vcpu)
            self._emit(
                "decrease",
                vcpu.name,
                True,
                f"{budget_ns}/{period_ns}",
                vm=self._vm_name(vcpu),
            )

    def release(self, vcpu: VCPU) -> None:
        """Forget *vcpu* entirely (VM teardown)."""
        if self._granted.pop(vcpu.uid, None) is not None:
            self._emit("release", vcpu.name, True, "", vm=self._vm_name(vcpu))
        self._names.pop(vcpu.uid, None)
        self._owners.pop(vcpu.uid, None)

    # -- fault injection ---------------------------------------------------------

    def set_pcpu_count(self, pcpu_count: int) -> None:
        """Adjust capacity to a changed online-PCPU count (PCPU fail or
        recovery).  Existing grants are untouched; call
        :meth:`shed_to_capacity` to resolve any resulting overload.
        A count of zero (every PCPU failed — e.g. a whole-host fault in
        a cluster run) is legal: capacity clamps to zero and a shed
        sweep revokes every grant."""
        if pcpu_count < 0:
            raise ConfigurationError("negative PCPU count")
        if pcpu_count and not self.background_reserve < pcpu_count:
            raise ConfigurationError(
                f"background reserve {self.background_reserve} does not fit "
                f"in {pcpu_count} PCPUs"
            )
        self.pcpu_count = pcpu_count

    def shed_to_capacity(self) -> List[int]:
        """Revoke grants (newest VCPU first) until the total fits capacity.

        Returns the revoked uids in revocation order.  The newest-first
        policy is deterministic and mirrors a hypervisor preferring to
        keep its longest-standing contracts.
        """
        revoked: List[int] = []
        total = self.total_granted
        capacity = self.capacity
        order = sorted(self._granted, reverse=True)
        if self._shed_order is not None:
            order = self._shed_order(order, dict(self._owners))
        for uid in order:
            if total <= capacity:
                break
            bw = self._granted[uid]
            if bw <= 0:
                continue
            self._granted[uid] = Fraction(0)
            total -= bw
            revoked.append(uid)
            # The revoked bandwidth rides in the detail so blame/debug
            # consumers can see how much was taken without a grant table.
            self._emit(
                "shed",
                self._names.get(uid, str(uid)),
                False,
                f"revoked {bw}",
                vm=self._owners.get(uid, ""),
            )
        return revoked
