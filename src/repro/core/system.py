"""The RTVirt system facade — the package's primary public API.

Wires together the machine model, the DP-WRAP host scheduler, the
utilization admission controller, the shared-memory page and the
hypercall ports, so an experiment reads like the paper's setup:

    system = RTVirtSystem(pcpu_count=4)
    vm = system.create_vm("vm1")
    task = sched_setattr(vm, "rta1", runtime_ns=msec(5), period_ns=msec(20))
    PeriodicDriver(system.engine, vm, task).start()
    system.run(sec(10))
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..guest.vm import VM
from ..host.base_system import BaseSystem
from ..host.costs import DEFAULT_COSTS, CostModel
from ..simcore.engine import Engine
from ..simcore.time import MSEC, USEC
from ..simcore.trace import Trace
from .admission import UtilizationAdmission
from .dpwrap import DPWrapScheduler
from .hypercall import RTVirtHypercall
from .shared_memory import SharedMemoryPage

#: The slack the paper adds to every VCPU's budget (§4.1).
DEFAULT_SLACK_NS = 500 * USEC
#: The paper's lower bound on the global slice (§4.1).
DEFAULT_MIN_GLOBAL_SLICE_NS = 250 * USEC


class RTVirtSystem(BaseSystem):
    """A complete RTVirt host: machine + DP-WRAP + cross-layer interface."""

    def __init__(
        self,
        pcpu_count: int,
        engine: Optional[Engine] = None,
        cost_model: CostModel = DEFAULT_COSTS,
        slack_ns: int = DEFAULT_SLACK_NS,
        min_global_slice_ns: int = DEFAULT_MIN_GLOBAL_SLICE_NS,
        idle_slice_ns: int = 10 * MSEC,
        background_reserve: Fraction = Fraction(0),
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(pcpu_count, engine, cost_model, trace)
        self.shared_memory = SharedMemoryPage()
        self.scheduler = DPWrapScheduler(
            self.shared_memory,
            min_global_slice_ns=min_global_slice_ns,
            idle_slice_ns=idle_slice_ns,
        )
        self.machine.set_host_scheduler(self.scheduler)
        self.admission = UtilizationAdmission(pcpu_count, background_reserve)
        self.default_slack_ns = slack_ns

    # -- VM management -------------------------------------------------------------

    def create_vm(
        self,
        name: str,
        vcpu_count: int = 1,
        scheduler: str = "pedf",
        slack_ns: Optional[int] = None,
        max_vcpus: Optional[int] = None,
    ) -> VM:
        """Create an RTA-hosting VM wired to the cross-layer interface."""
        vm = VM(
            name,
            vcpu_count=vcpu_count,
            scheduler=scheduler,
            slack_ns=self.default_slack_ns if slack_ns is None else slack_ns,
            max_vcpus=max_vcpus,
        )
        vm.set_port(
            RTVirtHypercall(self.machine, self.scheduler, self.admission, self.shared_memory)
        )
        return self._attach(vm)

    def create_background_vm(self, name: str, processes: int = 1) -> VM:
        """Create a VM running CPU-bound non-RTA processes.

        Its VCPU receives only leftover bandwidth (paper §3.4).
        """
        vm = VM(name, vcpu_count=1, slack_ns=0)
        self._attach(vm)
        for _ in range(processes):
            vm.add_background_process()
        self.scheduler.add_background_vcpu(vm.vcpus[0])
        return vm

    # -- reporting ---------------------------------------------------------------------

    @property
    def total_rt_bandwidth(self) -> Fraction:
        """Currently admitted RT bandwidth in CPUs."""
        return self.admission.total_granted
