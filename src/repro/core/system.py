"""The RTVirt system facade — the package's primary public API.

Wires together the machine model, the DP-WRAP host scheduler, the
utilization admission controller, the shared-memory page and the
hypercall ports, so an experiment reads like the paper's setup:

    system = RTVirtSystem(pcpu_count=4)
    vm = system.create_vm("vm1")
    task = sched_setattr(vm, "rta1", runtime_ns=msec(5), period_ns=msec(20))
    PeriodicDriver(system.engine, vm, task).start()
    system.run(sec(10))
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from ..control import actions as A
from ..guest.vm import VM
from ..host.base_system import BaseSystem
from ..host.costs import DEFAULT_COSTS, CostModel
from ..simcore.engine import Engine
from ..simcore.time import MSEC, USEC
from ..simcore.trace import Trace
from .admission import UtilizationAdmission
from .dpwrap import DPWrapScheduler
from .hypercall import RTVirtHypercall
from .shared_memory import SharedMemoryPage

#: The slack the paper adds to every VCPU's budget (§4.1).
DEFAULT_SLACK_NS = 500 * USEC
#: The paper's lower bound on the global slice (§4.1).
DEFAULT_MIN_GLOBAL_SLICE_NS = 250 * USEC


class RTVirtSystem(BaseSystem):
    """A complete RTVirt host: machine + DP-WRAP + cross-layer interface."""

    def __init__(
        self,
        pcpu_count: int,
        engine: Optional[Engine] = None,
        cost_model: CostModel = DEFAULT_COSTS,
        slack_ns: int = DEFAULT_SLACK_NS,
        min_global_slice_ns: int = DEFAULT_MIN_GLOBAL_SLICE_NS,
        idle_slice_ns: int = 10 * MSEC,
        background_reserve: Fraction = Fraction(0),
        trace: Optional[Trace] = None,
    ) -> None:
        super().__init__(pcpu_count, engine, cost_model, trace)
        self.shared_memory = SharedMemoryPage()
        self.scheduler = DPWrapScheduler(
            self.shared_memory,
            min_global_slice_ns=min_global_slice_ns,
            idle_slice_ns=idle_slice_ns,
        )
        self.machine.set_host_scheduler(self.scheduler)
        self.admission = UtilizationAdmission(pcpu_count, background_reserve)
        self.admission.bind_telemetry(self.machine.bus, lambda: self.engine.now)
        # Host-admission mechanisms behind the actuation port: the
        # hypercall path and the fault/teardown paths all submit these.
        self.control.register(
            A.AdmitRequest.kind, lambda a: a.admission.try_commit(a.updates)
        )
        self.control.register(
            A.AdmitDecrease.kind,
            lambda a: a.admission.commit_decrease(a.updates),
        )
        self.control.register(
            A.AdmitRelease.kind, lambda a: a.admission.release(a.vcpu)
        )
        self.control.register(
            A.ShedToCapacity.kind, lambda a: a.admission.shed_to_capacity()
        )
        self.default_slack_ns = slack_ns
        #: Bandwidth shed by a PCPU failure, awaiting re-admission:
        #: (vcpu, budget_ns, period_ns) in displacement order.
        self._displaced = []

    # -- VM management -------------------------------------------------------------

    def create_vm(
        self,
        name: str,
        vcpu_count: int = 1,
        scheduler: str = "pedf",
        slack_ns: Optional[int] = None,
        max_vcpus: Optional[int] = None,
    ) -> VM:
        """Create an RTA-hosting VM wired to the cross-layer interface."""
        vm = VM(
            name,
            vcpu_count=vcpu_count,
            scheduler=scheduler,
            slack_ns=self.default_slack_ns if slack_ns is None else slack_ns,
            max_vcpus=max_vcpus,
        )
        vm.set_port(
            RTVirtHypercall(self.machine, self.scheduler, self.admission, self.shared_memory)
        )
        return self._attach(vm)

    def create_background_vm(self, name: str, processes: int = 1) -> VM:
        """Create a VM running CPU-bound non-RTA processes.

        Its VCPU receives only leftover bandwidth (paper §3.4).
        """
        vm = VM(name, vcpu_count=1, slack_ns=0)
        self._attach(vm)
        for _ in range(processes):
            vm.add_background_process()
        self.scheduler.add_background_vcpu(vm.vcpus[0])
        return vm

    def shutdown_vm(self, vm: VM) -> None:
        super().shutdown_vm(vm)
        for vcpu in vm.vcpus:
            self.control.submit(A.AdmitRelease(admission=self.admission, vcpu=vcpu))
            self.shared_memory.unmap_vcpu(vcpu)

    # -- live migration hooks ------------------------------------------------------

    def extract_vm(self, vm: VM) -> None:
        """Pause for stop-and-copy and shed the VM's bandwidth grants.

        The VCPUs keep their (budget, period) parameters — they describe
        the reservation the VM will ask of its destination — but this
        host's admission controller releases the grants immediately, so
        the freed bandwidth is usable by the remaining VMs for the rest
        of the migration.
        """
        super().extract_vm(vm)
        for vcpu in vm.vcpus:
            self.control.submit(A.AdmitRelease(admission=self.admission, vcpu=vcpu))

    def _enter_host_scheduler(self, vm: VM) -> None:
        """Re-admit a migrated-in VM through this host's controller.

        The VM's reservations are re-admitted atomically; when the
        destination cannot honour them wholesale the budgets are zeroed
        and queued on the displaced list, exactly like a capacity loss
        from a PCPU failure — the VM runs degraded until
        :meth:`recover_pcpu`-style headroom returns (or forever).
        """
        vm.set_port(
            RTVirtHypercall(self.machine, self.scheduler, self.admission, self.shared_memory)
        )
        updates = [
            (v, v.budget_ns, v.period_ns)
            for v in vm.vcpus
            if v.budget_ns > 0 and v.period_ns > 0
        ]
        if updates and not self.admission.try_commit(updates):
            for vcpu, budget_ns, period_ns in updates:
                self._displaced.append((vcpu, budget_ns, period_ns))
                vcpu.set_params(0, period_ns)
            return
        for vcpu, _, _ in updates:
            self.scheduler.add_vcpu(vcpu)

    # -- fault entry points -------------------------------------------------------

    def _do_fail_pcpu(self, pcpu_index: int) -> None:
        """Take a PCPU offline and re-negotiate admitted bandwidth.

        Capacity shrinks to the surviving PCPUs, and grants that no
        longer fit are shed newest-VCPU-first: the shed VCPU's budget is
        zeroed (it stops receiving reserved supply) and remembered for
        re-admission when capacity returns.
        """
        if self.machine.pcpus[pcpu_index].failed:
            return
        self.machine.fail_pcpu(pcpu_index)
        self.admission.set_pcpu_count(self.machine.available_count)
        by_uid = {v.uid: v for vm in self.vms for v in vm.vcpus}
        for uid in self.control.submit(A.ShedToCapacity(admission=self.admission)):
            vcpu = by_uid.get(uid)
            if vcpu is None:
                continue
            self._displaced.append((vcpu, vcpu.budget_ns, vcpu.period_ns))
            vcpu.set_params(0, vcpu.period_ns)
            self.scheduler.update_vcpu(vcpu)

    def _do_recover_pcpu(self, pcpu_index: int) -> None:
        """Bring a PCPU back and re-admit displaced bandwidth (FIFO)."""
        if not self.machine.pcpus[pcpu_index].failed:
            return
        self.machine.recover_pcpu(pcpu_index)
        self.admission.set_pcpu_count(self.machine.available_count)
        still_out = []
        for vcpu, budget_ns, period_ns in self._displaced:
            if vcpu.vm is None or vcpu.vm.machine is not self.machine:
                continue  # the VM was shut down while displaced
            if self.control.submit(
                A.AdmitRequest(
                    admission=self.admission,
                    updates=((vcpu, budget_ns, period_ns),),
                )
            ):
                vcpu.set_params(budget_ns, period_ns)
                self.scheduler.update_vcpu(vcpu)
            else:
                still_out.append((vcpu, budget_ns, period_ns))
        self._displaced = still_out

    # -- reporting ---------------------------------------------------------------------

    @property
    def total_rt_bandwidth(self) -> Fraction:
        """Currently admitted RT bandwidth in CPUs."""
        return self.admission.total_granted
