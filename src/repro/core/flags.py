"""Flags of the ``sched_rtvirt()`` hypercall (paper §3.2).

- ``INC_BW`` — a new RTA registered or an existing one needs more
  bandwidth on its current VCPU; carries one VCPU update.
- ``INC_DEC_BW`` — an RTA moved between VCPUs, so one VCPU's bandwidth
  rises while the other's falls; carries both updates atomically.
- ``DEC_BW`` — an RTA reduced its requirement or unregistered; never
  subject to admission control.
"""

from __future__ import annotations

import enum


class SchedRTVirtFlag(enum.Enum):
    """Operation selector for the sched_rtvirt() hypercall."""

    INC_BW = "INC_BW"
    INC_DEC_BW = "INC_DEC_BW"
    DEC_BW = "DEC_BW"
