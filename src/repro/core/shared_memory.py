"""The shared-memory page of the cross-layer interface (paper §3.3).

Each VCPU owns one 8-byte slot in which the guest scheduler publishes
the *next earliest deadline* among the RTAs on that VCPU.  The host's
DP-WRAP scheduler reads every slot when it computes the next global
deadline.  The paper leverages cache coherence so no synchronization is
needed; here a read simply evaluates the guest-registered provider,
which yields the same value an eager writer would have stored (the
sporadic worst-case bound is a function of the current time, so it must
be evaluated at read time either way).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..guest.vcpu import VCPU

DeadlineProvider = Callable[[int], Optional[int]]


class SharedMemoryPage:
    """Per-VCPU next-earliest-deadline slots shared between guest and host."""

    def __init__(self) -> None:
        self._slots: Dict[int, Tuple[VCPU, DeadlineProvider]] = {}
        # Slots flattened to (uid, vcpu, provider) in uid order, rebuilt
        # lazily after map/unmap: the host scans every slot once per
        # global slice, so the per-scan sorted() pass is the hot cost.
        self._sorted_slots: Optional[List[Tuple[int, VCPU, DeadlineProvider]]] = None
        self.reads = 0
        #: Fault injection: while ``now < _frozen_until`` reads return
        #: the snapshot taken at freeze time (a stale page — guest
        #: updates stop propagating to the host).
        self._frozen_until = -1
        self._frozen_values: Dict[int, Optional[int]] = {}

    def map_vcpu(self, vcpu: VCPU, provider: Optional[DeadlineProvider] = None) -> None:
        """Install a deadline slot for *vcpu*.

        The default provider is the VCPU's own
        :meth:`~repro.guest.vcpu.VCPU.next_earliest_deadline`, which is
        exactly what the modified guest scheduler publishes: the minimum
        over pending job deadlines and per-task worst-case next deadlines.
        """
        self._slots[vcpu.uid] = (vcpu, provider or vcpu.next_earliest_deadline)
        self._sorted_slots = None

    def unmap_vcpu(self, vcpu: VCPU) -> None:
        """Remove *vcpu*'s slot (VM teardown)."""
        self._slots.pop(vcpu.uid, None)
        self._sorted_slots = None

    def _entries(self) -> List[Tuple[int, VCPU, DeadlineProvider]]:
        entries = self._sorted_slots
        if entries is None:
            slots = self._slots
            entries = self._sorted_slots = [
                (uid, *slots[uid]) for uid in sorted(slots)
            ]
        return entries

    def freeze(self, now: int, until: int) -> None:
        """Stop propagating guest updates until *until* (fault injection).

        Snapshots every slot's current value; host reads serve the
        snapshot — the stale page a dropped/undelivered update leaves
        behind.  VCPUs mapped after the freeze read as unpublished.
        """
        self._frozen_values = {
            uid: provider(now) for uid, (_, provider) in sorted(self._slots.items())
        }
        self._frozen_until = until

    def thaw(self) -> None:
        """Resume live reads immediately."""
        self._frozen_until = -1
        self._frozen_values = {}

    def read(self, vcpu: VCPU, now: int) -> Optional[int]:
        """Host-side read of one VCPU's published deadline."""
        entry = self._slots.get(vcpu.uid)
        if entry is None:
            return None
        self.reads += 1
        if now < self._frozen_until:
            return self._frozen_values.get(vcpu.uid)
        return entry[1](now)

    def read_all(self, now: int) -> List[Tuple[VCPU, int]]:
        """All (vcpu, deadline) pairs with a published deadline, by uid order."""
        entries = self._entries()
        self.reads += len(entries)
        frozen = now < self._frozen_until
        out: List[Tuple[VCPU, int]] = []
        if frozen:
            frozen_values = self._frozen_values
            for uid, vcpu, _ in entries:
                deadline = frozen_values.get(uid)
                if deadline is not None:
                    out.append((vcpu, deadline))
        else:
            for _, vcpu, provider in entries:
                deadline = provider(now)
                if deadline is not None:
                    out.append((vcpu, deadline))
        return out

    def earliest(self, now: int) -> Optional[int]:
        """The minimum published deadline — the next global deadline input."""
        entries = self._entries()
        self.reads += len(entries)
        best: Optional[int] = None
        if now < self._frozen_until:
            frozen_values = self._frozen_values
            for uid, _, _ in entries:
                deadline = frozen_values.get(uid)
                if deadline is not None and (best is None or deadline < best):
                    best = deadline
        else:
            for _, _, provider in entries:
                deadline = provider(now)
                if deadline is not None and (best is None or deadline < best):
                    best = deadline
        return best

    @property
    def size_bytes(self) -> int:
        """Shared-memory footprint: 8 bytes per VCPU (paper §4.5)."""
        return 8 * len(self._slots)

    def __len__(self) -> int:
        return len(self._slots)
