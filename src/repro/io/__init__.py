"""Cross-layer I/O scheduling substrate (the paper's §7 future work)."""

from .device import BlockDevice, IORequest, IOScheduler
from .schedulers import CrossLayerEDFIOScheduler, FairShareIOScheduler, FifoIOScheduler

__all__ = [
    "BlockDevice",
    "IORequest",
    "IOScheduler",
    "FifoIOScheduler",
    "FairShareIOScheduler",
    "CrossLayerEDFIOScheduler",
]
