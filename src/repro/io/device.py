"""A shared block/network I/O device model (paper §7 future work).

*"One of our future objectives is to expand the support of cross-layer
scheduling to include I/O resources, in order to support applications
that are dependent on timely delivery of I/O resources, in addition to
CPU bandwidth."*

The device serves one request at a time (a queue-depth-1 abstraction of
a device whose internal parallelism is already folded into the service
time).  Which queued request is served next is decided by a pluggable
:class:`IOScheduler`; requests carry the issuing VM so schedulers can
implement per-VM bandwidth reservations, and optionally a deadline so
cross-layer scheduling can prioritize time-sensitive I/O.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..simcore.engine import Engine
from ..simcore.errors import ConfigurationError
from ..simcore.events import PRIORITY_DEFAULT
from ..simcore.time import USEC


@dataclass
class IORequest:
    """One I/O operation submitted to the device."""

    vm_name: str
    size_bytes: int
    submitted_at: int
    deadline: Optional[int] = None
    on_complete: Optional[Callable[["IORequest"], None]] = None
    seq: int = field(default_factory=itertools.count().__next__)
    started_at: Optional[int] = None
    completed_at: Optional[int] = None

    @property
    def latency_ns(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def met_deadline(self) -> Optional[bool]:
        if self.deadline is None or self.completed_at is None:
            return None
        return self.completed_at <= self.deadline


class IOScheduler:
    """Base: pick the next queued request to serve (FIFO by default)."""

    name = "fifo"

    def select(self, queue: List[IORequest], now: int) -> IORequest:
        if not queue:
            raise ConfigurationError("select() on an empty queue")
        return queue[0]

    def account(self, request: IORequest, service_ns: int) -> None:
        """Called when a request finishes service."""


class BlockDevice:
    """A device with fixed per-byte throughput plus per-request overhead."""

    def __init__(
        self,
        engine: Engine,
        name: str = "vda",
        bytes_per_second: int = 200 * 1024 * 1024,
        fixed_overhead_ns: int = 50 * USEC,
        scheduler: Optional[IOScheduler] = None,
    ) -> None:
        if bytes_per_second <= 0:
            raise ConfigurationError("throughput must be positive")
        if fixed_overhead_ns < 0:
            raise ConfigurationError("overhead must be non-negative")
        self.engine = engine
        self.name = name
        self.bytes_per_second = bytes_per_second
        self.fixed_overhead_ns = fixed_overhead_ns
        self.scheduler = scheduler if scheduler is not None else IOScheduler()
        self.queue: List[IORequest] = []
        self.in_flight: Optional[IORequest] = None
        self.completed: List[IORequest] = []

    def service_time(self, request: IORequest) -> int:
        """Time the device needs for *request*, ns."""
        transfer = request.size_bytes * 1_000_000_000 // self.bytes_per_second
        return self.fixed_overhead_ns + transfer

    def submit(
        self,
        vm_name: str,
        size_bytes: int,
        deadline: Optional[int] = None,
        on_complete: Optional[Callable[[IORequest], None]] = None,
    ) -> IORequest:
        """Queue an I/O request; returns it for inspection."""
        if size_bytes <= 0:
            raise ConfigurationError("request size must be positive")
        request = IORequest(
            vm_name=vm_name,
            size_bytes=size_bytes,
            submitted_at=self.engine.now,
            deadline=deadline,
            on_complete=on_complete,
        )
        self.queue.append(request)
        self._maybe_start()
        return request

    def _maybe_start(self) -> None:
        if self.in_flight is not None or not self.queue:
            return
        request = self.scheduler.select(self.queue, self.engine.now)
        self.queue.remove(request)
        request.started_at = self.engine.now
        self.in_flight = request
        self.engine.after(
            self.service_time(request),
            self._finish,
            request,
            priority=PRIORITY_DEFAULT,
            name=f"io:{self.name}",
        )

    def _finish(self, request: IORequest) -> None:
        request.completed_at = self.engine.now
        self.scheduler.account(request, self.service_time(request))
        self.in_flight = None
        self.completed.append(request)
        if request.on_complete is not None:
            request.on_complete(request)
        self._maybe_start()

    # -- reporting ---------------------------------------------------------------

    def latencies_by_vm(self) -> Dict[str, List[int]]:
        out: Dict[str, List[int]] = {}
        for request in self.completed:
            out.setdefault(request.vm_name, []).append(request.latency_ns)
        return out

    def miss_count(self, vm_name: Optional[str] = None) -> int:
        return sum(
            1
            for r in self.completed
            if r.met_deadline is False and (vm_name is None or r.vm_name == vm_name)
        )
