"""I/O schedulers, including the cross-layer EDF the paper's §7 sketches.

Three policies over the shared device:

- :class:`FifoIOScheduler` — arrival order, the no-QoS baseline;
- :class:`FairShareIOScheduler` — per-VM weighted fair queueing by
  virtual start times (an SFQ-style proportional-share baseline, the
  I/O analogue of the Credit scheduler);
- :class:`CrossLayerEDFIOScheduler` — per-VM bandwidth reservations
  with request deadlines supplied by the guest through the same kind of
  cross-layer channel RTVirt uses for CPU: reserved, deadline-bearing
  requests are served EDF; best-effort requests take the leftover,
  mirroring DP-WRAP's donation discipline.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

from ..simcore.errors import ConfigurationError
from .device import IORequest, IOScheduler


class FifoIOScheduler(IOScheduler):
    """Arrival order — what an unmanaged device queue does."""

    name = "fifo"


class FairShareIOScheduler(IOScheduler):
    """Start-time fair queueing over per-VM weights.

    Each VM has a virtual clock advanced by served-bytes/weight; the
    queued request of the VM with the smallest virtual start tag is
    served next.  Proportional, but deadline-blind — time-sensitive
    requests wait their fair turn behind bulk traffic.
    """

    name = "fair-share"

    def __init__(self, default_weight: int = 100) -> None:
        if default_weight <= 0:
            raise ConfigurationError("weight must be positive")
        self.default_weight = default_weight
        self.weights: Dict[str, int] = {}
        self._vclock: Dict[str, float] = {}

    def set_weight(self, vm_name: str, weight: int) -> None:
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        self.weights[vm_name] = weight

    def select(self, queue: List[IORequest], now: int) -> IORequest:
        floor = min(self._vclock.values(), default=0.0)
        return min(
            queue,
            key=lambda r: (max(self._vclock.get(r.vm_name, floor), floor), r.seq),
        )

    def account(self, request: IORequest, service_ns: int) -> None:
        weight = self.weights.get(request.vm_name, self.default_weight)
        floor = min(self._vclock.values(), default=0.0)
        current = max(self._vclock.get(request.vm_name, floor), floor)
        self._vclock[request.vm_name] = current + request.size_bytes / weight


class CrossLayerEDFIOScheduler(IOScheduler):
    """Reservation + deadline-aware I/O scheduling (the §7 extension).

    A VM registers an I/O bandwidth reservation (bytes per period).
    Requests from reserved VMs carry guest-published deadlines and are
    served earliest-deadline-first while the VM has budget in the
    current period; best-effort and over-budget traffic shares the
    remainder FIFO.  The structure deliberately parallels the CPU side:
    reservation = hypercall-granted bandwidth, deadline = shared-memory
    publication, leftover = donation.
    """

    name = "xl-edf"

    def __init__(self, period_ns: int = 100_000_000) -> None:
        if period_ns <= 0:
            raise ConfigurationError("period must be positive")
        self.period_ns = period_ns
        self.reservations: Dict[str, int] = {}  # vm -> bytes per period
        self._spent: Dict[str, int] = {}  # bytes served this period
        self._period_start = 0

    def reserve(self, vm_name: str, bytes_per_period: int) -> None:
        """Grant *vm_name* an I/O bandwidth reservation."""
        if bytes_per_period <= 0:
            raise ConfigurationError("reservation must be positive")
        self.reservations[vm_name] = bytes_per_period

    def _roll_period(self, now: int) -> None:
        if now - self._period_start >= self.period_ns:
            periods = (now - self._period_start) // self.period_ns
            self._period_start += periods * self.period_ns
            self._spent.clear()

    def _has_budget(self, request: IORequest) -> bool:
        quota = self.reservations.get(request.vm_name)
        if quota is None:
            return False
        return self._spent.get(request.vm_name, 0) < quota

    def select(self, queue: List[IORequest], now: int) -> IORequest:
        self._roll_period(now)
        reserved = [
            r for r in queue if r.deadline is not None and self._has_budget(r)
        ]
        if reserved:
            return min(reserved, key=lambda r: (r.deadline, r.seq))
        return min(queue, key=lambda r: r.seq)  # leftover: FIFO

    def account(self, request: IORequest, service_ns: int) -> None:
        if request.vm_name in self.reservations:
            self._spent[request.vm_name] = (
                self._spent.get(request.vm_name, 0) + request.size_bytes
            )

    def utilization_of_reservations(self, device_bytes_per_second: int) -> Fraction:
        """Reserved share of the device's throughput (admission check)."""
        per_second = Fraction(1_000_000_000, self.period_ns)
        total = sum(self.reservations.values())
        return Fraction(total) * per_second / device_bytes_per_second
