"""RT-Xen 2.0 baseline (Xi et al., EMSOFT'14; paper §4.1).

The paper compares against RT-Xen's best configuration: **pEDF at the
guest level and gEDF with deferrable server at the host level**, with
the per-VM (budget, period) interfaces computed *offline* by
compositional scheduling analysis (the CARTS tool — reimplemented in
:mod:`repro.analysis.csa`).

Two properties of RT-Xen drive the paper's comparison and are faithfully
reproduced here:

1. **No cross-layer channel.**  VCPU interfaces are fixed at VM creation
   from CSA output; guests cannot renegotiate online, so dynamic RTAs
   cannot be supported (§4.3).
2. **CSA pessimism.**  The interfaces over-reserve bandwidth, and DMPR
   additionally *claims* whole CPUs that cannot be used by other RTAs
   (Figure 3's wasted bandwidth).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..guest.port import StaticPort
from ..guest.task import Task
from ..guest.vm import VM
from ..host.base_system import BaseSystem
from ..host.costs import DEFAULT_COSTS, CostModel
from ..host.edf import EDFHostScheduler, PartitionedEDFHostScheduler
from ..simcore.engine import Engine
from ..simcore.errors import AdmissionError, ConfigurationError
from ..simcore.trace import Trace
from ..telemetry import events as T

_HOST_SCHEDULERS = {
    "gedf": EDFHostScheduler,
    "pedf": PartitionedEDFHostScheduler,
}


class RTXenSystem(BaseSystem):
    """A host running RT-Xen's deferrable-server scheduler.

    Defaults to the paper's best configuration (host gEDF); pass
    ``host="pedf"`` for the partitioned configuration, where each VM's
    VCPU servers are placed first-fit decreasing by bandwidth
    (:meth:`PartitionedEDFHostScheduler.add_vcpus`).
    """

    def __init__(
        self,
        pcpu_count: int,
        engine: Optional[Engine] = None,
        cost_model: CostModel = DEFAULT_COSTS,
        trace: Optional[Trace] = None,
        host: str = "gedf",
    ) -> None:
        super().__init__(pcpu_count, engine, cost_model, trace)
        if host not in _HOST_SCHEDULERS:
            raise ConfigurationError(
                f"unknown RT-Xen host scheduler {host!r}; choose from "
                f"{sorted(_HOST_SCHEDULERS)}"
            )
        self.scheduler = _HOST_SCHEDULERS[host]()
        self.machine.set_host_scheduler(self.scheduler)

    def create_vm(
        self,
        name: str,
        interfaces: Sequence[Tuple[int, int]],
        scheduler: str = "pedf",
    ) -> VM:
        """Create a VM with statically configured VCPU servers.

        *interfaces* is one (budget_ns, period_ns) pair per VCPU, as
        produced by CSA (:func:`repro.analysis.csa.csa_interface`).  The
        interfaces are fixed for the lifetime of the VM — the defining
        limitation of the offline approach.
        """
        if not interfaces:
            raise ConfigurationError(f"VM {name} needs at least one VCPU interface")
        vm = VM(name, vcpu_count=len(interfaces), scheduler=scheduler, slack_ns=0)
        vm.set_port(StaticPort())
        self._attach(vm)
        for index, (budget_ns, period_ns) in enumerate(interfaces):
            vm.configure_vcpu(index, budget_ns, period_ns)
        if isinstance(self.scheduler, PartitionedEDFHostScheduler):
            # Partitioned host: place the VM's servers as a batch so the
            # first-fit-decreasing heuristic sees them together.
            self.scheduler.add_vcpus(list(vm.vcpus))
        else:
            for vcpu in vm.vcpus:
                self.scheduler.add_vcpu(vcpu)
        return vm

    def create_background_vm(self, name: str, processes: int = 1) -> VM:
        """A VM of CPU-bound non-RTA processes, run in leftover time."""
        vm = VM(name, vcpu_count=1, slack_ns=0)
        self._attach(vm)
        for _ in range(processes):
            vm.add_background_process()
        self.scheduler.add_background_vcpu(vm.vcpus[0])
        return vm

    def register_rta(self, vm: VM, task: Task) -> None:
        """Guest-level (pEDF) registration onto the fixed VCPU servers.

        RT-Xen's guest scheduler performs only local admission — there is
        no hypercall, and the host interfaces do not change.  Decisions
        are published at system level (op ``"rtxen_register"``) on top
        of whatever the guest scheduler itself emits.
        """
        try:
            vm.register_task(task)
        except AdmissionError as exc:
            self._emit_rta_decision(task, False, exc.level)
            raise
        self._emit_rta_decision(task, True, vm.name)

    def _emit_rta_decision(self, task: Task, granted: bool, detail: str) -> None:
        bus = self.machine.bus
        if not bus.has_subscribers(T.ADMISSION_DECISION):
            return
        bus.publish(
            T.ADMISSION_DECISION,
            T.AdmissionDecisionEvent(
                self.engine.now, "host", "rtxen_register", task.name, granted, detail
            ),
        )
