"""Configuration helpers for the baseline systems.

Encodes the offline configuration workflows the paper describes:
CSA-based interfaces for RT-Xen (§4.2's "nontrivial and time-consuming
process") and weight/timeslice/ratelimit settings for Credit (§4.4).
Also holds Table 2's published interface values for cross-checking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.csa import csa_best_interface
from ..analysis.dbf import AnalysisTask
from ..analysis.sbf import PeriodicResource
from ..simcore.time import MSEC, USEC
from ..workloads.periodic import RTASpec


def rtxen_interface_for_rta(
    spec: RTASpec, min_period: int = 0
) -> PeriodicResource:
    """CSA interface for a single-RTA VM (the §4.2 setup)."""
    task = AnalysisTask(spec.slice_ns, spec.period_ns)
    return csa_best_interface([task], min_period=min_period)


def rtxen_interfaces_for_group(
    specs: Sequence[RTASpec], min_period: int = 0
) -> List[PeriodicResource]:
    """CSA interfaces for a whole Table 1 group, one per (single-RTA) VM."""
    return [rtxen_interface_for_rta(spec, min_period) for spec in specs]


#: Table 2 — the paper's published RT-Xen VM configurations for NH-Dec
#: (slice_ms, period_ms) per VM, in the same order as the RTAs.
TABLE2_RTXEN_VMS: List[Tuple[float, float]] = [(4, 5), (3, 4), (2, 3), (1, 9)]

#: Table 2 — the paper's RTVirt VM configurations for NH-Dec.
TABLE2_RTVIRT_VMS: List[Tuple[float, float]] = [(23.5, 30), (13.5, 20), (5.5, 10), (10.5, 100)]


def credit_weight_for_share(share: float, peers: int, peer_weight: int = 256) -> int:
    """Weight giving a VM the target CPU *share* against *peers* equal VMs.

    share = w / (w + peers * peer_weight)  =>  w = share/(1-share) * peers * peer_weight
    The paper configures the memcached VM at 26% this way.
    """
    if not 0 < share < 1:
        raise ValueError(f"share must be in (0, 1), got {share}")
    return max(1, round(share / (1.0 - share) * peers * peer_weight))


#: Figure 5 VM configurations for the memcached VM (paper §4.4).
MEMCACHED_SLO_NS = 500 * USEC
MEMCACHED_RTVIRT_PARAMS = (58 * USEC, 500 * USEC)  # (budget, period)
MEMCACHED_RTXEN_A = PeriodicResource(period=283 * USEC, budget=66 * USEC)
MEMCACHED_RTXEN_B = PeriodicResource(period=177 * USEC, budget=33 * USEC)
MEMCACHED_CREDIT_SHARE = 0.26
CREDIT_GLOBAL_TIMESLICE_NS = MSEC
CREDIT_RATELIMIT_NS = 500 * USEC
