"""Baseline systems the paper compares against: RT-Xen 2.0 and Xen Credit."""

from .configs import (
    CREDIT_GLOBAL_TIMESLICE_NS,
    CREDIT_RATELIMIT_NS,
    MEMCACHED_CREDIT_SHARE,
    MEMCACHED_RTVIRT_PARAMS,
    MEMCACHED_RTXEN_A,
    MEMCACHED_RTXEN_B,
    MEMCACHED_SLO_NS,
    TABLE2_RTXEN_VMS,
    TABLE2_RTVIRT_VMS,
    credit_weight_for_share,
    rtxen_interface_for_rta,
    rtxen_interfaces_for_group,
)
from .credit import BOOST, OVER, UNDER, CreditScheduler, CreditSystem
from .rtxen import RTXenSystem

__all__ = [
    "RTXenSystem",
    "CreditScheduler",
    "CreditSystem",
    "BOOST",
    "UNDER",
    "OVER",
    "rtxen_interface_for_rta",
    "rtxen_interfaces_for_group",
    "credit_weight_for_share",
    "TABLE2_RTXEN_VMS",
    "TABLE2_RTVIRT_VMS",
    "MEMCACHED_SLO_NS",
    "MEMCACHED_RTVIRT_PARAMS",
    "MEMCACHED_RTXEN_A",
    "MEMCACHED_RTXEN_B",
    "MEMCACHED_CREDIT_SHARE",
    "CREDIT_GLOBAL_TIMESLICE_NS",
    "CREDIT_RATELIMIT_NS",
]
