"""Xen's Credit scheduler (the default Xen scheduler; paper §4.4 baseline).

A behavioural model of credit1 with the features the paper's
experiments exercise:

- **weights** — each VCPU earns credits every accounting period in
  proportion to its weight;
- **UNDER/OVER priorities** — positive credits run before exhausted ones;
- **BOOST on wake** — a blocked VCPU that wakes while UNDER is boosted
  above everyone and preempts, subject to the **ratelimit** (a running
  VCPU cannot be preempted before ``ratelimit_us``);
- **timeslice** — round-robin rotation within a priority class (the
  paper sets the global timeslice to 1 ms and ratelimit to 500 µs);
- **tick-sampled accounting** — credit1 debits a *full tick* of credits
  from whichever VCPU happens to be running when the 10 ms tick fires.
  A mostly idle, latency-critical VCPU that is unlucky enough to be
  sampled is driven into OVER and loses its boost until the next
  accounting period, during which its requests wait behind the whole
  round-robin of CPU-bound VMs.  This sampling artifact — well known in
  the Xen literature — is what produces Credit's multi-millisecond
  99.9th-percentile latency in Figure 5 while its average stays low.

Simplification (documented): one global run queue instead of per-PCPU
queues with work stealing; with the paper's workloads (CPU-bound
background VMs plus latency-critical VCPUs) the load balancer would keep
the queues effectively merged anyway.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from ..guest.vcpu import VCPU
from ..host.base_system import BaseSystem
from ..host.costs import DEFAULT_COSTS, CostModel
from ..host.scheduler import HostScheduler
from ..simcore.engine import Engine
from ..simcore.errors import ConfigurationError
from ..simcore.events import PRIORITY_BUDGET, PRIORITY_SCHEDULE, Event
from ..simcore.time import MSEC, USEC
from ..simcore.trace import Trace
from ..telemetry import events as T

BOOST = 0
UNDER = 1
OVER = 2


class _CreditVCPU:
    """Per-VCPU credit state."""

    __slots__ = ("vcpu", "weight", "credits", "priority", "queued", "active", "consumed")

    def __init__(self, vcpu: VCPU, weight: int) -> None:
        self.vcpu = vcpu
        self.weight = weight
        self.credits = 0
        self.priority = UNDER
        self.queued = False
        # credit1's active/parked distinction: a VCPU that persistently
        # earns more than it burns is parked with zero credits and stops
        # earning until it consumes again.
        self.active = True
        self.consumed = 0


class CreditScheduler(HostScheduler):
    """Weight-based proportional-share scheduling with BOOST."""

    name = "credit"

    def __init__(
        self,
        timeslice_ns: int = 30 * MSEC,
        ratelimit_ns: int = MSEC,
        tick_ns: int = 10 * MSEC,
        accounting_ns: int = 30 * MSEC,
        wake_overhead_ns: int = 0,
    ) -> None:
        super().__init__()
        if timeslice_ns <= 0 or tick_ns <= 0 or accounting_ns <= 0:
            raise ConfigurationError("credit timing parameters must be positive")
        if ratelimit_ns < 0 or wake_overhead_ns < 0:
            raise ConfigurationError("ratelimit and wake overhead must be non-negative")
        self.timeslice_ns = timeslice_ns
        self.ratelimit_ns = ratelimit_ns
        self.tick_ns = tick_ns
        self.accounting_ns = accounting_ns
        self.wake_overhead_ns = wake_overhead_ns
        self._info: Dict[int, _CreditVCPU] = {}
        self._queues: Dict[int, Deque[_CreditVCPU]] = {
            BOOST: deque(),
            UNDER: deque(),
            OVER: deque(),
        }
        self._run_start: Dict[int, int] = {}  # pcpu -> time occupant started
        self._slice_events: Dict[int, Optional[Event]] = {}
        #: Diagnostics: how often tick sampling demoted a boosted/idle VCPU.
        self.tick_samples: Dict[str, int] = {}

    # -- population ---------------------------------------------------------------

    def add_vcpu(self, vcpu: VCPU, weight: int = 256) -> None:
        """Schedule *vcpu* with the given weight (Xen default 256)."""
        if weight <= 0:
            raise ConfigurationError(f"weight must be positive, got {weight}")
        if vcpu.uid in self._info:
            raise ConfigurationError(f"{vcpu.name} is already scheduled")
        self._info[vcpu.uid] = _CreditVCPU(vcpu, weight)

    def add_background_vcpu(self, vcpu: VCPU, weight: int = 256) -> None:
        """Credit makes no RT/background distinction; same as add_vcpu."""
        self.add_vcpu(vcpu, weight)

    def remove_vcpu(self, vcpu: VCPU) -> None:
        info = self._info.pop(vcpu.uid, None)
        if info is None:
            return
        self._dequeue(info)
        pcpu_index = self.machine.pcpu_of(vcpu)
        if pcpu_index is not None:
            self.machine.set_running(pcpu_index, None)
            self._pick_next(pcpu_index)

    @property
    def total_weight(self) -> int:
        return sum(i.weight for i in self._info.values()) or 1

    # -- queue helpers ---------------------------------------------------------------

    def _enqueue(self, info: _CreditVCPU, front: bool = False) -> None:
        if info.queued:
            return
        queue = self._queues[info.priority]
        if front:
            queue.appendleft(info)
        else:
            queue.append(info)
        info.queued = True

    def _dequeue(self, info: _CreditVCPU) -> None:
        if not info.queued:
            return
        # A queued VCPU always sits in the queue of its current priority:
        # every priority change dequeues first (accounting, idle) or
        # happens while the VCPU runs unqueued (timeslice de-boost).
        try:
            self._queues[info.priority].remove(info)
        except ValueError:  # pragma: no cover - invariant violation guard
            for queue in self._queues.values():
                try:
                    queue.remove(info)
                    break
                except ValueError:
                    continue
        info.queued = False

    def _runnable(self, info: _CreditVCPU) -> bool:
        return info.vcpu.vm.vcpu_has_work(info.vcpu)

    # -- accounting ----------------------------------------------------------------------

    def _tick(self) -> None:
        """credit1's per-tick debit: charge whoever is running right now."""
        self.machine.sync_all()
        for pcpu in self.machine.pcpus:
            occupant = pcpu.running_vcpu
            if occupant is None:
                continue
            info = self._info.get(occupant.uid)
            if info is None:
                continue
            was_solvent = info.credits >= 0
            info.credits -= self.tick_ns
            if self._t_budget and was_solvent and info.credits < 0:
                self.machine.bus.publish(
                    T.BUDGET_DEPLETE,
                    T.BudgetDepleteEvent(
                        self.engine.now, occupant.name, info.credits
                    ),
                )
            self.tick_samples[occupant.name] = self.tick_samples.get(occupant.name, 0) + 1
        delay = self.tick_ns
        if self._jitter_source is not None:
            # Fault injection: a sloppy tick timer samples late.
            delay += self.timer_jitter()
        self.engine.after(delay, self._tick, priority=PRIORITY_BUDGET, name="credit-tick")

    def _accounting(self) -> None:
        """Replenish credits by weight, park idlers, recompute priorities.

        Follows credit1's ``csched_acct``: only *active* VCPUs earn
        credits; one whose balance exceeds a full share (it earns more
        than tick sampling burns) is parked — credits zeroed, earning
        stopped — until it consumes CPU again.  A parked latency-critical
        VCPU sits at zero credits, so a single unlucky tick sample drives
        it into OVER and suspends its BOOST until the next accounting
        period; its requests then wait behind every UNDER VCPU.  This is
        the mechanism behind Credit's multi-millisecond tail in Figure 5.
        """
        self.machine.sync_all()
        total = self.total_weight
        grant_pool = self.machine.pcpu_count * self.accounting_ns
        for info in self._info.values():
            if not info.active and info.consumed > 0:
                info.active = True  # it ran: resume earning
            share = grant_pool * info.weight // total
            if info.active:
                info.credits += share
                if self._t_budget and share > 0:
                    self.machine.bus.publish(
                        T.BUDGET_REPLENISH,
                        T.BudgetReplenishEvent(
                            self.engine.now, info.vcpu.name, share, info.credits
                        ),
                    )
                if info.credits > share:
                    info.credits = 0
                    info.active = False
            info.consumed = 0
            new_priority = UNDER if info.credits >= 0 else OVER
            if info.priority != new_priority or info.priority == BOOST:
                was_queued = info.queued
                self._dequeue(info)
                info.priority = new_priority
                if was_queued:
                    self._enqueue(info)  # tail: de-boosted VCPUs requeue last
        self.engine.after(
            self.accounting_ns, self._accounting, priority=PRIORITY_BUDGET, name="credit-acct"
        )
        self._preempt_scan()

    def account(self, vcpu: VCPU, pcpu_index: int, elapsed: int) -> None:
        # credit1 debits only via tick sampling; continuous usage is just
        # recorded to drive the active/parked transitions.
        info = self._info.get(vcpu.uid)
        if info is not None:
            info.consumed += elapsed

    # -- dispatch ---------------------------------------------------------------------------

    def _pick_next(self, pcpu_index: int) -> None:
        """Run the head of the highest non-empty priority queue."""
        machine = self.machine
        if machine.pcpus[pcpu_index].failed:
            return
        examined = 0
        chosen: Optional[_CreditVCPU] = None
        for priority in (BOOST, UNDER, OVER):
            queue = self._queues[priority]
            for _ in range(len(queue)):
                info = queue[0]
                examined += 1
                if not self._runnable(info):
                    queue.popleft()
                    info.queued = False
                    continue
                if machine.pcpu_of(info.vcpu) is not None:
                    queue.rotate(-1)
                    continue
                chosen = queue.popleft()
                chosen.queued = False
                break
            if chosen is not None:
                break
        machine.charge_schedule(pcpu_index, elements=examined)
        old = machine.pcpus[pcpu_index].running_vcpu
        if old is not None and chosen is None:
            # Nothing better; keep the occupant but restart its timeslice
            # so the rotation continues once competitors appear.
            self._arm_timeslice(pcpu_index)
            return
        if old is not None:
            old_info = self._info.get(old.uid)
            if old_info is not None and self._runnable(old_info):
                self._enqueue(old_info, front=False)
        machine.set_running(pcpu_index, chosen.vcpu if chosen else None)
        self._run_start[pcpu_index] = self.engine.now
        self._arm_timeslice(pcpu_index)

    def _arm_timeslice(self, pcpu_index: int) -> None:
        previous = self._slice_events.get(pcpu_index)
        if previous is not None:
            self.engine.cancel(previous)
        if self.machine.pcpus[pcpu_index].running_vcpu is None:
            self._slice_events[pcpu_index] = None
            return
        self._slice_events[pcpu_index] = self.engine.after(
            self.timeslice_ns,
            self._timeslice_expired,
            pcpu_index,
            priority=PRIORITY_SCHEDULE,
            name="credit-slice",
        )

    def _timeslice_expired(self, pcpu_index: int) -> None:
        occupant = self.machine.pcpus[pcpu_index].running_vcpu
        if occupant is None:
            return
        info = self._info.get(occupant.uid)
        if info is not None and info.priority == BOOST:
            # A boosted VCPU that consumed a whole timeslice is de-boosted.
            info.priority = UNDER if info.credits >= 0 else OVER
        self._pick_next(pcpu_index)

    # -- notifications ------------------------------------------------------------------------

    def on_vcpu_wake(self, vcpu: VCPU) -> None:
        info = self._info.get(vcpu.uid)
        if info is None:
            return
        if self.machine.pcpu_of(vcpu) is not None or info.queued:
            return  # running or already runnable: no boost (credit1 rule)
        if info.priority == UNDER and info.credits >= 0:
            info.priority = BOOST
            self._enqueue(info, front=True)
        else:
            self._enqueue(info, front=False)
        self._preempt_scan()

    def on_vcpu_idle(self, vcpu: VCPU, pcpu_index: int) -> None:
        info = self._info.get(vcpu.uid)
        if info is not None:
            self._dequeue(info)
            if info.priority == BOOST:
                info.priority = UNDER if info.credits >= 0 else OVER
        self.machine.set_running(pcpu_index, None)
        self._pick_next(pcpu_index)

    # -- preemption ------------------------------------------------------------------------------

    def _preempt_scan(self) -> None:
        """Let queued BOOST VCPUs preempt lower-priority occupants.

        The ratelimit protects an occupant that started running less than
        ``ratelimit_ns`` ago; a re-check is scheduled for when its window
        expires.
        """
        if not self._queues[BOOST]:
            self._fill_idle_pcpus()
            return
        now = self.engine.now
        machine = self.machine
        for pcpu in machine.pcpus:
            if not self._queues[BOOST]:
                break
            if pcpu.failed:
                continue
            occupant = pcpu.running_vcpu
            if occupant is None:
                if self.wake_overhead_ns:
                    machine.charge_extra(pcpu.index, self.wake_overhead_ns)
                self._pick_next(pcpu.index)
                continue
            occ_info = self._info.get(occupant.uid)
            if occ_info is not None and occ_info.priority == BOOST:
                continue
            started = self._run_start.get(pcpu.index, 0)
            if now - started < self.ratelimit_ns:
                self.engine.at(
                    started + self.ratelimit_ns,
                    self._ratelimit_recheck,
                    pcpu.index,
                    priority=PRIORITY_SCHEDULE,
                    name="credit-ratelimit",
                )
                continue
            if self.wake_overhead_ns:
                machine.charge_extra(pcpu.index, self.wake_overhead_ns)
            self._pick_next(pcpu.index)
        self._fill_idle_pcpus()

    def _ratelimit_recheck(self, pcpu_index: int) -> None:
        if self._queues[BOOST]:
            if self.wake_overhead_ns:
                self.machine.charge_extra(pcpu_index, self.wake_overhead_ns)
            self._pick_next(pcpu_index)

    def _fill_idle_pcpus(self) -> None:
        for pcpu in self.machine.pcpus:
            if pcpu.running_vcpu is None and not pcpu.failed:
                has_waiter = any(
                    self._runnable(i) and self.machine.pcpu_of(i.vcpu) is None
                    for q in self._queues.values()
                    for i in q
                )
                if not has_waiter:
                    # Skipping this PCPU changes nothing a later idle
                    # PCPU's scan could observe, so the answer stays
                    # "no waiter" for the rest of the loop.
                    return
                self._pick_next(pcpu.index)

    # -- fault hooks ---------------------------------------------------------------------------------

    def on_pcpu_failed(self, pcpu_index: int, victim: Optional[VCPU]) -> None:
        """Requeue the evicted occupant and let it preempt elsewhere."""
        previous = self._slice_events.get(pcpu_index)
        if previous is not None:
            self.engine.cancel(previous)
            self._slice_events[pcpu_index] = None
        if victim is not None:
            info = self._info.get(victim.uid)
            if info is not None and self._runnable(info):
                self._enqueue(info, front=False)
        self._preempt_scan()

    def on_pcpu_recovered(self, pcpu_index: int) -> None:
        self._pick_next(pcpu_index)

    # -- lifecycle -----------------------------------------------------------------------------------

    def start(self) -> None:
        total = self.total_weight
        grant_pool = self.machine.pcpu_count * self.accounting_ns
        for info in self._info.values():
            info.credits = grant_pool * info.weight // total
            info.priority = UNDER
            if self._runnable(info):
                self._enqueue(info)
        self.engine.after(self.tick_ns, self._tick, priority=PRIORITY_BUDGET, name="credit-tick")
        self.engine.after(
            self.accounting_ns, self._accounting, priority=PRIORITY_BUDGET, name="credit-acct"
        )
        for pcpu in self.machine.pcpus:
            self._pick_next(pcpu.index)


class CreditSystem(BaseSystem):
    """A host running the Credit scheduler."""

    def __init__(
        self,
        pcpu_count: int,
        engine: Optional[Engine] = None,
        cost_model: CostModel = DEFAULT_COSTS,
        trace: Optional[Trace] = None,
        timeslice_ns: int = 30 * MSEC,
        ratelimit_ns: int = MSEC,
        wake_overhead_ns: int = 0,
    ) -> None:
        super().__init__(pcpu_count, engine, cost_model, trace)
        self.scheduler = CreditScheduler(
            timeslice_ns=timeslice_ns,
            ratelimit_ns=ratelimit_ns,
            wake_overhead_ns=wake_overhead_ns,
        )
        self.machine.set_host_scheduler(self.scheduler)

    def create_vm(self, name: str, weight: int = 256, vcpu_count: int = 1):
        """Create a VM whose VCPUs are credit-scheduled with *weight*."""
        from ..guest.vm import VM

        vm = VM(name, vcpu_count=vcpu_count, slack_ns=0)
        vm.credit_weight = weight  # travels with the VM across migrations
        self._attach(vm)
        for vcpu in vm.vcpus:
            self.scheduler.add_vcpu(vcpu, weight)
        return vm

    def _enter_host_scheduler(self, vm) -> None:
        """Credit has no reservations; every VCPU re-enters by weight."""
        weight = getattr(vm, "credit_weight", 256)
        for vcpu in vm.vcpus:
            self.scheduler.add_vcpu(vcpu, weight)

    def create_background_vm(self, name: str, weight: int = 256, processes: int = 1):
        vm = self.create_vm(name, weight=weight)
        for _ in range(processes):
            vm.add_background_process()
        return vm
