"""repro — a reproduction of RTVirt (EuroSys 2018).

RTVirt enables time-sensitive computing on virtualized systems through
cross-layer CPU scheduling: the guest-level pEDF scheduler and the
host-level DP-WRAP scheduler cooperate through a hypercall and shared
memory.  This package rebuilds the whole system — hypervisor scheduling,
guest scheduling, the cross-layer interface, the RT-Xen and Credit
baselines, and the paper's workloads — on a deterministic discrete-event
simulator.

Quick start::

    from repro import RTVirtSystem, sched_setattr, msec, sec
    from repro.workloads import PeriodicDriver

    system = RTVirtSystem(pcpu_count=2)
    vm = system.create_vm("vm1")
    task = sched_setattr(vm, "rta1", runtime_ns=msec(5), period_ns=msec(20))
    PeriodicDriver(system.engine, vm, task).start()
    system.run(sec(10))
    print(system.miss_report().overall_miss_ratio)
"""

from .core import (
    DEFAULT_MIN_GLOBAL_SLICE_NS,
    DEFAULT_SLACK_NS,
    DPWrapScheduler,
    RTVirtSystem,
    SchedRTVirtFlag,
    SharedMemoryPage,
    UtilizationAdmission,
)
from .guest import (
    VCPU,
    VM,
    Job,
    Task,
    TaskKind,
    sched_adjust,
    sched_setattr,
    sched_unregister,
)
from .host import DEFAULT_COSTS, ZERO_COSTS, CostModel, EDFHostScheduler, Machine
from .simcore import MSEC, SEC, USEC, Engine, Trace, msec, sec, usec

__version__ = "1.0.0"

__all__ = [
    "RTVirtSystem",
    "DPWrapScheduler",
    "SharedMemoryPage",
    "UtilizationAdmission",
    "SchedRTVirtFlag",
    "DEFAULT_SLACK_NS",
    "DEFAULT_MIN_GLOBAL_SLICE_NS",
    "VM",
    "VCPU",
    "Task",
    "TaskKind",
    "Job",
    "sched_setattr",
    "sched_adjust",
    "sched_unregister",
    "Machine",
    "CostModel",
    "DEFAULT_COSTS",
    "ZERO_COSTS",
    "EDFHostScheduler",
    "Engine",
    "Trace",
    "USEC",
    "MSEC",
    "SEC",
    "usec",
    "msec",
    "sec",
    "__version__",
]
