"""Work-unit decomposition of the experiment registry.

A :class:`WorkUnit` is one independent computation: a module-level
function (referenced by dotted path so it pickles across processes) plus
keyword arguments.  Each registry experiment maps to an
:class:`ExperimentPlan` — an ordered tuple of units and an ``assemble``
function that rebuilds the experiment's result object from the unit
parts *in the parent process*.

Two shapes of plan exist:

- **Whole-experiment** plans have a single unit calling the
  experiment's own full-length runner (``_WHOLE_FNS``), stripped in the
  worker to a plain ``{"rows", "summary"}`` payload (the rich result
  objects of monolithic experiments are not all picklable; their rows
  and summary always are, because the determinism harness JSON-encodes
  them).  Registry ids without a direct entry fall back to
  :func:`run_whole`, which dispatches through the registry.
- **Sharded** plans split an experiment along its independent axes
  (per group × framework, per scheduler, per scenario).  Each shard
  returns a small picklable part (``GroupRun``, ``SchedulerOutcome``,
  tail dict, ``OverheadRun``), and ``assemble`` reconstructs the *same
  result dataclass the serial runner builds*, so ``rows()`` and
  ``summary()`` are produced by the very code the serial path uses —
  byte-identical output by construction, not by parallel bookkeeping.

Shards are only valid because every experiment harness seeds a fresh
``RandomStreams`` (or none) per shard and builds its own simulated
system: no state crosses shard boundaries in the serial loop either.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments import registry
from ..experiments.cluster_scale import assemble_cluster, cluster_unit_specs
from ..experiments.feedback_adaptive import assemble_feedback, feedback_unit_specs
from ..experiments.fig4_dynamic import FIG4_VM_COUNT, assemble_fig4
from ..experiments.fig5_memcached import FIG5_SCHEDULERS, Fig5Result
from ..experiments.robustness import ROBUSTNESS_SCHEDULERS, RobustnessResult
from ..experiments.table1_periodic import Table1Result
from ..experiments.table4_dedicated import TABLE4_SCHEDULERS, Table4Result
from ..experiments.table6_overhead import TABLE6_SCENARIOS, Table6Result
from ..workloads.periodic import TABLE1_GROUPS


@dataclass(frozen=True)
class WorkUnit:
    """One independent computation of an experiment plan."""

    experiment_id: str
    unit_id: str
    fn: str  #: dotted path ``package.module:function`` (picklable reference)
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    #: strip the result to a ``{"rows", "summary"}`` payload in the worker
    #: (monolithic experiments whose rich result objects may not pickle).
    payload: bool = False

    def fingerprint(self, salt: str) -> str:
        """Content-addressed cache key: inputs + code-version salt."""
        blob = "\0".join(
            (self.experiment_id, self.unit_id, self.fn, repr(self.kwargs), salt)
        )
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class ExperimentPlan:
    """The work units of one experiment plus their reassembly function."""

    experiment_id: str
    units: Tuple[WorkUnit, ...]
    #: parts (one per unit, in unit order) -> object with rows()/summary()
    assemble: Callable[[Sequence[Any]], Any]


class PayloadResult:
    """Result adapter around a precomputed ``{"rows", "summary"}`` payload."""

    __slots__ = ("_rows", "_summary")

    def __init__(self, rows: List[dict], summary: str) -> None:
        self._rows = rows
        self._summary = summary

    def rows(self) -> List[dict]:
        return self._rows

    def summary(self) -> str:
        return self._summary


def resolve(fn_path: str) -> Callable[..., Any]:
    """Import ``package.module:function`` and return the function."""
    module_name, sep, attr = fn_path.partition(":")
    if not sep:
        raise ValueError(f"work-unit fn {fn_path!r} is not 'module:function'")
    return getattr(importlib.import_module(module_name), attr)


def execute_unit(unit: WorkUnit) -> Any:
    """Run one work unit (in whatever process this is) and return its part."""
    part = resolve(unit.fn)(**dict(unit.kwargs))
    if unit.payload:
        return {"rows": part.rows(), "summary": part.summary()}
    return part


def run_whole(experiment_id: str) -> Dict[str, Any]:
    """Worker body for monolithic experiments: run and strip to a payload.

    Only the fallback path for registry ids without an entry in
    ``_WHOLE_FNS`` uses this: its import closure (via the registry)
    spans every experiment, so such units inherit the broadest possible
    cache salt.  Known monolithic experiments point their unit ``fn``
    straight at the experiment module instead, which keeps their cache
    entries valid when an unrelated experiment changes.
    """
    result = registry.run(experiment_id)
    return {"rows": result.rows(), "summary": result.summary()}


# -- assembly functions (run in the parent, must be module-level) ---------------------


def _assemble_payload(parts: Sequence[Any]) -> PayloadResult:
    (payload,) = parts
    return PayloadResult(payload["rows"], payload["summary"])


def _assemble_table1(parts: Sequence[Any]) -> Table1Result:
    return Table1Result(list(parts))


def _assemble_table4(parts: Sequence[Any]) -> Table4Result:
    return Table4Result(dict(zip(TABLE4_SCHEDULERS, parts)))


def _assemble_fig4(parts: Sequence[Any]):
    return assemble_fig4(list(parts))


def _assemble_fig5a(parts: Sequence[Any]) -> Fig5Result:
    return Fig5Result(scenario="a", outcomes=list(parts))


def _assemble_fig5b(parts: Sequence[Any]) -> Fig5Result:
    return Fig5Result(scenario="b", outcomes=list(parts))


def _assemble_table6(parts: Sequence[Any]) -> Table6Result:
    multi, single, (multi_cap, single_cap) = parts
    return Table6Result([multi, single], multi_cap, single_cap)


def _assemble_robustness(parts: Sequence[Any]) -> RobustnessResult:
    return RobustnessResult(list(parts))


def _assemble_cluster(parts: Sequence[Any]):
    return assemble_cluster(list(parts))


def _assemble_feedback(parts: Sequence[Any]):
    return assemble_feedback(list(parts))


# -- cost model (parallel scheduling hints) -------------------------------------------

#: Cold-start fallback: serial wall seconds per work unit as measured
#: once on the reference container (see ``BENCH_registry.json``).  The
#: executor prefers the *measured* costs persisted by
#: :class:`repro.runner.costs.CostModel` (``costs.json`` alongside the
#: cache, refreshed after every run); this table only seeds the very
#: first run's LPT order, so the heavy shards — fig5b's RTVirt run, the
#: fig4 partitions — start immediately instead of straggling behind a
#: tail of sub-second units.  Staleness degrades balance, never
#: correctness; assembly consumes parts by position regardless of
#: completion order.
_UNIT_COST_S: Dict[str, float] = {
    "fig5b/RTVirt": 15.3,
    "fig5b/RT-Xen B": 9.6,
    "table6/Single-RTA": 9.5,
    "fig5a/RTVirt": 6.2,
    "fig5b/RT-Xen A": 6.0,
    "table6/Multi-RTA": 3.7,
    "fig5a/RT-Xen B": 3.0,
    "table4/RTVirt": 2.9,
    "fig5a/RT-Xen A": 2.7,
    "fig4/vm2": 3.5,
    "fig4/vm1": 1.6,
    "fig4/vm3": 0.8,
    "fig4/vm4": 0.8,
    "fig5b/Credit": 2.1,
    "fig5a/Credit": 1.6,
    "fig1/whole": 1.0,
    "table4/RT-Xen": 0.6,
    "robustness_hypercall/RTVirt": 0.6,
    "table4/Credit": 0.2,
    "table6/rtxen-capacity": 0.2,
}

#: Per-experiment fallbacks for shard families whose units are uniform
#: (table1/sporadic group×framework grids, the robustness cells).
_FAMILY_COST_S: Dict[str, float] = {
    "table1": 0.5,
    "sporadic": 0.2,
    # cluster_* units re-run the full multi-host sim each; cost scales
    # with the host grid, not the observed shard.
    "cluster_consolidate": 0.1,
    "cluster_rebalance": 0.1,
    "cluster_hostfail": 0.1,
    "cluster_clockskew": 0.05,
    # feedback_* units run one (scenario, policy) cell each; the
    # adaptive/credit cells carry the controller and ledger overhead.
    "feedback_overrun": 0.6,
    "feedback_migrate": 0.4,
    "tenant_shed": 0.7,
}

_DEFAULT_COST_S = 0.15


def estimated_cost_s(
    unit: WorkUnit, measured: Optional[Dict[str, float]] = None
) -> float:
    """Expected serial seconds for *unit*.

    Precedence: *measured* (this machine's persisted ``costs.json``),
    then the hand-recorded reference table, then per-family and global
    defaults.
    """
    if measured is not None:
        cost = measured.get(unit.unit_id)
        if cost is not None:
            return cost
    cost = _UNIT_COST_S.get(unit.unit_id)
    if cost is not None:
        return cost
    return _FAMILY_COST_S.get(unit.experiment_id, _DEFAULT_COST_S)


def ordered_by_cost(
    units: Sequence[WorkUnit], measured: Optional[Dict[str, float]] = None
) -> List[WorkUnit]:
    """*units* longest-first; ties break on unit id (deterministic)."""
    return sorted(
        units, key=lambda u: (-estimated_cost_s(u, measured), u.unit_id)
    )


# -- plan construction ----------------------------------------------------------------


#: Direct worker entry points for monolithic experiments, mirroring the
#: registry's full-length runners (same callables, same parameters).
#: Pointing the unit ``fn`` at the experiment module — instead of the
#: registry-dispatching :func:`run_whole` — gives these units the narrow
#: import-closure cache salt of their own harness.
_WHOLE_FNS: Dict[str, Tuple[str, Tuple[Tuple[str, Any], ...]]] = {
    "fig1": (
        "repro.experiments.fig1_motivation:run_fig1_combined",
        (("duration_ns", registry.FIG1_DURATION_NS),),
    ),
    "fig3": ("repro.experiments.fig3_bandwidth:run_fig3", ()),
    "table2": ("repro.experiments.table2_config:run_table2", ()),
}


def _whole_plan(experiment_id: str) -> ExperimentPlan:
    direct = _WHOLE_FNS.get(experiment_id)
    if direct is not None:
        fn, kwargs = direct
        payload = True  # strip the rich result to rows/summary in the worker
    else:  # pragma: no cover - safety net for future registry entries
        fn = "repro.runner.workunits:run_whole"
        kwargs = (("experiment_id", experiment_id),)
        payload = False  # run_whole already returns the payload dict
    unit = WorkUnit(
        experiment_id=experiment_id,
        unit_id=f"{experiment_id}/whole",
        fn=fn,
        kwargs=kwargs,
        payload=payload,
    )
    return ExperimentPlan(experiment_id, (unit,), _assemble_payload)


def _table1_plan() -> ExperimentPlan:
    units = []
    for group in TABLE1_GROUPS:
        for framework, fn in (
            ("RTVirt", "repro.experiments.table1_periodic:run_group_rtvirt"),
            ("RT-Xen", "repro.experiments.table1_periodic:run_group_rtxen"),
        ):
            units.append(
                WorkUnit(
                    experiment_id="table1",
                    unit_id=f"table1/{group}/{framework}",
                    fn=fn,
                    kwargs=(
                        ("group", group),
                        ("duration_ns", registry.TABLE1_DURATION_NS),
                    ),
                )
            )
    return ExperimentPlan("table1", tuple(units), _assemble_table1)


def _sporadic_plan() -> ExperimentPlan:
    units = []
    for group in TABLE1_GROUPS:
        for framework, fn in (
            ("RTVirt", "repro.experiments.sporadic_rtas:run_group_sporadic_rtvirt"),
            ("RT-Xen", "repro.experiments.sporadic_rtas:run_group_sporadic_rtxen"),
        ):
            units.append(
                WorkUnit(
                    experiment_id="sporadic",
                    unit_id=f"sporadic/{group}/{framework}",
                    fn=fn,
                    kwargs=(
                        ("group", group),
                        ("requests_per_rta", registry.SPORADIC_REQUESTS),
                        ("seed", registry.SPORADIC_SEED),
                    ),
                )
            )
    return ExperimentPlan("sporadic", tuple(units), _assemble_table1)


def _table4_plan() -> ExperimentPlan:
    units = tuple(
        WorkUnit(
            experiment_id="table4",
            unit_id=f"table4/{scheduler}",
            fn="repro.experiments.table4_dedicated:run_table4_scheduler",
            kwargs=(
                ("scheduler", scheduler),
                ("duration_ns", registry.TABLE4_DURATION_NS),
                ("seed", registry.TABLE4_SEED),
            ),
        )
        for scheduler in TABLE4_SCHEDULERS
    )
    return ExperimentPlan("table4", units, _assemble_table4)


def _fig4_plan() -> ExperimentPlan:
    units = tuple(
        WorkUnit(
            experiment_id="fig4",
            unit_id=f"fig4/vm{vm_index + 1}",
            fn="repro.experiments.fig4_dynamic:run_fig4_vm",
            kwargs=(
                ("vm_index", vm_index),
                ("duration_ns", registry.FIG4_DURATION_NS),
                ("seed", registry.FIG4_SEED),
            ),
        )
        for vm_index in range(FIG4_VM_COUNT)
    )
    return ExperimentPlan("fig4", units, _assemble_fig4)


def _fig5_plan(experiment_id: str) -> ExperimentPlan:
    scenario = experiment_id[-1]  # "a" | "b"
    duration = (
        registry.FIG5A_DURATION_NS if scenario == "a" else registry.FIG5B_DURATION_NS
    )
    seed = registry.FIG5A_SEED if scenario == "a" else registry.FIG5B_SEED
    units = tuple(
        WorkUnit(
            experiment_id=experiment_id,
            unit_id=f"{experiment_id}/{scheduler}",
            fn=f"repro.experiments.fig5_memcached:run_fig5{scenario}_scheduler",
            kwargs=(
                ("scheduler", scheduler),
                ("duration_ns", duration),
                ("seed", seed),
            ),
        )
        for scheduler in FIG5_SCHEDULERS
    )
    assemble = _assemble_fig5a if scenario == "a" else _assemble_fig5b
    return ExperimentPlan(experiment_id, units, assemble)


def _table6_plan() -> ExperimentPlan:
    units = [
        WorkUnit(
            experiment_id="table6",
            unit_id=f"table6/{scenario}",
            fn="repro.experiments.table6_overhead:run_table6_scenario",
            kwargs=(
                ("scenario", scenario),
                ("duration_ns", registry.TABLE6_DURATION_NS),
                ("pcpu_count", registry.TABLE6_PCPUS),
            ),
        )
        for scenario in TABLE6_SCENARIOS
    ]
    units.append(
        WorkUnit(
            experiment_id="table6",
            unit_id="table6/rtxen-capacity",
            fn="repro.experiments.table6_overhead:rtxen_capacities",
            kwargs=(("pcpu_count", registry.TABLE6_PCPUS),),
        )
    )
    return ExperimentPlan("table6", tuple(units), _assemble_table6)


def _robustness_plan(experiment_id: str, seed: Optional[int]) -> ExperimentPlan:
    fault = experiment_id[len("robustness_"):]
    units = tuple(
        WorkUnit(
            experiment_id=experiment_id,
            unit_id=f"{experiment_id}/{scheduler}",
            fn="repro.experiments.robustness:run_robustness_case",
            kwargs=(
                ("fault", fault),
                ("scheduler", scheduler),
                ("duration_ns", registry.ROBUSTNESS_DURATION_NS),
                ("seed", registry.ROBUSTNESS_SEED if seed is None else seed),
            ),
        )
        for scheduler in ROBUSTNESS_SCHEDULERS
    )
    return ExperimentPlan(experiment_id, units, _assemble_robustness)


def _cluster_plan(experiment_id: str, seed: Optional[int]) -> ExperimentPlan:
    """Per-host shards: each unit re-runs the full deterministic cluster
    sim and extracts one host's row + mergeable telemetry snapshot."""
    mode = experiment_id[len("cluster_"):]
    units = tuple(
        WorkUnit(
            experiment_id=experiment_id,
            unit_id=f"{experiment_id}/{label}",
            fn="repro.experiments.cluster_scale:run_cluster_host",
            kwargs=tuple(
                sorted(
                    {
                        "duration_ns": registry.CLUSTER_DURATION_NS,
                        "seed": registry.CLUSTER_SEED if seed is None else seed,
                        **kwargs,
                    }.items()
                )
            ),
        )
        for label, kwargs in cluster_unit_specs(mode)
    )
    return ExperimentPlan(experiment_id, units, _assemble_cluster)


def _feedback_plan(experiment_id: str, seed: Optional[int]) -> ExperimentPlan:
    """Per-policy shards: each unit runs one (scenario, policy) cell."""
    units = tuple(
        WorkUnit(
            experiment_id=experiment_id,
            unit_id=f"{experiment_id}/{label}",
            fn="repro.experiments.feedback_adaptive:run_feedback_case",
            kwargs=tuple(
                sorted(
                    {
                        "duration_ns": registry.FEEDBACK_DURATION_NS,
                        "seed": registry.FEEDBACK_SEED if seed is None else seed,
                        **kwargs,
                    }.items()
                )
            ),
        )
        for label, kwargs in feedback_unit_specs(experiment_id)
    )
    return ExperimentPlan(experiment_id, units, _assemble_feedback)


_SHARDED_PLANS: Dict[str, Callable[[], ExperimentPlan]] = {
    "table1": _table1_plan,
    "sporadic": _sporadic_plan,
    "table4": _table4_plan,
    "fig4": _fig4_plan,
    "fig5a": lambda: _fig5_plan("fig5a"),
    "fig5b": lambda: _fig5_plan("fig5b"),
    "table6": _table6_plan,
}


def plan_for(experiment_id: str, seed: Optional[int] = None) -> ExperimentPlan:
    """The work-unit plan of one registry experiment.

    *seed* overrides the default RNG seed of experiments that take one
    (currently the robustness family); the seed lands in the unit
    kwargs, so it participates in the cache fingerprint automatically.
    """
    if experiment_id not in registry.REGISTRY:
        raise KeyError(f"unknown experiment id {experiment_id!r}")
    if experiment_id.startswith("robustness_"):
        return _robustness_plan(experiment_id, seed)
    if experiment_id.startswith("cluster_"):
        return _cluster_plan(experiment_id, seed)
    if experiment_id.startswith("feedback_") or experiment_id.startswith("tenant_"):
        return _feedback_plan(experiment_id, seed)
    builder = _SHARDED_PLANS.get(experiment_id)
    return builder() if builder else _whole_plan(experiment_id)


def build_plans(
    ids: Optional[Sequence[str]] = None, seed: Optional[int] = None
) -> List[ExperimentPlan]:
    """Plans for *ids* in canonical registry order (default: all)."""
    order = registry.all_ids()
    if ids is None:
        selected = order
    else:
        unknown = sorted(set(ids) - set(order))
        if unknown:
            raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")
        wanted = set(ids)
        selected = [i for i in order if i in wanted]
    return [plan_for(i, seed=seed) for i in selected]
