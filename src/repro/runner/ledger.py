"""Persistent run ledger — ``runs/<stamp>/manifest.json``.

Every ``repro run-all`` writes one ledger entry: a timestamped directory
holding a manifest (git sha, seed, event-queue class, per-unit walls,
metric row hashes) plus any recorded trace artifacts.  The ledger is
what makes performance and correctness *trajectories* durable across
PRs — ``BENCH_*.json`` files capture only the latest accepted state.

Ledger directories participate in ``repro cache prune`` under the same
LRU-by-mtime policy as the result cache, so the footprint stays bounded.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import time
from typing import Dict, List, Optional, Tuple

#: Default ledger root, relative to the working directory.
RUNS_DIR_NAME = "runs"
MANIFEST_NAME = "manifest.json"


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit sha, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def rows_hash(rows) -> str:
    """Canonical sha256 of metric rows (floats via repr, sorted keys)."""

    def canonical(value):
        if isinstance(value, float):
            return repr(value)
        if isinstance(value, dict):
            return {k: canonical(v) for k, v in sorted(value.items())}
        if isinstance(value, (list, tuple)):
            return [canonical(v) for v in value]
        return value

    payload = json.dumps(canonical(rows), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def new_run_dir(root: str = RUNS_DIR_NAME) -> Tuple[str, str]:
    """Create ``<root>/<stamp>`` and return ``(stamp, path)``.

    Stamps are UTC ``YYYYmmdd-HHMMSS``; a collision (two runs within a
    second) appends a counter suffix.
    """
    os.makedirs(root, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    candidate = stamp
    n = 1
    while os.path.exists(os.path.join(root, candidate)):
        candidate = f"{stamp}-{n}"
        n += 1
    path = os.path.join(root, candidate)
    os.makedirs(path)
    return candidate, path


def write_manifest(run_dir: str, manifest: Dict[str, object]) -> str:
    """Write ``manifest.json`` into *run_dir*; returns the path."""
    path = os.path.join(run_dir, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def read_manifest(run_dir: str) -> Optional[Dict[str, object]]:
    path = os.path.join(run_dir, MANIFEST_NAME)
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def run_entries(root: str = RUNS_DIR_NAME) -> List[Tuple[str, int, float]]:
    """Ledger entries as ``(run_dir, total_bytes, latest_mtime)``.

    One entry per run directory (a run is pruned whole); sorted oldest
    first, matching :meth:`ResultCache.entries` so the CLI can do a
    combined LRU sweep over both stores.
    """
    if not os.path.isdir(root):
        return []
    entries: List[Tuple[str, int, float]] = []
    for name in os.listdir(root):
        run_dir = os.path.join(root, name)
        if not os.path.isdir(run_dir):
            continue
        total = 0
        latest = 0.0
        for dirpath, _dirnames, filenames in os.walk(run_dir):
            for filename in filenames:
                path = os.path.join(dirpath, filename)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                total += stat.st_size
                latest = max(latest, stat.st_mtime)
        if latest == 0.0:
            try:
                latest = os.stat(run_dir).st_mtime
            except OSError:
                continue
        entries.append((run_dir, total, latest))
    entries.sort(key=lambda entry: (entry[2], entry[0]))
    return entries


def runs_stats(root: str = RUNS_DIR_NAME) -> Dict[str, object]:
    entries = run_entries(root)
    return {
        "root": root,
        "runs": len(entries),
        "total_bytes": sum(size for _path, size, _mtime in entries),
    }


def remove_run(run_dir: str) -> None:
    shutil.rmtree(run_dir, ignore_errors=True)
