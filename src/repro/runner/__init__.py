"""Parallel experiment-execution subsystem.

Decomposes every registry experiment into independent *work units*
(whole experiments, and per-shard runs where a harness exposes them),
executes the units across a process pool, caches unit results under a
content-addressed key, and reassembles per-experiment output that is
byte-identical to the serial ``registry.run`` path.

    from repro.runner import run_experiments, ResultCache

    report = run_experiments(jobs=4, cache=ResultCache())
    for exp in report.reports:
        print(exp.experiment_id, exp.wall_s)
"""

from .cache import CACHE_DIR_NAME, ResultCache, clear_salt_caches, code_salt, unit_salt
from .costs import COSTS_FILE_NAME, CostModel
from .executor import ExperimentReport, RunReport, run_experiments
from .workunits import ExperimentPlan, WorkUnit, build_plans, plan_for

__all__ = [
    "CACHE_DIR_NAME",
    "COSTS_FILE_NAME",
    "CostModel",
    "ExperimentPlan",
    "ExperimentReport",
    "ResultCache",
    "RunReport",
    "WorkUnit",
    "build_plans",
    "clear_salt_caches",
    "code_salt",
    "plan_for",
    "run_experiments",
    "unit_salt",
]
